//! Signed logarithmic delta histograms, in the style of the paper's
//! figures.
//!
//! Every evaluation figure (Figs. 4–10) is a histogram of "the percentage
//! of packets with a given IAT delta" (or latency delta) on a symmetric
//! log-ish axis spanning roughly ±10⁸ ns. [`DeltaHistogram`] reproduces
//! that: a zero bucket for |Δ| < 1 ns, then logarithmic buckets (a fixed
//! number per decade) out to ±10⁹ ns, mirrored for negative deltas.

use serde::{Deserialize, Serialize};

/// Sub-buckets per decade.
const SUBS: usize = 5;
/// Number of decades covered (1 ns .. 10^DECADES ns).
const DECADES: usize = 9;
/// Buckets per sign: decades × subs.
const PER_SIGN: usize = SUBS * DECADES;

/// A symmetric signed log histogram of deltas in nanoseconds.
///
/// ```
/// use choir_core::metrics::DeltaHistogram;
///
/// let h = DeltaHistogram::of([0.2, -3.0, 5.5, 180.0]);
/// assert_eq!(h.total(), 4);
/// assert!((h.fraction_within(10.0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaHistogram {
    /// Counts indexed `0..2*PER_SIGN+1`; the middle index is the zero
    /// bucket, lower indices negative deltas, higher positive.
    counts: Vec<u64>,
    total: u64,
    /// Values below −10⁹ ns or above +10⁹ ns (clamped into the end
    /// buckets but tallied separately for diagnostics).
    clamped: u64,
}

impl DeltaHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DeltaHistogram {
            counts: vec![0; 2 * PER_SIGN + 1],
            total: 0,
            clamped: 0,
        }
    }

    /// Histogram of a delta series.
    pub fn of<I: IntoIterator<Item = f64>>(deltas_ns: I) -> Self {
        let mut h = Self::new();
        for d in deltas_ns {
            h.add(d);
        }
        h
    }

    fn signed_index(&mut self, delta_ns: f64) -> usize {
        let mag = delta_ns.abs();
        if mag < 1.0 {
            return PER_SIGN; // zero bucket
        }
        let mut pos = (mag.log10() * SUBS as f64).floor() as isize;
        if pos >= PER_SIGN as isize {
            pos = PER_SIGN as isize - 1;
            self.clamped += 1;
        }
        if delta_ns > 0.0 {
            PER_SIGN + 1 + pos as usize
        } else {
            PER_SIGN - 1 - pos as usize
        }
    }

    /// Add one delta (in nanoseconds).
    pub fn add(&mut self, delta_ns: f64) {
        let idx = self.signed_index(delta_ns);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell outside ±10⁹ ns and were clamped.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The bucket boundaries and mass, as `(lo_ns, hi_ns, count, percent)`
    /// from the most negative bucket to the most positive. The zero bucket
    /// is `(-1, 1)`.
    pub fn buckets(&self) -> Vec<(f64, f64, u64, f64)> {
        let edge = |k: usize| 10f64.powf(k as f64 / SUBS as f64);
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = if i == PER_SIGN {
                (-1.0, 1.0)
            } else if i > PER_SIGN {
                let k = i - PER_SIGN - 1;
                (edge(k), edge(k + 1))
            } else {
                let k = PER_SIGN - 1 - i;
                (-edge(k + 1), -edge(k))
            };
            let pct = if self.total == 0 {
                0.0
            } else {
                100.0 * c as f64 / self.total as f64
            };
            out.push((lo, hi, c, pct));
        }
        out
    }

    /// Fraction (0–1) of samples with |Δ| ≤ `bound_ns`, computed from the
    /// raw counts of fully-contained buckets (conservative: a partially
    /// overlapping bucket is excluded).
    ///
    /// For the paper's headline "within 10 ns" statistic the bucket edges
    /// align exactly, so nothing is lost.
    pub fn fraction_within(&self, bound_ns: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut within = 0u64;
        for (lo, hi, c, _) in self.buckets() {
            if lo >= -bound_ns && hi <= bound_ns {
                within += c;
            }
        }
        within as f64 / self.total as f64
    }

    /// Merge another histogram into this one.
    ///
    /// Both histograms must share the same bucket geometry. Today that is
    /// guaranteed (`SUBS`/`DECADES` are compile-time constants), but a
    /// deserialized histogram from an older or foreign build could carry a
    /// different bucket count — zipping those would silently drop mass.
    pub fn merge(&mut self, other: &DeltaHistogram) {
        debug_assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging histograms with different bucket geometries"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.clamped += other.clamped;
    }

    /// CSV rows `lo_ns,hi_ns,count,percent` (no header), skipping empty
    /// leading/trailing buckets.
    pub fn to_csv(&self) -> String {
        let b = self.buckets();
        let first = b.iter().position(|&(_, _, c, _)| c > 0).unwrap_or(0);
        let last = b.iter().rposition(|&(_, _, c, _)| c > 0).unwrap_or(0);
        let mut s = String::new();
        for &(lo, hi, c, pct) in &b[first..=last] {
            s.push_str(&format!("{lo:.3},{hi:.3},{c},{pct:.4}\n"));
        }
        s
    }

    /// A terminal rendering in the style of the paper's figures: one bar
    /// per non-empty bucket, percent-scaled to `width` characters.
    pub fn render_ascii(&self, width: usize) -> String {
        let b = self.buckets();
        let first = b.iter().position(|&(_, _, c, _)| c > 0).unwrap_or(0);
        let last = b.iter().rposition(|&(_, _, c, _)| c > 0).unwrap_or(0);
        let maxpct = b
            .iter()
            .map(|&(_, _, _, p)| p)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut s = String::new();
        for &(lo, hi, c, pct) in &b[first..=last] {
            if c == 0 && !(lo <= 0.0 && hi >= 0.0) {
                continue;
            }
            let bar = "#".repeat(((pct / maxpct) * width as f64).round() as usize);
            s.push_str(&format!("{:>12.1} .. {:>12.1} ns |{:6.2}% {}\n", lo, hi, pct, bar));
        }
        s
    }
}

impl Default for DeltaHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bucket_catches_subnanosecond() {
        let h = DeltaHistogram::of([0.0, 0.5, -0.9, 0.99]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.fraction_within(1.0), 1.0);
    }

    #[test]
    fn within_ten_ns_statistic() {
        // 8 samples within ±10 ns, 2 outside.
        let h = DeltaHistogram::of([0.0, 1.0, -2.0, 3.0, 5.0, -7.0, 9.0, 9.9, 50.0, -800.0]);
        assert!((h.fraction_within(10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sign_symmetry() {
        let mut h = DeltaHistogram::new();
        h.add(123.0);
        h.add(-123.0);
        let b = h.buckets();
        let pos: Vec<_> = b.iter().filter(|&&(lo, _, c, _)| lo > 0.0 && c > 0).collect();
        let neg: Vec<_> = b.iter().filter(|&&(_, hi, c, _)| hi < 0.0 && c > 0).collect();
        assert_eq!(pos.len(), 1);
        assert_eq!(neg.len(), 1);
        assert!((pos[0].0 + neg[0].1).abs() < 1e-9, "mirrored edges");
    }

    #[test]
    fn bucket_mass_conservation() {
        let mut h = DeltaHistogram::new();
        for i in 0..1000 {
            h.add((i as f64 - 500.0) * 17.3);
        }
        let sum: u64 = h.buckets().iter().map(|&(_, _, c, _)| c).sum();
        assert_eq!(sum, h.total());
        let pct: f64 = h.buckets().iter().map(|&(_, _, _, p)| p).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn huge_values_clamp() {
        let mut h = DeltaHistogram::new();
        h.add(1e12);
        h.add(-2e15);
        assert_eq!(h.total(), 2);
        assert_eq!(h.clamped(), 2);
        let sum: u64 = h.buckets().iter().map(|&(_, _, c, _)| c).sum();
        assert_eq!(sum, 2);
    }

    #[test]
    fn merge_adds() {
        let mut a = DeltaHistogram::of([5.0, 10.0]);
        let b = DeltaHistogram::of([-5.0]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different bucket geometries")]
    fn merge_rejects_mismatched_geometry() {
        // A foreign/older build could serialize a different bucket count;
        // merging it must trip the debug assertion instead of silently
        // dropping mass.
        let mut a = DeltaHistogram::new();
        let b: DeltaHistogram =
            serde_json::from_str(r#"{"counts":[1,2,3],"total":6,"clamped":0}"#).unwrap();
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_renders() {
        let h = DeltaHistogram::new();
        assert_eq!(h.fraction_within(10.0), 0.0);
        let _ = h.render_ascii(40);
        let _ = h.to_csv();
    }

    #[test]
    fn csv_has_rows_for_data() {
        let h = DeltaHistogram::of([3.0, 3.5, -100.0]);
        let csv = h.to_csv();
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains(','));
    }

    #[test]
    fn decade_boundaries_land_in_correct_bucket() {
        let mut h = DeltaHistogram::new();
        h.add(10.0); // exactly 10 ns: belongs to the [10, ...) bucket
        let b = h.buckets();
        let hit = b.iter().find(|&&(_, _, c, _)| c > 0).unwrap();
        assert!((hit.0 - 10.0).abs() < 1e-9, "lo = {}", hit.0);
    }

    #[test]
    fn serde_roundtrip() {
        let h = DeltaHistogram::of([1.0, -20.0, 300.0]);
        let json = serde_json::to_string(&h).unwrap();
        let back: DeltaHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total(), 3);
        assert_eq!(back.fraction_within(10.0), h.fraction_within(10.0));
    }
}
