//! Criterion benches of the discrete-event simulator: event throughput
//! for the full record-and-replay pipeline, which bounds how fast the
//! paper's experiments regenerate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use choir_testbed::{EnvKind, Experiment, ExperimentConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_pipeline");
    g.sample_size(10);
    for &scale in &[0.001f64, 0.005] {
        let mut profile = EnvKind::LocalSingle.profile();
        profile.runs = 2;
        let cfg = ExperimentConfig {
            profile,
            scale,
            seed: 99,
        };
        let packets = cfg.packet_count();
        g.throughput(Throughput::Elements(packets * 3)); // record + 2 replays
        g.bench_with_input(
            BenchmarkId::new("local_single", packets),
            &cfg,
            |bench, cfg| {
                bench.iter(|| Experiment::new(cfg.clone()).run().events);
            },
        );
    }
    g.finish();
}

fn bench_noisy_environment(c: &mut Criterion) {
    // The contention models add per-packet RNG draws; quantify the cost.
    let mut g = c.benchmark_group("sim_noisy");
    g.sample_size(10);
    let mut profile = EnvKind::FabricShared40Noisy.profile();
    profile.runs = 2;
    let cfg = ExperimentConfig {
        profile,
        scale: 0.002,
        seed: 99,
    };
    g.throughput(Throughput::Elements(cfg.packet_count() * 3));
    g.bench_function("shared40_noisy", |bench| {
        bench.iter(|| Experiment::new(cfg.clone()).run().events);
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_noisy_environment);
criterion_main!(benches);
