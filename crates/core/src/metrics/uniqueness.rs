//! `U` — variation in uniqueness (paper Eq. 1).
//!
//! ```text
//! U_AB = 1 − 2·|A ∩ B| / (|A| + |B|)
//! ```
//!
//! Missing packets (drops), extra packets (duplication, corruption that
//! changes identity) all reduce the overlap. The paper's worked example: A
//! has 10 packets, B drops one → `U = 1/19`.

use super::matching::Matching;

/// Shared kernel behind [`uniqueness`] and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn uniqueness_core(m: &Matching) -> f64 {
    let total = m.a_len + m.b_len;
    if total == 0 {
        return 0.0; // two empty trials are identical
    }
    1.0 - (2.0 * m.common() as f64) / total as f64
}

/// Compute `U` from a prebuilt matching.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn uniqueness(m: &Matching) -> f64 {
    uniqueness_core(m)
}

/// Convenience: `U` straight from two trials.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn uniqueness_of(a: &super::trial::Trial, b: &super::trial::Trial) -> f64 {
    uniqueness_core(&Matching::build(a, b))
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;
    use crate::metrics::trial::Trial;

    fn trial(seqs: &[u64]) -> Trial {
        let mut t = Trial::new();
        for (i, &s) in seqs.iter().enumerate() {
            t.push_tagged(0, 0, s, i as u64);
        }
        t
    }

    #[test]
    fn paper_worked_example_one_drop_in_ten() {
        // §3: "let A be a trial of 10 packets. During trial B, one packet
        // is dropped, and U = (10 + 9 − 2×9)/(10+9) = 1/19".
        let a = trial(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = trial(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let u = uniqueness_of(&a, &b);
        assert!((u - 1.0 / 19.0).abs() < 1e-15, "got {u}");
    }

    #[test]
    fn identical_is_zero() {
        let a = trial(&[1, 2, 3]);
        assert_eq!(uniqueness_of(&a, &a.clone()), 0.0);
    }

    #[test]
    fn disjoint_is_one() {
        let a = trial(&[0, 1, 2]);
        let b = trial(&[10, 11, 12]);
        assert_eq!(uniqueness_of(&a, &b), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = trial(&[0, 1, 2, 3, 4]);
        let b = trial(&[0, 2, 4, 6]);
        assert_eq!(uniqueness_of(&a, &b), uniqueness_of(&b, &a));
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        assert_eq!(uniqueness_of(&Trial::new(), &Trial::new()), 0.0);
    }

    #[test]
    fn empty_vs_nonempty_is_one() {
        let a = trial(&[1]);
        assert_eq!(uniqueness_of(&a, &Trial::new()), 1.0);
    }

    #[test]
    fn reordering_does_not_affect_u() {
        let a = trial(&[0, 1, 2, 3]);
        let b = trial(&[3, 2, 1, 0]);
        assert_eq!(uniqueness_of(&a, &b), 0.0);
    }

    #[test]
    fn duplicates_count_as_extra() {
        // B duplicates one packet: |A∩B| = 2, |A| = 2, |B| = 3.
        let a = trial(&[0, 1]);
        let mut b = trial(&[0, 1]);
        b.push_tagged(0, 0, 1, 99);
        let u = uniqueness_of(&a, &b);
        assert!((u - (1.0 - 4.0 / 5.0)).abs() < 1e-15);
    }

    #[test]
    fn paper_noisy_run_magnitude() {
        // §7.1: 1,230 drops out of 1,053,824 -> U = 5.84e-4. Check our
        // formula reproduces the paper's number.
        let total = 1_053_824usize;
        let drops = 1_230usize;
        let m = Matching {
            pairs: Vec::new(),
            a_len: total,
            b_len: total - drops,
        };
        // Fake the common count via a matching with empty pairs is not
        // possible; compute directly instead.
        let common = total - drops;
        let u = 1.0 - (2.0 * common as f64) / (m.a_len + m.b_len) as f64;
        assert!((u - 5.84e-4).abs() < 5e-6, "got {u}");
    }
}
