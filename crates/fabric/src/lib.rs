//! # choir-fabric
//!
//! A model of the FABRIC testbed's resource layer (paper §2.1): *sites*
//! with finite CPU/RAM/disk and a stock of NIC components, *slices* —
//! "a reservation of virtual and physical resources across the federated
//! environment" — containing *nodes* (VMs) and *network services*
//! connecting them, in the style of the FABlib API the paper's artifact
//! drives (§Appendix A).
//!
//! A [`Slice`] is declared, [`Slice::submit`]ted against a [`Site`]
//! (which enforces capacity, like the real control framework), and the
//! resulting [`ProvisionedSlice`] *materializes* onto the
//! `choir-netsim` simulator: L2 bridges become switches, SmartNIC
//! components become dedicated ports, shared-NIC components become
//! SR-IOV VF ports with contention hooks, and VM nodes inherit
//! virtualization wake jitter.
//!
//! ```
//! use choir_fabric::{NicKind, NodeSpec, Site, Slice};
//!
//! let mut slice = Slice::new("replay-experiment");
//! let a = slice.add_node(NodeSpec::vm("sender", 4, 16).with_nic(NicKind::SmartConnectX6));
//! let b = slice.add_node(NodeSpec::vm("receiver", 4, 16).with_nic(NicKind::SharedVf));
//! let net = slice.add_l2bridge("net1");
//! slice.attach(a, 0, net).unwrap();
//! slice.attach(b, 0, net).unwrap();
//! let provisioned = slice.submit(&mut Site::large("TACC")).unwrap();
//! assert_eq!(provisioned.nodes().len(), 2);
//! ```

pub mod site;
pub mod slice;

pub use site::{AllocError, Site, SiteUsage};
pub use slice::{
    NicKind, NodeRef, NodeSpec, ProvisionedSlice, ServiceRef, Slice, SliceError,
};
