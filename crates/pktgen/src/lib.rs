//! # choir-pktgen
//!
//! A Pktgen-DPDK-style constant-bit-rate traffic generator, written as a
//! [`choir_dpdk::App`] so it runs on the simulator or the real-time
//! backend. The paper's evaluations use exactly this workload: "the
//! generator created a 40 Gbps stream of 1,400-byte packets" (§6), split
//! across one port per replayer in the parallel topology ("the generator
//! sent traffic out of one port each to two replayers", §6.2).
//!
//! Emission is paced in the TSC domain with exact integer arithmetic: the
//! i-th packet is due at `start_tsc + i·gap·hz/10¹²`, so no rounding error
//! accumulates across a million packets.

pub mod pattern;

use std::collections::HashMap;

use choir_dpdk::{App, Burst, Dataplane, PortId};
use choir_packet::{ChoirTag, FrameBuilder, FrameSpec};

pub use pattern::{Pattern, PatternRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Frame size and aggregate rate (across all ports).
    pub spec: FrameSpec,
    /// Total packets to emit.
    pub count: u64,
    /// Ports to emit on, round-robin. One port = the single-replayer
    /// topology; two = §6.2's parallel topology (each port then carries
    /// half the aggregate rate).
    pub ports: Vec<PortId>,
    /// Source node id baked into headers.
    pub src_node: u32,
    /// Destination node id baked into headers.
    pub dst_node: u32,
    /// Store only headers+trailer per frame, declaring the full length
    /// (memory-frugal; timing-exact). See `choir_packet::Frame::truncated`.
    pub snap_frames: bool,
    /// Tag frames at generation time (normally false: the paper's tags
    /// are stamped by the *replayer*).
    pub tag_at_source: bool,
    /// Traffic shape. `None` = CBR at `spec` (the paper's workload);
    /// otherwise any [`Pattern`] (Poisson, on-off bursts, IMIX).
    pub pattern: Option<Pattern>,
    /// Seed for stochastic patterns (deterministic replay of the shape).
    pub pattern_seed: u64,
}

impl GeneratorConfig {
    /// The paper's default workload: `count` packets of 1400 bytes at
    /// `rate_bps` on one port.
    pub fn cbr(rate_bps: u64, count: u64) -> Self {
        GeneratorConfig {
            spec: FrameSpec::new(1400, rate_bps),
            count,
            ports: vec![0],
            src_node: 1,
            dst_node: 2,
            snap_frames: true,
            tag_at_source: false,
            pattern: None,
            pattern_seed: 0x9E37_79B9,
        }
    }

    /// The same workload with a different traffic shape.
    pub fn with_pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(pattern);
        self
    }
}

/// The generator application.
pub struct Generator {
    cfg: GeneratorConfig,
    builder: FrameBuilder,
    /// Builders per frame length, for mixed-size patterns.
    builders: HashMap<usize, FrameBuilder>,
    pattern: Pattern,
    pattern_rng: PatternRng,
    /// Cumulative offset of the pending packet from the start, in ps.
    offset_ps: u128,
    /// (due tsc offset computed lazily, frame length) of the next packet.
    pending: Option<(u64, usize)>,
    sent: u64,
    start_tsc: Option<u64>,
    tx_buf: Burst,
    /// Packets that could not be enqueued (tx ring full at emission time).
    overruns: u64,
}

impl Generator {
    /// A generator ready to start on its first wake.
    pub fn new(cfg: GeneratorConfig) -> Self {
        assert!(!cfg.ports.is_empty(), "generator needs at least one port");
        let builder = FrameBuilder::new(cfg.spec.frame_len, cfg.src_node, cfg.dst_node);
        let pattern = cfg.pattern.clone().unwrap_or(Pattern::Cbr(cfg.spec));
        let pattern_rng = PatternRng::new(cfg.pattern_seed);
        Generator {
            builder,
            builders: HashMap::new(),
            pattern,
            pattern_rng,
            offset_ps: 0,
            pending: None,
            cfg,
            sent: 0,
            start_tsc: None,
            tx_buf: Burst::new(),
            overruns: 0,
        }
    }

    /// Packets emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// True once every packet has been emitted.
    pub fn done(&self) -> bool {
        self.sent >= self.cfg.count
    }

    /// Emissions rejected by a full transmit ring.
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Sample (once) the pending packet's due offset and length.
    fn ensure_pending(&mut self, start: u64, hz: u64) -> (u64, usize) {
        if let Some(p) = self.pending {
            return p;
        }
        let (gap, len) = self.pattern.next(self.sent, &mut self.pattern_rng);
        self.offset_ps += gap as u128;
        let due = start + ((self.offset_ps * hz as u128) / 1_000_000_000_000u128) as u64;
        let p = (due, len);
        self.pending = Some(p);
        p
    }

    fn builder_for(&mut self, len: usize) -> &FrameBuilder {
        if len == self.cfg.spec.frame_len {
            return &self.builder;
        }
        let (src, dst) = (self.cfg.src_node, self.cfg.dst_node);
        self.builders
            .entry(len)
            .or_insert_with(|| FrameBuilder::new(len, src, dst))
    }

    fn build_frame(&mut self, i: u64, len: usize) -> choir_packet::Frame {
        let tag_at_source = self.cfg.tag_at_source;
        let snap = self.cfg.snap_frames;
        let b = self.builder_for(len);
        if tag_at_source {
            let tag = ChoirTag::new(0, 1, i);
            if snap {
                b.build_tagged_snap(tag)
            } else {
                b.build_tagged(tag)
            }
        } else if snap {
            // Untagged traffic, snap-stored. A placeholder trailer keeps
            // frame identities distinct per packet, mirroring real traffic
            // where payloads differ; the replayer overwrites it with the
            // canonical Choir tag while recording.
            let tag = ChoirTag::new(u16::MAX, u16::MAX, i);
            b.build_tagged_snap(tag)
        } else {
            b.build_plain()
        }
    }
}

impl App for Generator {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        if self.done() {
            return;
        }
        let hz = dp.tsc_hz();
        let now = dp.tsc();
        let start = *self.start_tsc.get_or_insert(now);
        // Emit everything due; a late wake emits a small catch-up batch,
        // like a real CBR generator loop would.
        while !self.done() {
            let (due, len) = self.ensure_pending(start, hz);
            if dp.tsc() < due {
                dp.request_wake_at_tsc(due);
                return;
            }
            self.pending = None;
            let port = self.cfg.ports[(self.sent % self.cfg.ports.len() as u64) as usize];
            let frame = self.build_frame(self.sent, len);
            match dp.mempool().alloc(frame) {
                Ok(m) => {
                    self.tx_buf.clear();
                    self.tx_buf.push(m).expect("empty burst has room");
                    let sent = dp.tx_burst(port, &mut self.tx_buf);
                    if sent == 0 {
                        self.overruns += 1;
                        self.tx_buf.clear();
                    }
                }
                Err(_) => {
                    self.overruns += 1;
                }
            }
            self.sent += 1;
        }
    }

    fn name(&self) -> &str {
        "choir-pktgen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_dpdk::{Mbuf, Mempool, PortStats};

    /// Minimal manual-time plane recording (port, tsc) of transmissions.
    struct GenPlane {
        pool: Mempool,
        now: u64,
        wake: Option<u64>,
        sent: Vec<(PortId, u64, Mbuf)>,
        reject: bool,
    }

    impl GenPlane {
        fn new() -> Self {
            GenPlane {
                pool: Mempool::new("g", 1 << 16),
                now: 0,
                wake: None,
                sent: Vec::new(),
                reject: false,
            }
        }
        fn run(&mut self, g: &mut Generator, max_iters: usize) {
            let mut iters = 0;
            loop {
                g.on_wake(self);
                match self.wake.take() {
                    Some(t) => self.now = t,
                    None => break,
                }
                iters += 1;
                assert!(iters < max_iters, "generator never finished");
            }
        }
    }

    impl Dataplane for GenPlane {
        fn num_ports(&self) -> usize {
            4
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, p: PortId, burst: &mut Burst) -> usize {
            if self.reject {
                return 0;
            }
            let mut n = 0;
            let now = self.now;
            for m in burst.drain() {
                self.sent.push((p, now, m));
                n += 1;
            }
            n
        }
        fn tsc(&self) -> u64 {
            self.now
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now
        }
        fn request_wake_at_tsc(&mut self, t: u64) {
            self.wake = Some(self.wake.map_or(t, |w| w.min(t)));
        }
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    #[test]
    fn emits_exact_count_at_exact_spacing() {
        let mut dp = GenPlane::new();
        let mut g = Generator::new(GeneratorConfig::cbr(40_000_000_000, 100));
        dp.run(&mut g, 1000);
        assert!(g.done());
        assert_eq!(g.sent(), 100);
        assert_eq!(dp.sent.len(), 100);
        // 40G of 1424 wire bytes: 284.8 ns gap; at 1 GHz TSC the due
        // times alternate 284/285 cycles with zero cumulative drift.
        let times: Vec<u64> = dp.sent.iter().map(|&(_, t, _)| t).collect();
        let total = times.last().unwrap() - times[0];
        assert_eq!(total, (99u128 * 284_800 / 1000) as u64);
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!((284..=285).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn round_robin_across_ports() {
        let mut dp = GenPlane::new();
        let mut cfg = GeneratorConfig::cbr(40_000_000_000, 10);
        cfg.ports = vec![0, 2];
        let mut g = Generator::new(cfg);
        dp.run(&mut g, 100);
        let ports: Vec<PortId> = dp.sent.iter().map(|&(p, _, _)| p).collect();
        assert_eq!(ports, vec![0, 2, 0, 2, 0, 2, 0, 2, 0, 2]);
        // Per-port spacing is twice the aggregate spacing (20G each).
        let p0: Vec<u64> = dp
            .sent
            .iter()
            .filter(|&&(p, _, _)| p == 0)
            .map(|&(_, t, _)| t)
            .collect();
        for w in p0.windows(2) {
            let gap = w[1] - w[0];
            assert!((569..=570).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn frames_have_declared_full_size() {
        let mut dp = GenPlane::new();
        let mut g = Generator::new(GeneratorConfig::cbr(40_000_000_000, 3));
        dp.run(&mut g, 50);
        for (_, _, m) in &dp.sent {
            assert_eq!(m.frame.orig_len(), 1400);
            assert_eq!(m.frame.wire_len(), 1424);
            assert!(m.frame.len() < 100, "snap frames stay small");
        }
    }

    #[test]
    fn full_frames_when_snap_disabled() {
        let mut dp = GenPlane::new();
        let mut cfg = GeneratorConfig::cbr(40_000_000_000, 2);
        cfg.snap_frames = false;
        let mut g = Generator::new(cfg);
        dp.run(&mut g, 50);
        assert_eq!(dp.sent[0].2.frame.len(), 1400);
    }

    #[test]
    fn source_tagging_optional() {
        let mut dp = GenPlane::new();
        let mut cfg = GeneratorConfig::cbr(40_000_000_000, 2);
        cfg.tag_at_source = true;
        let mut g = Generator::new(cfg);
        dp.run(&mut g, 50);
        let tag = dp.sent[1].2.frame.tag().unwrap();
        assert_eq!(tag.seq, 1);
        assert_eq!(tag.stream, 1);
    }

    #[test]
    fn overruns_counted_when_ring_rejects() {
        let mut dp = GenPlane::new();
        dp.reject = true;
        let mut g = Generator::new(GeneratorConfig::cbr(40_000_000_000, 5));
        dp.run(&mut g, 50);
        assert_eq!(g.overruns(), 5);
        assert!(g.done());
    }

    #[test]
    fn late_wake_catches_up_without_losing_count() {
        let mut dp = GenPlane::new();
        let mut g = Generator::new(GeneratorConfig::cbr(40_000_000_000, 50));
        g.on_wake(&mut dp);
        dp.wake = None;
        dp.now = 1_000_000; // 1 ms later
        g.on_wake(&mut dp);
        assert!(g.done());
        assert_eq!(dp.sent.len(), 50);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_ports_panics() {
        let mut cfg = GeneratorConfig::cbr(1_000, 1);
        cfg.ports.clear();
        Generator::new(cfg);
    }

    #[test]
    fn poisson_pattern_emits_irregular_but_rate_true_traffic() {
        let mut dp = GenPlane::new();
        let cfg = GeneratorConfig::cbr(40_000_000_000, 2_000)
            .with_pattern(Pattern::Poisson(FrameSpec::new(1400, 40_000_000_000)));
        let mut g = Generator::new(cfg);
        dp.run(&mut g, 10_000);
        assert_eq!(dp.sent.len(), 2_000);
        let times: Vec<u64> = dp.sent.iter().map(|&(_, t, _)| t).collect();
        let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        // Gaps vary (not CBR)...
        let distinct: std::collections::HashSet<u64> = gaps.iter().copied().collect();
        assert!(distinct.len() > 100, "only {} distinct gaps", distinct.len());
        // ...but the mean rate holds within a few percent (1 GHz TSC:
        // 284.8 ns -> ~285 cycles mean).
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!((mean / 284.8 - 1.0).abs() < 0.05, "mean gap {mean}");
    }

    #[test]
    fn imix_pattern_mixes_frame_sizes_on_the_wire() {
        let mut dp = GenPlane::new();
        let cfg = GeneratorConfig::cbr(10_000_000_000, 3_000)
            .with_pattern(Pattern::Imix { rate_bps: 10_000_000_000 });
        let mut g = Generator::new(cfg);
        dp.run(&mut g, 20_000);
        let sizes: std::collections::HashSet<usize> =
            dp.sent.iter().map(|(_, _, m)| m.frame.orig_len()).collect();
        assert_eq!(
            sizes,
            [64usize, 594, 1518].into_iter().collect(),
            "all three IMIX sizes must appear"
        );
    }

    #[test]
    fn paper_rates_packet_counts() {
        // 0.3 s at 40 Gbps -> ~1.053M packets (paper: 1,052,268-1,055,648
        // across trials). Sanity-check the config arithmetic end to end.
        let cfg = GeneratorConfig::cbr(40_000_000_000, 0);
        let pkts = cfg.spec.packets_in(300_000_000_000);
        assert!((1_045_000..1_060_000).contains(&pkts), "{pkts}");
    }
}
