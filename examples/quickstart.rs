//! Quickstart: record traffic with Choir, replay it twice on the
//! *real-time* backend (real clock, no simulator), and score the two
//! replays with the κ consistency metric.
//!
//! The replay loop here is the paper's §4 algorithm verbatim: spin on a
//! TSC read, transmit each recorded burst when the counter passes
//! `recorded_tsc + delta`, and capture arrivals on the far side.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use choir::dpdk::loopback::{LoopbackPort, RealClock, RealtimePlane};
use choir::dpdk::{Burst, Dataplane, Mempool};
use choir::metrics::{report::analyze, Trial};
use choir::packet::{ChoirTag, FrameBuilder};
use choir::replay::recording::Recording;

fn main() {
    println!("Choir quickstart: record -> replay x2 -> kappa\n");

    // 1. Build a "recording": 20k packets of 1400 bytes at 10 Gbps
    //    spacing, in 32-packet bursts, with Choir trailer tags — exactly
    //    what the middlebox would have captured in-situ.
    let pool = Mempool::one_gigabyte("quickstart");
    let builder = FrameBuilder::new(1400, 1, 2);
    let gap_ns = 1_139u64; // ~10 Gbps of 1424 wire bytes
    let mut recording = Recording::new();
    let bursts = 625usize;
    let per_burst = 32usize;
    for b in 0..bursts {
        let pkts: Vec<_> = (0..per_burst)
            .map(|i| {
                let seq = (b * per_burst + i) as u64;
                pool.alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, seq)))
                    .expect("pool sized for the recording")
            })
            .collect();
        // Burst timestamps in TSC cycles (1 GHz on the loopback backend).
        recording.push_burst((b * per_burst) as u64 * gap_ns, pkts.iter());
    }
    println!(
        "recorded {} packets in {} bursts",
        recording.packets(),
        recording.len(),
    );

    // 2. Replay the recording twice through a self-loop port, draining
    //    the "wire" inline and capturing each arrival as a Trial
    //    observation. Single-threaded on purpose: a NIC is hardware, not
    //    another CPU thread.
    let mut trials: Vec<Trial> = Vec::new();
    for run in 0..2u8 {
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let pid = plane.add_port(LoopbackPort::self_loop(1 << 12));
        let mut trial = Trial::with_capacity(recording.packets());
        let mut txb = Burst::new();
        let mut rxb = Burst::new();

        let first = recording.first_tsc().expect("recording non-empty");
        let start = plane.tsc() + 100_000; // begin 100 us from now
        let mut late_worst = 0u64;
        for rb in recording.bursts() {
            let release = start + (rb.tsc - first);
            plane.spin_until_tsc(release); // the paper's TSC wait loop
            late_worst = late_worst.max(plane.tsc().saturating_sub(release));
            txb.clear();
            for m in &rb.pkts {
                txb.push(m.clone()).expect("burst within capacity");
            }
            while plane.tx_burst(pid, &mut txb) > 0 || !txb.is_empty() {
                if txb.is_empty() {
                    break;
                }
                // Wire full: drain it inline (the self-loop "receiver").
                drain(&mut plane, pid, &mut rxb, &mut trial);
            }
            drain(&mut plane, pid, &mut rxb, &mut trial);
        }
        while trial.len() < recording.packets() {
            drain(&mut plane, pid, &mut rxb, &mut trial);
        }
        println!(
            "replay {}: captured {} packets, worst burst lateness {} ns",
            (b'A' + run) as char,
            trial.len(),
            late_worst,
        );
        trials.push(trial.rezeroed());
    }

    // 3. Score run B against run A, exactly as the paper does.
    let cmp = analyze("B", &trials[0], &trials[1]);
    println!("\nconsistency of replay B vs replay A:");
    println!(
        "  U = {:.3e}  (missing {} / extra {})",
        cmp.metrics.u, cmp.missing, cmp.extra
    );
    println!("  O = {:.3e}  ({} packets moved)", cmp.metrics.o, cmp.moved);
    println!("  L = {:.3e}", cmp.metrics.l);
    println!(
        "  I = {:.3e}  ({:.1}% of IAT deltas within +-10 ns)",
        cmp.metrics.i,
        cmp.iat_within_10ns * 100.0
    );
    println!("  kappa = {:.4}  (1.0 = perfectly consistent)", cmp.metrics.kappa);
    println!("\nIAT delta histogram (ns):");
    print!("{}", cmp.iat_hist.render_ascii(40));
    println!("\n(Numbers vary with OS scheduling noise on this host — that");
    println!("variability is precisely what the metric is for.)");
}

/// Pull everything currently on the self-loop wire into the trial.
fn drain(plane: &mut RealtimePlane, pid: usize, rxb: &mut Burst, trial: &mut Trial) {
    loop {
        let n = plane.rx_burst(pid, rxb);
        for m in rxb.drain() {
            trial.push(m.frame.packet_id(), m.rx_ts_ps.expect("stamped on rx"));
        }
        if n == 0 {
            break;
        }
    }
}
