//! Conservative parallel discrete-event execution: one [`Sim`] per
//! shard, one worker thread per sim, synchronized by time-window
//! barriers with link propagation delay as lookahead.
//!
//! ## Protocol
//!
//! The topology is partitioned by domain (site / switch cluster); every
//! inter-domain wire becomes a *remote link* (see
//! [`Sim::connect_remote_out`] / [`Sim::connect_remote_in`]) whose
//! propagation delay is at least the fleet lookahead `L`. The
//! coordinator repeats:
//!
//! 1. **Probe** every shard for its next event time; let `t` be the
//!    minimum.
//! 2. **Run** every shard to the horizon `t + L - 1`. Any event a shard
//!    processes in this window can only influence another shard through
//!    a remote link, and such a burst arrives no earlier than
//!    `t + L > horizon` — so executing the window in parallel, with no
//!    mid-window communication, is causally safe (this is the classic
//!    null-message bound collapsed into a window barrier).
//! 3. **Route** the bursts each shard parked in its outbox to the shard
//!    hosting the link's acceptor, and inject them.
//!
//! ## Determinism contract
//!
//! A sharded run is a pure function of `(topology, seed)` — independent
//! of shard count and thread scheduling — because cross-shard admission
//! never consumes the destination sim's `seq` counter. Instead each
//! admitted event is keyed in a reserved queue band by
//! `(arrival time, link id, per-link message count)`: every component of
//! the key is a layout invariant (the count increments in link-message
//! order, which equals origin emission order, which is deterministic
//! within the origin shard by induction). The serial engine routes
//! inter-domain links through the *same* admission path, short-circuited
//! locally — so a `shards = 1` fleet and a serial sim produce
//! byte-identical captures, and so does every other shard count.
//!
//! Threading: [`choir_dpdk::App`]s are not `Send`, so each worker thread
//! *builds* its own sim from a `Send` closure; only commands, packet
//! bursts ([`Mbuf`] is `Send`) and `Any + Send` call results cross
//! threads.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use choir_obs as obs;

use crate::engine::{RemoteBurst, Sim, SimConfig, SimStats};

/// Builds one shard's sim on its worker thread.
pub type SimBuilder = Box<dyn FnOnce(&mut Sim) + Send + 'static>;

type SimCall = Box<dyn FnOnce(&mut Sim) -> Box<dyn Any + Send> + Send + 'static>;

enum Cmd {
    /// Reply with the shard's next event time.
    Probe,
    /// Run to the given horizon and reply with the drained outbox.
    Run(u64),
    /// Admit routed bursts, then acknowledge.
    Inject(Vec<RemoteBurst>),
    /// Run an arbitrary closure against the sim and reply with its value.
    Call(SimCall),
    Shutdown,
}

enum Reply {
    Time(Option<u64>),
    Ran(Vec<RemoteBurst>),
    Injected,
    Value(Box<dyn Any + Send>),
}

struct Worker {
    cmd: Sender<Cmd>,
    reply: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

fn worker_loop(cfg: SimConfig, build: SimBuilder, cmds: Receiver<Cmd>, replies: Sender<Reply>) {
    let mut sim = Sim::new(cfg);
    build(&mut sim);
    while let Ok(cmd) = cmds.recv() {
        let reply = match cmd {
            Cmd::Probe => Reply::Time(sim.next_event_time()),
            Cmd::Run(horizon) => {
                sim.run_until(horizon);
                Reply::Ran(sim.take_outbox())
            }
            Cmd::Inject(bursts) => {
                for rb in bursts {
                    sim.inject_remote(rb.link, rb.pkts);
                }
                Reply::Injected
            }
            Cmd::Call(f) => Reply::Value(f(&mut sim)),
            Cmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
}

/// Synchronization-overhead counters of a sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Time-window barriers executed.
    pub windows: u64,
    /// Cross-shard bursts routed through the coordinator.
    pub remote_bursts: u64,
    /// Packets inside those bursts.
    pub remote_packets: u64,
}

/// A fleet of [`Sim`] shards advanced in lockstep windows.
pub struct ShardedSim {
    workers: Vec<Worker>,
    /// Which shard accepts each remote link.
    link_home: BTreeMap<u32, usize>,
    lookahead_ps: u64,
    now: u64,
    sync: SyncStats,
}

impl ShardedSim {
    /// Spawn one worker per builder. `lookahead_ps` must be a lower bound
    /// on the propagation delay of every link that crosses shards (links
    /// internal to a shard are unconstrained).
    pub fn new(cfg: SimConfig, lookahead_ps: u64, builders: Vec<SimBuilder>) -> Self {
        assert!(!builders.is_empty(), "at least one shard");
        assert!(lookahead_ps >= 1, "lookahead must be positive");
        let workers: Vec<Worker> = builders
            .into_iter()
            .enumerate()
            .map(|(i, build)| {
                let (cmd_tx, cmd_rx) = channel();
                let (reply_tx, reply_rx) = channel();
                let wcfg = cfg.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("sim-shard-{i}"))
                    .spawn(move || worker_loop(wcfg, build, cmd_rx, reply_tx))
                    .expect("spawn shard worker");
                Worker {
                    cmd: cmd_tx,
                    reply: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        let mut fleet = ShardedSim {
            workers,
            link_home: BTreeMap::new(),
            lookahead_ps,
            now: 0,
            sync: SyncStats::default(),
        };
        for i in 0..fleet.workers.len() {
            for link in fleet.with_sim(i, |sim| sim.accepted_remote_links()) {
                let prev = fleet.link_home.insert(link, i);
                assert!(prev.is_none(), "remote link {link} accepted by two shards");
            }
        }
        fleet
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Coordinator clock: the deadline of the last completed run.
    pub fn now_ps(&self) -> u64 {
        self.now
    }

    /// Synchronization-overhead counters so far.
    pub fn sync_stats(&self) -> SyncStats {
        self.sync
    }

    fn send(&self, shard: usize, cmd: Cmd) {
        self.workers[shard].cmd.send(cmd).expect("shard worker alive");
    }

    fn recv(&self, shard: usize) -> Reply {
        self.workers[shard].reply.recv().expect("shard worker alive")
    }

    /// Run a closure against one shard's sim (blocking round-trip).
    pub fn with_sim<R, F>(&mut self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Sim) -> R + Send + 'static,
    {
        self.send(
            shard,
            Cmd::Call(Box::new(move |sim| Box::new(f(sim)) as Box<dyn Any + Send>)),
        );
        match self.recv(shard) {
            Reply::Value(v) => *v.downcast::<R>().expect("call result type"),
            _ => unreachable!("call replies with a value"),
        }
    }

    /// Minimum next-event time across shards (`None` when the fleet is
    /// idle).
    fn probe_min(&mut self) -> Option<u64> {
        for i in 0..self.workers.len() {
            self.send(i, Cmd::Probe);
        }
        let mut min_t: Option<u64> = None;
        for i in 0..self.workers.len() {
            let Reply::Time(t) = self.recv(i) else {
                unreachable!("probe replies with a time")
            };
            if let Some(t) = t {
                min_t = Some(min_t.map_or(t, |m: u64| m.min(t)));
            }
        }
        min_t
    }

    /// Execute one window: run every shard to `horizon` in parallel, then
    /// route and inject the cross-shard bursts.
    fn run_window(&mut self, horizon: u64) {
        for i in 0..self.workers.len() {
            self.send(i, Cmd::Run(horizon));
        }
        let n = self.workers.len();
        let mut routed: Vec<Vec<RemoteBurst>> = (0..n).map(|_| Vec::new()).collect();
        for i in 0..n {
            let Reply::Ran(outbox) = self.recv(i) else {
                unreachable!("run replies with an outbox")
            };
            for rb in outbox {
                let home = *self
                    .link_home
                    .get(&rb.link)
                    .unwrap_or_else(|| panic!("remote link {} has no acceptor", rb.link));
                self.sync.remote_bursts += 1;
                self.sync.remote_packets += rb.pkts.len() as u64;
                routed[home].push(rb);
            }
        }
        let mut pending = Vec::new();
        for (i, bursts) in routed.into_iter().enumerate() {
            if !bursts.is_empty() {
                self.send(i, Cmd::Inject(bursts));
                pending.push(i);
            }
        }
        for i in pending {
            let Reply::Injected = self.recv(i) else {
                unreachable!("inject replies with an ack")
            };
        }
    }

    /// Advance the fleet to `deadline_ps` (every shard's clock ends at
    /// the deadline, exactly like the serial engine's `run_until`).
    /// Returns the time the run stopped at.
    pub fn run_until(&mut self, deadline_ps: u64) -> u64 {
        while let Some(t) = self.probe_min() {
            if t > deadline_ps {
                break;
            }
            let horizon = t
                .saturating_add(self.lookahead_ps - 1)
                .min(deadline_ps);
            self.sync.windows += 1;
            self.run_window(horizon);
        }
        if deadline_ps == u64::MAX {
            // Fleet drained; settle on the latest shard clock.
            let mut latest = self.now;
            for i in 0..self.workers.len() {
                latest = latest.max(self.with_sim(i, |sim| sim.now_ps()));
            }
            self.now = latest;
        } else {
            // Final sync so phase-boundary reads (now_ps, control
            // scheduling) see the same clock a serial run would.
            self.run_window(deadline_ps);
            self.now = self.now.max(deadline_ps);
        }
        if obs::is_enabled() {
            obs::gauge_set("sim.shard.count", self.workers.len() as u64);
            obs::gauge_set("sim.shard.windows", self.sync.windows);
            obs::gauge_set("sim.shard.remote_bursts", self.sync.remote_bursts);
            obs::gauge_set("sim.shard.remote_packets", self.sync.remote_packets);
        }
        self.now
    }

    /// Run until every shard is idle.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run_until(u64::MAX)
    }

    /// Merged engine counters across shards (see [`SimStats::merge`]).
    pub fn sim_stats(&mut self) -> SimStats {
        let mut total = SimStats::default();
        for i in 0..self.workers.len() {
            let s = self.with_sim(i, |sim| sim.sim_stats());
            total.merge(&s);
        }
        total
    }
}

impl Drop for ShardedSim {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(Cmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Assign `domains` domain indices to `shards` shards round-robin — the
/// default partitioning pass. More shards than domains leaves the excess
/// shards empty (they simply report idle every window).
pub fn partition_round_robin(domains: usize, shards: usize) -> Vec<Vec<usize>> {
    assert!(shards >= 1, "at least one shard");
    let mut parts: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
    for d in 0..domains {
        parts[d % shards].push(d);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NodeClock;
    use crate::engine::{Endpoint, NodeId};
    use crate::nic::{NicRxModel, NicTxModel};
    use crate::rng::Jitter;
    use crate::time::NS;
    use choir_dpdk::{App, Burst, Dataplane};
    use choir_packet::{ChoirTag, FrameBuilder};

    /// Emits `count` tagged packets at a fixed cycle gap.
    struct Pinger {
        builder: FrameBuilder,
        gap_cycles: u64,
        count: u64,
        sent: u64,
        start_tsc: Option<u64>,
    }

    impl Pinger {
        fn new(count: u64, gap_cycles: u64) -> Self {
            Pinger {
                builder: FrameBuilder::new(1400, 1, 2),
                gap_cycles,
                count,
                sent: 0,
                start_tsc: None,
            }
        }
    }

    impl App for Pinger {
        fn on_wake(&mut self, dp: &mut dyn Dataplane) {
            if self.sent >= self.count {
                return;
            }
            let now = dp.tsc();
            let start = *self.start_tsc.get_or_insert(now);
            let due = start + self.sent * self.gap_cycles;
            if now < due {
                dp.request_wake_at_tsc(due);
                return;
            }
            let frame = self
                .builder
                .build_tagged_snap(ChoirTag::new(1, 0, self.sent));
            let m = dp.mempool().alloc(frame).expect("pool");
            let mut b = Burst::new();
            b.push(m).unwrap();
            dp.tx_burst(0, &mut b);
            self.sent += 1;
            if self.sent < self.count {
                dp.request_wake_at_tsc(start + self.sent * self.gap_cycles);
            }
        }
    }

    /// Collects (seq, rx timestamp) of everything it receives.
    struct Collector {
        got: Vec<(u64, u64)>,
    }

    impl App for Collector {
        fn on_wake(&mut self, dp: &mut dyn Dataplane) {
            let mut b = Burst::new();
            while dp.rx_burst(0, &mut b) > 0 {
                for m in b.drain() {
                    let seq = m.frame.tag().map(|t| t.seq).unwrap_or(u64::MAX);
                    self.got.push((seq, m.rx_ts_ps.expect("stamped")));
                }
            }
        }
    }

    fn clock() -> NodeClock {
        NodeClock::ideal(1_000_000_000)
    }

    const PROP: u64 = 5_000 * NS; // 5 µs inter-domain propagation

    fn build_pinger(sim: &mut Sim, link: u32) -> NodeId {
        let s = sim.add_node("pinger", Pinger::new(20, 1_000), clock(), Jitter::None);
        let sp = sim.add_port(s, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        sim.connect_remote_out(s, sp, link, PROP);
        s
    }

    fn build_collector(sim: &mut Sim, link: u32) -> NodeId {
        let k = sim.add_node("collector", Collector { got: Vec::new() }, clock(), Jitter::None);
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        sim.connect_remote_in(link, Endpoint::NodePort(k, kp));
        k
    }

    /// The serial reference: both domains in one sim, the remote link
    /// short-circuiting locally.
    fn serial_run() -> (Vec<(u64, u64)>, SimStats) {
        let mut sim = Sim::new(SimConfig::default());
        let s = build_pinger(&mut sim, 7);
        let k = build_collector(&mut sim, 7);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Collector, _>(k, |a| a.got.clone());
        (got, sim.sim_stats())
    }

    fn sharded_run(shards: usize) -> (Vec<(u64, u64)>, SimStats, SyncStats) {
        // Domain 0 (pinger) and domain 1 (collector) assigned round-robin.
        let parts = partition_round_robin(2, shards);
        let builders: Vec<SimBuilder> = parts
            .iter()
            .map(|doms| {
                let doms = doms.clone();
                Box::new(move |sim: &mut Sim| {
                    for d in doms {
                        match d {
                            0 => {
                                let s = build_pinger(sim, 7);
                                sim.wake_app(s, 0);
                            }
                            1 => {
                                build_collector(sim, 7);
                            }
                            _ => unreachable!(),
                        }
                    }
                }) as SimBuilder
            })
            .collect();
        let mut fleet = ShardedSim::new(SimConfig::default(), PROP, builders);
        fleet.run_to_idle();
        // The collector's shard is where domain 1 landed.
        let home = parts.iter().position(|p| p.contains(&1)).expect("domain 1");
        // Node index within the shard: domain 1 is built after domain 0
        // when co-located, so the collector is the last node added.
        let k = if parts[home].len() == 2 { 1 } else { 0 };
        let got = fleet.with_sim(home, move |sim| {
            sim.with_app::<Collector, _>(k, |a| a.got.clone())
        });
        let stats = fleet.sim_stats();
        (got, stats, fleet.sync_stats())
    }

    #[test]
    fn sharded_capture_is_byte_identical_to_serial() {
        let (serial, serial_stats) = serial_run();
        assert_eq!(serial.len(), 20, "all packets arrive");
        for shards in 1..=3 {
            let (sharded, stats, sync) = sharded_run(shards);
            assert_eq!(sharded, serial, "capture diverged at {shards} shards");
            // Every summing counter matches the serial engine exactly.
            assert_eq!(stats.events_processed, serial_stats.events_processed);
            assert_eq!(stats.coalesced_events, serial_stats.coalesced_events);
            assert_eq!(stats.coalesced_packets, serial_stats.coalesced_packets);
            assert_eq!(stats.wire_events_elided, serial_stats.wire_events_elided);
            assert_eq!(stats.remote_bursts, serial_stats.remote_bursts);
            assert_eq!(stats.remote_packets, serial_stats.remote_packets);
            if shards >= 2 {
                assert!(sync.windows > 0, "cross-shard run uses barriers");
                assert_eq!(sync.remote_packets, 20, "every packet crossed shards");
            }
        }
    }

    #[test]
    fn sharded_runs_repeat_bit_identically() {
        let (a, _, _) = sharded_run(2);
        let (b, _, _) = sharded_run(2);
        assert_eq!(a, b);
    }

    #[test]
    fn round_robin_partition_covers_all_domains() {
        let parts = partition_round_robin(5, 2);
        assert_eq!(parts, vec![vec![0, 2, 4], vec![1, 3]]);
        let parts = partition_round_robin(2, 4);
        assert_eq!(parts, vec![vec![0], vec![1], vec![], vec![]]);
    }

    #[test]
    fn merge_sums_counters_and_maxes_peak() {
        let a = SimStats {
            events_processed: 10,
            queue_depth_peak: 4,
            coalesced_events: 2,
            coalesced_packets: 8,
            wire_events_elided: 1,
            remote_bursts: 3,
            remote_packets: 9,
        };
        let b = SimStats {
            events_processed: 5,
            queue_depth_peak: 7,
            coalesced_events: 1,
            coalesced_packets: 2,
            wire_events_elided: 0,
            remote_bursts: 1,
            remote_packets: 4,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.events_processed, 15);
        assert_eq!(m.queue_depth_peak, 7);
        assert_eq!(m.coalesced_events, 3);
        assert_eq!(m.coalesced_packets, 10);
        assert_eq!(m.wire_events_elided, 1);
        assert_eq!(m.remote_bursts, 4);
        assert_eq!(m.remote_packets, 13);
    }
}
