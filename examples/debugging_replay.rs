//! Replay-based debugging, the paper's §1 motivation: "The ability to
//! consistently replay traffic is thus ideal both for scientific
//! reproducibility and for debugging ... a foundation for more
//! interactive debugging primitives, such as breakpointing and
//! backtracing."
//!
//! Scenario: a flaky downstream component crashes on one specific packet.
//! We (1) record the traffic in-situ with a rolling stand-by window,
//! (2) snapshot it after the crash, then (3) use the replay debugger to
//! bisect — breakpoint, backtrace, seek, re-run — until the culprit
//! packet is isolated.
//!
//! ```text
//! cargo run --example debugging_replay
//! ```

use choir::dpdk::{Burst, Dataplane, Mempool, PortId, PortStats};
use choir::packet::{ChoirTag, FrameBuilder};
use choir::replay::debugger::{Breakpoint, ReplayDebugger, StopReason};
use choir::replay::recording::RollingRecorder;

/// The buggy downstream: crashes when it sees sequence 7777 preceded too
/// closely by 7776 (a timing-sensitive bug, the kind the paper wants
/// reproduced deterministically).
struct FlakyConsumer {
    last_seq: Option<u64>,
    crashed_on: Option<u64>,
    processed: u64,
}

impl FlakyConsumer {
    fn consume(&mut self, seq: u64) {
        self.processed += 1;
        if self.crashed_on.is_none() && seq == 7_777 && self.last_seq == Some(7_776) {
            self.crashed_on = Some(seq);
        }
        self.last_seq = Some(seq);
    }
}

/// A dataplane whose tx port feeds the flaky consumer directly.
struct ConsumerPlane {
    pool: Mempool,
    consumer: FlakyConsumer,
}

impl Dataplane for ConsumerPlane {
    fn num_ports(&self) -> usize {
        1
    }
    fn mempool(&self) -> &Mempool {
        &self.pool
    }
    fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
        out.clear();
        0
    }
    fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
        let n = burst.len();
        for m in burst.drain() {
            self.consumer.consume(m.frame.tag().unwrap().seq);
        }
        n
    }
    fn tsc(&self) -> u64 {
        0
    }
    fn tsc_hz(&self) -> u64 {
        1_000_000_000
    }
    fn wall_ns(&self) -> u64 {
        0
    }
    fn request_wake_at_tsc(&mut self, _t: u64) {}
    fn stats(&self, _p: PortId) -> PortStats {
        PortStats::default()
    }
}

fn main() {
    println!("replay debugging demo: isolate the packet that crashes a consumer\n");
    let pool = Mempool::new("debug", 1 << 16);
    let builder = FrameBuilder::new(256, 1, 2);

    // 1. In-situ stand-by recording: a rolling window holds the last 4096
    //    packets while production traffic flows (paper §4 future work).
    let mut roller = RollingRecorder::new(4_096);
    for burst_start in (0..10_000u64).step_by(8) {
        let pkts: Vec<_> = (burst_start..burst_start + 8)
            .map(|seq| {
                pool.alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, seq)))
                    .unwrap()
            })
            .collect();
        roller.push_burst(burst_start * 285, pkts.iter());
    }
    println!(
        "rolling window holds the last {} packets ({} evicted while standing by)",
        roller.packets(),
        roller.evicted()
    );

    // ...the consumer crashed somewhere in that window. Snapshot it.
    let recording = roller.snapshot();

    // 2. First pass: replay the whole window into the consumer to confirm
    //    the crash reproduces deterministically.
    let mut dp = ConsumerPlane {
        pool: pool.clone(),
        consumer: FlakyConsumer {
            last_seq: None,
            crashed_on: None,
            processed: 0,
        },
    };
    let mut dbg = ReplayDebugger::new(recording, 0);
    dbg.run(&mut dp);
    let culprit = dp.consumer.crashed_on.expect("crash reproduces");
    println!("full replay reproduces the crash at seq {culprit}\n");

    // 3. Second pass: breakpoint just before the suspect, inspect the
    //    backtrace, single-step over the boundary.
    let mut dp = ConsumerPlane {
        pool,
        consumer: FlakyConsumer {
            last_seq: None,
            crashed_on: None,
            processed: 0,
        },
    };
    dbg.seek(0);
    dbg.add_breakpoint(Breakpoint::Seq(culprit));
    match dbg.run(&mut dp) {
        StopReason::Breakpoint(i) => println!("paused at breakpoint {i} (before seq {culprit})"),
        StopReason::EndOfRecording => unreachable!("breakpoint must hit"),
    }
    assert!(dp.consumer.crashed_on.is_none(), "not crashed yet: paused before");

    println!("backtrace (last 3 bursts on the wire before the pause):");
    for rb in dbg.backtrace(3) {
        let seqs: Vec<u64> = rb.pkts.iter().map(|m| m.frame.tag().unwrap().seq).collect();
        println!("  tsc {:>8}: {:?}", rb.tsc, seqs);
    }

    // Step over the suspect burst: the crash fires exactly now.
    dbg.clear_breakpoints();
    dbg.step(&mut dp);
    println!(
        "\nsingle-stepped the suspect burst -> consumer crashed on {:?}",
        dp.consumer.crashed_on
    );
    assert_eq!(dp.consumer.crashed_on, Some(culprit));

    // 4. Counter-experiment: seek past the predecessor burst and replay
    //    from there — without 7776 immediately before it, 7777 is harmless.
    let mut dp2 = ConsumerPlane {
        pool: dp.pool.clone(),
        consumer: FlakyConsumer {
            last_seq: None,
            crashed_on: None,
            processed: 0,
        },
    };
    let after_suspect = dbg.position(); // cursor sits just past the suspect burst
    dbg.seek(after_suspect);
    dbg.run(&mut dp2);
    println!(
        "replaying only the suffix after the suspect burst: crash = {:?} ({} packets processed)",
        dp2.consumer.crashed_on, dp2.consumer.processed
    );
    println!("\nconclusion: the bug needs seq 7776 immediately before 7777 —");
    println!("a deterministic, replayable diagnosis instead of a heisenbug.");
}
