//! Derive backend for the vendored `serde` stand-in.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls that convert
//! through the `serde::Content` tree. Because the build environment has no
//! crates.io access, this macro parses the item shape straight from the
//! `proc_macro::TokenStream` instead of using `syn`/`quote`. Supported
//! shapes are the ones the workspace actually derives on: non-generic
//! structs (named, tuple, unit) and enums with unit / tuple / struct
//! variants. The only `#[serde(...)]` attribute honoured is
//! `#[serde(default)]` on a named struct field (absent fields fall back to
//! `Default::default()` on deserialization); other serde attributes are
//! ignored, as before. Anything else produces a `compile_error!` naming
//! the unsupported construct.
//!
//! Encoding matches serde's externally tagged defaults: structs → maps,
//! newtype structs → the inner value, tuple structs → sequences, enum
//! variants → `"Name"` / `{"Name": value}` / `{"Name": [..]}` /
//! `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: absent on the wire → `Default::default()`.
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    body: Body,
}

/// Derive `serde::Serialize` (conversion to `serde::Content`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (conversion from `serde::Content`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive generated invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// --- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("expected a name after `{kw}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            _ => return Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected `{{ .. }}` after `enum {name}`")),
        },
        other => {
            return Err(format!(
                "vendored serde_derive cannot derive for `{other}` items"
            ))
        }
    };
    Ok(Item { name, body })
}

/// Skip leading `#[attr]` attributes (incl. doc comments) and a `pub` /
/// `pub(..)` visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advance past one type (or expression) until a top-level `,`, tracking
/// `<`/`>` nesting so commas inside generics don't split fields. The comma
/// itself is consumed. `->` is tolerated (its `>` is not a closer).
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

/// True when an attribute's bracket content is `serde(... default ...)`.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream().into_iter().any(
                |t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "default"),
            )
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        // Consume attributes and visibility, noting `#[serde(default)]`.
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Bracket {
                            default |= attr_is_serde_default(g.stream());
                            i += 1;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_to_top_level_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_to_top_level_comma(&tokens, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

// --- code generation ---------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Body::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Content::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(::std::vec![\
                         (::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_content(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        let binders: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::Content::Map(::std::vec![{}]))]),",
                            binders.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// One `name: value,` initializer for a named field being deserialized
/// from `map`; `#[serde(default)]` fields tolerate absence.
fn named_field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::field_opt(map, {name:?}) {{ \
             ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, \
             ::std::option::Option::None => ::std::default::Default::default() }},"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_content(::serde::field(map, {name:?})?)?,"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Unit) => format!(
            "match c {{ ::serde::Content::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err(::serde::DeError::custom(\
             ::std::format!(\"expected null for unit struct {name}, got {{}}\", other.kind()))) }}"
        ),
        Body::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))"
        ),
        Body::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = c.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 ::std::format!(\"expected sequence for {name}, got {{}}\", c.kind())))?;\n\
                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(::std::format!(\
                 \"expected {n} elements for {name}, got {{}}\", seq.len()))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(named_field_init).collect();
            format!(
                "let map = c.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 ::std::format!(\"expected map for struct {name}, got {{}}\", c.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_content(value)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let seq = value.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected sequence for {name}::{v}, got {{}}\", \
                             value.kind())))?;\n\
                             if seq.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(::std::format!(\
                             \"expected {n} elements for {name}::{v}, got {{}}\", seq.len()))); }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n}}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs.iter().map(named_field_init).collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let map = value.as_map().ok_or_else(|| ::serde::DeError::custom(\
                             ::std::format!(\"expected map for {name}::{v}, got {{}}\", \
                             value.kind())))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n}}",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (tag, value) = &m[0];\n\
                 let _ = value;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n\
                 }}"
            , unit_arms.join("\n"), data_arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
