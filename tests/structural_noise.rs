//! The structural version of §7.1: instead of the calibrated statistical
//! co-tenant model, run an actual iperf-like noise application on a VF of
//! the *same physical NIC* as the replayer, and watch consistency degrade
//! through pure wire contention.

use choir::capture::{Recorder, RecorderConfig};
use choir::core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
use choir::dpdk::ControlMsg;
use choir::metrics::report::analyze;
use choir::netsim::clock::NodeClock;
use choir::netsim::nic::{NicRxModel, NicTxModel};
use choir::netsim::rng::Jitter;
use choir::netsim::switchdev::{Switch, SwitchProfile};
use choir::netsim::time::{MS, NS, US};
use choir::netsim::{Sim, SimConfig};
use choir::pktgen::{Generator, GeneratorConfig, Pattern};
use choir::packet::FrameSpec;

/// Build the pipeline; when `noisy`, an on-off 50 Gbps co-tenant shares
/// the replayer's physical NIC.
fn run_pipeline(noisy: bool, packets: u64) -> choir::metrics::ConsistencyMetrics {
    let link = 100_000_000_000u64;
    let mut sim = Sim::new(SimConfig {
        master_seed: 0x0005_015E,
        trial: 0,
        pool_slots: packets as usize * 4 + 65_536,
        ..SimConfig::default()
    });
    let clock = || NodeClock::ideal(2_500_000_000);
    let wake = Jitter::Exp { mean: 100.0 * NS as f64 };

    let gen = sim.add_node(
        "gen",
        Generator::new(GeneratorConfig::cbr(40_000_000_000, packets)),
        clock(),
        wake.clone(),
    );
    sim.add_port(gen, NicTxModel::ideal(link), NicRxModel::ideal());

    let mb = sim.add_node(
        "mb",
        ChoirMiddlebox::new(MiddleboxConfig {
            in_band_control: false,
            ..MiddleboxConfig::default()
        }),
        clock(),
        wake.clone(),
    );
    sim.add_port(
        mb,
        NicTxModel::ideal(link),
        NicRxModel {
            deliver_latency: Jitter::Const(4 * US as i64),
            ..NicRxModel::ideal()
        },
    );
    // The replayer's tx NIC is a VF on a shared physical NIC.
    let mb_tx = sim.add_port(mb, NicTxModel::ideal(link), NicRxModel::ideal());
    let phys = sim.add_phys_nic();
    sim.join_phys_nic(mb, mb_tx, phys);

    let rec = sim.add_node("rec", Recorder::new(RecorderConfig {
        tagged_only: true,
        ..RecorderConfig::default()
    }), clock(), Jitter::None);
    sim.add_port(rec, NicTxModel::ideal(link), NicRxModel::ideal());

    // A co-tenant streaming bursty traffic out of another VF of the same
    // physical NIC, toward its own sink. Sized to stay active through
    // the recording AND both replays.
    let noise_count = if noisy { 60_000 } else { 0 };
    let noise = sim.add_node(
        "noise",
        Generator::new(
            GeneratorConfig::cbr(50_000_000_000, noise_count).with_pattern(Pattern::OnOff {
                spec: FrameSpec::new(1500, 50_000_000_000),
                burst: 32,
                line_rate_bps: link,
            }),
        ),
        clock(),
        Jitter::None,
    );
    let noise_tx = sim.add_port(noise, NicTxModel::ideal(link), NicRxModel::ideal());
    sim.join_phys_nic(noise, noise_tx, phys);
    let noise_sink = sim.add_node("noise-sink", Recorder::new(RecorderConfig::default()), clock(), Jitter::None);
    sim.add_port(noise_sink, NicTxModel::ideal(link), NicRxModel::ideal());

    let sw = sim.add_switch(Switch::new(6, SwitchProfile::cisco5700(link)), "sw");
    sim.connect_node_switch(gen, 0, sw, 0, 5 * NS);
    sim.connect_node_switch(mb, 0, sw, 1, 5 * NS);
    sim.switch_map(sw, 0, 1);
    sim.connect_node_switch(mb, 1, sw, 2, 5 * NS);
    sim.connect_node_switch(rec, 0, sw, 3, 5 * NS);
    sim.switch_map(sw, 2, 3);
    sim.connect_node_switch(noise, 0, sw, 4, 5 * NS);
    sim.connect_node_switch(noise_sink, 0, sw, 5, 5 * NS);
    sim.switch_map(sw, 4, 5);

    // Record, then two replays with the co-tenant live throughout.
    sim.send_control(mb, ControlMsg::StartRecord, MS);
    sim.wake_app(gen, 2 * MS);
    if noisy {
        sim.wake_app(noise, MS);
    }
    let duration = packets * 285_000;
    let stop = 2 * MS + duration + 2 * MS;
    sim.send_control(mb, ControlMsg::StopRecord, stop);
    sim.run_until(stop + MS);
    sim.with_app::<Recorder, _>(rec, |r| {
        r.take_trials();
    });

    for _ in 0..2 {
        let start = (sim.now_ps() + 3 * MS) / 1_000;
        sim.send_control(mb, ControlMsg::ScheduleReplay { start_wall_ns: start }, sim.now_ps());
        sim.run_until(sim.now_ps() + 3 * MS + duration + 3 * MS);
        sim.with_app::<Recorder, _>(rec, |r| r.cut_trial());
    }

    let trials: Vec<_> = sim
        .with_app::<Recorder, _>(rec, |r| r.take_trials())
        .into_iter()
        .map(|t| t.rezeroed())
        .collect();
    assert_eq!(trials.len(), 2, "two replay captures expected");
    assert_eq!(trials[0].len() as u64, packets, "no loss through contention");
    analyze("B", &trials[0], &trials[1]).metrics
}

#[test]
fn a_real_co_tenant_on_the_shared_nic_degrades_consistency() {
    let clean = run_pipeline(false, 3_000);
    let noisy = run_pipeline(true, 3_000);
    // The §7.1 effect, structurally: wire contention from a live noise
    // app inflates IAT variation and lowers kappa.
    assert!(
        noisy.i > 2.0 * clean.i.max(1e-4),
        "noisy I {} vs clean I {}",
        noisy.i,
        clean.i
    );
    assert!(
        noisy.kappa < clean.kappa,
        "noisy kappa {} vs clean {}",
        noisy.kappa,
        clean.kappa
    );
}
