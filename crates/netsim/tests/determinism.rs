//! Simulator-level determinism and conservation properties: the paper's
//! definition of a consistent network ("running the same trial multiple
//! times produces identical results") applies to the simulator itself
//! when seeds are fixed.

use choir_dpdk::{App, Burst, Dataplane};
use choir_netsim::clock::{NodeClock, TimestampModel};
use choir_netsim::nic::{BatchDist, NicRxModel, NicTxModel};
use choir_netsim::rng::Jitter;
use choir_netsim::switchdev::{Switch, SwitchProfile};
use choir_netsim::time::NS;
use choir_netsim::{Sim, SimConfig};
use choir_packet::{ChoirTag, FrameBuilder};
use proptest::prelude::*;

/// Sends `count` packets at fixed spacing.
struct Sender {
    builder: FrameBuilder,
    count: u64,
    sent: u64,
    start: Option<u64>,
    gap: u64,
}

impl App for Sender {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        while self.sent < self.count {
            let now = dp.tsc();
            let start = *self.start.get_or_insert(now);
            let due = start + self.sent * self.gap;
            if now < due {
                dp.request_wake_at_tsc(due);
                return;
            }
            let m = dp
                .mempool()
                .alloc(self.builder.build_tagged_snap(ChoirTag::new(1, 0, self.sent)))
                .unwrap();
            let mut b = Burst::new();
            b.push(m).unwrap();
            dp.tx_burst(0, &mut b);
            self.sent += 1;
        }
    }
}

/// Records (seq, rx timestamp).
struct Sink {
    got: Vec<(u64, u64)>,
    buf: Burst,
}

impl App for Sink {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut b = std::mem::take(&mut self.buf);
            let n = dp.rx_burst(0, &mut b);
            for m in b.drain() {
                self.got
                    .push((m.frame.tag().unwrap().seq, m.rx_ts_ps.unwrap()));
            }
            self.buf = b;
            if n == 0 {
                break;
            }
        }
    }
}

fn run_topology(seed: u64, trial: u64, jittery: bool, count: u64) -> Vec<(u64, u64)> {
    let mut sim = Sim::new(SimConfig {
        master_seed: seed,
        trial,
        pool_slots: count as usize * 2 + 1024,
        ..SimConfig::default()
    });
    let jitter = if jittery {
        Jitter::Exp { mean: 500.0 }
    } else {
        Jitter::None
    };
    let s = sim.add_node(
        "s",
        Sender {
            builder: FrameBuilder::new(1400, 1, 2),
            count,
            sent: 0,
            start: None,
            gap: 285,
        },
        NodeClock::ideal(1_000_000_000),
        jitter.clone(),
    );
    let k = sim.add_node(
        "k",
        Sink {
            got: Vec::new(),
            buf: Burst::new(),
        },
        NodeClock::ideal(1_000_000_000),
        Jitter::None,
    );
    let tx = NicTxModel {
        doorbell: if jittery {
            Jitter::Normal {
                mean: 300_000.0,
                sigma: 20_000.0,
            }
        } else {
            Jitter::None
        },
        batch: BatchDist::Geometric { p: 0.5, max: 8 },
        ..NicTxModel::ideal(100_000_000_000)
    };
    let rx = NicRxModel {
        timestamp: if jittery {
            TimestampModel::HwClockConverted {
                noise: Jitter::Normal {
                    mean: 0.0,
                    sigma: 8_000.0,
                },
                wander_amplitude_ps: 25 * NS as i64,
                wander_period_ps: 250_000_000,
            }
        } else {
            TimestampModel::exact()
        },
        ..NicRxModel::ideal()
    };
    let sp = sim.add_port(s, tx, NicRxModel::ideal());
    let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), rx);
    // The Cisco profile carries inherent pipeline jitter; the noise-free
    // case uses the constant-latency Tofino profile.
    let profile = if jittery {
        SwitchProfile::cisco5700(100_000_000_000)
    } else {
        SwitchProfile::tofino2(100_000_000_000)
    };
    let sw = sim.add_switch(Switch::new(2, profile), "sw");
    sim.connect_node_switch(s, sp, sw, 0, 5 * NS);
    sim.connect_node_switch(k, kp, sw, 1, 5 * NS);
    sim.switch_map(sw, 0, 1);
    sim.wake_app(s, 1_000_000);
    sim.run_to_idle();
    sim.with_app::<Sink, _>(k, |a| a.got.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_is_bit_identical(seed in any::<u64>(), count in 10u64..300) {
        let a = run_topology(seed, 0, true, count);
        let b = run_topology(seed, 0, true, count);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn packets_are_conserved_and_ordered(seed in any::<u64>(), count in 10u64..300) {
        let got = run_topology(seed, 0, true, count);
        prop_assert_eq!(got.len() as u64, count, "no loss on a clean path");
        // Sequence numbers arrive in order on a single path.
        for w in got.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1, "timestamps monotone");
        }
    }

    #[test]
    fn different_trials_differ_when_jittery(seed in any::<u64>()) {
        let a = run_topology(seed, 0, true, 200);
        let b = run_topology(seed, 1, true, 200);
        // Same packets, different timing draws.
        let sa: Vec<u64> = a.iter().map(|&(s, _)| s).collect();
        let sb: Vec<u64> = b.iter().map(|&(s, _)| s).collect();
        prop_assert_eq!(sa, sb);
        let ta: Vec<u64> = a.iter().map(|&(_, t)| t).collect();
        let tb: Vec<u64> = b.iter().map(|&(_, t)| t).collect();
        prop_assert_ne!(ta, tb);
    }

    #[test]
    fn noise_free_topology_is_exactly_periodic(count in 3u64..200) {
        let got = run_topology(7, 0, false, count);
        prop_assert_eq!(got.len() as u64, count);
        let gaps: Vec<u64> = got.windows(2).map(|w| w[1].1 - w[0].1).collect();
        // With every jitter source off, arrival spacing is exactly the
        // send spacing (ns-quantized timestamps of a 285ns cadence).
        for g in gaps {
            prop_assert!((284_000..=286_000).contains(&g), "gap {g}");
        }
    }
}
