//! # choir-core
//!
//! The paper's two contributions, as a library:
//!
//! 1. **The consistency metric suite** ([`metrics`]): the four normalized
//!    variation metrics between two trials — uniqueness `U` (Eq. 1),
//!    ordering `O` (Eq. 2), latency `L` (Eq. 3) and inter-arrival time `I`
//!    (Eq. 4) — and the compound score `κ = 1 − |⟨U,O,L,I⟩|/2` (Eq. 5),
//!    plus the weighted / non-linearly-scaled variants the paper lists as
//!    future work (§8.2, §10) and the figure-style delta histograms.
//!
//! 2. **The Choir replay application** ([`replay`]): a transparent
//!    middlebox that forwards traffic at line rate, records transmitted
//!    bursts in RAM without copying, and replays them by releasing each
//!    burst when the TSC passes `recorded_tsc + delta` (§4). The
//!    application is written against `choir_dpdk::Dataplane`, so the same
//!    code runs in the deterministic simulator and on the real-time
//!    backend.
//!
//! ## Quick example
//!
//! ```
//! use choir_core::metrics::{Trial, compare};
//!
//! let mut a = Trial::new();
//! let mut b = Trial::new();
//! for i in 0..10u64 {
//!     a.push_tagged(0, 0, i, i * 1_000_000); // 1 us spacing, in ps
//!     b.push_tagged(0, 0, i, i * 1_000_000 + 500); // 0.5 ns late each
//! }
//! let m = compare(&a, &b);
//! assert_eq!(m.u, 0.0); // same packets
//! assert_eq!(m.o, 0.0); // same order
//! assert!(m.kappa > 0.99); // nearly perfectly consistent
//! ```

pub mod metrics;
pub mod replay;

/// The in-tree observability layer (span timers, counters/gauges, event
/// ring): re-exported from `choir-obs` so metric consumers and the
/// simulator instrument against one registry. See `DESIGN.md` §11.
pub use choir_obs as obs;

pub use metrics::{compare, ConsistencyMetrics, Trial};
pub use obs::ObsSnapshot;
pub use replay::{ChoirMiddlebox, MiddleboxConfig, Recording};
