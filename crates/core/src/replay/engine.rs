//! Real-time replay driver — the busy-spin loop behind the paper's
//! throughput claim ("Choir … can sustain peak speeds of 100 Gbps
//! (8.9 Mpps)", §10).
//!
//! Unlike the simulator (which *schedules* wake-ups), this driver runs the
//! paper's actual loop shape on a real CPU:
//!
//! ```text
//! for each recorded burst:
//!     while tsc() < burst.tsc + delta: spin
//!     tx_burst(port, burst)
//! ```
//!
//! The loop allocates nothing: bursts are rebuilt from shared mbuf handles
//! and the spin is a bare TSC read. `choir-bench` drives it over the
//! loopback backend to measure sustained Mpps; the quickstart example uses
//! it end-to-end.

use choir_dpdk::{Dataplane, PortId};

use crate::obs;

use super::degrade::{DegradationReport, ReplayError, ReplayErrorKind};
use super::recording::Recording;
use super::scheduler::ReplayStats;

/// Outcome of a real-time replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineReport {
    /// Transmit counters.
    pub stats: ReplayStats,
    /// Graceful-degradation counters (all zero on a healthy backend).
    pub degradation: DegradationReport,
    /// Wall time the replay took, in nanoseconds.
    pub elapsed_ns: u64,
    /// Achieved packet rate over the active replay window.
    pub pps: f64,
    /// Achieved wire-equivalent bit rate (includes Ethernet overhead), in
    /// bits per second.
    pub wire_bps: f64,
}

/// Supervision limits for [`run_replay_supervised`]: how hard to push a
/// misbehaving NIC before degrading, and how long the whole replay may
/// take before aborting with a partial result.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Divides the recorded inter-burst gaps (1 = as recorded;
    /// `u64::MAX` effectively back-to-back).
    pub speedup: u64,
    /// Transmit retries allowed per burst before it is abandoned (or the
    /// replay aborts, per [`EngineConfig::abandon_bursts`]).
    pub max_retries_per_burst: u32,
    /// First retry backoff, in cycles; doubled per retry.
    pub backoff_start_cycles: u64,
    /// Backoff ceiling, in cycles.
    pub backoff_max_cycles: u64,
    /// Wall-clock budget for the whole replay, in nanoseconds. `None`
    /// removes the deadline (and its per-spin check from the hot loop).
    pub deadline_ns: Option<u64>,
    /// On retry exhaustion: `true` drops the burst's remaining packets,
    /// counts them, and continues (graceful degradation); `false` aborts
    /// the replay with [`ReplayErrorKind::TxBudgetExhausted`].
    pub abandon_bursts: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            speedup: 1,
            max_retries_per_burst: 256,
            backoff_start_cycles: 64,
            backoff_max_cycles: 1 << 16,
            deadline_ns: None,
            abandon_bursts: true,
        }
    }
}

impl EngineConfig {
    /// The unsupervised configuration [`run_replay_spin`] uses: retry
    /// forever, no deadline — the paper's original loop.
    pub fn unbounded(speedup: u64) -> Self {
        EngineConfig {
            speedup,
            max_retries_per_burst: u32::MAX,
            deadline_ns: None,
            ..EngineConfig::default()
        }
    }

    /// A supervised configuration with a wall-clock budget.
    pub fn with_deadline(deadline_ns: u64) -> Self {
        EngineConfig {
            deadline_ns: Some(deadline_ns),
            ..EngineConfig::default()
        }
    }
}

/// Replay `recording` on `port`, spinning on the TSC for each burst's
/// release time. `speedup` divides the recorded inter-burst gaps (1 = as
/// recorded; `u64::MAX` effectively back-to-back), letting benches probe
/// the loop's ceiling beyond the recorded rate.
///
/// Returns once every burst is transmitted. Packets the NIC rejects are
/// retried in an unbounded spin (order preservation), so `packets_sent`
/// always equals the recording's packet count on return — a wedged NIC
/// hangs this loop forever. Use [`run_replay_supervised`] when the
/// backend is not trusted to drain.
pub fn run_replay_spin<D: Dataplane>(
    recording: &Recording,
    dp: &mut D,
    port: PortId,
    speedup: u64,
) -> EngineReport {
    run_replay_supervised(recording, dp, port, &EngineConfig::unbounded(speedup))
        .expect("unbounded replay cannot abort")
}

/// [`run_replay_spin`] with bounded patience: per-burst transmit retries
/// with exponential backoff, and an optional wall-clock deadline. When a
/// burst exhausts its retry budget it is either abandoned (counted in
/// [`DegradationReport`], replay continues) or the replay aborts, per
/// [`EngineConfig::abandon_bursts`]. A deadline abort returns a typed
/// [`ReplayError`] carrying the partial [`ReplayStats`] accumulated so
/// far — under a persistently rejecting NIC this function still
/// terminates within the deadline (plus one backoff).
pub fn run_replay_supervised<D: Dataplane>(
    recording: &Recording,
    dp: &mut D,
    port: PortId,
    cfg: &EngineConfig,
) -> Result<EngineReport, Box<ReplayError>> {
    assert!(cfg.speedup >= 1, "speedup must be >= 1");
    // The span reads the host monotonic clock only — it cannot perturb
    // `dp`'s TSC/wall time (simulated or real) or any RNG draw.
    let _span = obs::span("replay.supervised");
    let mut stats = ReplayStats::default();
    let mut degradation = DegradationReport::default();
    let first = match recording.first_tsc() {
        Some(f) => f,
        None => {
            return Ok(EngineReport {
                stats,
                degradation,
                elapsed_ns: 0,
                pps: 0.0,
                wire_bps: 0.0,
            })
        }
    };

    let start_tsc = dp.tsc();
    let start_wall = dp.wall_ns();
    let deadline_wall = cfg.deadline_ns.map(|d| start_wall.saturating_add(d));
    let mut wire_bytes: u64 = 0;
    // One burst buffer reused across the whole replay: the hot loop
    // allocates nothing.
    let mut burst = choir_dpdk::Burst::new();

    let abort = |kind: ReplayErrorKind,
                 stats: ReplayStats,
                 degradation: DegradationReport,
                 burst_index: usize,
                 dp: &D| {
        Box::new(ReplayError {
            kind,
            stats,
            degradation,
            elapsed_ns: dp.wall_ns().saturating_sub(start_wall),
            aborted_at_burst: burst_index,
        })
    };

    for (bi, rb) in recording.bursts().iter().enumerate() {
        let release = start_tsc + (rb.tsc - first) / cfg.speedup;
        // The paper's spin: loop over a TSC read until the burst is due.
        // Without a deadline this is a bare TSC read (the hot path the
        // throughput claim measures); with one, each pass also checks
        // the wall clock.
        match deadline_wall {
            None => {
                while dp.tsc() < release {
                    std::hint::spin_loop();
                }
            }
            Some(dl) => {
                while dp.tsc() < release {
                    if dp.wall_ns() >= dl {
                        return Err(abort(
                            ReplayErrorKind::DeadlineExceeded {
                                deadline_ns: cfg.deadline_ns.unwrap_or(0),
                            },
                            stats,
                            degradation,
                            bi,
                            dp,
                        ));
                    }
                    std::hint::spin_loop();
                }
            }
        }
        // Lateness is how far past the release time the spin loop woke —
        // measured before transmission so tx time isn't miscounted.
        let late = dp.tsc().saturating_sub(release);
        if late > 0 {
            stats.late_bursts += 1;
            stats.max_lateness_cycles = stats.max_lateness_cycles.max(late);
        }
        burst.clear();
        for m in &rb.pkts {
            burst.push(m.clone()).expect("recorded bursts fit MAX_BURST");
        }
        let total = burst.len() as u64;
        let mut sent = 0u64;
        let mut retries = 0u32;
        let mut backoff = cfg.backoff_start_cycles.max(1);
        loop {
            let accepted = dp.tx_burst(port, &mut burst) as u64;
            if accepted == 0 && !burst.is_empty() {
                degradation.tx_rejections += 1;
            }
            sent += accepted;
            stats.packets_sent += accepted;
            if burst.is_empty() {
                break;
            }
            if retries >= cfg.max_retries_per_burst {
                if cfg.abandon_bursts {
                    let left = burst.len() as u64;
                    degradation.bursts_abandoned += 1;
                    degradation.packets_abandoned += left;
                    obs::event("replay.burst_abandoned", bi as u64, left);
                    burst.clear();
                    break;
                }
                return Err(abort(
                    ReplayErrorKind::TxBudgetExhausted {
                        burst_index: bi,
                        retries,
                    },
                    stats,
                    degradation,
                    bi,
                    dp,
                ));
            }
            retries += 1;
            stats.tx_retries += 1;
            degradation.tx_retries += 1;
            obs::event("replay.retry", bi as u64, retries as u64);
            // Exponential backoff: give a backed-up ring time to drain
            // instead of hammering the doorbell.
            degradation.backoffs += 1;
            degradation.backoff_cycles += backoff;
            let resume = dp.tsc().saturating_add(backoff);
            while dp.tsc() < resume {
                std::hint::spin_loop();
            }
            backoff = backoff.saturating_mul(2).min(cfg.backoff_max_cycles.max(1));
            if let Some(dl) = deadline_wall {
                if dp.wall_ns() >= dl {
                    return Err(abort(
                        ReplayErrorKind::DeadlineExceeded {
                            deadline_ns: cfg.deadline_ns.unwrap_or(0),
                        },
                        stats,
                        degradation,
                        bi,
                        dp,
                    ));
                }
            }
        }
        if sent == total {
            stats.bursts_sent += 1;
        }
        // Bursts drain from the front, so the first `sent` packets are
        // the transmitted ones.
        for m in rb.pkts.iter().take(sent as usize) {
            wire_bytes += m.frame.wire_len() as u64;
        }
    }

    let elapsed_cycles = dp.tsc() - start_tsc;
    let elapsed_ns = dp.cycles_to_ns(elapsed_cycles).max(1);
    let secs = elapsed_ns as f64 / 1e9;
    if obs::is_enabled() {
        obs::counter_add("replay.packets_sent", stats.packets_sent);
        obs::counter_add("replay.bursts_sent", stats.bursts_sent);
        obs::counter_add("replay.late_bursts", stats.late_bursts);
        obs::counter_add("replay.tx_retries", degradation.tx_retries);
        obs::counter_add("replay.tx_rejections", degradation.tx_rejections);
        obs::counter_add("replay.backoff_cycles", degradation.backoff_cycles);
        obs::counter_add("replay.bursts_abandoned", degradation.bursts_abandoned);
        obs::counter_add("replay.packets_abandoned", degradation.packets_abandoned);
    }
    Ok(EngineReport {
        stats,
        degradation,
        elapsed_ns,
        pps: stats.packets_sent as f64 / secs,
        wire_bps: wire_bytes as f64 * 8.0 / secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::loopback::{LoopbackPort, RealClock, RealtimePlane};
    use choir_dpdk::Mempool;
    use choir_packet::Frame;
    use std::thread;

    fn recording_of(pool: &Mempool, bursts: usize, per_burst: usize, gap_cycles: u64) -> Recording {
        let mut rec = Recording::new();
        for b in 0..bursts {
            let pkts: Vec<_> = (0..per_burst)
                .map(|i| {
                    pool.alloc(Frame::truncated(
                        Bytes::from(vec![(b * per_burst + i) as u8; 60]),
                        1400,
                    ))
                    .unwrap()
                })
                .collect();
            rec.push_burst(1_000 + b as u64 * gap_cycles, pkts.iter());
        }
        rec
    }

    #[test]
    fn replays_everything_through_a_drained_sink() {
        let pool = Mempool::new("e", 1 << 14);
        let (port, mut drain) = LoopbackPort::sink(1 << 12);
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let pid = plane.add_port(port);
        let rec = recording_of(&pool, 50, 8, 10_000); // 10 us apart

        let consumer = thread::spawn(move || {
            let mut got = 0usize;
            while got < 400 {
                if drain.pop().is_some() {
                    got += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            got
        });

        let report = run_replay_spin(&rec, &mut plane, pid, 1);
        assert_eq!(report.stats.packets_sent, 400);
        assert_eq!(report.stats.bursts_sent, 50);
        assert_eq!(consumer.join().unwrap(), 400);
        assert!(report.pps > 0.0);
        assert!(report.wire_bps > 0.0);
    }

    #[test]
    fn speedup_compresses_duration() {
        let pool = Mempool::new("e", 1 << 12);
        // Two runs of the same recording; the sped-up one must be faster.
        let rec = recording_of(&pool, 40, 4, 100_000); // 100 us gaps

        let run = |speedup: u64| {
            // Ring is larger than the whole recording: no consumer needed.
            let (port, _drain) = LoopbackPort::sink(1 << 12);
            let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
            let pid = plane.add_port(port);
            run_replay_spin(&rec, &mut plane, pid, speedup)
        };
        let slow = run(1);
        let fast = run(100);
        assert!(
            fast.elapsed_ns < slow.elapsed_ns / 2,
            "fast {} vs slow {}",
            fast.elapsed_ns,
            slow.elapsed_ns
        );
    }

    #[test]
    fn empty_recording_returns_zero_report() {
        let pool = Mempool::new("e", 16);
        let (port, _drain) = LoopbackPort::sink(16);
        let mut plane = RealtimePlane::new(pool, RealClock::new());
        let pid = plane.add_port(port);
        let r = run_replay_spin(&Recording::new(), &mut plane, pid, 1);
        assert_eq!(r.stats.packets_sent, 0);
        assert_eq!(r.pps, 0.0);
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn zero_speedup_panics() {
        let pool = Mempool::new("e", 16);
        let (port, _drain) = LoopbackPort::sink(16);
        let mut plane = RealtimePlane::new(pool, RealClock::new());
        let pid = plane.add_port(port);
        run_replay_spin(&Recording::new(), &mut plane, pid, 0);
    }

    /// A wedged NIC: every transmit is rejected, forever.
    struct RejectingPlane {
        pool: Mempool,
        clock: RealClock,
        tx_calls: u64,
    }

    impl RejectingPlane {
        fn new(pool: Mempool) -> Self {
            RejectingPlane {
                pool,
                clock: RealClock::new(),
                tx_calls: 0,
            }
        }
    }

    impl Dataplane for RejectingPlane {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut choir_dpdk::Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, _burst: &mut choir_dpdk::Burst) -> usize {
            self.tx_calls += 1;
            0
        }
        fn tsc(&self) -> u64 {
            self.clock.elapsed_ns()
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.clock.elapsed_ns()
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: PortId) -> choir_dpdk::PortStats {
            choir_dpdk::PortStats::default()
        }
    }

    #[test]
    fn persistent_rejection_aborts_at_deadline_with_partial_stats() {
        let pool = Mempool::new("e", 1 << 10);
        let rec = recording_of(&pool, 4, 8, 1_000);
        let mut dp = RejectingPlane::new(pool.clone());
        let deadline_ns = 20_000_000; // 20 ms
        let cfg = EngineConfig {
            max_retries_per_burst: u32::MAX, // only the deadline can stop it
            ..EngineConfig::with_deadline(deadline_ns)
        };
        let t0 = std::time::Instant::now();
        let err = run_replay_supervised(&rec, &mut dp, 0, &cfg).unwrap_err();
        // Terminates promptly: the 20 ms budget plus scheduling slack,
        // nowhere near a hang.
        assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
        assert_eq!(
            err.kind,
            ReplayErrorKind::DeadlineExceeded { deadline_ns },
            "{err}"
        );
        assert!(err.elapsed_ns >= deadline_ns);
        assert_eq!(err.aborted_at_burst, 0, "first burst never went out");
        // Partial stats are consistent: nothing was ever accepted, every
        // tx call was a rejection, and each retry took one backoff.
        assert_eq!(err.stats.packets_sent, 0);
        assert_eq!(err.stats.bursts_sent, 0);
        assert!(err.degradation.tx_rejections > 0);
        assert_eq!(err.degradation.tx_rejections, dp.tx_calls);
        assert_eq!(err.degradation.tx_retries, err.degradation.backoffs);
        assert_eq!(err.stats.tx_retries, err.degradation.tx_retries);
        assert!(err.degradation.backoff_cycles > 0);
    }

    #[test]
    fn retry_budget_abandons_bursts_and_finishes() {
        let pool = Mempool::new("e", 1 << 10);
        let rec = recording_of(&pool, 4, 8, 1_000);
        let mut dp = RejectingPlane::new(pool.clone());
        let cfg = EngineConfig {
            max_retries_per_burst: 3,
            backoff_start_cycles: 16,
            ..EngineConfig::default()
        };
        let report = run_replay_supervised(&rec, &mut dp, 0, &cfg).unwrap();
        assert_eq!(report.stats.packets_sent, 0);
        assert_eq!(report.degradation.bursts_abandoned, 4);
        assert_eq!(report.degradation.packets_abandoned, 32);
        assert_eq!(report.degradation.tx_retries, 4 * 3);
        assert_eq!(report.wire_bps, 0.0, "no wire bytes for unsent packets");
    }

    #[test]
    fn strict_mode_errors_on_retry_exhaustion() {
        let pool = Mempool::new("e", 1 << 10);
        let rec = recording_of(&pool, 2, 4, 1_000);
        let mut dp = RejectingPlane::new(pool.clone());
        let cfg = EngineConfig {
            max_retries_per_burst: 2,
            backoff_start_cycles: 16,
            abandon_bursts: false,
            ..EngineConfig::default()
        };
        let err = run_replay_supervised(&rec, &mut dp, 0, &cfg).unwrap_err();
        assert_eq!(
            err.kind,
            ReplayErrorKind::TxBudgetExhausted {
                burst_index: 0,
                retries: 2,
            }
        );
        assert_eq!(err.aborted_at_burst, 0);
    }

    #[test]
    fn supervised_clean_run_reports_no_degradation() {
        let pool = Mempool::new("e", 1 << 12);
        let (port, _drain) = LoopbackPort::sink(1 << 12);
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let pid = plane.add_port(port);
        let rec = recording_of(&pool, 10, 4, 1_000);
        let report =
            run_replay_supervised(&rec, &mut plane, pid, &EngineConfig::with_deadline(5_000_000_000))
                .unwrap();
        assert_eq!(report.stats.packets_sent, 40);
        assert!(report.degradation.is_clean(), "{:?}", report.degradation);
    }
}
