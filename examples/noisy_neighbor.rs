//! §7.1's experiment: what does a noisy co-tenant do to replay
//! consistency on shared vs dedicated hardware?
//!
//! Runs the FABRIC shared-NIC environment with and without the iperf3-like
//! co-tenant and shows how drops appear and κ falls — while the dedicated
//! NIC barely notices.
//!
//! ```text
//! cargo run --release --example noisy_neighbor [scale]
//! ```

use choir::testbed::{EnvKind, Experiment, ExperimentConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("the noisy-neighbor effect (scale {scale})\n");

    let pairs = [
        ("shared NIC, idle site", EnvKind::FabricShared40),
        ("shared NIC, noisy co-tenant", EnvKind::FabricShared40Noisy),
        ("dedicated NIC, 80G idle", EnvKind::FabricDedicated80),
        ("dedicated NIC, 80G noisy", EnvKind::FabricDedicated80Noisy),
    ];

    for (label, kind) in pairs {
        let out = Experiment::new(ExperimentConfig {
            profile: kind.profile(),
            scale,
            seed: 0x10E5,
        })
        .run();
        let drops: usize = out.report.runs.iter().map(|r| r.missing).sum();
        println!(
            "{:<30} kappa {:.4}   I {:.4}   U {:.2e}   dropped packets across runs: {}",
            label, out.report.mean.kappa, out.report.mean.i, out.report.mean.u, drops
        );
    }

    println!("\nShared hardware under load loses packets and its kappa falls by ~0.2;");
    println!("dedicated hardware shields the data path and is nearly unchanged —");
    println!("the paper's argument for measuring your testbed before trusting it.");
}
