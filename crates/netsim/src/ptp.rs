//! A working Precision Time Protocol implementation (IEEE 1588
//! delay-request/response, two-step) running over the simulated network.
//!
//! The paper's testbeds rely on PTP for replay scheduling (§2.2: a
//! GPS-disciplined grandmaster, VMs syncing through `ptp_kvm`, "the
//! original patch claims ... sub-microsecond error"). The calibrated
//! experiment profiles *model* the resulting sync error statistically
//! (`clock::PtpModel`); this module implements the protocol itself, so the
//! error can instead *emerge* from network jitter:
//!
//! - [`PtpGrandmaster`]: emits two-step `Sync` + `Follow_Up` every
//!   interval, answers `Delay_Req` with `Delay_Resp` (software
//!   timestamping — its own poll jitter becomes sync error, exactly as on
//!   a real host without hardware stamping).
//! - [`PtpClient`]: computes the IEEE 1588 offset
//!   `((t2 − t1) − (t4 − t3)) / 2` and disciplines its node's wall clock
//!   through a proportional servo via
//!   [`choir_dpdk::Dataplane::adjust_wall_clock`].
//!
//! Messages ride Ethernet frames with the real PTP EtherType `0x88F7`.

use bytes::Bytes;
use choir_dpdk::{App, Burst, Dataplane, PortId};
use choir_packet::{EthernetHeader, Frame, MacAddr};

/// The IEEE 1588 Ethernet EtherType.
pub const PTP_ETHERTYPE: u16 = 0x88F7;

const MSG_SYNC: u8 = 0;
const MSG_FOLLOW_UP: u8 = 8;
const MSG_DELAY_REQ: u8 = 1;
const MSG_DELAY_RESP: u8 = 9;

/// A decoded PTP message: kind, sequence id, and one timestamp field
/// (whose meaning depends on the kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtpMessage {
    /// Message kind (`MSG_*`).
    pub kind: u8,
    /// Sequence id correlating Sync/Follow_Up and Delay_Req/Delay_Resp.
    pub seq: u16,
    /// Origin/receipt timestamp in nanoseconds (sender's clock domain).
    pub timestamp_ns: u64,
}

/// Serialize a PTP message into an Ethernet frame.
pub fn encode_ptp(msg: &PtpMessage, src: MacAddr, dst: MacAddr) -> Frame {
    let mut buf = vec![0u8; EthernetHeader::LEN + 11];
    EthernetHeader {
        dst,
        src,
        ethertype: PTP_ETHERTYPE,
    }
    .write(&mut buf);
    buf[14] = msg.kind;
    buf[15..17].copy_from_slice(&msg.seq.to_be_bytes());
    buf[17..25].copy_from_slice(&msg.timestamp_ns.to_be_bytes());
    Frame::new(Bytes::from(buf))
}

/// Parse a PTP frame, if it is one.
pub fn decode_ptp(frame: &Frame) -> Option<PtpMessage> {
    let eth = EthernetHeader::parse(&frame.data)?;
    if eth.ethertype != PTP_ETHERTYPE || frame.data.len() < EthernetHeader::LEN + 11 {
        return None;
    }
    let p = &frame.data[EthernetHeader::LEN..];
    Some(PtpMessage {
        kind: p[0],
        seq: u16::from_be_bytes([p[1], p[2]]),
        timestamp_ns: u64::from_be_bytes([p[3], p[4], p[5], p[6], p[7], p[8], p[9], p[10]]),
    })
}

/// The grandmaster application: two-step Sync on a fixed interval, plus
/// Delay_Resp service.
pub struct PtpGrandmaster {
    /// Port the PTP domain hangs off.
    pub port: PortId,
    /// Sync interval in nanoseconds (the FABRIC deployment uses 1 s; tests
    /// use much less).
    pub sync_interval_ns: u64,
    seq: u16,
    next_sync_tsc: Option<u64>,
    rx: Burst,
    syncs_sent: u64,
}

impl PtpGrandmaster {
    /// A grandmaster with the given sync cadence.
    pub fn new(port: PortId, sync_interval_ns: u64) -> Self {
        PtpGrandmaster {
            port,
            sync_interval_ns,
            seq: 0,
            next_sync_tsc: None,
            rx: Burst::new(),
            syncs_sent: 0,
        }
    }

    /// Sync rounds emitted so far.
    pub fn syncs_sent(&self) -> u64 {
        self.syncs_sent
    }

    fn send(&mut self, dp: &mut dyn Dataplane, msg: PtpMessage) {
        let frame = encode_ptp(&msg, MacAddr::local(0xFFFF), MacAddr::BROADCAST);
        if let Ok(m) = dp.mempool().alloc(frame) {
            let mut b = Burst::new();
            b.push(m).expect("single packet");
            dp.tx_burst(self.port, &mut b);
        }
    }
}

impl App for PtpGrandmaster {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        // Serve delay requests.
        loop {
            let mut rx = std::mem::take(&mut self.rx);
            let n = dp.rx_burst(self.port, &mut rx);
            for m in rx.drain() {
                if let Some(req) = decode_ptp(&m.frame) {
                    if req.kind == MSG_DELAY_REQ {
                        // t4: receipt time at the master.
                        let t4 = dp.wall_ns();
                        self.send(
                            dp,
                            PtpMessage {
                                kind: MSG_DELAY_RESP,
                                seq: req.seq,
                                timestamp_ns: t4,
                            },
                        );
                    }
                }
            }
            self.rx = rx;
            if n == 0 {
                break;
            }
        }

        // Emit Sync + Follow_Up on schedule.
        let interval = dp.ns_to_cycles(self.sync_interval_ns);
        let now = dp.tsc();
        let due = *self.next_sync_tsc.get_or_insert(now);
        if now >= due {
            let seq = self.seq;
            self.seq = self.seq.wrapping_add(1);
            self.syncs_sent += 1;
            // Two-step: Sync carries nothing precise; Follow_Up carries
            // the (software) transmit timestamp t1.
            self.send(
                dp,
                PtpMessage {
                    kind: MSG_SYNC,
                    seq,
                    timestamp_ns: 0,
                },
            );
            let t1 = dp.wall_ns();
            self.send(
                dp,
                PtpMessage {
                    kind: MSG_FOLLOW_UP,
                    seq,
                    timestamp_ns: t1,
                },
            );
            self.next_sync_tsc = Some(due + interval);
        }
        dp.request_wake_at_tsc(self.next_sync_tsc.expect("initialized above"));
    }

    fn name(&self) -> &str {
        "ptp-grandmaster"
    }
}

/// Per-round servo state.
#[derive(Debug, Clone, Copy, Default)]
struct Round {
    seq: u16,
    /// Client receive time of Sync (t2), client clock.
    t2: Option<u64>,
    /// Master transmit time of Sync (t1), master clock.
    t1: Option<u64>,
    /// Client transmit time of Delay_Req (t3), client clock.
    t3: Option<u64>,
}

/// The client application: measures offset each sync round and slews its
/// clock with gain `kp`.
pub struct PtpClient {
    /// Port facing the grandmaster.
    pub port: PortId,
    /// Proportional servo gain in `(0, 1]` (1 = jump by the full measured
    /// offset each round).
    pub kp: f64,
    round: Round,
    rx: Burst,
    /// Last measured offset (client − master), ns.
    last_offset_ns: Option<i64>,
    rounds_completed: u64,
}

impl PtpClient {
    /// A client with the given servo gain.
    pub fn new(port: PortId, kp: f64) -> Self {
        assert!(kp > 0.0 && kp <= 1.0, "gain must be in (0, 1]");
        PtpClient {
            port,
            kp,
            round: Round::default(),
            rx: Burst::new(),
            last_offset_ns: None,
            rounds_completed: 0,
        }
    }

    /// The most recent offset measurement (client − master), if any.
    pub fn last_offset_ns(&self) -> Option<i64> {
        self.last_offset_ns
    }

    /// Completed measurement rounds.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    fn send(&mut self, dp: &mut dyn Dataplane, msg: PtpMessage) {
        let frame = encode_ptp(&msg, MacAddr::local(0xC11E), MacAddr::BROADCAST);
        if let Ok(m) = dp.mempool().alloc(frame) {
            let mut b = Burst::new();
            b.push(m).expect("single packet");
            dp.tx_burst(self.port, &mut b);
        }
    }
}

impl App for PtpClient {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut rx = std::mem::take(&mut self.rx);
            let n = dp.rx_burst(self.port, &mut rx);
            for m in rx.drain() {
                let Some(msg) = decode_ptp(&m.frame) else {
                    continue;
                };
                match msg.kind {
                    MSG_SYNC => {
                        // t2: software receive stamp in the client domain.
                        self.round = Round {
                            seq: msg.seq,
                            t2: Some(dp.wall_ns()),
                            t1: None,
                            t3: None,
                        };
                    }
                    MSG_FOLLOW_UP if msg.seq == self.round.seq => {
                        self.round.t1 = Some(msg.timestamp_ns);
                        // Kick off the delay measurement.
                        let t3 = dp.wall_ns();
                        self.round.t3 = Some(t3);
                        let seq = msg.seq;
                        self.send(
                            dp,
                            PtpMessage {
                                kind: MSG_DELAY_REQ,
                                seq,
                                timestamp_ns: t3,
                            },
                        );
                    }
                    MSG_DELAY_RESP if msg.seq == self.round.seq => {
                        let (Some(t1), Some(t2), Some(t3)) =
                            (self.round.t1, self.round.t2, self.round.t3)
                        else {
                            continue;
                        };
                        let t4 = msg.timestamp_ns;
                        // IEEE 1588: offset = ((t2 − t1) − (t4 − t3)) / 2.
                        let offset =
                            ((t2 as i64 - t1 as i64) - (t4 as i64 - t3 as i64)) / 2;
                        self.last_offset_ns = Some(offset);
                        self.rounds_completed += 1;
                        let slew = -(offset as f64 * self.kp) as i64;
                        if slew != 0 {
                            dp.adjust_wall_clock(slew);
                        }
                        self.round = Round::default();
                    }
                    _ => {}
                }
            }
            self.rx = rx;
            if n == 0 {
                break;
            }
        }
    }

    fn name(&self) -> &str {
        "ptp-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{NodeClock, PtpModel};
    use crate::nic::{NicRxModel, NicTxModel};
    use crate::rng::Jitter;
    use crate::time::{MS, NS, US};
    use crate::{Sim, SimConfig};

    #[test]
    fn message_roundtrip() {
        let m = PtpMessage {
            kind: MSG_FOLLOW_UP,
            seq: 777,
            timestamp_ns: 123_456_789_012,
        };
        let f = encode_ptp(&m, MacAddr::local(1), MacAddr::BROADCAST);
        assert_eq!(decode_ptp(&f), Some(m));
        // Non-PTP frames decode to None.
        let plain = choir_packet::FrameBuilder::new(100, 1, 2).build_plain();
        assert_eq!(decode_ptp(&plain), None);
    }

    fn ptp_pair(initial_offset_ns: i64, jitter: Jitter, rounds_time_ms: u64) -> (i64, u64) {
        let mut sim = Sim::new(SimConfig::default());
        let gm_clock = NodeClock::ideal(1_000_000_000);
        let mut client_clock = NodeClock::ideal(1_000_000_000);
        client_clock.ptp = PtpModel {
            offset_ns: initial_offset_ns,
            drift_ns_per_s: 0.0,
        };
        let gm = sim.add_node(
            "gm",
            PtpGrandmaster::new(0, 500_000), // 0.5 ms sync interval
            gm_clock,
            Jitter::None,
        );
        let client = sim.add_node("client", PtpClient::new(0, 0.7), client_clock, Jitter::None);
        // Software stamping happens when the poll loop sees the packet:
        // `jitter` models that visibility latency, the sync-error source.
        let gp = sim.add_port(
            gm,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel {
                deliver_latency: jitter.clone(),
                ..NicRxModel::ideal()
            },
        );
        let cp = sim.add_port(
            client,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel {
                deliver_latency: jitter,
                ..NicRxModel::ideal()
            },
        );
        sim.connect_nodes(gm, gp, client, cp, 50 * NS);
        sim.wake_app(gm, US);
        sim.run_until(rounds_time_ms * MS);
        let rounds = sim.with_app::<PtpClient, _>(client, |c| c.rounds_completed());
        // The residual sync error is what the servo itself last measured.
        let last = sim
            .with_app::<PtpClient, _>(client, |c| c.last_offset_ns())
            .unwrap_or(i64::MAX);
        (last, rounds)
    }

    #[test]
    fn servo_converges_from_large_initial_offset() {
        // Client boots 50 us off; after a few rounds over a clean link the
        // measured offset shrinks to the propagation-asymmetry floor.
        let (last, rounds) = ptp_pair(50_000, Jitter::None, 20);
        assert!(rounds >= 10, "rounds {rounds}");
        assert!(
            last.abs() < 200,
            "residual offset {last} ns after {rounds} rounds"
        );
    }

    #[test]
    fn poll_jitter_limits_sync_quality() {
        // With microsecond-scale software-stamping jitter the residual sits
        // in the hundreds-of-ns band — the "10s of nanoseconds" claim needs
        // hardware stamping, which is exactly why the paper's FABRIC setup
        // uses NIC PTP.
        let (clean, _) = ptp_pair(10_000, Jitter::None, 20);
        let (noisy, rounds) = ptp_pair(
            10_000,
            Jitter::Exp {
                mean: 1.0 * US as f64,
            },
            20,
        );
        assert!(rounds >= 5);
        assert!(
            noisy.abs() > clean.abs() + 20,
            "noise must hurt: {noisy} vs {clean}"
        );
    }

    #[test]
    fn offsets_measured_every_round() {
        let (_, rounds) = ptp_pair(1_000, Jitter::None, 10);
        assert!(rounds >= 5, "rounds {rounds}");
    }
}
