//! Slices: FABRIC's unit of experiment reservation (paper §2.1), and
//! their materialization onto the simulator.
//!
//! "A slice will contain nodes, representing VMs or hardware, and network
//! services, which represent connections between nodes. Users can use an
//! L2 network service, an abstraction that gives the appearance of nodes
//! being directly connected."
//!
//! The lifecycle mirrors FABlib: declare ([`Slice::new`], `add_node`,
//! `add_l2bridge`, `attach`), submit against a site (capacity checks),
//! then build each node's application and wire the topology into a
//! [`choir_netsim::Sim`].

use std::collections::HashMap;

use choir_netsim::clock::{NodeClock, PtpModel};
use choir_netsim::engine::AppAny;
use choir_netsim::nic::{NicRxModel, NicTxModel, SharedVfModel, UtilProcess};
use choir_netsim::rng::{DetRng, Jitter};
use choir_netsim::switchdev::{Switch, SwitchProfile};
use choir_netsim::time::{MS, NS, US};
use choir_netsim::{NodeId, Sim};
use serde::{Deserialize, Serialize};

use crate::site::{AllocError, Site};

/// NIC component kinds offered by FABRIC sites (paper §2.2/§9: most
/// available NICs are shared SR-IOV VFs; ConnectX-5/6 SmartNICs are
/// dedicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NicKind {
    /// A dedicated ConnectX-6 (100 Gbps) in passthrough.
    SmartConnectX6,
    /// A dedicated ConnectX-5 (100 Gbps).
    SmartConnectX5,
    /// A 100 Gbps SR-IOV virtual function on the shared physical NIC.
    SharedVf,
}

/// A node (VM) specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name within the slice.
    pub name: String,
    /// vCPU cores.
    pub cores: u32,
    /// RAM in GB (Choir "can run with a minimum of 1 GB", paper §5).
    pub ram_gb: u32,
    /// Disk in GB.
    pub disk_gb: u32,
    /// NIC components, in port order.
    pub nics: Vec<NicKind>,
}

impl NodeSpec {
    /// A VM with the given cores/RAM and 10 GB of disk.
    pub fn vm(name: impl Into<String>, cores: u32, ram_gb: u32) -> Self {
        NodeSpec {
            name: name.into(),
            cores,
            ram_gb,
            disk_gb: 10,
            nics: Vec::new(),
        }
    }

    /// Append a NIC component.
    pub fn with_nic(mut self, kind: NicKind) -> Self {
        self.nics.push(kind);
        self
    }
}

/// Handle to a node within a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(usize);

/// Handle to a network service within a slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServiceRef(usize);

/// Errors in slice construction or submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The referenced NIC index does not exist on the node.
    NoSuchNic {
        /// Node name.
        node: String,
        /// NIC index requested.
        nic: usize,
    },
    /// The NIC is already attached to a service.
    NicBusy {
        /// Node name.
        node: String,
        /// NIC index.
        nic: usize,
    },
    /// The site rejected the reservation.
    Alloc(AllocError),
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::NoSuchNic { node, nic } => write!(f, "{node} has no NIC {nic}"),
            SliceError::NicBusy { node, nic } => write!(f, "{node} NIC {nic} already attached"),
            SliceError::Alloc(e) => write!(f, "site rejected reservation: {e}"),
        }
    }
}

impl std::error::Error for SliceError {}

/// A slice under construction.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Slice name.
    pub name: String,
    nodes: Vec<NodeSpec>,
    services: Vec<String>,
    /// (node, nic index, service).
    attachments: Vec<(usize, usize, usize)>,
}

impl Slice {
    /// An empty slice.
    pub fn new(name: impl Into<String>) -> Self {
        Slice {
            name: name.into(),
            nodes: Vec::new(),
            services: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Add a node.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeRef {
        self.nodes.push(spec);
        NodeRef(self.nodes.len() - 1)
    }

    /// Add an L2Bridge network service ("can connect multiple resources
    /// within a site", §7).
    pub fn add_l2bridge(&mut self, name: impl Into<String>) -> ServiceRef {
        self.services.push(name.into());
        ServiceRef(self.services.len() - 1)
    }

    /// Attach a node's NIC to a service.
    pub fn attach(
        &mut self,
        node: NodeRef,
        nic: usize,
        service: ServiceRef,
    ) -> Result<(), SliceError> {
        let spec = &self.nodes[node.0];
        if nic >= spec.nics.len() {
            return Err(SliceError::NoSuchNic {
                node: spec.name.clone(),
                nic,
            });
        }
        if self
            .attachments
            .iter()
            .any(|&(n, p, _)| n == node.0 && p == nic)
        {
            return Err(SliceError::NicBusy {
                node: spec.name.clone(),
                nic,
            });
        }
        self.attachments.push((node.0, nic, service.0));
        Ok(())
    }

    /// Submit against the first site in a federation that can host the
    /// slice (simple first-fit placement, like asking the portal for any
    /// site with free SmartNICs). Returns the index of the chosen site.
    pub fn submit_to_any(
        self,
        federation: &mut [Site],
    ) -> Result<(usize, ProvisionedSlice), SliceError> {
        let mut last_err = SliceError::Alloc(AllocError::SmartNics);
        for (i, site) in federation.iter_mut().enumerate() {
            match self.clone().submit(site) {
                Ok(p) => return Ok((i, p)),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Submit the slice against a site: reserves every resource or fails
    /// without leaking any (all-or-nothing, like the control framework).
    pub fn submit(self, site: &mut Site) -> Result<ProvisionedSlice, SliceError> {
        let mut cores = 0;
        let mut ram = 0;
        let mut disk = 0;
        let mut smart = 0;
        let mut vfs = 0;
        let mut reserve = || -> Result<(), AllocError> {
            for n in &self.nodes {
                site.reserve_compute(n.cores, n.ram_gb, n.disk_gb)?;
                cores += n.cores;
                ram += n.ram_gb;
                disk += n.disk_gb;
                for nic in &n.nics {
                    match nic {
                        NicKind::SmartConnectX5 | NicKind::SmartConnectX6 => {
                            site.reserve_smart_nic()?;
                            smart += 1;
                        }
                        NicKind::SharedVf => {
                            site.reserve_shared_vf()?;
                            vfs += 1;
                        }
                    }
                }
            }
            Ok(())
        };
        match reserve() {
            Ok(()) => Ok(ProvisionedSlice {
                slice: self,
                site_name: site.name.clone(),
                node_ids: HashMap::new(),
            }),
            Err(e) => {
                site.release(cores, ram, disk, smart, vfs);
                Err(SliceError::Alloc(e))
            }
        }
    }
}

/// A slice whose resources are reserved, ready to materialize.
#[derive(Debug)]
pub struct ProvisionedSlice {
    slice: Slice,
    site_name: String,
    node_ids: HashMap<usize, NodeId>,
}

impl ProvisionedSlice {
    /// The node specifications, in `NodeRef` order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.slice.nodes
    }

    /// The site this slice landed on.
    pub fn site_name(&self) -> &str {
        &self.site_name
    }

    /// Instantiate one node in the simulator with the given application.
    /// VM semantics come for free: a PTP-synchronized clock and
    /// virtualization wake jitter (§2.2/§8.1).
    ///
    /// # Panics
    /// Panics if the node was already built.
    pub fn build_node(
        &mut self,
        sim: &mut Sim,
        node: NodeRef,
        app: impl AppAny + 'static,
        seed: u64,
    ) -> NodeId {
        assert!(
            !self.node_ids.contains_key(&node.0),
            "node already built"
        );
        let spec = &self.slice.nodes[node.0];
        let mut rng = DetRng::derive(seed, &["fabric", &self.slice.name, &spec.name]);
        let clock = NodeClock {
            tsc_hz: 2_500_000_000,
            tsc_offset: rng.range_u64(0, 1 << 40),
            freq_error_ppb: rng.range_u64(0, 60) as i64 - 30,
            ptp: PtpModel::sampled(&mut rng, 30.0, 5.0),
        };
        let id = sim.add_node(&spec.name, app, clock, vm_wake_jitter());
        // Ports in NIC order.
        for kind in spec.nics.clone() {
            let (tx, rx) = nic_models(kind, &mut rng);
            sim.add_port(id, tx, rx);
        }
        self.node_ids.insert(node.0, id);
        id
    }

    /// After every node is built, wire each L2 bridge as a switch and
    /// connect the attached NICs. Returns the switch index per service.
    ///
    /// # Panics
    /// Panics if some attached node was not built.
    pub fn wire(&self, sim: &mut Sim) -> Vec<usize> {
        let mut switches = Vec::new();
        for (sidx, sname) in self.slice.services.iter().enumerate() {
            let members: Vec<(usize, usize)> = self
                .slice
                .attachments
                .iter()
                .filter(|&&(_, _, s)| s == sidx)
                .map(|&(n, p, _)| (n, p))
                .collect();
            // FABRIC sites put a Cisco 5700 behind the L2 services (§8.1).
            let sw = sim.add_switch(
                Switch::new(members.len().max(1), SwitchProfile::cisco5700(100_000_000_000)),
                sname,
            );
            for (port_idx, &(n, p)) in members.iter().enumerate() {
                let node_id = *self
                    .node_ids
                    .get(&n)
                    .expect("attached node must be built before wiring");
                sim.connect_node_switch(node_id, p, sw, port_idx, 5 * NS);
            }
            switches.push(sw);
        }
        switches
    }

    /// The simulator node id of a built node.
    pub fn node_id(&self, node: NodeRef) -> Option<NodeId> {
        self.node_ids.get(&node.0).copied()
    }
}

/// VM poll-loop jitter: the §8.1 virtualization overhead.
fn vm_wake_jitter() -> Jitter {
    Jitter::Mix(vec![
        (
            0.93,
            Jitter::Normal {
                mean: 0.0,
                sigma: 25.0 * NS as f64,
            },
        ),
        (
            0.065,
            Jitter::Exp {
                mean: 800.0 * NS as f64,
            },
        ),
        (
            0.005,
            Jitter::Exp {
                mean: 8.0 * US as f64,
            },
        ),
    ])
}

/// NIC models per component kind (mirroring the calibrated testbed
/// profiles; see `choir-testbed::profiles` for the hypotheses).
fn nic_models(kind: NicKind, rng: &mut DetRng) -> (NicTxModel, NicRxModel) {
    let line = 100_000_000_000;
    match kind {
        NicKind::SmartConnectX5 | NicKind::SmartConnectX6 => (
            NicTxModel {
                doorbell: Jitter::Normal {
                    mean: 700.0 * NS as f64,
                    sigma: 50.0 * NS as f64,
                },
                batch: choir_netsim::nic::BatchDist::Geometric { p: 0.62, max: 24 },
                rearm_latency: Jitter::Exp {
                    mean: 600.0 * NS as f64,
                },
                pull_read_latency: Jitter::Exp {
                    mean: 1_600.0 * NS as f64,
                },
                ..NicTxModel::ideal(line)
            },
            NicRxModel::ideal(),
        ),
        NicKind::SharedVf => {
            let _ = rng.f64(); // per-VF placement draw (kept for stream stability)
            (
                NicTxModel {
                    doorbell: Jitter::Normal {
                        mean: 900.0 * NS as f64,
                        sigma: 12.0 * NS as f64,
                    },
                    rearm_latency: Jitter::Exp {
                        mean: 60.0 * NS as f64,
                    },
                    shared: Some(SharedVfModel {
                        util: UtilProcess::new(0.01, 0.05, 0.01, MS),
                        noise_pkt_wire_bytes: 1538,
                        burst_wait_mean_ps: 150.0 * NS as f64,
                        pause: Jitter::Exp {
                            mean: 5.0 * US as f64,
                        },
                        pause_prob: 2e-5,
                    }),
                    ..NicTxModel::ideal(line)
                },
                NicRxModel::ideal(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_slice() -> Slice {
        let mut s = Slice::new("test");
        let a = s.add_node(NodeSpec::vm("a", 4, 16).with_nic(NicKind::SmartConnectX6));
        let b = s.add_node(NodeSpec::vm("b", 4, 16).with_nic(NicKind::SharedVf));
        let net = s.add_l2bridge("net1");
        s.attach(a, 0, net).unwrap();
        s.attach(b, 0, net).unwrap();
        s
    }

    #[test]
    fn attach_validates_nics() {
        let mut s = Slice::new("t");
        let a = s.add_node(NodeSpec::vm("a", 1, 1).with_nic(NicKind::SharedVf));
        let net = s.add_l2bridge("n");
        assert!(matches!(
            s.attach(a, 5, net),
            Err(SliceError::NoSuchNic { nic: 5, .. })
        ));
        s.attach(a, 0, net).unwrap();
        assert!(matches!(
            s.attach(a, 0, net),
            Err(SliceError::NicBusy { .. })
        ));
    }

    #[test]
    fn submit_reserves_and_failure_leaks_nothing() {
        let mut site = Site::large("TACC");
        let p = two_node_slice().submit(&mut site).unwrap();
        assert_eq!(p.nodes().len(), 2);
        assert_eq!(p.site_name(), "TACC");
        assert!(site.usage().cpu > 0.0);

        // A slice too big for a tiny site must roll back completely.
        let mut tiny = Site::new("tiny", 4, 16, 100, 0, 0);
        let err = two_node_slice().submit(&mut tiny).unwrap_err();
        assert!(matches!(err, SliceError::Alloc(_)));
        assert_eq!(tiny.usage().cpu, 0.0, "rollback must release cores");
    }

    #[test]
    fn nic_stock_enforced_at_submit() {
        let mut site = Site::new("one-nic", 64, 256, 1000, 1, 0);
        let mut s = Slice::new("greedy");
        let a = s.add_node(
            NodeSpec::vm("a", 2, 4)
                .with_nic(NicKind::SmartConnectX6)
                .with_nic(NicKind::SmartConnectX6),
        );
        let _ = a;
        let err = s.submit(&mut site).unwrap_err();
        assert_eq!(err, SliceError::Alloc(AllocError::SmartNics));
    }

    #[test]
    fn federation_placement_finds_a_fitting_site() {
        let mut federation = Site::catalog();
        // A slice needing 2 SmartNICs: the small sites (1 each) cannot
        // host it; first fit lands on the first large site.
        let mut s = Slice::new("wide");
        let _ = s.add_node(
            NodeSpec::vm("r", 8, 32)
                .with_nic(NicKind::SmartConnectX6)
                .with_nic(NicKind::SmartConnectX6),
        );
        let (idx, prov) = s.submit_to_any(&mut federation).unwrap();
        assert_eq!(federation[idx].name, "STAR");
        assert_eq!(prov.site_name(), "STAR");
        // The rejected small sites leaked nothing.
        assert_eq!(federation[0].usage().cpu, 0.0);
        assert_eq!(federation[1].usage().cpu, 0.0);
    }

    #[test]
    fn federation_exhaustion_reports_last_error() {
        let mut federation = vec![Site::new("a", 1, 1, 1, 0, 0), Site::new("b", 1, 1, 1, 0, 0)];
        let mut s = Slice::new("big");
        let _ = s.add_node(NodeSpec::vm("x", 64, 256));
        assert!(matches!(
            s.submit_to_any(&mut federation),
            Err(SliceError::Alloc(_))
        ));
    }

    #[test]
    fn errors_display() {
        let e = SliceError::NoSuchNic {
            node: "x".into(),
            nic: 3,
        };
        assert!(e.to_string().contains("NIC 3"));
    }
}
