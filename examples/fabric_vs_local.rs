//! The paper's headline comparison (§6 vs §7): how much less consistent
//! is a federated testbed than a local bare-metal one?
//!
//! Runs the LocalSingle and FABRIC environments at reduced scale and
//! prints the per-run metrics side by side — the same data behind
//! Figures 4, 6–9 and Table 2.
//!
//! ```text
//! cargo run --release --example fabric_vs_local [scale]
//! ```

use choir::testbed::{EnvKind, Experiment, ExperimentConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("local vs FABRIC consistency at scale {scale}\n");

    let envs = [
        EnvKind::LocalSingle,
        EnvKind::FabricDedicated40A,
        EnvKind::FabricShared40,
        EnvKind::FabricDedicated80,
    ];

    let mut rows = Vec::new();
    for kind in envs {
        let out = Experiment::new(ExperimentConfig {
            profile: kind.profile(),
            scale,
            seed: 0xFAB,
        })
        .run();
        let w10 = out
            .report
            .runs
            .iter()
            .map(|r| r.iat_within_10ns)
            .sum::<f64>()
            / out.report.runs.len() as f64;
        println!(
            "{:<28} kappa {:.4}   I {:.4}   L {:.2e}   {:.1}% IAT deltas within +-10 ns",
            kind.label(),
            out.report.mean.kappa,
            out.report.mean.i,
            out.report.mean.l,
            w10 * 100.0
        );
        rows.push((kind, out.report.mean.kappa));
    }

    let local = rows[0].1;
    println!();
    for (kind, kappa) in &rows[1..] {
        println!(
            "{} is {:.1}% less consistent than the local testbed",
            kind.label(),
            (local - kappa) * 100.0
        );
    }
    println!("\n(The paper's conclusion: ideal FABRIC environments are only");
    println!("slightly less consistent — ~0.04 on the 0-1 scale — while the");
    println!("coalescing-affected dedicated-NIC runs drop by ~0.24.)");
}
