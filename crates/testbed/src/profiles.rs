//! The nine evaluation environments of §6–§7, as calibrated simulator
//! parameter sets.
//!
//! ## Calibration philosophy
//!
//! The paper measures *distributions of timing deltas between replay
//! runs*; the authors themselves could not attribute the inter-testbed
//! differences to specific components ("We do not have the ability to
//! clearly establish what component could be introducing the extra
//! nanoseconds of variation", §8.1). Each profile below therefore encodes
//! a *hypothesis* — which noise processes are active and how strong —
//! chosen so the resulting metric values land in the paper's reported
//! bands. The knobs and their physical stories:
//!
//! - `wake_jitter` — poll-loop scheduling noise: nanoseconds on bare
//!   metal, heavy-tailed (vCPU preemption) in FABRIC VMs.
//! - `doorbell`/`batch`/`pull_gap` — PCIe doorbell latency and DMA pull
//!   batching. Aggressive batching with irregular pull cadence is the
//!   hypothesis for FABRIC's anomalous I ≈ 0.5 runs: packets leave the
//!   NIC bunched back-to-back with phase that differs run to run, so at
//!   40 Gbps (284.8 ns spacing) a large fraction of packets see IAT
//!   deltas of a whole gap.
//! - `shared_vf` — SR-IOV contention: queueing behind co-tenant frames
//!   plus occasional PF-scheduler pauses (§7.1's iperf3 noise bouncing
//!   between 35 and 50 Gbps).
//! - `recorder_ts` — E810-style realtime stamps locally vs ConnectX-style
//!   sampled-clock conversion on FABRIC (§8.1).
//! - `ts_slope_sigma_ppb` — per-run residual rate error of the recorder's
//!   timestamp clock (PHC servo slew + thermal wander + vCPU steal
//!   effects). Over a 0.3 s trial this ramps latency deltas into the
//!   0.5–5 µs band the paper reports (§6.1), and its per-run re-sampling
//!   produces the "one spike far to one side or two spikes symmetrically
//!   across 0" histograms (§7).
//! - `replay_start_skew` — per-replayer, per-run arming skew of the
//!   replay start. Irrelevant for single-replayer runs (latency is
//!   anchored per trial) but the driver of §6.2's dual-replayer burst
//!   interleaving, whose edit-script distances Table 1 reports.

use choir_netsim::clock::TimestampModel;
use choir_netsim::nic::BatchDist;
use choir_netsim::rng::Jitter;
use choir_netsim::switchdev::SwitchProfile;
use choir_netsim::time::{MS, NS, US};

/// Identifies one of the paper's evaluation environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EnvKind {
    /// §6.1: local testbed, one replayer, 40 Gbps.
    LocalSingle,
    /// §6.2: local testbed, two parallel replayers, 2×20 Gbps.
    LocalDual,
    /// §7 test 1: FABRIC dedicated smart NICs, 40 Gbps (the anomalous
    /// high-IAT-variance test).
    FabricDedicated40A,
    /// §7 test 2: FABRIC shared (SR-IOV VF) NICs, 40 Gbps.
    FabricShared40,
    /// §7 test 3: FABRIC dedicated NICs again, 40 Gbps (confirmed the
    /// anomaly, with higher latency variation).
    FabricDedicated40B,
    /// §7: FABRIC dedicated NICs at 80 Gbps.
    FabricDedicated80,
    /// §7: FABRIC shared NICs at 80 Gbps.
    FabricShared80,
    /// §7.1: dedicated NICs at 80 Gbps with a noisy co-tenant (no
    /// bandwidth impact — dedicated hardware shields the data path).
    FabricDedicated80Noisy,
    /// §7.1: shared NICs at 40 Gbps with a noisy co-tenant (drops appear).
    FabricShared40Noisy,
}

impl EnvKind {
    /// All environments, in the order the paper presents them (Table 2).
    pub fn all() -> [EnvKind; 9] {
        [
            EnvKind::LocalSingle,
            EnvKind::LocalDual,
            EnvKind::FabricDedicated40A,
            EnvKind::FabricShared40,
            EnvKind::FabricDedicated40B,
            EnvKind::FabricDedicated80,
            EnvKind::FabricShared80,
            EnvKind::FabricDedicated80Noisy,
            EnvKind::FabricShared40Noisy,
        ]
    }

    /// The Table 2 row label.
    pub fn label(self) -> &'static str {
        match self {
            EnvKind::LocalSingle => "Local Single-Replayer",
            EnvKind::LocalDual => "Local Dual-Replayer",
            EnvKind::FabricDedicated40A => "FABRIC Dedicated 40 Gbps 1",
            EnvKind::FabricShared40 => "FABRIC Shared 40 Gbps",
            EnvKind::FabricDedicated40B => "FABRIC Dedicated 40 Gbps 2",
            EnvKind::FabricDedicated80 => "FABRIC Dedicated 80 Gbps",
            EnvKind::FabricShared80 => "FABRIC Shared 80 Gbps",
            EnvKind::FabricDedicated80Noisy => "FABRIC Ded. 80 Gbps Noisy",
            EnvKind::FabricShared40Noisy => "FABRIC Shd. 40 Gbps Noisy",
        }
    }

    /// Build the calibrated profile.
    pub fn profile(self) -> EnvProfile {
        match self {
            EnvKind::LocalSingle => EnvProfile::local(self, 40_000_000_000, 1),
            EnvKind::LocalDual => EnvProfile::local(self, 40_000_000_000, 2),
            EnvKind::FabricDedicated40A => {
                EnvProfile::fabric_dedicated(self, 40_000_000_000, 30_000.0)
            }
            EnvKind::FabricShared40 => EnvProfile::fabric_shared(self, 40_000_000_000, false),
            EnvKind::FabricDedicated40B => {
                EnvProfile::fabric_dedicated(self, 40_000_000_000, 500_000.0)
            }
            EnvKind::FabricDedicated80 => {
                EnvProfile::fabric_dedicated(self, 80_000_000_000, 10_000.0)
            }
            EnvKind::FabricShared80 => EnvProfile::fabric_shared(self, 80_000_000_000, false),
            EnvKind::FabricDedicated80Noisy => {
                // §7.1: "almost identical to the earlier 80 Gbps test" —
                // the dedicated NIC shields the data path from the noise.
                EnvProfile::fabric_dedicated(self, 80_000_000_000, 10_000.0)
            }
            EnvKind::FabricShared40Noisy => EnvProfile::fabric_shared(self, 40_000_000_000, true),
        }
    }
}

/// Co-tenant contention parameters (constructed per run by the runner).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SharedVfSpec {
    /// Utilization random-walk bounds (fraction of line rate).
    pub util_min: f64,
    /// Upper bound.
    pub util_max: f64,
    /// Walk step sigma.
    pub util_step: f64,
    /// Walk update period, ps.
    pub util_period_ps: u64,
    /// Mean microburst queueing wait, ps.
    pub burst_wait_mean_ps: f64,
    /// PF-scheduler pause duration.
    pub pause: Jitter,
    /// Per-packet pause probability.
    pub pause_prob: f64,
}

/// A complete environment description. Serializable, so custom
/// environments can be dumped (`repro dump-profile`), hand-edited and
/// re-run (`repro custom my_env.json`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EnvProfile {
    /// Which environment this is.
    pub kind: EnvKind,
    /// Aggregate traffic rate in bits per second.
    pub rate_bps: u64,
    /// Frame length in bytes (the paper always uses 1400).
    pub frame_len: usize,
    /// Recorded stream duration in ps (the paper records 0.3 s).
    pub duration_ps: u64,
    /// Number of replay nodes (1 or 2).
    pub replayers: usize,
    /// Number of replay runs (the paper's A–E).
    pub runs: usize,
    /// NIC/link rate in bits per second (always 100 Gbps hardware).
    pub link_rate_bps: u64,
    /// Node TSC frequency.
    pub tsc_hz: u64,
    /// Switch profile.
    pub switch: SwitchProfile,
    /// Replayer poll-loop wake jitter.
    pub wake_jitter: Jitter,
    /// Replayer receive-poll visibility latency: how long after wire
    /// arrival the poll loop sees a packet. Larger values make the
    /// middlebox pick up (and record) multi-packet bursts, which is what
    /// both testbeds' capture structure shows (§6.2: packets "moved as
    /// whole bursts").
    pub poll_latency: Jitter,
    /// Replayer NIC doorbell latency.
    pub doorbell: Jitter,
    /// Replayer NIC DMA pull batching.
    pub batch: BatchDist,
    /// Replayer NIC pull-engine re-arm latency (idle -> busy).
    pub pull_rearm: Jitter,
    /// Replayer NIC per-pull descriptor read latency.
    pub pull_read: Jitter,
    /// SR-IOV contention (shared-NIC environments only).
    pub shared_vf: Option<SharedVfSpec>,
    /// Recorder NIC timestamping model.
    pub recorder_ts: TimestampModel,
    /// Recorder-side random drop probability (noisy shared VF only).
    pub recorder_drop_prob: f64,
    /// PTP offset sigma (ns) re-sampled per run.
    pub ptp_offset_sigma_ns: f64,
    /// PTP drift sigma (ns/s) re-sampled per run.
    pub ptp_drift_sigma: f64,
    /// Recorder timestamp-clock slope sigma (ppb) re-sampled per run.
    pub ts_slope_sigma_ppb: f64,
    /// Per-replayer, per-run replay arming skew.
    pub replay_start_skew: Jitter,
}

impl EnvProfile {
    /// Shared scaffolding for all environments.
    fn base(kind: EnvKind, rate_bps: u64, replayers: usize) -> EnvProfile {
        EnvProfile {
            kind,
            rate_bps,
            frame_len: 1400,
            duration_ps: 300 * MS, // 0.3 s
            replayers,
            runs: 5,
            link_rate_bps: 100_000_000_000,
            tsc_hz: 2_500_000_000,
            switch: SwitchProfile::tofino2(100_000_000_000),
            wake_jitter: Jitter::None,
            poll_latency: Jitter::Const(4 * US as i64),
            doorbell: Jitter::None,
            batch: BatchDist::One,
            pull_rearm: Jitter::None,
            pull_read: Jitter::None,
            shared_vf: None,
            recorder_ts: TimestampModel::exact(),
            recorder_drop_prob: 0.0,
            ptp_offset_sigma_ns: 30.0,
            ptp_drift_sigma: 5.0,
            ts_slope_sigma_ppb: 0.0,
            replay_start_skew: Jitter::None,
        }
    }

    /// The local bare-metal testbed (§6): Tofino2 switch, host-OS
    /// applications, E810 recorder with realtime hardware timestamps.
    fn local(kind: EnvKind, rate_bps: u64, replayers: usize) -> EnvProfile {
        let mut p = Self::base(kind, rate_bps, replayers);
        p.switch = SwitchProfile::tofino2(p.link_rate_bps);
        // Bare metal: nanosecond-scale poll noise with a thin tail of
        // interrupt/SMI excursions — calibrated so ~92% of IAT deltas
        // stay within ±10 ns while I lands near 0.029 (§6.1).
        // Bare-metal poll lateness: exponential with a ~100 ns mean.
        // Boundary packets of each recorded burst inherit it, which is
        // what puts ~8% of IAT deltas outside +-10 ns (Fig. 4a) while
        // intra-burst gaps stay serialization-exact.
        p.wake_jitter = Jitter::Exp {
            mean: 100.0 * NS as f64,
        };
        p.poll_latency = Jitter::Const((3.5 * US as f64) as i64);
        p.doorbell = Jitter::Normal {
            mean: 300.0 * NS as f64,
            sigma: 1.5 * NS as f64,
        };
        // E810: realtime hardware stamps, ±1.5 ns white noise.
        p.recorder_ts = TimestampModel::HwRealtime {
            noise: Jitter::Normal {
                mean: 0.0,
                sigma: 1.5 * NS as f64,
            },
        };
        // Latency wander: a few ppm of effective clock-rate error ramps
        // to the 0.5–5 us deltas of Fig. 4b over 0.3 s.
        p.ts_slope_sigma_ppb = 7_000.0;
        if replayers == 2 {
            // §6.2: the dual-replayer runs interleave whole bursts
            // differently per run. Millisecond-scale arming skew matches
            // Table 1's move distances (thousands of packets). Each
            // replayer carries 20 Gbps, so the poll window is widened to
            // keep recorded bursts at the single-replayer size.
            p.replay_start_skew = Jitter::Normal {
                mean: 0.0,
                sigma: 8_000.0 * US as f64,
            };
            p.poll_latency = Jitter::Const(20 * US as i64);
        }
        p
    }

    /// FABRIC with dedicated ConnectX-6 smart NICs (§7 tests 1/3 and the
    /// 80 Gbps runs). `slope_sigma_ppb` differs between the two 40 Gbps
    /// tests — the paper measured L an order of magnitude apart on the
    /// same hardware.
    fn fabric_dedicated(kind: EnvKind, rate_bps: u64, slope_sigma_ppb: f64) -> EnvProfile {
        let mut p = Self::base(kind, rate_bps, 1);
        p.switch = SwitchProfile::cisco5700(p.link_rate_bps);
        p.wake_jitter = Self::vm_wake_jitter();
        // Dedicated smart NIC in passthrough: the DMA engine pulls
        // batches with an irregular cadence (our hypothesis for the
        // anomalous I ~ 0.5 at 40 Gbps: descriptors accumulate during
        // pull pauses and leave back-to-back).
        p.doorbell = Jitter::Normal {
            mean: 700.0 * NS as f64,
            sigma: 50.0 * NS as f64,
        };
        p.batch = BatchDist::Geometric { p: 0.62, max: 24 };
        p.pull_rearm = Jitter::Exp {
            mean: 600.0 * NS as f64,
        };
        // Descriptor-fetch cadence, load-adaptive like real completion
        // moderation: lightly loaded (40 Gbps) the engine lazily batches
        // fetches ~1.6 us apart, pacing the wire into phase-shifting
        // mini-clumps (I ~ 0.5); at high load (80 Gbps) moderation tightens
        // and fetch latency hides behind serialization, so IATs "get a
        // little more consistent" (§7) — I ~ 0.1.
        p.pull_read = if rate_bps >= 80_000_000_000 {
            Jitter::Exp {
                mean: 250.0 * NS as f64,
            }
        } else {
            Jitter::Exp {
                mean: 1_600.0 * NS as f64,
            }
        };
        p.recorder_ts = Self::connectx_ts();
        p.ts_slope_sigma_ppb = slope_sigma_ppb;
        p
    }

    /// FABRIC with shared SR-IOV VF NICs (§7 test 2, 80 Gbps shared, and
    /// §7.1's noisy variant).
    fn fabric_shared(kind: EnvKind, rate_bps: u64, noisy: bool) -> EnvProfile {
        let mut p = Self::base(kind, rate_bps, 1);
        p.switch = SwitchProfile::cisco5700(p.link_rate_bps);
        p.wake_jitter = Self::vm_wake_jitter();
        // The PF scheduler paces VF descriptors individually — our
        // hypothesis for why the *shared* NIC showed smaller IAT
        // deviation than the dedicated one at 40 Gbps (§7's "surprising
        // result"): no multi-descriptor bunching, just per-packet
        // scheduling noise.
        // The PF scheduler handles VF descriptors one at a time; each
        // idle re-arm costs a scheduling decision with per-packet jitter.
        p.doorbell = Jitter::Normal {
            mean: 900.0 * NS as f64,
            sigma: 12.0 * NS as f64,
        };
        p.batch = BatchDist::One;
        p.pull_rearm = Jitter::Exp {
            mean: 60.0 * NS as f64,
        };
        p.recorder_ts = Self::connectx_ts();
        p.ts_slope_sigma_ppb = 20_000.0;
        p.shared_vf = Some(if noisy {
            // §7.1: 8 iperf3 streams bouncing between 35 and 50 Gbps.
            SharedVfSpec {
                util_min: 0.35,
                util_max: 0.50,
                util_step: 0.02,
                util_period_ps: MS,
                burst_wait_mean_ps: 300.0 * NS as f64,
                pause: Jitter::Exp {
                    mean: 15.0 * US as f64,
                },
                pause_prob: 1e-3,
            }
        } else {
            // Idle site: only hypervisor chatter on the PF.
            SharedVfSpec {
                util_min: 0.01,
                util_max: 0.05,
                util_step: 0.01,
                util_period_ps: MS,
                burst_wait_mean_ps: 150.0 * NS as f64,
                pause: Jitter::Exp {
                    mean: 5.0 * US as f64,
                },
                pause_prob: 2e-5,
            }
        });
        if noisy {
            p.recorder_drop_prob = 2.0e-4;
            p.ts_slope_sigma_ppb = 250_000.0;
        }
        p
    }

    /// VM poll-loop jitter common to all FABRIC profiles: mostly tens of
    /// ns, with vCPU-preemption tails.
    fn vm_wake_jitter() -> Jitter {
        Jitter::Mix(vec![
            (
                0.93,
                Jitter::Normal {
                    mean: 0.0,
                    sigma: 25.0 * NS as f64,
                },
            ),
            (
                0.065,
                Jitter::Exp {
                    mean: 800.0 * NS as f64,
                },
            ),
            (
                0.005,
                Jitter::Exp {
                    mean: 8.0 * US as f64,
                },
            ),
        ])
    }

    /// ConnectX-6 timestamping: sampled-clock conversion wander plus
    /// white noise (§8.1).
    fn connectx_ts() -> TimestampModel {
        TimestampModel::HwClockConverted {
            noise: Jitter::Normal {
                mean: 0.0,
                sigma: 12.0 * NS as f64,
            },
            wander_amplitude_ps: 25 * NS as i64,
            wander_period_ps: 250 * US,
        }
    }

    /// Packets in the recorded stream at full scale.
    pub fn full_packet_count(&self) -> u64 {
        choir_packet::FrameSpec::new(self.frame_len, self.rate_bps).packets_in(self.duration_ps)
    }

    /// Inter-packet gap of the aggregate stream, ps.
    pub fn gap_ps(&self) -> u64 {
        choir_packet::FrameSpec::new(self.frame_len, self.rate_bps).gap_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_construct() {
        for kind in EnvKind::all() {
            let p = kind.profile();
            assert_eq!(p.kind, kind);
            assert!(p.rate_bps >= 40_000_000_000);
            assert!(p.runs >= 2);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn packet_counts_match_paper_scale() {
        let p = EnvKind::LocalSingle.profile();
        let n = p.full_packet_count();
        // Paper: 1,055,648 packets from 0.3 s at 40 Gbps.
        assert!((1_040_000..1_070_000).contains(&n), "{n}");
        let p80 = EnvKind::FabricDedicated80.profile();
        let n80 = p80.full_packet_count();
        // 6.97 Mpps * 0.3 s ~ 2.09M.
        assert!((2_080_000..2_120_000).contains(&n80), "{n80}");
    }

    #[test]
    fn dual_replayer_has_skew_and_two_replayers() {
        let p = EnvKind::LocalDual.profile();
        assert_eq!(p.replayers, 2);
        assert!(p.replay_start_skew != Jitter::None);
        let single = EnvKind::LocalSingle.profile();
        assert_eq!(single.replayers, 1);
        assert_eq!(single.replay_start_skew, Jitter::None);
    }

    #[test]
    fn shared_profiles_have_vf_dedicated_do_not() {
        assert!(EnvKind::FabricShared40.profile().shared_vf.is_some());
        assert!(EnvKind::FabricShared40Noisy.profile().shared_vf.is_some());
        assert!(EnvKind::FabricDedicated40A.profile().shared_vf.is_none());
        assert!(EnvKind::LocalSingle.profile().shared_vf.is_none());
    }

    #[test]
    fn only_noisy_shared_drops() {
        for kind in EnvKind::all() {
            let p = kind.profile();
            if kind == EnvKind::FabricShared40Noisy {
                assert!(p.recorder_drop_prob > 0.0);
            } else {
                assert_eq!(p.recorder_drop_prob, 0.0, "{kind:?}");
            }
        }
    }

    #[test]
    fn noisy_co_tenant_bounces_between_35_and_50_percent() {
        let p = EnvKind::FabricShared40Noisy.profile();
        let vf = p.shared_vf.unwrap();
        assert_eq!(vf.util_min, 0.35);
        assert_eq!(vf.util_max, 0.50);
    }

    #[test]
    fn dedicated_noisy_mirrors_dedicated_80() {
        // §7.1: dedicated hardware shields the data path.
        let a = EnvKind::FabricDedicated80.profile();
        let b = EnvKind::FabricDedicated80Noisy.profile();
        assert_eq!(a.rate_bps, b.rate_bps);
        assert_eq!(a.ts_slope_sigma_ppb, b.ts_slope_sigma_ppb);
    }
}
