//! # choir-testbed
//!
//! The paper's evaluation environments as simulator configurations, plus
//! the experiment runner that executes the full record-then-replay-N-times
//! pipeline and produces the per-run consistency reports behind every
//! figure and table.
//!
//! - [`profiles`] — the nine environments of §6–§7 (local bare-metal
//!   single/dual replayer; FABRIC dedicated/shared NICs at 40/80 Gbps,
//!   with and without a noisy co-tenant), each a set of calibrated noise
//!   parameters documented in place.
//! - [`runner`] — topology construction (generator → replayer(s) →
//!   recorder through one switch, as in both testbeds) and phase
//!   orchestration: record 0.3 s of the CBR stream, then run five replays,
//!   re-sampling the between-run clock state (PTP resync, timestamp servo
//!   slope) before each, and compare runs B–E against run A.

pub mod multidomain;
pub mod profiles;
pub mod runner;

pub use multidomain::{run_multidomain, MultiDomainConfig, MultiDomainOutput, MultiDomainProfile};
pub use profiles::{EnvKind, EnvProfile};
pub use runner::{
    sim_stats_report, Experiment, ExperimentConfig, ExperimentOutput, SimTuning, StreamingMode,
    SupervisorConfig,
};
// The deprecated run_experiment* shims stay re-exported so downstream
// code keeps compiling (with its own deprecation warnings) until it
// migrates to the Experiment builder; see DESIGN.md §16.
#[allow(deprecated)]
pub use runner::{
    run_experiment, run_experiment_streaming, run_experiment_streaming_supervised,
    run_experiment_tuned,
};
