//! Packet identity for the consistency metrics.
//!
//! Paper §3 (Eq. 1): "Packets between A and B are the same if they are
//! identical in all regions the evaluator determines define a packet." The
//! evaluator here is [`PacketId`]: a 128-bit identity either decoded from a
//! Choir trailer tag or derived by hashing frame contents (FNV-1a folded to
//! 128 bits) when no tag is present.

use crate::tag::ChoirTag;

/// 128-bit packet identity.
///
/// For tagged packets the layout is `[tag-kind marker | replayer | stream |
/// seq]`, which keeps ids from different replayers distinct — the property
/// §6.2's dual-replayer analysis depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u128);

const TAGGED_MARKER: u128 = 1 << 127;

impl PacketId {
    /// Identity from a Choir trailer tag (exact, collision-free).
    pub fn from_tag(tag: &ChoirTag) -> Self {
        let v = TAGGED_MARKER
            | ((tag.replayer as u128) << 80)
            | ((tag.stream as u128) << 64)
            | tag.seq as u128;
        PacketId(v)
    }

    /// Identity by hashing frame contents (for untagged traffic).
    pub fn from_bytes(data: &[u8]) -> Self {
        PacketId(fnv1a_128(data) & !TAGGED_MARKER)
    }

    /// True when this identity came from a trailer tag.
    pub fn is_tagged(&self) -> bool {
        self.0 & TAGGED_MARKER != 0
    }

    /// Recover the tag fields from a tagged identity.
    pub fn tag_fields(&self) -> Option<(u16, u16, u64)> {
        if !self.is_tagged() {
            return None;
        }
        Some((
            ((self.0 >> 80) & 0xffff) as u16,
            ((self.0 >> 64) & 0xffff) as u16,
            self.0 as u64,
        ))
    }
}

/// FNV-1a, 128-bit variant.
fn fnv1a_128(data: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_through_id() {
        let t = ChoirTag::new(7, 3, 123456789);
        let id = PacketId::from_tag(&t);
        assert!(id.is_tagged());
        assert_eq!(id.tag_fields(), Some((7, 3, 123456789)));
    }

    #[test]
    fn hash_ids_not_tagged() {
        let id = PacketId::from_bytes(b"some payload");
        assert!(!id.is_tagged());
        assert_eq!(id.tag_fields(), None);
    }

    #[test]
    fn hash_deterministic_and_sensitive() {
        assert_eq!(PacketId::from_bytes(b"x"), PacketId::from_bytes(b"x"));
        assert_ne!(PacketId::from_bytes(b"x"), PacketId::from_bytes(b"y"));
        assert_ne!(PacketId::from_bytes(b""), PacketId::from_bytes(b"\0"));
    }

    #[test]
    fn tagged_and_hashed_never_collide() {
        // The marker bit partitions the id space.
        let t = PacketId::from_tag(&ChoirTag::new(0, 0, 0));
        let h = PacketId::from_bytes(&t.0.to_be_bytes());
        assert_ne!(t, h);
    }
}
