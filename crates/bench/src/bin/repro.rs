//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <target> [--scale F] [--seed N] [--runs N] [--json DIR] [--obs] [--epsilon F]
//!               [--shards N]
//!
//! targets:
//!   fig2 fig3          metric worst-case constructions (L and I reach 1)
//!   fig4               local single replayer histograms (IAT + latency)
//!   fig5               local dual replayer IAT histogram
//!   fig6 fig7 fig8     FABRIC 40 Gbps (dedicated-1 / shared / dedicated-2)
//!   fig9               FABRIC 80 Gbps (dedicated + shared IAT histograms)
//!   fig10              FABRIC shared 40 Gbps with noisy co-tenant
//!   noisy-dedicated    FABRIC dedicated 80 Gbps with noisy co-tenant
//!   table1             dual-replayer edit-script distance statistics
//!   table2             mean metrics for all nine environments
//!   matrix             all-pairs κ matrix + sharded-engine benchmark
//!                      (writes BENCH_matrix.json; default 16 runs)
//!   pipeline           end-to-end packets/sec, per-packet vs coalesced
//!                      hot path, with bit-identity gates; with
//!                      --shards N also runs the multi-domain fleet on
//!                      the sharded engine at 1..N shards, hard-gating
//!                      serial == sharded captures and κ bit-equality,
//!                      and records the speedup curve
//!                      (writes BENCH_pipeline.json)
//!   stream             streaming incremental-κ engine: full-lookahead
//!                      result gated bit-identical to the batch
//!                      analysis, bounded-window residency gated at the
//!                      configured window, bounded κ gated within
//!                      --epsilon of batch on drop-free pairs with its
//!                      error interval containing batch κ, window-size
//!                      convergence sweep, throughput in pkts/s
//!                      (writes BENCH_stream.json)
//!   recover            crash-tolerance sweep: kill-point density x
//!                      checkpoint cadence over the supervised streaming
//!                      engine, gated on the recovered κ and the whole
//!                      snapshot trail staying bit-identical to an
//!                      uninterrupted run, zero injected panics escaping
//!                      the supervisor, and salvage reading back exactly
//!                      the records preceding an injected truncation
//!                      (writes BENCH_recover.json)
//!   service            κ-as-a-service daemon: N tenants x M streams
//!                      driven over real sockets, hard-killed and
//!                      restarted mid-ingest, every served κ (live
//!                      snapshots, finals, matrix cells) hard-gated
//!                      bit-identical to post-hoc batch analysis, the
//!                      trial-store residency gated under its budget
//!                      while evictions churn, sustained-ingest curve
//!                      recorded (writes BENCH_service.json; --runs N
//!                      sets the tenant count)
//!
//! `--obs` (matrix / pipeline / stream / recover) additionally exercises the in-tree
//! observability layer: an obs-enabled pass must stay bit-identical to
//! the plain one, the disabled-path overhead is gated (pipeline), and
//! the span/counter profile is rendered and exported
//! (`OBS_snapshot.json`; see DESIGN.md §11).
//!   throughput         real-time replay engine rate (the 100 Gbps claim)
//!   chaos              fault-rate sweep: κ vs graceful degradation, seeded
//!   calibrate          compact paper-vs-measured sweep over all envs
//!   ablate             noise-mechanism ablation on the dedicated-NIC env
//!   dump-profile ENV   write an environment profile as editable JSON
//!   custom FILE        run a JSON environment profile (see dump-profile)
//!   ptp                IEEE 1588 servo convergence demo over the simulator
//!   all                everything above
//! ```
//!
//! `--scale` scales the per-trial packet count (1.0 = the paper's ~1M
//! packets at 40 Gbps). The default 0.25 keeps a full `repro all` in the
//! minutes range; metric values are scale-stable because they are
//! normalized (see EXPERIMENTS.md).

use std::io::Write;

use choir_bench::{fmt, paper, run_envs_parallel_with};
use choir_core::metrics::{PairAnalyzer, Trial};
use choir_core::replay::engine::run_replay_spin;
use choir_core::replay::recording::Recording;
use choir_dpdk::loopback::{LoopbackPort, RealClock, RealtimePlane};
use choir_dpdk::Mempool;
use choir_packet::{ChoirTag, FrameBuilder, FrameSpec};
use choir_testbed::{EnvKind, ExperimentOutput};

struct Opts {
    target: String,
    arg: Option<String>,
    scale: f64,
    seed: u64,
    runs: Option<usize>,
    json_dir: Option<String>,
    obs: bool,
    epsilon: f64,
    shards: usize,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mut opts = Opts {
        target: String::new(),
        arg: None,
        scale: 0.25,
        seed: 0x00C4_0112,
        runs: None,
        json_dir: None,
        obs: false,
        epsilon: 0.01,
        shards: 0,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--obs" => opts.obs = true,
            "--shards" => {
                opts.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs an integer")
            }
            "--epsilon" => {
                opts.epsilon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--epsilon needs a float")
            }
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a float")
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer")
            }
            "--runs" => {
                opts.runs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs an integer"),
                )
            }
            "--json" => opts.json_dir = args.next(),
            other if opts.target.is_empty() => opts.target = other.to_string(),
            other if opts.arg.is_none() => opts.arg = Some(other.to_string()),
            other => panic!("unexpected argument {other}"),
        }
    }
    if opts.target.is_empty() {
        opts.target = "all".into();
    }
    opts
}

fn main() {
    let opts = parse_args();
    match opts.target.as_str() {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => figure_env(EnvKind::LocalSingle, "Figure 4", true, &opts),
        "fig5" => figure_env(EnvKind::LocalDual, "Figure 5", false, &opts),
        "fig6" => figure_env(EnvKind::FabricDedicated40A, "Figure 6", true, &opts),
        "fig7" => figure_env(EnvKind::FabricShared40, "Figure 7", true, &opts),
        "fig8" => figure_env(EnvKind::FabricDedicated40B, "Figure 8", true, &opts),
        "fig9" => {
            figure_env(EnvKind::FabricDedicated80, "Figure 9a", false, &opts);
            figure_env(EnvKind::FabricShared80, "Figure 9b", false, &opts);
        }
        "fig10" => figure_env(EnvKind::FabricShared40Noisy, "Figure 10", true, &opts),
        "noisy-dedicated" => {
            figure_env(EnvKind::FabricDedicated80Noisy, "Sec 7.1 (dedicated)", false, &opts)
        }
        "table1" => table1(&opts),
        "table2" => table2(&opts),
        "matrix" => matrix(&opts),
        "pipeline" => pipeline(&opts),
        "stream" => stream(&opts),
        "recover" => recover(&opts),
        "service" => service(&opts),
        "throughput" => throughput(),
        "chaos" => chaos(&opts),
        "calibrate" => calibrate(&opts),
        "ablate" => ablate(&opts),
        "demo-pcaps" => demo_pcaps(),
        "dump-profile" => dump_profile(&opts),
        "custom" => custom(&opts),
        "ptp" => ptp_demo(),
        "all" => {
            fig2();
            fig3();
            figure_env(EnvKind::LocalSingle, "Figure 4", true, &opts);
            figure_env(EnvKind::LocalDual, "Figure 5", false, &opts);
            table1(&opts);
            figure_env(EnvKind::FabricDedicated40A, "Figure 6", true, &opts);
            figure_env(EnvKind::FabricShared40, "Figure 7", true, &opts);
            figure_env(EnvKind::FabricDedicated40B, "Figure 8", true, &opts);
            figure_env(EnvKind::FabricDedicated80, "Figure 9a", false, &opts);
            figure_env(EnvKind::FabricShared80, "Figure 9b", false, &opts);
            figure_env(EnvKind::FabricDedicated80Noisy, "Sec 7.1 (dedicated)", false, &opts);
            figure_env(EnvKind::FabricShared40Noisy, "Figure 10", true, &opts);
            table2(&opts);
            throughput();
        }
        other => {
            eprintln!("unknown target {other}; see source header for the list");
            std::process::exit(2);
        }
    }
}

fn run(kind: EnvKind, opts: &Opts) -> ExperimentOutput {
    let mut profile = kind.profile();
    if let Some(r) = opts.runs {
        profile.runs = r;
    }
    let out = choir_testbed::Experiment::new(choir_testbed::ExperimentConfig {
        profile,
        scale: opts.scale,
        seed: opts.seed,
    })
    .run();
    write_json(kind, &out, opts);
    out
}

fn write_json(kind: EnvKind, out: &ExperimentOutput, opts: &Opts) {
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{}.json", kind.label().replace([' ', '.'], "_"));
        let mut f = std::fs::File::create(&path).expect("create json");
        let body = serde_json::to_string_pretty(&out.report).expect("serialize report");
        f.write_all(body.as_bytes()).expect("write json");
        println!("  [wrote {path}]");
    }
}

/// Fig. 2: the maximum-L construction scores exactly L = 1.
fn fig2() {
    println!("== Figure 2: maximum possible L situation ==");
    let t_end = 1_000_000u64;
    let mut a = Trial::new();
    let mut b = Trial::new();
    for i in 0..5u64 {
        a.push_tagged(0, 0, i, 0);
    }
    a.push_tagged(9, 0, 0, t_end);
    b.push_tagged(9, 0, 1, 0);
    for i in 0..5u64 {
        b.push_tagged(0, 0, i, t_end);
    }
    let l = PairAnalyzer::new(&a, &b).metrics().l;
    println!("   common packets at opposite ends of A and B -> L = {l}");
    assert!((l - 1.0).abs() < 1e-12);
    println!("   normalization bound reached exactly (paper: max value used as denominator)\n");
}

/// Fig. 3: the maximum-I construction scores exactly I = 1.
fn fig3() {
    println!("== Figure 3: maximum possible I situation ==");
    let t = 1_000_000u64;
    let n = 6u64;
    let mut a = Trial::new();
    a.push_tagged(0, 0, 0, 0);
    for i in 1..n {
        a.push_tagged(0, 0, i, t);
    }
    let mut b = Trial::new();
    for i in 0..n - 1 {
        b.push_tagged(0, 0, i, 0);
    }
    b.push_tagged(0, 0, n - 1, t);
    let i_val = PairAnalyzer::new(&a, &b).metrics().i;
    println!("   first/last common packets at opposite extremes -> I = {i_val}");
    assert!((i_val - 1.0).abs() < 1e-12);
    println!("   normalization bound reached exactly\n");
}

/// Run one environment and print its histograms and per-run metrics.
fn figure_env(kind: EnvKind, title: &str, latency_hist: bool, opts: &Opts) {
    println!(
        "== {title}: {} (scale {}, seed {}) ==",
        kind.label(),
        opts.scale,
        opts.seed
    );
    let out = run(kind, opts);
    println!(
        "   {} packets per trial, {} runs, {} sim events",
        out.trials[0].len(),
        out.trials.len(),
        out.events
    );
    let row = paper::row_for(kind);
    print!("{}", fmt::run_summary(&out.report, &row));
    println!("-- IAT delta histogram (all runs vs run A) --");
    print!("{}", out.report.merged_iat_hist().render_ascii(48));
    if latency_hist {
        println!("-- latency delta histogram (all runs vs run A) --");
        print!("{}", out.report.merged_latency_hist().render_ascii(48));
    }
    println!();
}

/// Table 1: edit-script distance statistics for the dual-replayer runs.
fn table1(opts: &Opts) {
    println!("== Table 1: dual-replayer edit-script distances ==");
    let out = run(EnvKind::LocalDual, opts);
    println!(
        "{:<4} | {:>12} {:>12} | {:>12} {:>12} | {:>8} {:>8}   (paper values in parens)",
        "Run", "Mean", "(sigma)", "Abs.Mean", "(sigma)", "Min", "Max"
    );
    for (r, p) in out.report.runs.iter().zip(paper::table1().iter()) {
        let s = r.edit_stats;
        println!(
            "{:<4} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2} | {:>8} {:>8}",
            r.label, s.mean, s.stddev, s.abs_mean, s.abs_stddev, s.min, s.max
        );
        println!(
            "     | ({:>10.2}) ({:>10.2}) | ({:>10.2}) ({:>10.2}) | ({:>6}) ({:>6})",
            p.1, p.2, p.3, p.4, p.5, p.6
        );
    }
    let total: usize = out.report.runs.iter().map(|r| r.moved).sum();
    let frac = out.report.runs.iter().map(|r| r.moved as f64 / r.common.max(1) as f64).sum::<f64>()
        / out.report.runs.len() as f64;
    println!(
        "moved packets total {total}; mean fraction of capture {:.1}% (paper: {} = {:.1}%)\n",
        frac * 100.0,
        paper::TABLE1_EDIT_SCRIPT_PACKETS,
        paper::TABLE1_EDIT_SCRIPT_FRACTION * 100.0
    );
}

/// Table 2: mean metrics for every environment (environments simulated
/// in parallel across the host's cores).
fn table2(opts: &Opts) {
    println!("== Table 2: mean consistency metrics per environment ==");
    print!("{}", fmt::table2_header());
    let kinds = EnvKind::all();
    let outs = run_envs_parallel_with(&kinds, opts.scale, opts.seed, opts.runs);
    for (kind, out) in kinds.iter().zip(outs) {
        write_json(*kind, &out, opts);
        let row = paper::row_for(*kind);
        print!("{}", fmt::table2_pair(*kind, &row.mean, &out.report.mean));
    }
    println!();
}

/// All-pairs κ matrix over one environment's runs, with the consistency
/// engine benchmarked three ways over the same trials:
///
/// - **naive**: one spawned thread and one uncached analysis per pair —
///   `analyze_runs_parallel`'s thread-per-comparison strategy applied to
///   the full matrix (the pre-engine baseline);
/// - **sharded**: the bounded worker pool over shared `TrialIndex`es;
/// - **serial**: the uncached single-thread reference.
///
/// All three must agree bit-for-bit; the timings and the per-stage
/// breakdown are written to `BENCH_matrix.json` so the perf trajectory is
/// tracked across PRs.
fn matrix(opts: &Opts) {
    use choir_core::metrics::allpairs::{
        all_pairs_blocked_with, all_pairs_serial_with, all_pairs_sharded_with, pair_count,
    };
    use choir_core::metrics::report::{analyze_with, trial_label, TrialComparison};
    use choir_core::metrics::KappaConfig;
    use std::time::Instant;

    let mut profile = EnvKind::LocalSingle.profile();
    profile.runs = opts.runs.unwrap_or(16);
    println!(
        "== matrix: all-pairs κ over {} runs of {} (scale {}, seed {}) ==",
        profile.runs,
        profile.kind.label(),
        opts.scale,
        opts.seed
    );
    let out = choir_testbed::Experiment::new(choir_testbed::ExperimentConfig {
        profile,
        scale: opts.scale,
        seed: opts.seed,
    })
    .run();
    let trials = &out.trials;
    let n = trials.len();
    let pairs = pair_count(n);
    let cfg = KappaConfig::paper();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "   {} trials x {} packets -> {} pairs; {} CPU(s), shards = {}",
        n,
        trials[0].len(),
        pairs,
        cpus,
        cpus
    );

    // Naive baseline: thread per pair, every comparison rebuilding its
    // hash tables and span statistics from scratch.
    let t_naive = Instant::now();
    let naive: Vec<TrialComparison> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .map(|(i, j)| {
                let cfg = &cfg;
                s.spawn(move || {
                    let label = format!("{}-{}", trial_label(i), trial_label(j));
                    analyze_with(label, &trials[i], &trials[j], cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pair thread"))
            .collect()
    });
    let naive_ns = t_naive.elapsed().as_nanos() as u64;

    // The sharded engine: per-trial indexes built once, bounded pool.
    let t_sharded = Instant::now();
    let (m, engine) = all_pairs_sharded_with(trials, cpus, &cfg).expect("index bench trials");
    let sharded_ns = t_sharded.elapsed().as_nanos() as u64;

    // Uncached single-thread reference — the ground truth.
    let t_serial = Instant::now();
    let serial = all_pairs_serial_with(trials, &cfg);
    let serial_ns = t_serial.elapsed().as_nanos() as u64;

    for (k, cell) in m.cells.iter().enumerate() {
        assert_eq!(
            cell.metrics.kappa.to_bits(),
            serial.cells[k].metrics.kappa.to_bits(),
            "sharded vs serial mismatch at {}",
            cell.label
        );
        assert_eq!(
            cell.metrics.kappa.to_bits(),
            naive[k].metrics.kappa.to_bits(),
            "sharded vs naive mismatch at {}",
            cell.label
        );
    }
    println!("   bit-identical κ across sharded / naive / serial paths ({pairs} pairs)");

    // Block-size sweep gate: the cache-blocked scheduler must be
    // bit-identical to the serial reference at degenerate and typical
    // block sizes, serial and parallel alike.
    for &block in &[1usize, 2, n.max(1)] {
        for &shards in &[1usize, cpus] {
            let (mb, _) = all_pairs_blocked_with(trials, shards, block, &cfg)
                .expect("index bench trials");
            for (k, cell) in mb.cells.iter().enumerate() {
                assert_eq!(
                    cell.metrics.kappa.to_bits(),
                    serial.cells[k].metrics.kappa.to_bits(),
                    "blocked(block={block}, shards={shards}) vs serial mismatch at {}",
                    cell.label
                );
            }
        }
    }
    println!("   bit-identical κ across blocked schedules (blocks 1/2/{n}, shards 1/{cpus})");

    print!("{}", fmt::kappa_matrix(&m));
    let summary = m.summary().expect("two or more trials");
    println!(
        "   off-diagonal κ: min {:.4}  median {:.4}  max {:.4}  (baseline-row mean {:.4})",
        summary.kappa_min, summary.kappa_median, summary.kappa_max, out.report.mean.kappa
    );
    let totals = m.total_timings();
    print!("   {}", fmt::stage_timings(&totals, pairs));

    let speedup_naive = naive_ns as f64 / sharded_ns.max(1) as f64;
    let speedup_serial = serial_ns as f64 / sharded_ns.max(1) as f64;
    let pairs_per_sec = pairs as f64 / (sharded_ns.max(1) as f64 / 1e9);
    println!(
        "   naive thread-per-pair {:.1} ms | sharded {:.1} ms ({:.0} pairs/s, peak {} worker(s)) | serial {:.1} ms",
        naive_ns as f64 / 1e6,
        sharded_ns as f64 / 1e6,
        pairs_per_sec,
        engine.peak_workers,
        serial_ns as f64 / 1e6,
    );
    println!(
        "   speedup vs naive {speedup_naive:.2}x, vs serial {speedup_serial:.2}x  \
         (index build {:.2} ms)",
        engine.index_build_ns as f64 / 1e6
    );

    // --obs: one extra sharded pass with the obs layer live, kept out of
    // the timed comparisons above so the benchmark numbers stay clean.
    // The instrumented engine must still match the serial reference
    // bit-for-bit.
    let obs_snap = if opts.obs {
        use choir_core::obs;
        obs::configure(&obs::ObsConfig {
            enabled: true,
            ring_capacity: 4096,
        });
        obs::reset();
        obs::set_enabled(true);
        let (m_obs, _) = all_pairs_sharded_with(trials, cpus, &cfg).expect("index bench trials");
        for (k, cell) in m_obs.cells.iter().enumerate() {
            assert_eq!(
                cell.metrics.kappa.to_bits(),
                serial.cells[k].metrics.kappa.to_bits(),
                "obs-enabled sharded engine must stay bit-identical at {}",
                cell.label
            );
        }
        let snap = obs::snapshot();
        obs::set_enabled(false);
        println!("   obs-enabled sharded pass bit-identical to serial ({pairs} pairs)");
        print!("{}", fmt::render_obs(&snap));
        Some(snap)
    } else {
        None
    };

    #[derive(serde::Serialize)]
    struct MatrixBench {
        trials: usize,
        pairs: usize,
        packets_per_trial: usize,
        cpus: usize,
        shards_used: usize,
        peak_workers: usize,
        block_size: usize,
        index_build_ns: u64,
        naive_thread_per_pair_ns: u64,
        sharded_ns: u64,
        serial_ns: u64,
        speedup_vs_naive: f64,
        speedup_vs_serial: f64,
        pairs_per_sec: f64,
        stage_totals: choir_core::metrics::StageTimings,
        summary: choir_core::metrics::MatrixSummary,
        obs: Option<choir_core::ObsSnapshot>,
    }
    let bench = MatrixBench {
        trials: n,
        pairs,
        packets_per_trial: trials[0].len(),
        cpus,
        shards_used: engine.shards_used,
        peak_workers: engine.peak_workers,
        block_size: engine.block_size,
        index_build_ns: engine.index_build_ns,
        naive_thread_per_pair_ns: naive_ns,
        sharded_ns,
        serial_ns,
        speedup_vs_naive: speedup_naive,
        speedup_vs_serial: speedup_serial,
        pairs_per_sec,
        stage_totals: totals,
        summary,
        obs: obs_snap,
    };
    let body = serde_json::to_string_pretty(&bench).expect("serialize bench record");
    std::fs::write("BENCH_matrix.json", body).expect("write BENCH_matrix.json");
    println!("   [wrote BENCH_matrix.json]\n");
}

/// End-to-end hot-path benchmark: the full generate → forward → record →
/// replay → capture pipeline timed under the pre-PR per-packet event path
/// (`BinaryHeap`, one `Ev::Deliver` per packet) and under the coalesced
/// timing-wheel path, reported as packets/sec. Correctness gates — the
/// CI smoke step fails ONLY on these, never on throughput:
///
/// - same seed ⇒ byte-identical captures within each path (every run is
///   executed twice and every observation compared), and κ = 1 between
///   the repeats;
/// - the timing wheel pops events in exactly the heap's `(time, seq)`
///   order, so wheel and heap captures are identical at equal coalescing
///   settings.
///
/// Writes `BENCH_pipeline.json`, seeding the end-to-end throughput
/// trajectory.
fn pipeline(opts: &Opts) {
    use choir_core::metrics::report::analyze_with;
    use choir_core::metrics::KappaConfig;
    use choir_netsim::QueueKind;
    use choir_testbed::{sim_stats_report, Experiment, SimTuning};
    use std::time::Instant;

    let mut profile = EnvKind::LocalSingle.profile();
    if let Some(r) = opts.runs {
        profile.runs = r;
    }
    let runs = profile.runs;
    let cfg = choir_testbed::ExperimentConfig {
        profile,
        scale: opts.scale,
        seed: opts.seed,
    };
    println!(
        "== pipeline: end-to-end hot path, per-packet vs coalesced (scale {}, seed {}, {} runs) ==",
        opts.scale, opts.seed, runs
    );

    let timed = |tuning: SimTuning| {
        let t = Instant::now();
        let out = Experiment::new(cfg.clone()).tuning(tuning).run();
        (t.elapsed().as_nanos() as u64, out)
    };

    // Each path runs REPS times: the repeats feed the bit-identity
    // gates, and the minimum capture time is the throughput estimate
    // (the noise-robust choice on a shared machine — any slower sample
    // is the same deterministic work plus interference). Reps alternate
    // old/new so both paths sample the same load windows.
    const REPS: usize = 3;
    let (old_total_ns, old) = timed(SimTuning::per_packet());
    let (new_total_ns, new) = timed(SimTuning::default());
    let mut old_reruns = Vec::new();
    let mut new_reruns = Vec::new();
    for _ in 1..REPS {
        old_reruns.push(timed(SimTuning::per_packet()).1);
        new_reruns.push(timed(SimTuning::default()).1);
    }
    // Same coalescing on the reference heap: isolates the wheel's order.
    let (_, heap_ref) = timed(SimTuning {
        queue: QueueKind::Heap,
        ..SimTuning::default()
    });
    // The benchmark proper is the capture pipeline; the all-pairs κ
    // analysis appended by Experiment::run is path-independent work that
    // `repro matrix` benchmarks on its own.
    let old_ns = old_reruns
        .iter()
        .map(|o| o.capture_wall_ns)
        .fold(old.capture_wall_ns, u64::min);
    let new_ns = new_reruns
        .iter()
        .map(|o| o.capture_wall_ns)
        .fold(new.capture_wall_ns, u64::min);

    // -- correctness gates (the only things that may fail this target) --
    for rerun in &old_reruns {
        assert_eq!(
            old.trials, rerun.trials,
            "per-packet path: same seed must produce byte-identical captures"
        );
    }
    for rerun in &new_reruns {
        assert_eq!(
            new.trials, rerun.trials,
            "coalesced path: same seed must produce byte-identical captures"
        );
    }
    assert_eq!(
        new.trials, heap_ref.trials,
        "timing wheel must pop events in exactly the heap's (time, seq) order"
    );
    let kcfg = KappaConfig::paper();
    for (i, (a, b)) in new.trials.iter().zip(&new_reruns[0].trials).enumerate() {
        let kappa = analyze_with(format!("repeat-{i}"), a, b, &kcfg).metrics.kappa;
        assert!(
            (kappa - 1.0).abs() < f64::EPSILON,
            "repeat of trial {i} must score kappa = 1, got {kappa}"
        );
    }
    println!(
        "   bit-identity: per-packet repeat OK, coalesced repeat OK (kappa = 1), wheel == heap OK"
    );

    let total_packets: u64 = new.trials.iter().map(|t| t.len() as u64).sum();
    let old_pps = total_packets as f64 / (old_ns.max(1) as f64 / 1e9);
    let new_pps = total_packets as f64 / (new_ns.max(1) as f64 / 1e9);
    let speedup = new_pps / old_pps.max(f64::MIN_POSITIVE);
    println!(
        "   per-packet path: {:>8.1} ms capture ({:>7.1} ms with analysis), {:>10.0} pps  ({} events, queue depth peak {})",
        old_ns as f64 / 1e6,
        old_total_ns as f64 / 1e6,
        old_pps,
        old.sim_stats.events_processed,
        old.sim_stats.queue_depth_peak,
    );
    println!(
        "   coalesced path:  {:>8.1} ms capture ({:>7.1} ms with analysis), {:>10.0} pps  ({} events, queue depth peak {})",
        new_ns as f64 / 1e6,
        new_total_ns as f64 / 1e6,
        new_pps,
        new.sim_stats.events_processed,
        new.sim_stats.queue_depth_peak,
    );
    println!(
        "   coalescing: {} burst events carried {} packets ({:.2} packets/event overall), {} wire events elided",
        new.sim_stats.coalesced_events,
        new.sim_stats.coalesced_packets,
        new.sim_stats.packets_per_event(),
        new.sim_stats.wire_events_elided,
    );
    println!(
        "   speedup: {speedup:.2}x{}",
        if speedup < 2.0 {
            "  (below the 2x target — informational, not a failure)"
        } else {
            ""
        }
    );

    // -- observability pass (--obs): overhead gate + bit-identity -------
    //
    // Every run above executed with the obs layer unconfigured, so
    // `new_ns` is the min-of-REPS *plain* capture time. Interleave
    // disabled and enabled reps (same load windows for both), gate the
    // disabled path at plain + 1% + a 5 ms noise floor, and report the
    // enabled overhead informationally. Both variants must reproduce the
    // plain captures byte-for-byte — instrumentation may not touch
    // simulated time or any RNG stream. Methodology: DESIGN.md §11.
    let obs_snap = if opts.obs {
        use choir_core::obs;
        obs::configure(&obs::ObsConfig {
            enabled: false,
            ring_capacity: 4096,
        });
        let mut disabled_ns = u64::MAX;
        let mut enabled_ns = u64::MAX;
        for _ in 0..REPS {
            obs::set_enabled(false);
            let (_, out) = timed(SimTuning::default());
            disabled_ns = disabled_ns.min(out.capture_wall_ns);
            assert_eq!(
                out.trials, new.trials,
                "obs-disabled run must be bit-identical to the plain run"
            );
            obs::reset();
            obs::set_enabled(true);
            let (_, out) = timed(SimTuning::default());
            enabled_ns = enabled_ns.min(out.capture_wall_ns);
            assert_eq!(
                out.trials, new.trials,
                "obs-enabled run must be bit-identical to the plain run"
            );
        }
        let snap = obs::snapshot();
        obs::set_enabled(false);
        let allowed_ns = new_ns + new_ns / 100 + 5_000_000;
        assert!(
            disabled_ns <= allowed_ns,
            "obs disabled-path overhead exceeds 1% (+5 ms floor): plain {new_ns} ns, disabled {disabled_ns} ns"
        );
        println!(
            "   obs: bit-identical with layer disabled and enabled; capture min plain {:.1} ms, disabled {:.1} ms, enabled {:.1} ms ({:+.1}%)",
            new_ns as f64 / 1e6,
            disabled_ns as f64 / 1e6,
            enabled_ns as f64 / 1e6,
            100.0 * (enabled_ns as f64 - new_ns as f64) / new_ns.max(1) as f64,
        );
        print!("{}", fmt::render_obs(&snap));
        let body = serde_json::to_string_pretty(&snap).expect("serialize obs snapshot");
        std::fs::write("OBS_snapshot.json", body).expect("write OBS_snapshot.json");
        println!("   [wrote OBS_snapshot.json]");
        Some(snap)
    } else {
        None
    };

    // -- multicore pass (--shards N): the sharded discrete-event engine --
    //
    // Runs the multi-domain ring fleet (2N sites, so every shard owns at
    // least two) on the serial engine and on 1..N shards. Hard gates —
    // the CI smoke step fails ONLY on these, never on speedup:
    //
    // - every sharded layout's merged fleet trials are byte-identical to
    //   the serial engine's, and every per-run κ matches bit for bit;
    // - every layout repeats bit-identically at a fixed seed;
    // - summing engine counters (events, remote packets) are exact
    //   across the partition.
    //
    // Wall-clock speedup is recorded with `host_cores` so the curve is
    // interpretable: on a single-core host the coordinated shards time-
    // slice one CPU and speedup < 1 is the expected, honest result.
    #[derive(serde::Serialize)]
    struct MulticorePoint {
        shards: usize,
        capture_ns: u64,
        speedup_vs_serial: f64,
        sync_windows: u64,
        cross_shard_packets: u64,
    }
    #[derive(serde::Serialize)]
    struct MulticoreBench {
        sites: usize,
        runs: usize,
        scale: f64,
        packets_per_trial: usize,
        host_cores: usize,
        serial_capture_ns: u64,
        deterministic: bool,
        curve: Vec<MulticorePoint>,
    }
    let multicore = if opts.shards > 0 {
        use choir_testbed::{run_multidomain, MultiDomainConfig, MultiDomainProfile};
        let sites = 2 * opts.shards.max(1);
        // The fleet multiplies the packet volume by `sites` and runs
        // 2 + 2N full experiments, so it gets a fraction of --scale;
        // every gate is scale-invariant.
        let mc_scale = (opts.scale * 0.1).max(0.0005);
        let mut profile = MultiDomainProfile::ring(sites);
        profile.runs = 2;
        let mc_runs = profile.runs;
        let mc_cfg = MultiDomainConfig {
            profile,
            scale: mc_scale,
            seed: opts.seed,
        };
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        println!(
            "   multicore: {} sites x {} runs at scale {} on {} host core(s)",
            sites, mc_runs, mc_scale, host_cores
        );
        let md = |shards: usize| {
            run_multidomain(
                &mc_cfg,
                SimTuning {
                    shards,
                    ..SimTuning::default()
                },
            )
        };
        // Two serial executions: repeat-determinism gate + min-of-2 time.
        let serial = md(0);
        let serial_rep = md(0);
        assert_eq!(
            serial.trials, serial_rep.trials,
            "serial fleet must repeat byte-identically"
        );
        let serial_ns = serial.capture_wall_ns.min(serial_rep.capture_wall_ns);
        let mut curve = Vec::new();
        for shards in 1..=opts.shards {
            let a = md(shards);
            let b = md(shards);
            assert_eq!(
                a.trials, b.trials,
                "{shards}-shard fleet must repeat byte-identically"
            );
            assert_eq!(
                a.trials, serial.trials,
                "{shards}-shard fleet must match the serial engine byte for byte"
            );
            for (s, p) in serial.report.runs.iter().zip(&a.report.runs) {
                assert_eq!(
                    s.metrics.kappa.to_bits(),
                    p.metrics.kappa.to_bits(),
                    "κ must match the serial engine bit for bit at {shards} shards"
                );
            }
            assert_eq!(
                a.sim_stats.events_processed, serial.sim_stats.events_processed,
                "summed shard event counts must equal the serial engine's"
            );
            assert_eq!(
                a.sim_stats.remote_packets, serial.sim_stats.remote_packets,
                "summed cross-shard packet counts must equal the serial engine's"
            );
            let capture_ns = a.capture_wall_ns.min(b.capture_wall_ns);
            let speedup = serial_ns as f64 / capture_ns.max(1) as f64;
            println!(
                "   multicore {shards} shard(s): {:>8.1} ms capture, speedup {speedup:.2}x, {} sync windows, {} cross-shard packets",
                capture_ns as f64 / 1e6,
                a.sync.windows,
                a.sync.remote_packets,
            );
            curve.push(MulticorePoint {
                shards,
                capture_ns,
                speedup_vs_serial: speedup,
                sync_windows: a.sync.windows,
                cross_shard_packets: a.sync.remote_packets,
            });
        }
        println!(
            "   multicore determinism: serial == sharded captures and κ bit-equal at every layout"
        );
        Some(MulticoreBench {
            sites,
            runs: mc_runs,
            scale: mc_scale,
            packets_per_trial: serial.trials[0].len(),
            host_cores,
            serial_capture_ns: serial_ns,
            deterministic: true,
            curve,
        })
    } else {
        None
    };

    #[derive(serde::Serialize)]
    struct PipelineBench {
        scale: f64,
        seed: u64,
        runs: usize,
        packets_per_trial: usize,
        total_packets: u64,
        per_packet_ns: u64,
        coalesced_ns: u64,
        per_packet_pps: f64,
        coalesced_pps: f64,
        speedup: f64,
        bit_identical: bool,
        per_packet_sim: choir_core::metrics::SimStatsReport,
        coalesced_sim: choir_core::metrics::SimStatsReport,
        multicore: Option<MulticoreBench>,
        obs: Option<choir_core::ObsSnapshot>,
    }
    let bench = PipelineBench {
        scale: opts.scale,
        seed: opts.seed,
        runs,
        packets_per_trial: new.trials[0].len(),
        total_packets,
        per_packet_ns: old_ns,
        coalesced_ns: new_ns,
        per_packet_pps: old_pps,
        coalesced_pps: new_pps,
        speedup,
        bit_identical: true,
        per_packet_sim: sim_stats_report(&old.sim_stats),
        coalesced_sim: sim_stats_report(&new.sim_stats),
        multicore,
        obs: obs_snap,
    };
    let body = serde_json::to_string_pretty(&bench).expect("serialize bench record");
    std::fs::write("BENCH_pipeline.json", body).expect("write BENCH_pipeline.json");
    println!("   [wrote BENCH_pipeline.json]\n");
}

/// Streaming incremental-κ benchmark with two hard correctness gates
/// (the CI smoke step fails ONLY on these, never on throughput):
///
/// - **exactness**: with full lookahead, the streaming engine's final
///   result must be bit-identical to the batch `analyze_indexed` result
///   on every generated pair, at every tested chunking (including
///   packet-at-a-time and whole-trial-at-once);
/// - **boundedness**: with a lookahead window `w` on a trial at least
///   10× larger, peak resident packets must never exceed `w` — even
///   under the worst feeding order (all of A before any of B).
///
/// Throughput (packets/s through `push` + `finalize`) and the peak
/// resident window are reported and written to `BENCH_stream.json`.
fn stream(opts: &Opts) {
    #[allow(deprecated)] // the gate is defined against the batch shim
    use choir_core::metrics::allpairs::{analyze_indexed, pair_count, TrialIndex};
    use choir_core::metrics::report::trial_label;
    use choir_core::metrics::{
        IncrementalComparison, KappaConfig, Side, StreamConfig, StreamOutcome,
    };
    use std::time::Instant;

    let mut profile = EnvKind::LocalSingle.profile();
    profile.runs = opts.runs.unwrap_or(4);
    println!(
        "== stream: incremental κ over {} runs of {} (scale {}, seed {}) ==",
        profile.runs,
        profile.kind.label(),
        opts.scale,
        opts.seed
    );
    let out = choir_testbed::Experiment::new(choir_testbed::ExperimentConfig {
        profile,
        scale: opts.scale,
        seed: opts.seed,
    })
    .run();
    let trials = &out.trials;
    let n = trials.len();
    let per_trial = trials[0].len();
    let pairs = pair_count(n);
    println!("   {n} trials x {per_trial} packets -> {pairs} pairs");

    // Feed a pair into a fresh engine, alternating sides chunk by chunk
    // (`chunk >= len` degenerates to whole-side bursts).
    let stream_pair = |a: &Trial, b: &Trial, cfg: StreamConfig, chunk: usize| -> StreamOutcome {
        let mut eng = IncrementalComparison::new(cfg);
        let (oa, ob) = (a.observations(), b.observations());
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < oa.len() || ib < ob.len() {
            let ea = (ia + chunk).min(oa.len());
            eng.push_burst(Side::A, &oa[ia..ea]);
            ia = ea;
            let eb = (ib + chunk).min(ob.len());
            eng.push_burst(Side::B, &ob[ib..eb]);
            ib = eb;
        }
        eng.finalize("stream")
    };
    let full_cfg = StreamConfig {
        lookahead: None,
        snapshot_every: 0,
        kappa: KappaConfig::paper(),
    };

    // -- gate 1: full lookahead == batch, bit for bit, on every pair ----
    let indexes: Vec<TrialIndex<'_>> = trials
        .iter()
        .map(TrialIndex::build)
        .collect::<Result<_, _>>()
        .expect("index bench trials");
    let chunk_sizes = [1usize, 64, per_trial.max(1)];
    let kcfg = KappaConfig::paper();
    let mut full_kappa = 1.0f64;
    let mut full_common = 0usize;
    // (i, j, label, batch κ, batch common, drop-free) for the ε-gate.
    let mut batch_pairs: Vec<(usize, usize, String, f64, usize, bool)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let label = format!("{}-{}", trial_label(i), trial_label(j));
            #[allow(deprecated)] // exactness is defined against the batch shim
            let batch = analyze_indexed(label.clone(), &indexes[i], &indexes[j], &kcfg);
            for &chunk in &chunk_sizes {
                let live = stream_pair(&trials[i], &trials[j], full_cfg, chunk);
                for (name, got, want) in [
                    ("kappa", live.comparison.metrics.kappa, batch.metrics.kappa),
                    ("u", live.comparison.metrics.u, batch.metrics.u),
                    ("o", live.comparison.metrics.o, batch.metrics.o),
                    ("l", live.comparison.metrics.l, batch.metrics.l),
                    ("i", live.comparison.metrics.i, batch.metrics.i),
                    (
                        "iat_within_10ns",
                        live.comparison.iat_within_10ns,
                        batch.iat_within_10ns,
                    ),
                ] {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "streaming {name} diverged from batch at pair {label}, chunk {chunk}"
                    );
                }
                assert_eq!(live.comparison.common, batch.common, "common at {label}");
                assert_eq!(live.comparison.missing, batch.missing, "missing at {label}");
                assert_eq!(live.comparison.extra, batch.extra, "extra at {label}");
                assert_eq!(live.evicted, 0, "full lookahead never evicts");
            }
            if i == 0 && j == 1 {
                full_kappa = batch.metrics.kappa;
                full_common = batch.common;
            }
            batch_pairs.push((
                i,
                j,
                label,
                batch.metrics.kappa,
                batch.common,
                batch.missing == 0 && batch.extra == 0,
            ));
        }
    }
    println!(
        "   full lookahead bit-identical to batch analysis: {pairs} pairs x {:?} record chunks",
        chunk_sizes
    );

    // -- throughput: min-of-REPS packet-at-a-burst pass over pair A-B ---
    const REPS: usize = 3;
    let total_pushed = (trials[0].len() + trials[1].len()) as u64;
    let mut full_ns = u64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        let live = stream_pair(&trials[0], &trials[1], full_cfg, 256);
        full_ns = full_ns.min(t.elapsed().as_nanos() as u64);
        assert_eq!(live.comparison.metrics.kappa.to_bits(), full_kappa.to_bits());
    }
    let full_pps = total_pushed as f64 / (full_ns.max(1) as f64 / 1e9);
    println!(
        "   full lookahead: {:>8.2} ms for {} packets ({:>10.0} pkts/s), peak resident {}",
        full_ns as f64 / 1e6,
        total_pushed,
        full_pps,
        stream_pair(&trials[0], &trials[1], full_cfg, 256).peak_resident,
    );

    // -- gate 2: bounded window caps residency on a >= 10x trial --------
    // Worst-case feeding order: all of A, then all of B — without
    // eviction the whole first side would sit resident.
    let window = (per_trial / 16).max(4);
    assert!(
        per_trial >= 10 * window,
        "trial ({per_trial} packets) must be >= 10x the window ({window})"
    );
    let bounded_cfg = StreamConfig {
        lookahead: Some(window),
        snapshot_every: 0,
        kappa: KappaConfig::paper(),
    };
    let mut bounded_ns = u64::MAX;
    let mut bounded: Option<StreamOutcome> = None;
    for _ in 0..REPS {
        let mut eng = IncrementalComparison::new(bounded_cfg);
        let t = Instant::now();
        eng.push_burst(Side::A, trials[0].observations());
        eng.push_burst(Side::B, trials[1].observations());
        let live = eng.finalize("stream-bounded");
        bounded_ns = bounded_ns.min(t.elapsed().as_nanos() as u64);
        bounded = Some(live);
    }
    let bounded = bounded.expect("REPS >= 1");
    assert!(
        bounded.peak_resident <= window,
        "bounded mode must cap resident packets at the window: peak {} > {window}",
        bounded.peak_resident
    );
    let bounded_pps = total_pushed as f64 / (bounded_ns.max(1) as f64 / 1e9);
    // Even the worst-case feeding order must produce a *valid* (if
    // wide) error interval, and the occurrence-debt accounting must
    // reproduce the batch match count exactly.
    assert!(
        bounded.bounds.contains(full_kappa),
        "bounded κ interval [{}, {}] must contain batch κ {full_kappa}",
        bounded.bounds.lo,
        bounded.bounds.hi
    );
    assert_eq!(
        bounded.comparison.common + bounded.missed_matches,
        full_common,
        "missed-match accounting must be exact"
    );
    println!(
        "   bounded window {window}: peak resident {} (<= window), {} evicted, {:>10.0} pkts/s, kappa {:.4} (full {:.4}), bounds [{:.4}, {:.4}]",
        bounded.peak_resident,
        bounded.evicted,
        bounded_pps,
        bounded.comparison.metrics.kappa,
        full_kappa,
        bounded.bounds.lo,
        bounded.bounds.hi,
    );

    // -- gate 3 (ε): bounded κ vs batch κ on drop-free pairs ------------
    // Fed in arrival order (lock-step, packet at a time) — the reading a
    // live tap actually sees — the bounded engine's κ must land within ε
    // of batch on every drop-free pair, and its error interval must
    // contain batch κ on *every* pair. The old segment-local estimator
    // failed this by up to 2× on O-heavy pairs.
    let epsilon = opts.epsilon;
    let mut dropfree_checked = 0usize;
    for (i, j, label, batch_kappa, batch_common, dropfree) in &batch_pairs {
        let live = stream_pair(&trials[*i], &trials[*j], bounded_cfg, 1);
        assert!(
            live.bounds.contains(*batch_kappa),
            "pair {label}: interval [{}, {}] must contain batch κ {batch_kappa}",
            live.bounds.lo,
            live.bounds.hi
        );
        assert_eq!(
            live.comparison.common + live.missed_matches,
            *batch_common,
            "pair {label}: missed-match accounting must be exact"
        );
        if *dropfree {
            dropfree_checked += 1;
            let err = (live.comparison.metrics.kappa - batch_kappa).abs();
            assert!(
                err <= epsilon,
                "pair {label}: bounded κ {} vs batch {batch_kappa} — error {err:.6} > ε {epsilon}",
                live.comparison.metrics.kappa
            );
        }
    }
    // A synthetic drop-free pair with genuine reordering keeps the ε
    // gate meaningful even if every experiment pair had drops: run A's
    // packets with adjacent arrivals swapped every 7th position.
    let synth_b: Trial = {
        let mut obs = trials[0].observations().to_vec();
        let mut k = 0;
        while k + 1 < obs.len() {
            obs.swap(k, k + 1);
            k += 7;
        }
        obs.iter().map(|o| (o.id, o.t_ps)).collect()
    };
    let synth_batch = PairAnalyzer::new(&trials[0], &synth_b).metrics();
    let synth_live = stream_pair(&trials[0], &synth_b, bounded_cfg, 1);
    assert!(synth_live.bounds.contains(synth_batch.kappa));
    let synth_err = (synth_live.comparison.metrics.kappa - synth_batch.kappa).abs();
    assert!(
        synth_err <= epsilon,
        "synthetic drop-free pair: bounded κ error {synth_err:.6} > ε {epsilon}"
    );
    dropfree_checked += 1;
    println!(
        "   ε-gate: {dropfree_checked} drop-free pairs within ε = {epsilon} of batch κ \
         (+ interval containment on all {} pairs)",
        batch_pairs.len()
    );

    // -- window-size convergence sweep ----------------------------------
    // Worst-case (A then B) feeding of pair A-B at growing windows: the
    // interval must contain batch κ at every size and collapse to an
    // exact, bit-identical result once the window covers the trial.
    #[derive(serde::Serialize)]
    struct SweepEntry {
        window: usize,
        kappa: f64,
        kappa_lo: f64,
        kappa_hi: f64,
        width: f64,
        evicted: usize,
        missed_matches: usize,
        seals: usize,
        forced_seals: usize,
    }
    let mut sweep_windows = vec![
        (window / 8).max(4),
        (window / 4).max(4),
        (window / 2).max(4),
        window,
        2 * window,
        4 * window,
        per_trial,
    ];
    sweep_windows.sort_unstable();
    sweep_windows.dedup();
    let mut window_sweep: Vec<SweepEntry> = Vec::new();
    for &w in &sweep_windows {
        let cfg = StreamConfig {
            lookahead: Some(w),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let mut eng = IncrementalComparison::new(cfg);
        eng.push_burst(Side::A, trials[0].observations());
        eng.push_burst(Side::B, trials[1].observations());
        let live = eng.finalize("stream-sweep");
        assert!(
            live.bounds.contains(full_kappa),
            "window {w}: interval [{}, {}] must contain batch κ {full_kappa}",
            live.bounds.lo,
            live.bounds.hi
        );
        if w >= per_trial {
            assert_eq!(
                live.comparison.metrics.kappa.to_bits(),
                full_kappa.to_bits(),
                "full-trial window must finalize bit-identically to batch"
            );
            assert_eq!(live.bounds.width(), 0.0);
        }
        window_sweep.push(SweepEntry {
            window: w,
            kappa: live.comparison.metrics.kappa,
            kappa_lo: live.bounds.lo,
            kappa_hi: live.bounds.hi,
            width: live.bounds.width(),
            evicted: live.evicted,
            missed_matches: live.missed_matches,
            seals: live.seals,
            forced_seals: live.forced_seals,
        });
    }
    println!("   window sweep (A-then-B worst case, batch κ {full_kappa:.4}):");
    for e in &window_sweep {
        println!(
            "     w {:>6}: κ {:.4} ∈ [{:.4}, {:.4}] width {:.4}, evicted {}, missed {}, seals {}+{}f",
            e.window, e.kappa, e.kappa_lo, e.kappa_hi, e.width, e.evicted, e.missed_matches,
            e.seals, e.forced_seals
        );
    }

    // -- observability pass (--obs): the instrumented engine must stay
    // bit-identical, both per-mode counter namespaces must agree exactly
    // with the measured outcomes (cadenced snapshots included), and the
    // stream.* profile is rendered + exported.
    let obs_snap = if opts.obs {
        use choir_core::obs;
        obs::configure(&obs::ObsConfig {
            enabled: true,
            ring_capacity: 4096,
        });
        obs::reset();
        obs::set_enabled(true);
        let snap_cfg = StreamConfig {
            snapshot_every: 256,
            ..full_cfg
        };
        let live = stream_pair(&trials[0], &trials[1], snap_cfg, 256);
        assert_eq!(
            live.comparison.metrics.kappa.to_bits(),
            full_kappa.to_bits(),
            "obs-enabled streaming pass must stay bit-identical"
        );
        let bounded_snap_cfg = StreamConfig {
            snapshot_every: 256,
            ..bounded_cfg
        };
        let mut eng = IncrementalComparison::new(bounded_snap_cfg);
        eng.push_burst(Side::A, trials[0].observations());
        eng.push_burst(Side::B, trials[1].observations());
        let blive = eng.finalize("stream-bounded-obs");
        let snap = obs::snapshot();
        obs::set_enabled(false);
        // Per-mode namespaces: one bounded and one unbounded finalize
        // ran under this scope, so every counter must equal its
        // outcome's number exactly — no cross-mode bleed.
        for (name, want) in [
            ("stream.full.packets_in", total_pushed),
            ("stream.full.matched", live.comparison.common as u64),
            ("stream.full.snapshots", live.snapshots.len() as u64),
            ("stream.full.peak_resident", live.peak_resident as u64),
            ("stream.bounded.packets_in", total_pushed),
            ("stream.bounded.matched", blive.comparison.common as u64),
            ("stream.bounded.evicted", blive.evicted as u64),
            ("stream.bounded.snapshots", blive.snapshots.len() as u64),
            ("stream.bounded.missed_matches", blive.missed_matches as u64),
            ("stream.bounded.seals", blive.seals as u64),
            ("stream.bounded.forced_seals", blive.forced_seals as u64),
            ("stream.bounded.peak_resident", blive.peak_resident as u64),
        ] {
            assert_eq!(
                snap.counter(name),
                Some(want),
                "obs counter {name} must match the measured outcome"
            );
        }
        assert!(
            live.snapshots.len() as u64 > 0,
            "cadenced obs pass must record snapshots"
        );
        println!(
            "   obs-enabled passes bit-identical; {} full + {} bounded snapshots, \
             per-mode counters agree with outcomes",
            live.snapshots.len(),
            blive.snapshots.len()
        );
        print!("{}", fmt::render_obs(&snap));
        Some(snap)
    } else {
        None
    };

    #[derive(serde::Serialize)]
    struct StreamBench {
        scale: f64,
        seed: u64,
        trials: usize,
        pairs: usize,
        packets_per_trial: usize,
        chunk_sizes: Vec<usize>,
        bit_identical: bool,
        full_lookahead_ns: u64,
        full_lookahead_pps: f64,
        bounded_window: usize,
        bounded_peak_resident: usize,
        bounded_evicted: usize,
        bounded_ns: u64,
        bounded_pps: f64,
        bounded_kappa: f64,
        bounded_kappa_lo: f64,
        bounded_kappa_hi: f64,
        bounded_missed_matches: usize,
        bounded_seals: usize,
        bounded_forced_seals: usize,
        batch_kappa: f64,
        epsilon: f64,
        dropfree_pairs_checked: usize,
        window_sweep: Vec<SweepEntry>,
        obs: Option<choir_core::ObsSnapshot>,
    }
    let bench = StreamBench {
        scale: opts.scale,
        seed: opts.seed,
        trials: n,
        pairs,
        packets_per_trial: per_trial,
        chunk_sizes: chunk_sizes.to_vec(),
        bit_identical: true,
        full_lookahead_ns: full_ns,
        full_lookahead_pps: full_pps,
        bounded_window: window,
        bounded_peak_resident: bounded.peak_resident,
        bounded_evicted: bounded.evicted,
        bounded_ns,
        bounded_pps,
        bounded_kappa: bounded.comparison.metrics.kappa,
        bounded_kappa_lo: bounded.bounds.lo,
        bounded_kappa_hi: bounded.bounds.hi,
        bounded_missed_matches: bounded.missed_matches,
        bounded_seals: bounded.seals,
        bounded_forced_seals: bounded.forced_seals,
        batch_kappa: full_kappa,
        epsilon,
        dropfree_pairs_checked: dropfree_checked,
        window_sweep,
        obs: obs_snap,
    };
    let body = serde_json::to_string_pretty(&bench).expect("serialize bench record");
    std::fs::write("BENCH_stream.json", body).expect("write BENCH_stream.json");
    println!("   [wrote BENCH_stream.json]\n");
}

/// Crash-tolerance sweep over the supervised streaming-κ engine.
///
/// For every (kill-point density × checkpoint cadence) cell the full
/// record-then-replay pipeline runs under
/// a supervised streaming [`choir_testbed::Experiment`], with tap
/// panics injected on a fixed cadence and the retained capture corrupted
/// at a seeded offset afterwards. Three hard gates, all enforced with
/// `assert!` so a violation exits non-zero:
///
/// 1. the recovered final κ AND the whole snapshot trail of every run
///    are bit-identical (`f64::to_bits`) to the uninterrupted streaming
///    reference, and the trials themselves are untouched;
/// 2. every injected kill and tap panic is survived — nothing escapes
///    the supervisor (an escaped panic would abort the process);
/// 3. salvage-reading a randomly truncated capture yields *exactly* the
///    records preceding the cut, record for record.
///
/// Writes `BENCH_recover.json` with recovery latency and replay
/// amplification (journal records re-fed per tapped packet) per cell.
fn recover(opts: &Opts) {
    use choir_capture::PcapChunkReader;
    use choir_packet::pcap::{parse_pcap, PcapRecord, PcapWriter};
    use choir_testbed::{Experiment, StreamingMode, SupervisorConfig};

    // Injected tap panics are part of the experiment: silence their
    // default-hook backtrace spam but delegate anything unexpected.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected tap fault"));
        if !injected {
            prev_hook(info);
        }
    }));

    let mut profile = EnvKind::LocalSingle.profile();
    profile.runs = opts.runs.unwrap_or(3);
    let runs = profile.runs;
    // A dense cell serializes thousands of checkpoints whose size grows
    // with the engine's seen-packet state, so the sweep runs at a
    // fraction of the requested `--scale`: every gate is scale-invariant
    // (bit-identity, survival, exact salvage); only the cost curves in
    // BENCH_recover.json stretch with packet count.
    let scale = (opts.scale * 0.04).max(0.002);
    let cfg = choir_testbed::ExperimentConfig {
        profile,
        scale,
        seed: opts.seed,
    };
    let mode = StreamingMode {
        lookahead: None,
        snapshot_every: 137,
    };
    println!(
        "== recover: crash-tolerance sweep over {} runs of {} (scale {} -> {}, seed {}) ==",
        runs,
        EnvKind::LocalSingle.label(),
        opts.scale,
        scale,
        opts.seed
    );

    // The uninterrupted reference every swept cell must reproduce bitwise.
    let reference = Experiment::new(cfg.clone()).streaming(mode).run();
    let ref_stream = reference.report.stream.as_ref().expect("reference trail");
    let per_trial = reference.trials[0].len();
    // Packets tapped per sweep cell: every admitted packet of runs B..,
    // the denominator of replay amplification.
    let tapped_total: u64 = reference.trials[1..].iter().map(|t| t.len() as u64).sum();
    println!("   reference: {} packets/trial, {} tapped per cell", per_trial, tapped_total);

    let cadences = [32u64, 128, 512];
    let kill_densities: [Option<u64>; 3] = [None, Some(383), Some(101)];
    let panic_every = Some(457);

    #[derive(serde::Serialize)]
    struct RecoverCell {
        checkpoint_every: u64,
        kill_every: Option<u64>,
        panic_every: Option<u64>,
        kills_injected: u64,
        kills_survived: u64,
        tap_panics_caught: u64,
        checkpoints_taken: u64,
        checkpoint_bytes_last: u64,
        checkpoint_bytes_peak: u64,
        records_replayed: u64,
        replay_amplification: f64,
        resume_latency_ns_avg: u64,
        salvaged_records: u64,
        lost_records: u64,
        bit_identical: bool,
    }
    let mut cells: Vec<RecoverCell> = Vec::new();
    let mut export_total: Option<u64> = None;

    for (ci, &checkpoint_every) in cadences.iter().enumerate() {
        for (ki, &kill_every) in kill_densities.iter().enumerate() {
            let sup = SupervisorConfig {
                checkpoint_every,
                kill_every,
                panic_every,
                corrupt_capture_seed: Some(opts.seed ^ ((ci * 3 + ki) as u64 + 1)),
            };
            let out = Experiment::new(cfg.clone()).streaming(mode).supervised(sup).run();
            let rec = out.report.recovery.expect("supervised run attaches recovery");

            // -- gate 2: every fault survived, none escaped ------------
            assert_eq!(
                rec.kills_survived, rec.kills_injected,
                "cadence {checkpoint_every}, kills {kill_every:?}: unsurvived kill"
            );
            if let Some(k) = kill_every {
                // A tap that panics unwinds before its own kill check, so
                // each caught panic can absorb at most one scheduled kill,
                // and each run's tap counter restarts from zero.
                let floor = (tapped_total / k).saturating_sub(rec.tap_panics_caught + runs as u64);
                assert!(
                    rec.kills_injected >= floor,
                    "kill cadence {k} under-fired: {} kills over {tapped_total} taps (floor {floor})",
                    rec.kills_injected
                );
                assert!(rec.records_replayed > 0, "recoveries must replay the journal");
            }
            assert!(
                rec.tap_panics_caught > 0,
                "panic cadence {panic_every:?} never fired over {tapped_total} taps"
            );
            assert!(rec.checkpoints_taken > 1, "cadence checkpoints were taken");

            // -- gate 1: recovery is invisible in the measurement ------
            let s = out.report.stream.as_ref().expect("supervised trail");
            assert_eq!(s.runs.len(), ref_stream.runs.len());
            for (a, b) in s.runs.iter().zip(ref_stream.runs.iter()) {
                assert_eq!(
                    a.final_kappa.to_bits(),
                    b.final_kappa.to_bits(),
                    "cadence {checkpoint_every}, kills {kill_every:?}: recovered κ diverged on run {}",
                    a.label
                );
                assert_eq!(a.peak_resident, b.peak_resident);
                assert_eq!(a.evicted, b.evicted);
                assert_eq!(a.snapshots.len(), b.snapshots.len(), "snapshot trail length");
                for (x, y) in a.snapshots.iter().zip(b.snapshots.iter()) {
                    assert_eq!((x.seen_a, x.seen_b, x.common), (y.seen_a, y.seen_b, y.common));
                    assert_eq!(
                        x.running.kappa.to_bits(),
                        y.running.kappa.to_bits(),
                        "snapshot κ diverged under cadence {checkpoint_every}, kills {kill_every:?}"
                    );
                    assert_eq!(x.window.metrics.kappa.to_bits(), y.window.metrics.kappa.to_bits());
                }
            }
            assert_eq!(out.trials, reference.trials, "supervision must not touch trials");

            // -- salvage accounting: same export, seeded cut -----------
            let total = rec.salvaged_records + rec.lost_records;
            assert!(rec.salvaged_records > 0, "salvage recovered a prefix");
            match export_total {
                None => export_total = Some(total),
                Some(t) => assert_eq!(t, total, "capture export size must not vary across cells"),
            }

            let faults = rec.kills_survived + rec.tap_panics_caught;
            let cell = RecoverCell {
                checkpoint_every,
                kill_every,
                panic_every,
                kills_injected: rec.kills_injected,
                kills_survived: rec.kills_survived,
                tap_panics_caught: rec.tap_panics_caught,
                checkpoints_taken: rec.checkpoints_taken,
                checkpoint_bytes_last: rec.checkpoint_bytes_last,
                checkpoint_bytes_peak: rec.checkpoint_bytes_peak,
                records_replayed: rec.records_replayed,
                replay_amplification: rec.records_replayed as f64 / tapped_total.max(1) as f64,
                resume_latency_ns_avg: rec.resume_latency_ns_total / faults.max(1),
                salvaged_records: rec.salvaged_records,
                lost_records: rec.lost_records,
                bit_identical: true,
            };
            println!(
                "   ckpt {:>4} kill {:>9} | {:>3} kills {:>2} panics {:>4} ckpts | replayed {:>6} (amp {:>6.4}) | resume {:>7} ns avg | salvage {}/{} | bit-identical",
                cell.checkpoint_every,
                cell.kill_every.map_or("off".into(), |k| format!("every {k}")),
                cell.kills_injected,
                cell.tap_panics_caught,
                cell.checkpoints_taken,
                cell.records_replayed,
                cell.replay_amplification,
                cell.resume_latency_ns_avg,
                cell.salvaged_records,
                total,
            );
            cells.push(cell);
        }
    }

    // -- gate 3: salvage yields exactly the records preceding the cut --
    // Fixed-size records make the byte layout predictable: 24-byte
    // global header, then 16-byte record headers framing equal-length
    // frames, so the expected prefix length is arithmetic on the cut
    // offset — no parser in the loop to agree with itself.
    let builder = FrameBuilder::new(256, 1, 2);
    let mut writer = PcapWriter::new(Vec::new()).expect("pcap header");
    for i in 0..400u64 {
        let f = builder.build_tagged_snap(ChoirTag::new(0, 0, i));
        writer.write_record(i * 1_000, &f).expect("pcap record");
    }
    let mut bytes = writer.finish().expect("pcap bytes");
    let full = parse_pcap(&bytes).expect("intact capture parses");
    assert_eq!(full.len(), 400);
    // Identical frames mean identical on-disk records; recover the
    // per-record byte size from the file itself rather than assuming
    // the builder's wire format.
    assert_eq!((bytes.len() - 24) % 400, 0, "records must be uniform");
    let rec_size = (bytes.len() - 24) / 400;
    let mut exact = true;
    for round in 0..32u64 {
        let mut cut_bytes = bytes.clone();
        let cut = choir_dpdk::fault::truncate_stream(&mut cut_bytes, opts.seed ^ round, 24);
        let expected = (cut as usize - 24) / rec_size;
        let mut salvaged: Vec<PcapRecord> = Vec::new();
        let mut reader = PcapChunkReader::new(&cut_bytes[..], 64).expect("header survives");
        loop {
            match reader.next_chunk() {
                Ok(Some(recs)) => salvaged.extend(recs),
                Ok(None) => break,
                Err(e) => {
                    salvaged.extend(e.salvaged);
                    break;
                }
            }
        }
        assert_eq!(
            salvaged.len(),
            expected,
            "cut at byte {cut}: salvage must recover every whole record before it"
        );
        assert_eq!(
            salvaged[..],
            full[..expected],
            "cut at byte {cut}: salvaged records must equal the batch prefix"
        );
        exact &= salvaged[..] == full[..expected];
    }
    bytes.clear();
    println!("   salvage exact-prefix gate: 32 seeded cuts, salvaged == batch prefix every time");

    // -- observability pass (--obs): supervised recovery under obs must
    // stay bit-identical, and the recover.* profile is rendered.
    let obs_snap = if opts.obs {
        use choir_core::obs;
        obs::configure(&obs::ObsConfig {
            enabled: true,
            ring_capacity: 4096,
        });
        obs::reset();
        obs::set_enabled(true);
        let sup = SupervisorConfig {
            checkpoint_every: cadences[1],
            kill_every: kill_densities[2],
            panic_every,
            corrupt_capture_seed: Some(opts.seed),
        };
        let out = Experiment::new(cfg.clone()).streaming(mode).supervised(sup).run();
        let s = out.report.stream.as_ref().expect("supervised trail");
        for (a, b) in s.runs.iter().zip(ref_stream.runs.iter()) {
            assert_eq!(
                a.final_kappa.to_bits(),
                b.final_kappa.to_bits(),
                "obs-enabled supervised pass must stay bit-identical"
            );
        }
        let snap = obs::snapshot();
        obs::set_enabled(false);
        println!("   obs-enabled supervised pass bit-identical to plain");
        print!("{}", fmt::render_obs(&snap));
        Some(snap)
    } else {
        None
    };

    let _ = std::panic::take_hook(); // drop the filter; later targets get the default

    #[derive(serde::Serialize)]
    struct RecoverBench {
        requested_scale: f64,
        scale: f64,
        seed: u64,
        runs: usize,
        packets_per_trial: usize,
        tapped_per_cell: u64,
        export_records: u64,
        salvage_prefix_exact: bool,
        cells: Vec<RecoverCell>,
        obs: Option<choir_core::ObsSnapshot>,
    }
    let bench = RecoverBench {
        requested_scale: opts.scale,
        scale,
        seed: opts.seed,
        runs,
        packets_per_trial: per_trial,
        tapped_per_cell: tapped_total,
        export_records: export_total.unwrap_or(0),
        salvage_prefix_exact: exact,
        cells,
        obs: obs_snap,
    };
    let body = serde_json::to_string_pretty(&bench).expect("serialize bench record");
    std::fs::write("BENCH_recover.json", body).expect("write BENCH_recover.json");
    println!("   [wrote BENCH_recover.json]\n");
}

/// κ-as-a-service gate: drive a real daemon over TCP with N tenants ×
/// M streams, hard-kill it mid-ingest, restart, finish, and require
/// every κ it ever served — live snapshots, final summaries, matrix
/// cells — to be bit-identical (`f64::to_bits`) to a post-hoc batch
/// analysis of the exact records sent. The trial store runs under a
/// budget small enough to force evictions throughout, and residency is
/// hard-gated under that budget. The sustained-ingest curve (records/s
/// per round) goes to `BENCH_service.json`.
fn service(opts: &Opts) {
    use choir_core::metrics::{all_pairs_sharded_with, KappaConfig, Observation};
    use choir_packet::ident::PacketId;
    use choir_service::{Client, Daemon, DaemonConfig, Response};
    use std::time::Instant;

    let tenants = opts.runs.unwrap_or(3).max(1);
    let streams: Vec<String> = ["base", "r1", "r2", "r3"].iter().map(|s| s.to_string()).collect();
    let per_stream = ((4_000.0 * opts.scale) as u64).max(400);
    println!(
        "== service: {tenants} tenants x {} streams, ~{per_stream} records each ==",
        streams.len()
    );

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    }
    let synth = |tenant: u64, stream: u64| -> Vec<Observation> {
        let mut seed = opts.seed ^ (tenant << 40) ^ (stream << 8) ^ 0x5EED;
        let mut out = Vec::new();
        let mut now = 1_000_000u64;
        for seq in 0..per_stream {
            now += 280_000 + lcg(&mut seed) % 40_000;
            if stream > 0 && lcg(&mut seed).is_multiple_of(97) {
                continue; // this run dropped the packet
            }
            let jitter = if stream == 0 { 0 } else { lcg(&mut seed) % 30_000 };
            out.push(Observation {
                id: PacketId::from_tag(&ChoirTag::new(tenant as u16, 0, seq)),
                t_ps: now + jitter,
            });
        }
        out
    };
    let trial_of = |obs: &[Observation]| {
        let mut t = Trial::new();
        for o in obs {
            t.push(o.id, o.t_ps);
        }
        t
    };
    let data: Vec<Vec<Vec<Observation>>> = (0..tenants)
        .map(|t| (0..streams.len()).map(|s| synth(t as u64, s as u64)).collect())
        .collect();
    let tenant_name = |t: usize| format!("tenant-{t}");

    // Budget ~1.5 trials per tenant: four trials each, so the store is
    // evicting for the entire run while the gate must still hold.
    let budget = per_stream * 24 * 3 / 2;
    let data_dir = std::env::temp_dir().join(format!("choir-repro-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut cfg = DaemonConfig::new(&data_dir);
    cfg.default_budget_bytes = budget;
    cfg.checkpoint_every_records = (per_stream * tenants as u64) / 2;
    cfg.snapshot_every = 256;

    #[derive(serde::Serialize)]
    struct CurvePoint {
        round: usize,
        records_total: u64,
        elapsed_ns: u64,
        rate_pps: f64,
    }
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut records_sent = 0u64;
    let t0 = Instant::now();

    // ---- phase 1: interleaved ingest of roughly the first half.
    let handle = Daemon::spawn(cfg.clone(), "127.0.0.1:0").expect("daemon spawn");
    let mut c = Client::connect(handle.addr()).expect("client connect");
    for t in 0..tenants {
        c.create_tenant(&tenant_name(t), 0).expect("create tenant");
        for s in &streams {
            c.open_stream(&tenant_name(t), s).expect("open stream");
        }
    }
    let chunk = 256usize;
    let mut sent = vec![vec![0usize; streams.len()]; tenants];
    let rounds_phase1 = (per_stream as usize / 2).div_ceil(chunk).max(1);
    for round in 0..rounds_phase1 {
        for t in 0..tenants {
            for (si, s) in streams.iter().enumerate() {
                let all = &data[t][si];
                let lo = sent[t][si];
                let hi = (lo + chunk).min(all.len());
                if lo < hi {
                    c.ingest(&tenant_name(t), s, lo as u64, &all[lo..hi])
                        .expect("ingest");
                    records_sent += (hi - lo) as u64;
                    sent[t][si] = hi;
                }
            }
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        curve.push(CurvePoint {
            round,
            records_total: records_sent,
            elapsed_ns: elapsed,
            rate_pps: records_sent as f64 / (elapsed as f64 / 1e9),
        });
    }

    // Gate: a live mid-flight snapshot is already batch-identical.
    let mut live_checked = 0usize;
    for t in 0..tenants {
        let Response::Snapshot { running, .. } = c
            .snapshot(&tenant_name(t), &streams[1])
            .expect("live snapshot")
        else {
            panic!("snapshot variant");
        };
        let a = trial_of(&data[t][0][..sent[t][0]]);
        let b = trial_of(&data[t][1][..sent[t][1]]);
        let batch = PairAnalyzer::new(&a, &b).analyze();
        assert_eq!(
            running.kappa_bits,
            batch.metrics.kappa.to_bits(),
            "live κ of {}/{} diverged from batch on the ingested prefix",
            tenant_name(t),
            streams[1]
        );
        live_checked += 1;
    }
    println!("   {live_checked} live mid-ingest snapshots bit-identical to batch");

    // ---- hard kill (no checkpoint), restart, resume with overlap.
    drop(c);
    handle.kill();
    let kill_at = t0.elapsed();
    let handle = Daemon::spawn(cfg.clone(), "127.0.0.1:0").expect("daemon respawn");
    let recovery = t0.elapsed() - kill_at;
    let mut c = Client::connect(handle.addr()).expect("client reconnect");
    for (t, sent_t) in sent.iter().enumerate() {
        for (si, s) in streams.iter().enumerate() {
            let (ingested, finished, _) = c.stream_status(&tenant_name(t), s).expect("status");
            assert_eq!(
                ingested as usize, sent_t[si],
                "recovery lost records on {}/{s}",
                tenant_name(t)
            );
            assert!(!finished);
        }
    }
    println!(
        "   hard kill at {:.1} ms; journal+checkpoint recovery in {:.1} ms, zero records lost",
        kill_at.as_secs_f64() * 1e3,
        recovery.as_secs_f64() * 1e3
    );
    let round_base = curve.len();
    for t in 0..tenants {
        for (si, s) in streams.iter().enumerate() {
            let all = &data[t][si];
            let lo = sent[t][si].saturating_sub(chunk / 4); // deliberate resend overlap
            let total = c
                .ingest(&tenant_name(t), s, lo as u64, &all[lo..])
                .expect("resume ingest");
            assert_eq!(total, all.len() as u64, "resumed stream must complete");
            records_sent += (all.len() - sent[t][si]) as u64;
            sent[t][si] = all.len();
        }
        let elapsed = t0.elapsed().as_nanos() as u64;
        curve.push(CurvePoint {
            round: round_base + t,
            records_total: records_sent,
            elapsed_ns: elapsed,
            rate_pps: records_sent as f64 / (elapsed as f64 / 1e9),
        });
    }

    // ---- finish everything; gate finals + matrix bit-identity.
    let mut finals_checked = 0usize;
    for (t, data_t) in data.iter().enumerate() {
        c.finish_stream(&tenant_name(t), &streams[0]).expect("finish baseline");
        let a = trial_of(&data_t[0]);
        for (si, s) in streams.iter().enumerate().skip(1) {
            let f = c
                .finish_stream(&tenant_name(t), s)
                .expect("finish stream")
                .expect("comparison summary");
            let b = trial_of(&data_t[si]);
            let batch = PairAnalyzer::new(&a, &b).analyze();
            for (got, want, what) in [
                (f.score.kappa_bits, batch.metrics.kappa.to_bits(), "kappa"),
                (f.score.u.to_bits(), batch.metrics.u.to_bits(), "U"),
                (f.score.o.to_bits(), batch.metrics.o.to_bits(), "O"),
                (f.score.l.to_bits(), batch.metrics.l.to_bits(), "L"),
                (f.score.i.to_bits(), batch.metrics.i.to_bits(), "I"),
            ] {
                assert_eq!(
                    got, want,
                    "served {what} of {}/{s} diverged from batch across kill/restart",
                    tenant_name(t)
                );
            }
            finals_checked += 1;
        }
    }
    println!("   {finals_checked} final summaries bit-identical to batch across kill/restart");

    let mut cells_checked = 0usize;
    for (t, data_t) in data.iter().enumerate() {
        let Response::Matrix { labels, cells } = c.matrix(&tenant_name(t)).expect("matrix")
        else {
            panic!("matrix variant");
        };
        let trials: Vec<Trial> = labels
            .iter()
            .map(|s| {
                let si = streams.iter().position(|x| x == s).expect("known stream");
                trial_of(&data_t[si])
            })
            .collect();
        let (reference, _) =
            all_pairs_sharded_with(&trials, 4, &KappaConfig::paper()).expect("all-pairs");
        for cell in &cells {
            let want = reference
                .get(cell.i as usize, cell.j as usize)
                .expect("reference cell");
            assert_eq!(
                cell.score.kappa_bits,
                want.metrics.kappa.to_bits(),
                "matrix cell ({}, {}) of {} diverged from the sharded engine",
                cell.i,
                cell.j,
                tenant_name(t)
            );
            cells_checked += 1;
        }
    }
    println!("   {cells_checked} matrix cells bit-identical to the sharded all-pairs engine");

    // ---- store budget gate + RSS report.
    let Response::Stats {
        store_resident_bytes,
        store_budget_bytes,
        store_evictions,
        store_reloads,
        ..
    } = c.stats().expect("stats")
    else {
        panic!("stats variant");
    };
    assert!(
        store_evictions > 0,
        "budget {budget} was sized to force evictions; none happened"
    );
    assert!(
        store_resident_bytes <= store_budget_bytes,
        "trial store over budget: {store_resident_bytes} > {store_budget_bytes}"
    );
    let peak_rss_kb = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0);
    println!(
        "   store: {store_resident_bytes} / {store_budget_bytes} bytes resident, \
         {store_evictions} evictions, {store_reloads} reloads; peak RSS {peak_rss_kb} kB"
    );

    // ---- graceful shutdown, third spawn: finals survive durably.
    c.shutdown().expect("shutdown");
    drop(c);
    handle.wait();
    let handle = Daemon::spawn(cfg, "127.0.0.1:0").expect("third spawn");
    let mut c = Client::connect(handle.addr()).expect("third connect");
    for (t, data_t) in data.iter().enumerate() {
        let a = trial_of(&data_t[0]);
        for (si, s) in streams.iter().enumerate().skip(1) {
            let b = trial_of(&data_t[si]);
            let batch = PairAnalyzer::new(&a, &b).analyze();
            let Response::Snapshot { running, .. } =
                c.snapshot(&tenant_name(t), s).expect("post-restart snapshot")
            else {
                panic!("snapshot variant");
            };
            assert_eq!(
                running.kappa_bits,
                batch.metrics.kappa.to_bits(),
                "final of {}/{s} did not survive graceful restart",
                tenant_name(t)
            );
        }
    }
    drop(c);
    handle.kill();
    println!("   finals served bit-identically after graceful shutdown + restart");

    let final_rate = curve.last().map(|p| p.rate_pps).unwrap_or(0.0);
    println!(
        "   sustained ingest {} records in {:.2} s ({:.0}k records/s)",
        records_sent,
        t0.elapsed().as_secs_f64(),
        final_rate / 1e3
    );

    #[derive(serde::Serialize)]
    struct ServiceBench {
        requested_scale: f64,
        seed: u64,
        tenants: usize,
        streams_per_tenant: usize,
        records_per_stream: u64,
        records_sent: u64,
        budget_bytes: u64,
        store_resident_bytes: u64,
        store_evictions: u64,
        store_reloads: u64,
        live_snapshots_bit_identical: usize,
        finals_bit_identical: usize,
        matrix_cells_bit_identical: usize,
        kill_restart_exercised: bool,
        recovery_ms: f64,
        peak_rss_kb: u64,
        ingest_curve: Vec<CurvePoint>,
    }
    let bench = ServiceBench {
        requested_scale: opts.scale,
        seed: opts.seed,
        tenants,
        streams_per_tenant: streams.len(),
        records_per_stream: per_stream,
        records_sent,
        budget_bytes: budget,
        store_resident_bytes,
        store_evictions,
        store_reloads,
        live_snapshots_bit_identical: live_checked,
        finals_bit_identical: finals_checked,
        matrix_cells_bit_identical: cells_checked,
        kill_restart_exercised: true,
        recovery_ms: recovery.as_secs_f64() * 1e3,
        peak_rss_kb,
        ingest_curve: curve,
    };
    let body = serde_json::to_string_pretty(&bench).expect("serialize bench record");
    std::fs::write("BENCH_service.json", body).expect("write BENCH_service.json");
    println!("   [wrote BENCH_service.json]\n");
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Chaos sweep: replay one recording through a fault-injecting dataplane
/// at increasing fault rates, printing the consistency metrics next to
/// the graceful-degradation counters for each rate. Everything — the
/// virtual clock, the fault scenario, the resulting κ — is a pure
/// function of `--seed`, so two invocations with the same seed print
/// bit-identical tables (the final digest line makes that checkable at
/// a glance).
fn chaos(opts: &Opts) {
    use choir_core::metrics::report::analyze_runs_parallel;
    use choir_core::replay::{EngineConfig, run_replay_supervised};
    use choir_dpdk::{Burst, Dataplane, FaultConfig, FaultyDataplane, PortStats};
    use std::cell::Cell;

    println!("== chaos: fault-rate sweep over the supervised replay engine (seed {}) ==", opts.seed);

    /// A deterministic stand-in for a NIC + clock: the "TSC" advances a
    /// fixed step on every read (so spin loops terminate identically on
    /// every host) and transmitted tags are logged with their send time.
    struct VirtualSink {
        pool: Mempool,
        now: Cell<u64>,
        log: Vec<(u64, ChoirTag)>,
    }
    /// Virtual nanoseconds per TSC read: each poll of the clock "costs"
    /// this much simulated time.
    const TSC_STEP_NS: u64 = 25;
    impl Dataplane for VirtualSink {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: usize, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: usize, burst: &mut Burst) -> usize {
            let n = burst.len();
            let t = self.now.get();
            for m in burst.drain() {
                if let Some(tag) = m.frame.tag() {
                    self.log.push((t, tag));
                }
            }
            n
        }
        fn tsc(&self) -> u64 {
            let t = self.now.get() + TSC_STEP_NS;
            self.now.set(t);
            t
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now.get()
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: usize) -> PortStats {
            PortStats::default()
        }
    }

    // One tagged recording, replayed under every fault rate.
    let pool = Mempool::new("chaos", 1 << 16);
    let builder = FrameBuilder::new(256, 1, 2);
    let bursts = 512usize;
    let per = 8usize;
    let mut rec = Recording::new();
    let mut seq = 0u64;
    for b in 0..bursts {
        let pkts: Vec<_> = (0..per)
            .map(|_| {
                let f = builder.build_tagged_snap(ChoirTag::new(0, 0, seq));
                seq += 1;
                pool.alloc(f).unwrap()
            })
            .collect();
        rec.push_burst(b as u64 * 4_000, pkts.iter());
    }
    let total_packets = (bursts * per) as u64;

    // A bounded-but-forgiving supervision envelope: enough retries that
    // transient faults heal, few enough that a wedged ring degrades into
    // abandoned bursts instead of a hang.
    let engine_cfg = EngineConfig {
        max_retries_per_burst: 6,
        backoff_start_cycles: 64,
        backoff_max_cycles: 1024,
        deadline_ns: Some(60 * 60 * 1_000_000_000), // virtual hour; never binds
        ..EngineConfig::default()
    };

    let rates = [0.0f64, 0.05, 0.1, 0.2, 0.4];
    let mut trials = Vec::new();
    let mut lines = Vec::new();
    for &rate in &rates {
        let sink = VirtualSink {
            pool: pool.clone(),
            now: Cell::new(0),
            log: Vec::new(),
        };
        let mut dp = FaultyDataplane::new(
            sink,
            FaultConfig {
                seed: opts.seed,
                tx_reject_rate: rate,
                tx_stall_rate: rate / 4.0,
                tx_stall_calls: 4,
                tsc_jump_rate: rate / 8.0,
                tsc_jump_cycles: 10_000,
                ..FaultConfig::quiet(opts.seed)
            },
        );
        let (stats, degradation) = match run_replay_supervised(&rec, &mut dp, 0, &engine_cfg) {
            Ok(report) => (report.stats, report.degradation),
            Err(e) => (e.stats, e.degradation),
        };
        let faults = dp.fault_stats();
        let sink = dp.into_inner();
        let mut trial = Trial::new();
        for &(t_ns, tag) in &sink.log {
            trial.push_tagged(tag.replayer, tag.stream, tag.seq, t_ns * 1_000);
        }
        trials.push(trial);
        lines.push((rate, stats, degradation, faults));
    }

    let comparisons = analyze_runs_parallel(&trials[0], &trials[1..]);
    println!(
        "{:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>8} {:>8} {:>9} | {:>9} {:>7}",
        "rate", "kappa", "U", "O", "I", "L", "pkts", "rejects", "retries", "abandoned", "injected", "stalls"
    );
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (i, (rate, stats, deg, faults)) in lines.iter().enumerate() {
        // Rate 0 is the baseline run A; its metrics against itself are
        // trivially perfect, so print dashes there.
        let m = if i == 0 {
            None
        } else {
            Some(comparisons[i - 1].metrics)
        };
        println!(
            "{:>6} | {:>7} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>8} {:>8} {:>9} | {:>9} {:>7}",
            format!("{rate:.2}"),
            m.map_or("  --  ".into(), |m| format!("{:.4}", m.kappa)),
            m.map_or("--".into(), |m| fmt::sci(m.u)),
            m.map_or("--".into(), |m| fmt::sci(m.o)),
            m.map_or("--".into(), |m| fmt::sci(m.i)),
            m.map_or("--".into(), |m| fmt::sci(m.l)),
            format!("{}/{}", stats.packets_sent, total_packets),
            deg.tx_rejections,
            deg.tx_retries,
            deg.packets_abandoned,
            faults.tx_packets_rejected,
            faults.tx_stalls_triggered,
        );
        fold(stats.packets_sent);
        fold(deg.tx_rejections);
        fold(deg.tx_retries);
        fold(deg.backoffs);
        fold(deg.packets_abandoned);
        fold(faults.total_events());
        if let Some(m) = m {
            fold(m.kappa.to_bits());
            fold(m.u.to_bits());
        }
    }
    println!(
        "\nsweep digest: {digest:016x}  (same seed => same digest, bit-for-bit)\n"
    );
}

/// Compact calibration sweep: one line per environment (parallel).
fn calibrate(opts: &Opts) {
    println!(
        "== calibration sweep (scale {}, seed {}) ==",
        opts.scale, opts.seed
    );
    println!(
        "{:<28} {:>7} {:>9} {:>9} {:>9} {:>7} || {:>7} {:>9} {:>9} {:>9} {:>7}",
        "env", "10ns%", "O", "I", "L", "kappa", "p10ns%", "pO", "pI", "pL", "pkappa"
    );
    let kinds = EnvKind::all();
    let outs = run_envs_parallel_with(&kinds, opts.scale, opts.seed, opts.runs);
    for (kind, out) in kinds.iter().zip(outs) {
        let kind = *kind;
        let row = paper::row_for(kind);
        let w10: f64 = out.report.runs.iter().map(|r| r.iat_within_10ns).sum::<f64>()
            / out.report.runs.len() as f64;
        let p10 = row.within_10ns.map(|(lo, hi)| (lo + hi) / 2.0).unwrap_or(f64::NAN);
        println!(
            "{:<28} {:>6.1}% {:>9} {:>9} {:>9} {:>7.4} || {:>6.1}% {:>9} {:>9} {:>9} {:>7.4}",
            kind.label(),
            w10 * 100.0,
            fmt::sci(out.report.mean.o),
            fmt::sci(out.report.mean.i),
            fmt::sci(out.report.mean.l),
            out.report.mean.kappa,
            p10 * 100.0,
            fmt::sci(row.mean.o),
            fmt::sci(row.mean.i),
            fmt::sci(row.mean.l),
            row.mean.kappa,
        );
    }
}

/// PTP convergence demo: a grandmaster disciplines a badly-offset client
/// over the simulated network (paper §2.2's substrate, implemented).
fn ptp_demo() {
    use choir_netsim::clock::{NodeClock, PtpModel};
    use choir_netsim::nic::{NicRxModel, NicTxModel};
    use choir_netsim::ptp::{PtpClient, PtpGrandmaster};
    use choir_netsim::rng::Jitter;
    use choir_netsim::time::{MS, NS, US};
    use choir_netsim::{Sim, SimConfig};

    println!("== PTP (IEEE 1588 two-step) servo convergence ==");
    let mut sim = Sim::new(SimConfig::default());
    let gm = sim.add_node(
        "gm",
        PtpGrandmaster::new(0, 500_000),
        NodeClock::ideal(1_000_000_000),
        Jitter::None,
    );
    let mut clk = NodeClock::ideal(1_000_000_000);
    clk.ptp = PtpModel {
        offset_ns: 100_000, // boots 100 us off true time
        drift_ns_per_s: 0.0,
    };
    let client = sim.add_node("client", PtpClient::new(0, 0.6), clk, Jitter::None);
    let gp = sim.add_port(gm, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
    let cp = sim.add_port(
        client,
        NicTxModel::ideal(100_000_000_000),
        NicRxModel {
            deliver_latency: Jitter::Exp {
                mean: 200.0 * NS as f64,
            },
            ..NicRxModel::ideal()
        },
    );
    sim.connect_nodes(gm, gp, client, cp, 50 * NS);
    sim.wake_app(gm, US);
    println!("client boots 100000 ns off the grandmaster; sync every 0.5 ms:");
    for step in 1..=8u64 {
        sim.run_until(step * 2 * MS);
        let (off, rounds) = sim.with_app::<PtpClient, _>(client, |c| {
            (c.last_offset_ns().unwrap_or(i64::MAX), c.rounds_completed())
        });
        println!("  t = {:>2} ms: measured offset {:>8} ns after {:>2} rounds", step * 2, off, rounds);
    }
    println!("(residual sits at the software-stamping jitter floor — the");
    println!(" reason FABRIC uses NIC hardware stamping, paper SS2.2)\n");
}

/// Serialize one environment's calibrated profile as editable JSON.
fn dump_profile(opts: &Opts) {
    let name = opts.arg.as_deref().unwrap_or("LocalSingle");
    let kind = EnvKind::all()
        .into_iter()
        .find(|k| format!("{k:?}").eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!(
                "unknown environment {name}; one of: {:?}",
                EnvKind::all().map(|k| format!("{k:?}"))
            );
            std::process::exit(2);
        });
    let json = serde_json::to_string_pretty(&kind.profile()).expect("serialize profile");
    let path = format!("{name}.profile.json");
    std::fs::write(&path, json).expect("write profile");
    println!("wrote {path}; edit it and run: repro custom {path}");
}

/// Run an environment profile loaded from JSON.
fn custom(opts: &Opts) {
    let Some(path) = opts.arg.as_deref() else {
        eprintln!("usage: repro custom <profile.json>");
        std::process::exit(2);
    };
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let mut profile: choir_testbed::EnvProfile =
        serde_json::from_str(&body).unwrap_or_else(|e| {
            eprintln!("{path}: bad profile JSON: {e}");
            std::process::exit(1);
        });
    if let Some(r) = opts.runs {
        profile.runs = r;
    }
    println!(
        "== custom profile {path} (base {:?}, scale {}, seed {}) ==",
        profile.kind, opts.scale, opts.seed
    );
    let out = choir_testbed::Experiment::new(choir_testbed::ExperimentConfig {
        profile,
        scale: opts.scale,
        seed: opts.seed,
    })
    .run();
    for r in &out.report.runs {
        println!(
            "  run {}: {:5.2}% IAT +-10ns, U {}, O {}, I {}, L {}, kappa {:.4}",
            r.label,
            100.0 * r.iat_within_10ns,
            fmt::sci(r.metrics.u),
            fmt::sci(r.metrics.o),
            fmt::sci(r.metrics.i),
            fmt::sci(r.metrics.l),
            r.metrics.kappa
        );
    }
    println!(
        "  mean kappa {:.4} over {} packets/trial",
        out.report.mean.kappa,
        out.trials[0].len()
    );
    println!("-- IAT delta histogram --");
    print!("{}", out.report.merged_iat_hist().render_ascii(48));
}

/// Write a pair of demo captures (baseline + jittery run) as nanosecond
/// pcaps under ./demo-pcaps/, for exercising `choir-analyze`.
fn demo_pcaps() {
    use choir_packet::pcap::PcapWriter;
    std::fs::create_dir_all("demo-pcaps").expect("create demo-pcaps/");
    let builder = FrameBuilder::new(1400, 1, 2);
    let write = |name: &str, jitter: fn(u64) -> i64| {
        let path = format!("demo-pcaps/{name}");
        let mut w = PcapWriter::new(std::fs::File::create(&path).expect("create pcap")).unwrap();
        for i in 0..50_000u64 {
            let f = builder.build_tagged_snap(ChoirTag::new(0, 0, i));
            let t = (i as i64 * 285 + jitter(i)).max(0) as u64;
            w.write_record(t, &f).unwrap();
        }
        w.finish().unwrap();
        println!("wrote {path}");
    };
    write("baseline.pcap", |_| 0);
    write("run_b.pcap", |i| ((i % 13) as i64 - 6) * 3 + if i % 997 == 0 { 800 } else { 0 });
    println!("analyze with: choir-analyze demo-pcaps/baseline.pcap demo-pcaps/run_b.pcap --windows 10 --spacing 64");
}

/// Mechanism ablation: start from the FABRIC dedicated 40 Gbps profile
/// and switch off one hypothesized noise source at a time, showing which
/// component of the model drives which metric (the paper could not
/// perform this on real hardware, §8.1 — the simulator can).
fn ablate(opts: &Opts) {
    use choir_netsim::clock::TimestampModel;
    use choir_netsim::nic::BatchDist;
    use choir_netsim::rng::Jitter;

    println!(
        "== ablation: FABRIC Dedicated 40 Gbps, one mechanism removed at a time (scale {}) ==",
        opts.scale
    );
    println!(
        "{:<34} {:>7} {:>9} {:>9} {:>7}",
        "variant", "10ns%", "I", "L", "kappa"
    );

    let base = EnvKind::FabricDedicated40A.profile();
    type Mutator = Box<dyn Fn(&mut choir_testbed::EnvProfile)>;
    let variants: Vec<(&str, Mutator)> = vec![
        ("full model", Box::new(|_| {})),
        (
            "- descriptor-fetch pacing",
            Box::new(|p| {
                p.pull_read = Jitter::None;
                p.pull_rearm = Jitter::None;
                p.batch = BatchDist::One;
            }),
        ),
        (
            "- ConnectX timestamp noise",
            Box::new(|p| p.recorder_ts = TimestampModel::exact()),
        ),
        (
            "- VM wake jitter",
            Box::new(|p| p.wake_jitter = Jitter::None),
        ),
        (
            "- clock-servo slope",
            Box::new(|p| p.ts_slope_sigma_ppb = 0.0),
        ),
        (
            "- doorbell jitter",
            Box::new(|p| p.doorbell = Jitter::Const(700_000)),
        ),
    ];

    for (name, mutate) in variants {
        let mut profile = base.clone();
        profile.runs = opts.runs.unwrap_or(3);
        mutate(&mut profile);
        let out = choir_testbed::Experiment::new(choir_testbed::ExperimentConfig {
            profile,
            scale: opts.scale,
            seed: opts.seed,
        })
        .run();
        let w10 = out
            .report
            .runs
            .iter()
            .map(|r| r.iat_within_10ns)
            .sum::<f64>()
            / out.report.runs.len() as f64;
        println!(
            "{:<34} {:>6.1}% {:>9} {:>9} {:>7.4}",
            name,
            w10 * 100.0,
            fmt::sci(out.report.mean.i),
            fmt::sci(out.report.mean.l),
            out.report.mean.kappa
        );
    }
    println!("\n(each row removes exactly one mechanism from the calibrated model)\n");
}

/// The §10 throughput claim: drive the real replay engine flat out and
/// report sustained Mpps / wire-Gbps.
///
/// The primary measurement is single-threaded against a counting sink —
/// the claim is about the software loop (TSC spin, burst assembly, ring
/// hand-off); a real NIC consumes descriptors in hardware, not on a CPU
/// thread. A cross-thread loopback figure is printed as well, but on
/// single-CPU hosts it measures scheduler quanta, not the dataplane.
fn throughput() {
    use choir_dpdk::{Burst, Dataplane, PortStats};

    println!("== Throughput: real-time replay engine (paper: 100 Gbps / 8.9 Mpps) ==");
    let pool = Mempool::new("tp", 1 << 20);
    let spec = FrameSpec::new(1400, 100_000_000_000);
    let builder = FrameBuilder::new(1400, 1, 2);
    // 512k packets in 64-packet bursts, recorded at the 100 Gbps cadence.
    let mut rec = Recording::new();
    let bursts = 8192usize;
    let per = 64usize;
    let gap_ns = spec.gap_ps() / 1000;
    for b in 0..bursts {
        let pkts: Vec<_> = (0..per)
            .map(|i| {
                pool.alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, (b * per + i) as u64)))
                    .unwrap()
            })
            .collect();
        rec.push_burst(b as u64 * gap_ns * per as u64, pkts.iter());
    }

    /// A hardware-NIC stand-in: accepts every packet, counts, frees the
    /// handle on the spot (same core, no cross-thread cache traffic).
    struct CountingSink {
        pool: Mempool,
        clock: RealClock,
        stats: PortStats,
    }
    impl Dataplane for CountingSink {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: usize, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: usize, burst: &mut Burst) -> usize {
            let n = burst.len();
            let mut bytes = 0u64;
            for m in burst.drain() {
                bytes += m.len() as u64;
            }
            self.stats.on_tx(n as u64, bytes);
            n
        }
        fn tsc(&self) -> u64 {
            self.clock.elapsed_ns()
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.clock.elapsed_ns()
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: usize) -> PortStats {
            self.stats
        }
    }

    // Paced at the recorded 100 Gbps cadence: can the loop keep up?
    let mut sink = CountingSink {
        pool: pool.clone(),
        clock: RealClock::new(),
        stats: PortStats::default(),
    };
    let report = run_replay_spin(&rec, &mut sink, 0, 1);
    println!(
        "   paced replay (single-thread):  {:.2} Gbps wire-equivalent, {:.2} Mpps, worst burst lateness {} ns",
        report.wire_bps / 1e9,
        report.pps / 1e6,
        report.stats.max_lateness_cycles // 1 GHz TSC: cycles == ns
    );

    // Back-to-back: the loop ceiling.
    let mut sink2 = CountingSink {
        pool: pool.clone(),
        clock: RealClock::new(),
        stats: PortStats::default(),
    };
    let ceiling = run_replay_spin(&rec, &mut sink2, 0, u64::MAX);
    println!(
        "   loop ceiling  (single-thread):  {:.2} Gbps wire-equivalent, {:.2} Mpps",
        ceiling.wire_bps / 1e9,
        ceiling.pps / 1e6
    );

    // Cross-thread loopback hand-off, for reference.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (port, mut drain) = LoopbackPort::sink(1 << 14);
    let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
    let pid = plane.add_port(port);
    let total = (bursts * per) as u64;
    let consumer = std::thread::spawn(move || {
        let mut held = Vec::with_capacity(total as usize);
        while held.len() < total as usize {
            if let Some(m) = drain.pop() {
                held.push(m);
            } else {
                std::hint::spin_loop();
            }
        }
        held
    });
    let xthread = run_replay_spin(&rec, &mut plane, pid, u64::MAX);
    drop(consumer.join().unwrap());
    println!(
        "   cross-thread ring hand-off:     {:.2} Gbps wire-equivalent, {:.2} Mpps  ({} CPU(s) on this host{})",
        xthread.wire_bps / 1e9,
        xthread.pps / 1e6,
        cpus,
        if cpus <= 1 {
            "; single-CPU: this measures scheduler quanta, not the loop"
        } else {
            ""
        }
    );
    println!(
        "   paper headline: {:.0} Gbps / {:.1} Mpps\n",
        paper::HEADLINE_GBPS,
        paper::HEADLINE_MPPS
    );
}

