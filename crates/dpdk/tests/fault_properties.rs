//! Property tests of the fault-injecting dataplane decorator.
//!
//! Two contracts matter for chaos experiments to be trustworthy:
//!
//! 1. **Transparency at zero rates** — a `FaultyDataplane` whose every
//!    rate is zero must be observation-identical to the bare backend for
//!    any call sequence, so wrapping a production dataplane "just in
//!    case" costs nothing semantically.
//! 2. **Bit-determinism in the seed** — the injected scenario is a pure
//!    function of `(seed, call sequence)`, so a failing chaos run can be
//!    replayed exactly from its seed.
//!
//! Both are checked against a deterministic scripted plane (manual
//! clock, scripted rx queue, fixed tx acceptance) — two `RealClock`
//! planes would diverge on wall time and void the comparison.

use std::collections::VecDeque;

use choir_dpdk::{Burst, Dataplane, FaultConfig, FaultyDataplane, Mbuf, Mempool, PortStats};
use choir_packet::{ChoirTag, FrameBuilder};
use proptest::prelude::*;

/// Deterministic single-port plane: the clock advances a fixed amount
/// per rx/tx call, receive pops a pre-scripted queue of tagged packets,
/// transmit accepts a fixed number per call.
struct ScriptPlane {
    pool: Mempool,
    now: u64,
    rx_q: VecDeque<Mbuf>,
    tx_accept: usize,
    tx_count: u64,
}

impl ScriptPlane {
    fn new(rx_packets: usize, tx_accept: usize) -> Self {
        let pool = Mempool::new("script", 4096);
        let b = FrameBuilder::new(128, 1, 2);
        let rx_q = (0..rx_packets)
            .map(|i| {
                pool.alloc(b.build_tagged_snap(ChoirTag::new(0, 0, i as u64)))
                    .unwrap()
            })
            .collect();
        ScriptPlane {
            pool,
            now: 0,
            rx_q,
            tx_accept,
            tx_count: 0,
        }
    }
}

impl Dataplane for ScriptPlane {
    fn num_ports(&self) -> usize {
        1
    }
    fn mempool(&self) -> &Mempool {
        &self.pool
    }
    fn rx_burst(&mut self, _p: usize, out: &mut Burst) -> usize {
        out.clear();
        self.now += 7;
        let mut n = 0;
        while n < 16 {
            match self.rx_q.pop_front() {
                Some(m) => {
                    out.push(m).unwrap();
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
    fn tx_burst(&mut self, _p: usize, burst: &mut Burst) -> usize {
        self.now += 5;
        let n = burst.len().min(self.tx_accept);
        burst.drain_front(n).for_each(drop);
        self.tx_count += n as u64;
        n
    }
    fn tsc(&self) -> u64 {
        self.now
    }
    fn tsc_hz(&self) -> u64 {
        1_000_000_000
    }
    fn wall_ns(&self) -> u64 {
        self.now
    }
    fn request_wake_at_tsc(&mut self, _t: u64) {}
    fn stats(&self, _p: usize) -> PortStats {
        PortStats::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Rx,
    Tx(usize),
    Tsc,
    Wall,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Op::Rx),
            (0usize..4).prop_map(Op::Tx),
            Just(Op::Tsc),
            Just(Op::Wall),
        ],
        0..60,
    )
}

/// Drive `dp` through `ops`, recording every observable outcome.
fn apply<D: Dataplane>(dp: &mut D, ops: &[Op]) -> Vec<String> {
    let b = FrameBuilder::new(96, 3, 4);
    let mut next_seq = 1_000u64;
    let mut trace = Vec::new();
    let mut rx = Burst::new();
    for op in ops {
        match op {
            Op::Rx => {
                let n = dp.rx_burst(0, &mut rx);
                let seqs: Vec<u64> = rx
                    .iter()
                    .map(|m| m.frame.tag().map_or(u64::MAX, |t| t.seq))
                    .collect();
                trace.push(format!("rx {n} {seqs:?}"));
            }
            Op::Tx(k) => {
                let mut burst = Burst::new();
                for _ in 0..*k {
                    let f = b.build_tagged_snap(ChoirTag::new(1, 0, next_seq));
                    next_seq += 1;
                    match dp.mempool().alloc(f) {
                        Ok(m) => {
                            let _ = burst.push(m);
                        }
                        Err(_) => trace.push("alloc-fail".into()),
                    }
                }
                let accepted = dp.tx_burst(0, &mut burst);
                trace.push(format!("tx {accepted} left {}", burst.len()));
            }
            Op::Tsc => trace.push(format!("tsc {}", dp.tsc())),
            Op::Wall => trace.push(format!("wall {}", dp.wall_ns())),
        }
    }
    trace.push(format!("pool {}", dp.mempool().available()));
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn zero_rates_are_observation_identical_to_bare_backend(
        ops in arb_ops(),
        seed in any::<u64>(),
    ) {
        let mut bare = ScriptPlane::new(48, 8);
        let mut faulty = FaultyDataplane::new(
            ScriptPlane::new(48, 8),
            FaultConfig::quiet(seed),
        );
        let a = apply(&mut bare, &ops);
        let b = apply(&mut faulty, &ops);
        prop_assert_eq!(a, b);
        prop_assert_eq!(faulty.fault_stats().total_events(), 0);
    }

    #[test]
    fn same_seed_same_scenario(
        ops in arb_ops(),
        seed in any::<u64>(),
        tx_reject in 0.0f64..0.6,
        tx_stall in 0.0f64..0.3,
        rx_drop in 0.0f64..0.5,
        rx_dup in 0.0f64..0.5,
        tsc_jump in 0.0f64..0.3,
        pool_exhaust in 0.0f64..0.2,
    ) {
        let cfg = FaultConfig {
            tx_reject_rate: tx_reject,
            tx_stall_rate: tx_stall,
            tx_stall_calls: 3,
            rx_drop_rate: rx_drop,
            rx_dup_rate: rx_dup,
            tsc_jump_rate: tsc_jump,
            tsc_jump_cycles: 500,
            pool_exhaust_rate: pool_exhaust,
            pool_exhaust_calls: 5,
            ..FaultConfig::quiet(seed)
        };
        let mut first = FaultyDataplane::new(ScriptPlane::new(48, 8), cfg.clone());
        let mut second = FaultyDataplane::new(ScriptPlane::new(48, 8), cfg);
        let a = apply(&mut first, &ops);
        let b = apply(&mut second, &ops);
        prop_assert_eq!(a, b, "same seed must replay the same scenario");
        prop_assert_eq!(first.fault_stats(), second.fault_stats());
    }
}
