//! Figure 1, end to end: "An incoming packet stream is divided between
//! three separate replay nodes, and the outputs are later received at a
//! single point in some order. On each replay, this ordering should
//! remain constant, but with some variance in the time deltas."
//!
//! This example builds exactly that topology in the simulator — a
//! generator fanning one stream across THREE Choir middleboxes which
//! merge into one recorder — runs three replays, and shows that the
//! packet sets are identical while ordering/timing vary.
//!
//! ```text
//! cargo run --release --example parallel_replay
//! ```

use choir::capture::{Recorder, RecorderConfig};
use choir::core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
use choir::dpdk::ControlMsg;
use choir::metrics::report::analyze;
use choir::netsim::clock::{NodeClock, PtpModel};
use choir::netsim::nic::{NicRxModel, NicTxModel};
use choir::netsim::rng::{DetRng, Jitter};
use choir::netsim::switchdev::{Switch, SwitchProfile};
use choir::netsim::time::{MS, NS, US};
use choir::netsim::{Sim, SimConfig};
use choir::pktgen::{Generator, GeneratorConfig};

fn main() {
    println!("Figure 1 demo: one stream split across three replay nodes\n");
    let replayers = 3usize;
    let packets = 30_000u64;
    let link = 100_000_000_000u64;

    let mut sim = Sim::new(SimConfig {
        master_seed: 0xF161,
        trial: 0,
        pool_slots: packets as usize * 2 + 65_536,
        ..SimConfig::default()
    });
    let mut rng = DetRng::derive(0xF161, &["example"]);
    let clock = |rng: &mut DetRng| NodeClock {
        tsc_hz: 2_500_000_000,
        tsc_offset: rng.range_u64(0, 1 << 40),
        freq_error_ppb: 0,
        ptp: PtpModel::sampled(rng, 30.0, 5.0),
    };

    // Generator with one port per replayer (the stream divider of Fig. 1).
    let mut gen_cfg = GeneratorConfig::cbr(40_000_000_000, packets);
    gen_cfg.ports = (0..replayers).collect();
    let gen = sim.add_node("generator", Generator::new(gen_cfg), clock(&mut rng), Jitter::None);
    for _ in 0..replayers {
        sim.add_port(gen, NicTxModel::ideal(link), NicRxModel::ideal());
    }

    // Three transparent middleboxes.
    let wake = Jitter::Exp { mean: 100.0 * NS as f64 };
    let mut mbs = Vec::new();
    for r in 0..replayers {
        let mb = sim.add_node(
            &format!("replayer{r}"),
            ChoirMiddlebox::new(MiddleboxConfig {
                replayer_id: r as u16,
                in_band_control: false,
                ..MiddleboxConfig::default()
            }),
            clock(&mut rng),
            wake.clone(),
        );
        sim.add_port(
            mb,
            NicTxModel::ideal(link),
            NicRxModel {
                deliver_latency: Jitter::Const(4 * US as i64),
                ..NicRxModel::ideal()
            },
        );
        sim.add_port(mb, NicTxModel::ideal(link), NicRxModel::ideal());
        mbs.push(mb);
    }

    // The single receive point.
    let rec = sim.add_node("recorder", Recorder::new(RecorderConfig::default()), clock(&mut rng), Jitter::None);
    sim.add_port(rec, NicTxModel::ideal(link), NicRxModel::ideal());

    // One switch connects everything (as in both of the paper's testbeds).
    let sw = sim.add_switch(
        Switch::new(4 * replayers, SwitchProfile::tofino2(link)),
        "switch",
    );
    for (r, &mb) in mbs.iter().enumerate() {
        let (i1, e1) = (4 * r, 4 * r + 1);
        sim.connect_node_switch(gen, r, sw, i1, 5 * NS);
        sim.connect_node_switch(mb, 0, sw, e1, 5 * NS);
        sim.switch_map(sw, i1, e1);
        let (i2, e2) = (4 * r + 2, 4 * r + 3);
        sim.connect_node_switch(mb, 1, sw, i2, 5 * NS);
        sim.connect_node_switch(rec, 0, sw, e2, 5 * NS);
        sim.switch_map(sw, i2, e2);
    }

    // Record the stream...
    for &mb in &mbs {
        sim.send_control(mb, ControlMsg::StartRecord, MS);
    }
    sim.wake_app(gen, 2 * MS);
    let record_end = 2 * MS + packets * 285_000 / 1_000 * 1_000 + 2 * MS;
    for &mb in &mbs {
        sim.send_control(mb, ControlMsg::StopRecord, record_end);
    }
    sim.run_until(record_end + MS);
    sim.with_app::<Recorder, _>(rec, |r| {
        r.take_trials();
    });
    let recorded: usize = mbs
        .iter()
        .map(|&mb| sim.with_app::<ChoirMiddlebox, _>(mb, |m| m.recording().packets()))
        .sum();
    println!("three middleboxes hold {recorded} packets between them");

    // ...then replay it three times.
    for _run in 0..3 {
        // Between runs, PTP wanders a little on every replay node.
        for &mb in &mbs {
            let p = PtpModel::sampled(&mut rng, 40.0, 5.0);
            sim.set_ptp(mb, p);
        }
        let start_wall = (sim.now_ps() + 3 * MS) / 1_000;
        for &mb in &mbs {
            sim.send_control(
                mb,
                ControlMsg::ScheduleReplay { start_wall_ns: start_wall },
                sim.now_ps(),
            );
        }
        sim.run_until(sim.now_ps() + 3 * MS + packets * 285_000 + 3 * MS);
        sim.with_app::<Recorder, _>(rec, |r| r.cut_trial());
    }

    let trials: Vec<_> = sim
        .with_app::<Recorder, _>(rec, |r| r.take_trials())
        .into_iter()
        .map(|t| t.rezeroed())
        .collect();
    println!("captured {} replays of {} packets each\n", trials.len(), trials[0].len());

    for (i, label) in ["B", "C"].iter().enumerate() {
        let cmp = analyze(*label, &trials[0], &trials[i + 1]);
        println!(
            "run {label} vs run A:  U={:.2e}  O={:.2e}  L={:.2e}  I={:.4}  kappa={:.4}  (moved {})",
            cmp.metrics.u, cmp.metrics.o, cmp.metrics.l, cmp.metrics.i, cmp.metrics.kappa, cmp.moved,
        );
    }
    println!("\nFig. 1's claim checks out: every replay delivers the same packets");
    println!("(U = 0) in essentially the same order (O ~ 1e-5 — the LCS covers");
    println!("nearly everything), while the time deltas vary (I) where the three");
    println!("replayers' streams merge — \"this ordering should remain constant,");
    println!("but with some variance in the time deltas\".");
}
