//! Matching common packets between two trials.
//!
//! Paper §3: packets are "the same" when their identity-defining regions
//! are identical; identical packets are disambiguated by occurrence ("they
//! can be tagged with their occurrence — so 0 for the first, 1 for the
//! second, and so on"). [`Matching`] implements that: the k-th occurrence
//! of an identity in A is paired with the k-th occurrence in B, yielding
//! the multiset intersection `A ∩ B` that Eqs. 1–4 all reference.

use std::collections::HashMap;

use choir_packet::ident::PacketId;

use super::allpairs::TrialIndex;
use super::trial::Trial;

/// One common packet: its position in each trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchedPair {
    /// Index of the packet in trial A.
    pub a_idx: usize,
    /// Index of the packet in trial B.
    pub b_idx: usize,
}

/// The occurrence-wise matching between two trials.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Matched pairs, ordered by ascending `b_idx` (B's arrival order).
    pub pairs: Vec<MatchedPair>,
    /// `|A|`.
    pub a_len: usize,
    /// `|B|`.
    pub b_len: usize,
}

impl Matching {
    /// Match trials occurrence-by-occurrence.
    ///
    /// Runs in O(|A| + |B|) expected time (one hash map over A, one pass
    /// over B).
    pub fn build(a: &Trial, b: &Trial) -> Matching {
        // Identity -> queue of indices in A, consumed front-to-back so the
        // k-th occurrence in B pairs with the k-th in A.
        let mut a_positions: HashMap<PacketId, smallqueue::SmallQueue> =
            HashMap::with_capacity(a.len());
        for (i, o) in a.observations().iter().enumerate() {
            a_positions.entry(o.id).or_default().push(i);
        }
        let mut pairs = Vec::with_capacity(a.len().min(b.len()));
        for (j, o) in b.observations().iter().enumerate() {
            if let Some(q) = a_positions.get_mut(&o.id) {
                if let Some(i) = q.pop() {
                    pairs.push(MatchedPair { a_idx: i, b_idx: j });
                }
            }
        }
        Matching {
            pairs,
            a_len: a.len(),
            b_len: b.len(),
        }
    }

    /// `|A ∩ B|` — the number of common packets.
    pub fn common(&self) -> usize {
        self.pairs.len()
    }

    /// Packets of A that have no partner in B (dropped on the B run).
    pub fn missing_in_b(&self) -> usize {
        self.a_len - self.common()
    }

    /// Packets of B that have no partner in A (extra/corrupted in B).
    pub fn extra_in_b(&self) -> usize {
        self.b_len - self.common()
    }
}

/// Occurrence-wise matching streamed from two prebuilt arenas —
/// bit-identical to [`Matching::build`] on the underlying trials.
///
/// The reference consumes per-identity queues front to back; here the
/// queue state is implicit: B's k-th occurrence of an identity (its
/// precomputed `occ` rank) pairs with A's k-th occurrence (the k-th entry
/// of A's group extent), so the whole scan is one table probe plus two
/// flat-slice reads per B packet — no per-pair allocation at all.
pub(crate) fn matching_arena(a: &TrialIndex<'_>, b: &TrialIndex<'_>) -> Matching {
    let mut pairs = Vec::with_capacity(a.len().min(b.len()));
    let a_pos = a.positions();
    let a_start = a.group_start();
    let b_occ = b.occ();
    for (j, o) in b.trial().observations().iter().enumerate() {
        if let Some(g) = a.find(o.id) {
            let s = a_start[g as usize] as usize;
            let e = a_start[g as usize + 1] as usize;
            let k = b_occ[j] as usize;
            if k < e - s {
                pairs.push(MatchedPair {
                    a_idx: a_pos[s + k] as usize,
                    b_idx: j,
                });
            }
        }
    }
    Matching {
        pairs,
        a_len: a.len(),
        b_len: b.len(),
    }
}

/// A tiny queue of indices optimized for the common case of exactly one
/// occurrence per identity (no heap allocation until a duplicate appears).
mod smallqueue {
    /// Queue of `usize` holding its first element inline.
    #[derive(Debug, Default)]
    pub struct SmallQueue {
        first: Option<usize>,
        rest: Vec<usize>,
        /// Cursor into `rest` for pops (indices are pushed in order, so a
        /// cursor avoids O(n) removals).
        cursor: usize,
        first_taken: bool,
    }

    impl SmallQueue {
        /// Append an index.
        pub fn push(&mut self, v: usize) {
            if self.first.is_none() && !self.first_taken {
                self.first = Some(v);
            } else {
                self.rest.push(v);
            }
        }

        /// Remove and return the oldest index.
        pub fn pop(&mut self) -> Option<usize> {
            if let Some(v) = self.first.take() {
                self.first_taken = true;
                return Some(v);
            }
            if self.cursor < self.rest.len() {
                let v = self.rest[self.cursor];
                self.cursor += 1;
                Some(v)
            } else {
                None
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_without_allocation_for_single() {
            let mut q = SmallQueue::default();
            q.push(7);
            assert_eq!(q.rest.capacity(), 0);
            assert_eq!(q.pop(), Some(7));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn fifo_with_duplicates() {
            let mut q = SmallQueue::default();
            q.push(1);
            q.push(2);
            q.push(3);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            q.push(4);
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), Some(4));
            assert_eq!(q.pop(), None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(seqs: &[u64]) -> Trial {
        let mut t = Trial::new();
        for (i, &s) in seqs.iter().enumerate() {
            t.push_tagged(0, 0, s, i as u64 * 100);
        }
        t
    }

    #[test]
    fn identical_trials_fully_match() {
        let a = trial(&[0, 1, 2, 3]);
        let m = Matching::build(&a, &a.clone());
        assert_eq!(m.common(), 4);
        assert_eq!(m.missing_in_b(), 0);
        assert_eq!(m.extra_in_b(), 0);
        for (k, p) in m.pairs.iter().enumerate() {
            assert_eq!(p.a_idx, k);
            assert_eq!(p.b_idx, k);
        }
    }

    #[test]
    fn drop_in_b_detected() {
        let a = trial(&[0, 1, 2, 3]);
        let b = trial(&[0, 1, 3]);
        let m = Matching::build(&a, &b);
        assert_eq!(m.common(), 3);
        assert_eq!(m.missing_in_b(), 1);
        assert_eq!(m.extra_in_b(), 0);
    }

    #[test]
    fn extra_in_b_detected() {
        let a = trial(&[0, 1]);
        let b = trial(&[0, 1, 9]);
        let m = Matching::build(&a, &b);
        assert_eq!(m.common(), 2);
        assert_eq!(m.extra_in_b(), 1);
    }

    #[test]
    fn reordering_pairs_by_identity() {
        let a = trial(&[0, 1, 2]);
        let b = trial(&[2, 0, 1]);
        let m = Matching::build(&a, &b);
        assert_eq!(m.common(), 3);
        // pairs ordered by b_idx; a_idx reflects the permutation.
        let a_order: Vec<usize> = m.pairs.iter().map(|p| p.a_idx).collect();
        assert_eq!(a_order, vec![2, 0, 1]);
    }

    #[test]
    fn duplicates_match_occurrence_wise() {
        // Same identity appearing twice: k-th matches k-th.
        let mut a = Trial::new();
        a.push_tagged(0, 0, 5, 0);
        a.push_tagged(0, 0, 5, 100);
        a.push_tagged(0, 0, 6, 200);
        let mut b = Trial::new();
        b.push_tagged(0, 0, 5, 0);
        b.push_tagged(0, 0, 6, 100);
        b.push_tagged(0, 0, 5, 200);
        let m = Matching::build(&a, &b);
        assert_eq!(m.common(), 3);
        // First 5 in B -> first 5 in A (idx 0); second 5 in B -> idx 1.
        assert_eq!(m.pairs[0], MatchedPair { a_idx: 0, b_idx: 0 });
        assert_eq!(m.pairs[1], MatchedPair { a_idx: 2, b_idx: 1 });
        assert_eq!(m.pairs[2], MatchedPair { a_idx: 1, b_idx: 2 });
    }

    #[test]
    fn unbalanced_duplicates() {
        // A has three copies, B has one: only one pair.
        let mut a = Trial::new();
        for i in 0..3 {
            a.push_tagged(0, 0, 7, i * 10);
        }
        let mut b = Trial::new();
        b.push_tagged(0, 0, 7, 0);
        let m = Matching::build(&a, &b);
        assert_eq!(m.common(), 1);
        assert_eq!(m.missing_in_b(), 2);
    }

    #[test]
    fn empty_inputs() {
        let e = Trial::new();
        let a = trial(&[1]);
        assert_eq!(Matching::build(&e, &e).common(), 0);
        assert_eq!(Matching::build(&a, &e).missing_in_b(), 1);
        assert_eq!(Matching::build(&e, &a).extra_in_b(), 1);
    }
}
