//! # Choir
//!
//! A Rust implementation of **Choir** — the 100 Gbps in-situ traffic
//! replayer — and the **κ network-consistency metric**, reproducing
//! *"Network Replay and Consistency Across Testbeds"* (SC Workshops '25),
//! together with a deterministic network simulator that stands in for the
//! paper's hardware testbeds.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`metrics`] | `choir-core` | U/O/L/I variation metrics, κ, histograms, edit scripts |
//! | [`replay`] | `choir-core` | the Choir middlebox: record without copy, TSC-delta replay |
//! | [`dpdk`] | `choir-dpdk` | mini dataplane: mempools, bursts, rings, the `Dataplane` trait |
//! | [`netsim`] | `choir-netsim` | discrete-event simulator: NICs, switches, clocks, noise |
//! | [`packet`] | `choir-packet` | frames, Choir trailer tags, pcap I/O |
//! | [`pktgen`] | `choir-pktgen` | CBR traffic generator app |
//! | [`capture`] | `choir-capture` | recorder app producing [`metrics::Trial`]s |
//! | [`testbed`] | `choir-testbed` | the paper's nine environments + experiment runner |
//! | [`fabric`] | `choir-fabric` | FABRIC resource model: sites, slices, L2 services |
//!
//! ## Thirty-second tour
//!
//! ```
//! use choir::metrics::{compare, Trial};
//!
//! // Two captures of "the same" traffic...
//! let mut a = Trial::new();
//! let mut b = Trial::new();
//! for i in 0..1_000u64 {
//!     a.push_tagged(0, 0, i, i * 284_800); // 40 Gbps spacing, ps
//!     b.push_tagged(0, 0, i, i * 284_800 + (i % 5) * 2_000);
//! }
//! // ...scored on the paper's 0-to-1 consistency scale.
//! let m = compare(&a, &b);
//! assert!(m.kappa > 0.98);
//! ```
//!
//! Run `cargo run --release -p choir-bench --bin repro -- all` to
//! regenerate every table and figure of the paper; see EXPERIMENTS.md for
//! the paper-vs-measured record.

pub use choir_capture as capture;
pub use choir_dpdk as dpdk;
pub use choir_fabric as fabric;
pub use choir_netsim as netsim;
pub use choir_packet as packet;
pub use choir_pktgen as pktgen;
pub use choir_testbed as testbed;

/// The paper's core contribution: consistency metrics (`metrics`) and the
/// replay application (`replay`).
pub use choir_core as core;

pub use choir_core::metrics;
pub use choir_core::replay;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let t = crate::metrics::Trial::new();
        assert!(t.is_empty());
        let pool = crate::dpdk::Mempool::new("facade", 4);
        assert_eq!(pool.capacity(), 4);
        let spec = crate::packet::FrameSpec::new(1400, 40_000_000_000);
        assert!(spec.pps() > 3.0e6);
    }
}
