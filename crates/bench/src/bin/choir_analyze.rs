//! `choir-analyze` — score packet captures for consistency, like the
//! paper artifact's analysis step ("Analyze packet captures and produce
//! figures similar to those in the paper", Appendix A).
//!
//! ```text
//! choir-analyze <baseline.pcap> <run.pcap>... [--windows N] [--spacing K] [--obs]
//! ```
//!
//! Each run pcap is compared against the baseline: the four metrics and
//! κ, the within-±10 ns statistic, GapReplay-style raw sums, figure-style
//! delta histograms, and (with `--windows`) a per-window κ series that
//! localizes inconsistency in time. `--obs` turns on the in-tree
//! observability layer and appends the span/counter profile of the
//! analysis itself (DESIGN.md §11). Captures must be nanosecond or
//! microsecond pcap in either byte order, as produced by
//! `choir_capture::Recorder` or any capture tool.

use std::process::ExitCode;

use choir_bench::fmt::sci;
use choir_core::metrics::gapreplay::gapreplay_metrics;
use choir_core::metrics::report::analyze;
use choir_core::metrics::reorder::reorder_profile;
use choir_core::metrics::windowed::{windowed_kappa, worst_window};
use choir_core::metrics::{Matching, Trial};
use choir_packet::pcap::read_pcap;

fn load_trial(path: &str) -> Result<Trial, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = read_pcap(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    Ok(Trial::from_pcap_records(&records).rezeroed())
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut windows: Option<usize> = None;
    let mut spacing: Option<usize> = None;
    let mut obs_on = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--obs" => obs_on = true,
            "--windows" => {
                windows = args.next().and_then(|v| v.parse().ok());
                if windows.is_none() {
                    eprintln!("--windows needs a positive integer");
                    return ExitCode::from(2);
                }
            }
            "--spacing" => {
                spacing = args.next().and_then(|v| v.parse().ok());
                if spacing.is_none() {
                    eprintln!("--spacing needs a positive integer");
                    return ExitCode::from(2);
                }
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() < 2 {
        eprintln!(
            "usage: choir-analyze <baseline.pcap> <run.pcap>... [--windows N] [--spacing K] [--obs]"
        );
        return ExitCode::from(2);
    }
    if obs_on {
        choir_core::obs::configure(&choir_core::obs::ObsConfig {
            enabled: true,
            ring_capacity: 4096,
        });
        choir_core::obs::set_enabled(true);
    }

    let baseline = match load_trial(&paths[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "baseline {}: {} packets over {:.3} ms",
        paths[0],
        baseline.len(),
        baseline.span_ps() as f64 / 1e9
    );

    for path in &paths[1..] {
        let run = match load_trial(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = analyze(path.as_str(), &baseline, &run);
        println!("\n== {path} vs baseline ==");
        println!(
            "  packets {} | common {} | missing {} | extra {} | moved {}",
            run.len(),
            cmp.common,
            cmp.missing,
            cmp.extra,
            cmp.moved
        );
        println!(
            "  U {}  O {}  L {}  I {}  kappa {:.4}",
            sci(cmp.metrics.u),
            sci(cmp.metrics.o),
            sci(cmp.metrics.l),
            sci(cmp.metrics.i),
            cmp.metrics.kappa
        );
        println!(
            "  {:.2}% of IAT deltas within +-10 ns",
            cmp.iat_within_10ns * 100.0
        );
        let raw = gapreplay_metrics(&baseline, &run);
        println!(
            "  GapReplay raw: cumulative latency {:.1} ns, IAT deviation {:.1} ns (mean {:.2} / {:.2} ns per packet)",
            raw.cumulative_latency_ns,
            raw.iat_deviation_ns,
            raw.mean_latency_delta_ns,
            raw.mean_iat_delta_ns
        );
        if cmp.moved > 0 {
            let s = cmp.edit_stats;
            println!(
                "  edit script: mean {:.1} (sigma {:.1}), abs mean {:.1}, min {} max {}",
                s.mean, s.stddev, s.abs_mean, s.min, s.max
            );
        }
        println!("  IAT delta histogram (ns):");
        print!("{}", cmp.iat_hist.render_ascii(40));
        println!("  latency delta histogram (ns):");
        print!("{}", cmp.latency_hist.render_ascii(40));

        if let Some(w) = windows {
            println!("  windowed kappa ({w} windows):");
            let scores = windowed_kappa(&baseline, &run, w);
            for s in &scores {
                println!(
                    "    window {:>3} [{:>8}..{:>8}): kappa {:.4}  (U {} O {} L {} I {})",
                    s.index,
                    s.a_range.0,
                    s.a_range.1,
                    s.metrics.kappa,
                    sci(s.metrics.u),
                    sci(s.metrics.o),
                    sci(s.metrics.l),
                    sci(s.metrics.i)
                );
            }
            if let Some(worst) = worst_window(&scores) {
                println!(
                    "    worst window: {} (kappa {:.4})",
                    worst.index, worst.metrics.kappa
                );
            }
        }

        if let Some(k) = spacing {
            let prof = reorder_profile(&Matching::build(&baseline, &run), k);
            let peak = prof
                .prob
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("prob not NaN"));
            if let Some((idx, p)) = peak {
                println!(
                    "  reordering profile (to spacing {k}): peak inversion prob {:.3} at spacing {}",
                    p,
                    idx + 1
                );
            }
        }
    }
    if obs_on {
        println!();
        print!(
            "{}",
            choir_bench::fmt::render_obs(&choir_core::obs::snapshot())
        );
    }
    ExitCode::SUCCESS
}
