//! Simulation time units.
//!
//! Everything in the simulator runs in **picoseconds** as plain `u64`: the
//! paper buckets IAT deltas at ±10 ns, and a ~3 GHz TSC ticks every
//! ~333 ps, so nanoseconds are too coarse and floats too lossy. A `u64` of
//! picoseconds covers ~213 days — far beyond any experiment.

/// One nanosecond, in picoseconds.
pub const NS: u64 = 1_000;
/// One microsecond, in picoseconds.
pub const US: u64 = 1_000_000;
/// One millisecond, in picoseconds.
pub const MS: u64 = 1_000_000_000;
/// One second, in picoseconds.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// Convert picoseconds to (whole) nanoseconds.
pub fn ps_to_ns(ps: u64) -> u64 {
    ps / NS
}

/// Convert nanoseconds to picoseconds.
pub fn ns_to_ps(ns: u64) -> u64 {
    ns * NS
}

/// Convert picoseconds to seconds as `f64` (for reporting only).
pub fn ps_to_secs(ps: u64) -> f64 {
    ps as f64 / PS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_relations() {
        assert_eq!(NS * 1_000, US);
        assert_eq!(US * 1_000, MS);
        assert_eq!(MS * 1_000, PS_PER_SEC);
    }

    #[test]
    fn conversions() {
        assert_eq!(ps_to_ns(1_500), 1);
        assert_eq!(ns_to_ps(7), 7_000);
        assert!((ps_to_secs(PS_PER_SEC / 2) - 0.5).abs() < 1e-15);
    }
}
