//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this vendored
//! replacement routes everything through one owned tree, [`Content`]:
//! serialization converts a value *to* the tree, deserialization converts
//! *from* it, and format crates (`serde_json`) only ever translate the
//! tree. That is slower than real serde but behaviourally equivalent for
//! the workspace's uses (environment-profile and report round-trips), and
//! it keeps the derive macro small enough to write without `syn`.
//!
//! The derive macros ([`Serialize`]/[`Deserialize`], re-exported from
//! `serde_derive`) encode structs as maps and enums in serde's externally
//! tagged form: `"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//! or `{"Variant": {..}}`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing value tree every conversion routes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative values land here).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, tuples, tuple variants).
    Seq(Vec<Content>),
    /// A map with insertion order preserved (structs, struct variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion to the [`Content`] tree.
pub trait Serialize {
    /// Build the tree for `self`.
    fn to_content(&self) -> Content;
}

/// Conversion from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from the tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field in a map, for derived impls.
pub fn field<'a>(map: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Look up a struct field that may be absent, for derived impls of
/// `#[serde(default)]` fields.
pub fn field_opt<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// --- primitive impls ---------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!("{v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    ref other => Err(DeError::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected tuple sequence, got {}", c.kind()))
                })?;
                let expect = [$($idx),+].len();
                if seq.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expect}, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let seq = c
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {}", c.kind())))?;
        if seq.len() != N {
            return Err(DeError::custom(format!(
                "expected array of {N}, got {} elements",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_content(item)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()).unwrap(), None);
        let t = (1u8, -2i32, 3.5f64);
        assert_eq!(
            <(u8, i32, f64)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }

    #[test]
    fn lenient_number_coercion() {
        // Integers written as floats (a JSON hazard) still parse.
        assert_eq!(u64::from_content(&Content::F64(5.0)).unwrap(), 5);
        assert!(u64::from_content(&Content::F64(5.5)).is_err());
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert_eq!(f64::from_content(&Content::U64(3)).unwrap(), 3.0);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let m = vec![("a".to_string(), Content::U64(1))];
        assert!(field(&m, "a").is_ok());
        let err = field(&m, "b").unwrap_err().to_string();
        assert!(err.contains("missing field `b`"), "{err}");
    }
}
