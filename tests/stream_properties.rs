//! Property-based tests of the streaming incremental-κ engine
//! (`metrics::stream`): with full lookahead the engine is bit-identical
//! to the batch analyzer on every randomized trial pair, at every
//! chunking of the input (including packet-at-a-time and
//! whole-trial-at-once), with any snapshot cadence; with a bounded
//! window it must respect its residency cap and report an error
//! interval `[kappa_lo, kappa_hi]` that contains the batch κ on
//! drop-free pairs, tightens as the window doubles, and collapses to a
//! bit-identical batch result once the window covers the whole feed.

use choir::capture::PcapChunkReader;
use choir::metrics::pair::PairAnalyzer;
use choir::metrics::report::TrialComparison;
use choir::metrics::stream::{
    IncrementalComparison, Side, StreamCheckpoint, StreamConfig, StreamOutcome,
};
use choir::metrics::{KappaConfig, Trial};
use choir::packet::pcap::{parse_pcap, PcapRecord, PCAP_NS_MAGIC};
use proptest::prelude::*;

/// A random trial: a subset of sequence numbers 0..n (possibly shuffled,
/// possibly with duplicates) with non-decreasing timestamps.
fn arb_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    (
        proptest::collection::vec(0u64..64, 0..max_len),
        proptest::collection::vec(0u64..5_000, 0..max_len),
    )
        .prop_map(|(seqs, mut gaps)| {
            gaps.resize(seqs.len(), 100);
            let mut t = Trial::new();
            let mut now = 0u64;
            for (s, g) in seqs.iter().zip(gaps) {
                now += g;
                t.push_tagged(0, 0, *s, now);
            }
            t
        })
}

/// Feed a pair into a fresh engine, alternating sides `chunk` records at
/// a time (`chunk >= len` degenerates to whole-side bursts).
fn stream_pair(a: &Trial, b: &Trial, cfg: StreamConfig, chunk: usize) -> StreamOutcome {
    let mut eng = IncrementalComparison::new(cfg);
    let (oa, ob) = (a.observations(), b.observations());
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < oa.len() || ib < ob.len() {
        let ea = (ia + chunk).min(oa.len());
        eng.push_burst(Side::A, &oa[ia..ea]);
        ia = ea;
        let eb = (ib + chunk).min(ob.len());
        eng.push_burst(Side::B, &ob[ib..eb]);
        ib = eb;
    }
    eng.finalize("stream")
}

/// Like [`stream_pair`], but at burst boundary `cut` the engine is
/// checkpointed, the checkpoint shipped through its JSON wire format
/// (the crash boundary a real supervisor crosses), and a fresh engine
/// resumed from the parse to finish the feed. Returns the outcome plus
/// the resident-unmatched count inside the checkpoint, so callers can
/// see whether the cut landed inside a bounded-mode reorder window.
fn stream_pair_cut(
    a: &Trial,
    b: &Trial,
    cfg: StreamConfig,
    chunk: usize,
    cut: usize,
) -> (StreamOutcome, usize) {
    let (oa, ob) = (a.observations(), b.observations());
    let mut schedule: Vec<(Side, usize, usize)> = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < oa.len() || ib < ob.len() {
        let ea = (ia + chunk).min(oa.len());
        if ea > ia {
            schedule.push((Side::A, ia, ea));
        }
        ia = ea;
        let eb = (ib + chunk).min(ob.len());
        if eb > ib {
            schedule.push((Side::B, ib, eb));
        }
        ib = eb;
    }
    let cut = cut % (schedule.len() + 1);
    let mut eng = IncrementalComparison::new(cfg);
    let mut resident_at_cut = 0usize;
    for (i, &(side, lo, hi)) in schedule.iter().enumerate() {
        if i == cut {
            let json = serde_json::to_string(&eng.checkpoint()).expect("checkpoint serializes");
            let ck: StreamCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
            resident_at_cut = ck.resident();
            eng = IncrementalComparison::resume(ck);
        }
        let obs = if side == Side::A { oa } else { ob };
        eng.push_burst(side, &obs[lo..hi]);
    }
    if cut == schedule.len() {
        let json = serde_json::to_string(&eng.checkpoint()).expect("checkpoint serializes");
        let ck: StreamCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
        resident_at_cut = ck.resident();
        eng = IncrementalComparison::resume(ck);
    }
    (eng.finalize("stream"), resident_at_cut)
}

/// Bit-level equality of everything both paths compute, excluding labels
/// and wall-clock timings.
fn assert_bit_identical(live: &TrialComparison, batch: &TrialComparison) {
    for (name, got, want) in [
        ("u", live.metrics.u, batch.metrics.u),
        ("o", live.metrics.o, batch.metrics.o),
        ("l", live.metrics.l, batch.metrics.l),
        ("i", live.metrics.i, batch.metrics.i),
        ("kappa", live.metrics.kappa, batch.metrics.kappa),
        ("iat_within_10ns", live.iat_within_10ns, batch.iat_within_10ns),
    ] {
        prop_assert_eq!(got.to_bits(), want.to_bits(), "{} diverged", name);
    }
    prop_assert_eq!(
        (live.a_len, live.b_len, live.common, live.missing, live.extra, live.moved),
        (batch.a_len, batch.b_len, batch.common, batch.missing, batch.extra, batch.moved)
    );
    prop_assert_eq!(live.iat_abs_percentiles_ns, batch.iat_abs_percentiles_ns);
    prop_assert_eq!(live.latency_abs_percentiles_ns, batch.latency_abs_percentiles_ns);
    prop_assert_eq!(live.edit_stats, batch.edit_stats);
    prop_assert_eq!(live.iat_hist.total(), batch.iat_hist.total());
    prop_assert_eq!(live.latency_hist.total(), batch.latency_hist.total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn full_lookahead_is_bit_identical_to_batch_at_any_chunking(
        a in arb_trial(40),
        b in arb_trial(40),
        chunk in 1usize..16,
        snapshot_every in 0u64..20,
    ) {
        let batch = PairAnalyzer::new(&a, &b).analyze();
        let cfg = StreamConfig {
            lookahead: None,
            snapshot_every,
            kappa: KappaConfig::paper(),
        };
        // Packet-at-a-time, whole-trial-at-once, and a random chunking
        // in between must all land on the same bits — and the snapshot
        // cadence must never perturb the final result.
        let whole = a.len().max(b.len()).max(1);
        for c in [1usize, chunk, whole] {
            let live = stream_pair(&a, &b, cfg, c);
            assert_bit_identical(&live.comparison, &batch);
            prop_assert_eq!(live.evicted, 0, "full lookahead never evicts");
        }
    }

    #[test]
    fn bounded_window_caps_residency_on_random_pairs(
        a in arb_trial(40),
        b in arb_trial(40),
        window in 1usize..48,
        chunk in 1usize..16,
    ) {
        let cfg = StreamConfig {
            lookahead: Some(window),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let live = stream_pair(&a, &b, cfg, chunk);
        prop_assert!(
            live.peak_resident <= window,
            "peak resident {} exceeds window {}",
            live.peak_resident,
            window
        );
        let m = &live.comparison.metrics;
        for (name, v) in [("u", m.u), ("o", m.o), ("l", m.l), ("i", m.i), ("kappa", m.kappa)] {
            prop_assert!((0.0..=1.0).contains(&v), "{} = {} out of range", name, v);
        }
    }

    #[test]
    fn batch_kappa_lies_inside_the_bounded_interval_on_dropfree_pairs(
        n in 4usize..60,
        swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..24),
        jitter in proptest::collection::vec(0u64..40, 0..60),
        window in 1usize..80,
        chunk in 1usize..8,
    ) {
        // Drop-free pair: B carries exactly A's packets in arbitrarily
        // permuted order with bounded timestamp jitter. At *every*
        // window size — including ones far smaller than the
        // displacement, where unmatched evictions are routine — the
        // reported interval must be well-formed, contain the batch κ,
        // and the occurrence-debt ledger must account for every missed
        // match exactly (batch matches all n packets, so common +
        // missed must equal n).
        let mut a = Trial::new();
        for i in 0..n as u64 {
            a.push_tagged(0, 0, i, i * 1_000);
        }
        let mut order: Vec<u64> = (0..n as u64).collect();
        for &(s, t) in &swaps {
            order.swap(s % n, t % n);
        }
        let mut b = Trial::new();
        for (i, &seq) in order.iter().enumerate() {
            let j = jitter.get(i).copied().unwrap_or(0);
            b.push_tagged(0, 0, seq, i as u64 * 1_000 + j);
        }
        let batch = PairAnalyzer::new(&a, &b).metrics();
        let cfg = StreamConfig {
            lookahead: Some(window),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let live = stream_pair(&a, &b, cfg, chunk);
        prop_assert!(live.peak_resident <= window);
        prop_assert!(live.bounds.lo <= live.bounds.hi);
        prop_assert!(live.bounds.lo >= 0.0 && live.bounds.hi <= 1.0);
        prop_assert!(
            live.bounds.contains(batch.kappa),
            "interval [{}, {}] misses batch kappa {} (window {}, chunk {})",
            live.bounds.lo, live.bounds.hi, batch.kappa, window, chunk
        );
        prop_assert_eq!(
            live.comparison.common + live.missed_matches, n,
            "missed-match accounting must be exact (window {})", window
        );
    }

    #[test]
    fn bound_width_never_widens_as_the_window_doubles(
        n in 8usize..60,
        swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..24),
        base in 1usize..12,
    ) {
        // The error-bound ladder: doubling the lookahead window can only
        // tighten (never widen) the reported interval, and a window
        // covering the whole feed collapses it to zero width. Lock-step
        // feeding so every window size sees the same arrival order.
        let mut a = Trial::new();
        for i in 0..n as u64 {
            a.push_tagged(0, 0, i, i * 1_000);
        }
        let mut order: Vec<u64> = (0..n as u64).collect();
        for &(s, t) in &swaps {
            order.swap(s % n, t % n);
        }
        let mut b = Trial::new();
        for (i, &seq) in order.iter().enumerate() {
            b.push_tagged(0, 0, seq, i as u64 * 1_000);
        }
        let mut widths = Vec::new();
        let mut w = base;
        loop {
            let cfg = StreamConfig {
                lookahead: Some(w),
                snapshot_every: 0,
                kappa: KappaConfig::paper(),
            };
            let live = stream_pair(&a, &b, cfg, 1);
            widths.push((w, live.bounds.width()));
            if w >= 2 * n {
                prop_assert_eq!(
                    live.bounds.width(), 0.0,
                    "a window covering the feed must collapse the interval"
                );
                break;
            }
            w *= 2;
        }
        for pair in widths.windows(2) {
            let ((w0, wid0), (w1, wid1)) = (pair[0], pair[1]);
            prop_assert!(
                wid1 <= wid0 + 1e-12,
                "width widened from {} (w {}) to {} (w {})",
                wid0, w0, wid1, w1
            );
        }
    }

    #[test]
    fn full_window_bounded_finalize_is_bit_identical_to_batch(
        a in arb_trial(40),
        b in arb_trial(40),
        chunk in 1usize..16,
    ) {
        // A bounded engine whose window covers the entire feed never
        // evicts or seals, so its finalize must delegate to the exact
        // path: every bit — metrics, percentiles, histograms — equal to
        // batch, with the interval collapsed onto the final κ.
        let batch = PairAnalyzer::new(&a, &b).analyze();
        let cfg = StreamConfig {
            lookahead: Some(a.len() + b.len() + 1),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let live = stream_pair(&a, &b, cfg, chunk);
        prop_assert!(live.bounded);
        prop_assert_eq!(live.evicted, 0);
        prop_assert_eq!(live.missed_matches, 0);
        assert_bit_identical(&live.comparison, &batch);
        prop_assert_eq!(live.bounds.width(), 0.0);
        prop_assert_eq!(
            live.bounds.lo.to_bits(),
            live.comparison.metrics.kappa.to_bits()
        );
        prop_assert_eq!(
            live.bounds.hi.to_bits(),
            live.comparison.metrics.kappa.to_bits()
        );
    }

    #[test]
    fn checkpoint_resume_at_any_cut_is_bit_identical(
        a in arb_trial(40),
        b in arb_trial(40),
        cut_sel in 0usize..10_000,
        window in 2usize..12,
        snapshot_every in 0u64..20,
    ) {
        // The recovery contract (DESIGN.md §13): feed 0..k, checkpoint
        // through the JSON wire format, resume, feed k..n — every
        // downstream bit must equal the uninterrupted run's, at every
        // cut point, in both lookahead modes. The small bounded window
        // routinely places the cut inside a resident reorder window, the
        // regime where a lossy checkpoint would show first.
        for lookahead in [None, Some(window)] {
            let cfg = StreamConfig {
                lookahead,
                snapshot_every,
                kappa: KappaConfig::paper(),
            };
            let whole = a.len().max(b.len()).max(1);
            for chunk in [1usize, 7, whole] {
                let straight = stream_pair(&a, &b, cfg, chunk);
                let (resumed, _resident) = stream_pair_cut(&a, &b, cfg, chunk, cut_sel);
                assert_bit_identical(&resumed.comparison, &straight.comparison);
                prop_assert_eq!(resumed.peak_resident, straight.peak_resident);
                prop_assert_eq!(resumed.evicted, straight.evicted);
                prop_assert_eq!(resumed.bounded, straight.bounded);
                // The error interval and its bookkeeping (occurrence
                // debt, seal counters) must survive a cut landing inside
                // a partially-merged window bit for bit.
                prop_assert_eq!(resumed.bounds.lo.to_bits(), straight.bounds.lo.to_bits());
                prop_assert_eq!(resumed.bounds.hi.to_bits(), straight.bounds.hi.to_bits());
                prop_assert_eq!(resumed.missed_matches, straight.missed_matches);
                prop_assert_eq!(
                    (resumed.seals, resumed.forced_seals),
                    (straight.seals, straight.forced_seals)
                );
                prop_assert_eq!(resumed.snapshots.len(), straight.snapshots.len());
                for (x, y) in resumed.snapshots.iter().zip(straight.snapshots.iter()) {
                    prop_assert_eq!(
                        (x.seen_a, x.seen_b, x.common, x.resident, x.evicted),
                        (y.seen_a, y.seen_b, y.common, y.resident, y.evicted)
                    );
                    prop_assert_eq!(x.running.kappa.to_bits(), y.running.kappa.to_bits());
                    prop_assert_eq!(x.window.metrics.kappa.to_bits(), y.window.metrics.kappa.to_bits());
                    prop_assert_eq!(
                        x.bounds.map(|v| (v.lo.to_bits(), v.hi.to_bits())),
                        y.bounds.map(|v| (v.lo.to_bits(), v.hi.to_bits()))
                    );
                }
            }
        }
    }

    #[test]
    fn salvage_reads_exactly_the_records_preceding_a_truncation(
        recs in proptest::collection::vec(
            (0u64..10_000_000_000, proptest::collection::vec(any::<u8>(), 1..120)),
            1..24,
        ),
        cut_sel in any::<usize>(),
        chunk in 1usize..48,
    ) {
        // A valid nanosecond pcap cut at an arbitrary byte offset past
        // the global header: salvage-mode chunked reading must recover
        // exactly the records a batch parse of the intact capture puts
        // before the cut — no record lost, none invented, none mangled.
        let bytes = ns_pcap(&recs);
        let full = parse_pcap(&bytes).expect("intact capture parses");
        prop_assert_eq!(full.len(), recs.len());
        let cut = 25 + cut_sel % (bytes.len() - 25);

        // Expected salvage: whole records lying entirely before the cut,
        // counted from the known record sizes (never from a parser).
        let mut expected = 0usize;
        let mut off = 24usize;
        for (_, data) in &recs {
            off += 16 + data.len();
            if off > cut {
                break;
            }
            expected += 1;
        }

        let mut salvaged: Vec<PcapRecord> = Vec::new();
        let mut reader = PcapChunkReader::new(&bytes[..cut], chunk).expect("header intact");
        loop {
            match reader.next_chunk() {
                Ok(Some(batch)) => salvaged.extend(batch),
                Ok(None) => break,
                Err(e) => {
                    salvaged.extend(e.salvaged);
                    break;
                }
            }
        }
        prop_assert_eq!(
            salvaged.len(), expected,
            "cut at byte {} of {}", cut, bytes.len()
        );
        prop_assert_eq!(&salvaged[..], &full[..expected]);
    }
}

/// Assemble a little-endian nanosecond-resolution pcap byte stream from
/// `(ts_ns, frame bytes)` pairs — the layout `parse_pcap` and the chunk
/// reader both consume.
fn ns_pcap(recs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + recs.iter().map(|(_, d)| 16 + d.len()).sum::<usize>());
    let w32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
    let w16 = |out: &mut Vec<u8>, v: u16| out.extend_from_slice(&v.to_le_bytes());
    w32(&mut out, PCAP_NS_MAGIC);
    w16(&mut out, 2);
    w16(&mut out, 4);
    w32(&mut out, 0); // thiszone
    w32(&mut out, 0); // sigfigs
    w32(&mut out, 65_535); // snaplen
    w32(&mut out, 1); // LINKTYPE_ETHERNET
    for (ts_ns, data) in recs {
        w32(&mut out, (ts_ns / 1_000_000_000) as u32);
        w32(&mut out, (ts_ns % 1_000_000_000) as u32);
        w32(&mut out, data.len() as u32);
        w32(&mut out, data.len() as u32);
        out.extend_from_slice(data);
    }
    out
}
