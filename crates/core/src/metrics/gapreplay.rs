//! GapReplay's raw (unnormalized) accuracy metrics.
//!
//! The paper's L and I numerators are "identical to the 'cumulative
//! latency'" and "'IAT deviation' metrics used in the GapReplay paper;
//! our denominator normalizes this metric so it is comparable between
//! trials" (§3). This module exposes the *raw* GapReplay quantities so
//! results can be compared against literature that reports them
//! unnormalized, and so the normalization itself can be inspected.

use super::matching::Matching;
use super::trial::Trial;

/// GapReplay-style raw accuracy numbers for a run pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapReplayMetrics {
    /// Σ |l_Ai − l_Bi| over common packets, in nanoseconds ("cumulative
    /// latency").
    pub cumulative_latency_ns: f64,
    /// Σ |g_Ai − g_Bi| over common packets, in nanoseconds ("IAT
    /// deviation").
    pub iat_deviation_ns: f64,
    /// Mean |l_Ai − l_Bi| per common packet, ns.
    pub mean_latency_delta_ns: f64,
    /// Mean |g_Ai − g_Bi| per common packet, ns.
    pub mean_iat_delta_ns: f64,
    /// Common packets the sums run over.
    pub common: usize,
}

/// Compute the raw GapReplay metrics between two trials.
pub fn gapreplay_metrics(a: &Trial, b: &Trial) -> GapReplayMetrics {
    let m = Matching::build(a, b);
    gapreplay_with(a, b, &m)
}

/// Compute from a prebuilt matching.
pub fn gapreplay_with(a: &Trial, b: &Trial, m: &Matching) -> GapReplayMetrics {
    let mc = m.common();
    if mc == 0 {
        return GapReplayMetrics {
            cumulative_latency_ns: 0.0,
            iat_deviation_ns: 0.0,
            mean_latency_delta_ns: 0.0,
            mean_iat_delta_ns: 0.0,
            common: 0,
        };
    }
    let ta0 = a.start_ps() as i128;
    let tb0 = b.start_ps() as i128;
    let mut lat: u128 = 0;
    let mut iat: u128 = 0;
    for p in &m.pairs {
        let la = a.time(p.a_idx) as i128 - ta0;
        let lb = b.time(p.b_idx) as i128 - tb0;
        lat += (la - lb).unsigned_abs();
        let ga = a.gap_ps(p.a_idx);
        let gb = b.gap_ps(p.b_idx);
        iat += (ga - gb).unsigned_abs() as u128;
    }
    let cumulative_latency_ns = lat as f64 / 1_000.0;
    let iat_deviation_ns = iat as f64 / 1_000.0;
    GapReplayMetrics {
        cumulative_latency_ns,
        iat_deviation_ns,
        mean_latency_delta_ns: cumulative_latency_ns / mc as f64,
        mean_iat_delta_ns: iat_deviation_ns / mc as f64,
        common: mc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::pair::PairAnalyzer;

    fn cbr(n: u64, gap: u64, shift: u64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            t.push_tagged(0, 0, i, i * gap + if i > 0 { shift } else { 0 });
        }
        t
    }

    #[test]
    fn raw_sums_match_hand_computation() {
        // B shifts every non-first packet 5 ns late: latency delta 5 ns
        // for n-1 packets; IAT delta 5 ns for exactly one packet (the
        // second — later gaps are unchanged).
        let a = cbr(10, 1_000_000, 0);
        let b = cbr(10, 1_000_000, 5_000);
        let g = gapreplay_metrics(&a, &b);
        assert_eq!(g.common, 10);
        assert!((g.cumulative_latency_ns - 45.0).abs() < 1e-9);
        assert!((g.iat_deviation_ns - 5.0).abs() < 1e-9);
        assert!((g.mean_latency_delta_ns - 4.5).abs() < 1e-9);
    }

    #[test]
    fn normalized_metrics_are_raw_over_paper_denominators() {
        // The paper's claim: same numerator, new denominator. Verify the
        // relationship numerically.
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..50u64 {
            a.push_tagged(0, 0, i, i * 1_000 + (i % 3) * 17);
            b.push_tagged(0, 0, i, i * 1_000 + (i % 5) * 11);
        }
        let g = gapreplay_metrics(&a, &b);
        let m = PairAnalyzer::new(&a, &b).metrics();
        let (l, i) = (m.l, m.i);

        let reach = (b.end_ps() as f64).max(a.end_ps() as f64) / 1_000.0; // both start at 0
        let l_expected = g.cumulative_latency_ns / (g.common as f64 * reach);
        assert!((l - l_expected).abs() < 1e-12, "{l} vs {l_expected}");

        let denom = (a.span_ps() + b.span_ps()) as f64 / 1_000.0;
        let i_expected = g.iat_deviation_ns / denom;
        assert!((i - i_expected).abs() < 1e-12, "{i} vs {i_expected}");
    }

    #[test]
    fn empty_overlap_is_zero() {
        let mut a = Trial::new();
        a.push_tagged(0, 0, 1, 0);
        let mut b = Trial::new();
        b.push_tagged(9, 0, 1, 0);
        let g = gapreplay_metrics(&a, &b);
        assert_eq!(g.common, 0);
        assert_eq!(g.cumulative_latency_ns, 0.0);
    }
}
