//! Property tests of mempool accounting: slots are conserved under
//! arbitrary allocate/clone/drop sequences (never double-freed, never
//! leaked) — the invariant Choir's no-copy recording rests on.

use bytes::Bytes;
use choir_dpdk::{Mbuf, Mempool};
use choir_packet::Frame;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a fresh mbuf.
    Alloc,
    /// Clone the i-th live handle (modulo population).
    Clone(usize),
    /// Drop the i-th live handle.
    Drop(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Op::Alloc),
            2 => (0usize..64).prop_map(Op::Clone),
            3 => (0usize..64).prop_map(Op::Drop),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slots_are_conserved(ops in arb_ops(), cap in 1usize..32) {
        let pool = Mempool::new("prop", cap);
        let frame = Frame::new(Bytes::from_static(b"prop"));
        let mut handles: Vec<Mbuf> = Vec::new();
        // Model: multiset of slot ids; here we track how many *distinct*
        // allocations are live by tagging each with a unique frame.
        let mut next_tag = 0u64;
        let mut live_slots: std::collections::HashMap<u64, usize> = Default::default();
        let mut tags: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let can = live_slots.len() < cap;
                    let mut data = frame.data.to_vec();
                    data.extend_from_slice(&next_tag.to_be_bytes());
                    match pool.alloc(Frame::new(Bytes::from(data))) {
                        Ok(m) => {
                            prop_assert!(can, "alloc succeeded beyond capacity");
                            handles.push(m);
                            tags.push(next_tag);
                            *live_slots.entry(next_tag).or_insert(0) += 1;
                            next_tag += 1;
                        }
                        Err(_) => prop_assert!(!can, "alloc failed with room"),
                    }
                }
                Op::Clone(i) if !handles.is_empty() => {
                    let i = i % handles.len();
                    handles.push(handles[i].clone());
                    let t = tags[i];
                    tags.push(t);
                    *live_slots.get_mut(&t).unwrap() += 1;
                }
                Op::Drop(i) if !handles.is_empty() => {
                    let i = i % handles.len();
                    handles.swap_remove(i);
                    let t = tags.swap_remove(i);
                    let n = live_slots.get_mut(&t).unwrap();
                    *n -= 1;
                    if *n == 0 {
                        live_slots.remove(&t);
                    }
                }
                _ => {}
            }
            prop_assert_eq!(pool.in_use(), live_slots.len());
            prop_assert!(pool.in_use() <= cap);
        }
        drop(handles);
        prop_assert_eq!(pool.in_use(), 0, "all slots must return");
    }
}
