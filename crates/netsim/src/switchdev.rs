//! Switch models.
//!
//! Both evaluation topologies put a single switch between every pair of
//! nodes: locally "a AS9516-32D Tofino2 switch running a simple ingress to
//! egress port forwarding program" (§6), on FABRIC a Cisco 5700 behind the
//! L2Bridge service (§7, §8.1). The model is accordingly simple and
//! faithful: a static ingress→egress port map, per-egress FIFO queues
//! drained at line rate, and a (profile-dependent) processing latency —
//! cut-through for the Tofino, store-and-forward with deeper buffering for
//! the Cisco.

use std::collections::VecDeque;

use choir_dpdk::Mbuf;

use crate::nic::serialization_ps;
use crate::rng::Jitter;

/// Latency/buffering profile of a switch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SwitchProfile {
    /// Port line rate in bits per second.
    pub line_rate_bps: u64,
    /// Ingress-to-egress processing latency.
    pub latency: Jitter,
    /// If true, forwarding begins only after the whole frame is received
    /// (store-and-forward); otherwise cut-through.
    pub store_and_forward: bool,
    /// Egress queue depth, in packets.
    pub queue_cap: usize,
}

impl SwitchProfile {
    /// A Tofino2-like profile: cut-through, ~400 ns pipeline.
    pub fn tofino2(line_rate_bps: u64) -> Self {
        SwitchProfile {
            line_rate_bps,
            latency: Jitter::Const(400_000), // 400 ns in ps
            store_and_forward: false,
            queue_cap: 4096,
        }
    }

    /// A Cisco-5700-like profile: store-and-forward, ~800 ns with a few
    /// ns of pipeline jitter.
    pub fn cisco5700(line_rate_bps: u64) -> Self {
        SwitchProfile {
            line_rate_bps,
            latency: Jitter::Normal {
                mean: 800_000.0,
                sigma: 4_000.0,
            },
            store_and_forward: true,
            queue_cap: 16384,
        }
    }
}

/// One egress port's state.
#[derive(Debug, Default)]
pub struct EgressPort {
    /// Queued frames awaiting serialization, each with the time its
    /// pipeline (ingress-to-egress) latency elapses.
    pub queue: VecDeque<(u64, Mbuf)>,
    /// Time the port finishes its current transmission (0 = idle).
    pub busy_until_ps: u64,
    /// A service event is scheduled (the engine arms exactly one at a
    /// time; without this flag an arrival landing while the port is
    /// draining its last frame would never be served).
    pub service_armed: bool,
    /// Frames dropped to a full queue.
    pub dropped: u64,
    /// Frames forwarded.
    pub forwarded: u64,
}

/// A switch: static port map plus per-egress queues.
#[derive(Debug)]
pub struct Switch {
    /// Behavioural profile.
    pub profile: SwitchProfile,
    /// `fwd[ingress] = Some(egress)`.
    pub fwd: Vec<Option<usize>>,
    /// `mirror[ingress] = Some(span port)`: a copy of every frame
    /// arriving on `ingress` is also queued to the span port — the
    /// port-mirroring tap real testbeds use to observe traffic without
    /// perturbing it (an alternative to Choir's in-situ middlebox).
    pub mirror: Vec<Option<usize>>,
    /// Egress state, indexed by port.
    pub egress: Vec<EgressPort>,
}

impl Switch {
    /// A switch with `ports` ports and no forwarding entries.
    pub fn new(ports: usize, profile: SwitchProfile) -> Self {
        Switch {
            profile,
            fwd: vec![None; ports],
            mirror: vec![None; ports],
            egress: (0..ports).map(|_| EgressPort::default()).collect(),
        }
    }

    /// Mirror everything arriving on `ingress` to `span` as well.
    pub fn map_mirror(&mut self, ingress: usize, span: usize) {
        assert!(ingress < self.fwd.len() && span < self.egress.len());
        self.mirror[ingress] = Some(span);
    }

    /// Install `ingress -> egress` (the paper's port-forwarding program).
    pub fn map(&mut self, ingress: usize, egress: usize) {
        assert!(ingress < self.fwd.len() && egress < self.egress.len());
        self.fwd[ingress] = Some(egress);
    }

    /// Egress serialization time of a frame.
    pub fn serialization_ps(&self, wire_bytes: usize) -> u64 {
        serialization_ps(wire_bytes, self.profile.line_rate_bps)
    }

    /// True when every egress this ingress feeds (its forwarding target
    /// and its span copy) is fed by NO other ingress. Under this
    /// single-feeder condition a wire crossing into `ingress` may be
    /// enqueued on its egress queues eagerly at *transmit* time instead
    /// of waiting for a propagation-delay arrival event: queue order,
    /// per-packet `ready` times and thus departure times are provably
    /// unchanged, because no other traffic can interleave into those
    /// queues between transmit and arrival.
    pub fn single_feeder(&self, ingress: usize) -> bool {
        let targets = [self.fwd[ingress], self.mirror[ingress]];
        for t in targets.into_iter().flatten() {
            for j in 0..self.fwd.len() {
                if j != ingress && (self.fwd[j] == Some(t) || self.mirror[j] == Some(t)) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.fwd.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_as_documented() {
        let t = SwitchProfile::tofino2(100_000_000_000);
        let c = SwitchProfile::cisco5700(100_000_000_000);
        assert!(!t.store_and_forward);
        assert!(c.store_and_forward);
        assert!(c.queue_cap > t.queue_cap);
    }

    #[test]
    fn forwarding_map() {
        let mut s = Switch::new(4, SwitchProfile::tofino2(100_000_000_000));
        s.map(0, 2);
        s.map(1, 3);
        assert_eq!(s.fwd[0], Some(2));
        assert_eq!(s.fwd[1], Some(3));
        assert_eq!(s.fwd[2], None);
        assert_eq!(s.ports(), 4);
    }

    #[test]
    fn mirror_map() {
        let mut s = Switch::new(3, SwitchProfile::tofino2(1));
        s.map(0, 1);
        s.map_mirror(0, 2);
        assert_eq!(s.mirror[0], Some(2));
        assert_eq!(s.mirror[1], None);
    }

    #[test]
    #[should_panic]
    fn map_out_of_range_panics() {
        let mut s = Switch::new(2, SwitchProfile::tofino2(1));
        s.map(0, 5);
    }

    #[test]
    fn serialization_uses_profile_rate() {
        let s = Switch::new(2, SwitchProfile::tofino2(40_000_000_000));
        assert_eq!(s.serialization_ps(1424), 284_800);
    }
}
