//! NIC behaviour models.
//!
//! The transmit path reproduces the DPDK reality the paper calls out
//! (§2.3): `tx_burst` only *notifies* the NIC; descriptors are pulled by
//! DMA later, in batches, then serialized at line rate. Three knobs shape
//! the wire timing:
//!
//! - **doorbell latency** — notify-to-DMA-start delay (PCIe round trip,
//!   hundreds of ns, jittery in VMs);
//! - **pull batching** — the NIC fetches several descriptors per PCIe
//!   transaction and emits them back-to-back, creating the
//!   bunched-then-gapped wire pattern that DESIGN.md §4 identifies as the
//!   driver of FABRIC's large IAT deviations;
//! - **VF contention** — on an SR-IOV shared NIC the physical function
//!   interleaves other tenants' traffic, adding queueing waits and
//!   occasional scheduler pauses (paper §7.1's noisy co-tenant).
//!
//! The receive path models ring capacity (overflow drops) and hands
//! timestamps to [`crate::clock::TimestampModel`].

use crate::clock::TimestampModel;
use crate::rng::{DetRng, Jitter};
use crate::time::PS_PER_SEC;

/// How many descriptors one DMA pull fetches.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BatchDist {
    /// One descriptor per pull (an idealized NIC).
    One,
    /// Always `n` (capped by queue occupancy).
    Fixed(usize),
    /// Uniform in `[lo, hi]`.
    UniformRange(usize, usize),
    /// `1 +` geometric with continuation probability `p`, capped at `max`
    /// (bursty pulls with an exponential-ish tail).
    Geometric {
        /// Probability of fetching yet another descriptor.
        p: f64,
        /// Hard cap.
        max: usize,
    },
}

impl BatchDist {
    /// Largest batch this distribution can produce.
    pub fn cap(&self) -> usize {
        match *self {
            BatchDist::One => 1,
            BatchDist::Fixed(n) => n.max(1),
            BatchDist::UniformRange(_, hi) => hi.max(1),
            BatchDist::Geometric { max, .. } => max.max(1),
        }
    }

    /// Sample a batch size (always ≥ 1).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        match *self {
            BatchDist::One => 1,
            BatchDist::Fixed(n) => n.max(1),
            BatchDist::UniformRange(lo, hi) => {
                debug_assert!(lo <= hi && lo >= 1);
                rng.range_u64(lo as u64, hi as u64) as usize
            }
            BatchDist::Geometric { p, max } => {
                let mut n = 1usize;
                while n < max && rng.chance(p) {
                    n += 1;
                }
                n
            }
        }
    }
}

/// A bounded-random-walk utilization process for the noisy co-tenant's
/// offered load ("the iperf3 stream bounced between 35 Gbps and 50 Gbps",
/// §7.1).
#[derive(Debug, Clone)]
pub struct UtilProcess {
    /// Lower bound of utilization (fraction of line rate).
    pub min: f64,
    /// Upper bound.
    pub max: f64,
    /// Random-walk step standard deviation per update.
    pub step_sigma: f64,
    /// How often the walk steps, in ps.
    pub update_period_ps: u64,
    current: f64,
    last_update_ps: u64,
}

impl UtilProcess {
    /// A process starting at the midpoint of `[min, max]`.
    pub fn new(min: f64, max: f64, step_sigma: f64, update_period_ps: u64) -> Self {
        assert!((0.0..=1.0).contains(&min) && (0.0..=1.0).contains(&max) && min <= max);
        assert!(update_period_ps > 0);
        UtilProcess {
            min,
            max,
            step_sigma,
            update_period_ps,
            current: (min + max) / 2.0,
            last_update_ps: 0,
        }
    }

    /// Utilization at time `t_ps`, stepping the walk as needed.
    pub fn util_at(&mut self, t_ps: u64, rng: &mut DetRng) -> f64 {
        while self.last_update_ps + self.update_period_ps <= t_ps {
            self.last_update_ps += self.update_period_ps;
            self.current =
                (self.current + self.step_sigma * rng.std_normal()).clamp(self.min, self.max);
        }
        self.current
    }
}

/// SR-IOV contention from a co-tenant on the shared physical NIC.
#[derive(Debug, Clone)]
pub struct SharedVfModel {
    /// The co-tenant's offered load as a fraction of line rate.
    pub util: UtilProcess,
    /// Wire size of the co-tenant's packets (1538 = full-size MTU frame).
    pub noise_pkt_wire_bytes: usize,
    /// Mean wait when our packet lands behind a co-tenant microburst, ps.
    pub burst_wait_mean_ps: f64,
    /// Occasional PF-scheduler pause affecting our VF.
    pub pause: Jitter,
    /// Per-packet probability of hitting such a pause.
    pub pause_prob: f64,
}

impl SharedVfModel {
    /// Extra wait before one of our packets can serialize at `t_ps`.
    ///
    /// Three bounded components (the physical NIC is work-conserving, so
    /// as long as aggregate load stays under line rate the wait cannot
    /// grow without bound):
    ///
    /// - residual slot: with probability `util`, our packet waits for a
    ///   co-tenant frame already on the wire (uniform over one frame);
    /// - microburst queueing: with probability `0.8·util`, it lands
    ///   behind a burst of co-tenant frames (exponential wait);
    /// - PF-scheduler pause: rare, long (§7.1's noisy case).
    pub fn contention_wait_ps(&mut self, t_ps: u64, line_rate_bps: u64, rng: &mut DetRng) -> u64 {
        let util = self.util.util_at(t_ps, rng);
        let noise_ser = serialization_ps(self.noise_pkt_wire_bytes, line_rate_bps);
        let mut wait = 0u64;
        if rng.chance(util) {
            wait += rng.range_u64(0, noise_ser);
        }
        if rng.chance(0.8 * util) {
            wait += rng.exp(self.burst_wait_mean_ps).round() as u64;
        }
        if self.pause_prob > 0.0 && rng.chance(self.pause_prob) {
            wait += self.pause.sample_delay(rng);
        }
        wait
    }
}

/// Transmit-side NIC model for one port.
#[derive(Debug, Clone)]
pub struct NicTxModel {
    /// Port line rate in bits per second.
    pub line_rate_bps: u64,
    /// Descriptor ring capacity; `tx_burst` beyond this is rejected.
    pub ring_cap: usize,
    /// Notify-to-DMA-start latency.
    pub doorbell: Jitter,
    /// Descriptors per DMA pull.
    pub batch: BatchDist,
    /// Extra latency when the pull engine re-arms after the ring went
    /// idle (added to `doorbell`).
    pub rearm_latency: Jitter,
    /// Per-pull descriptor read latency (one outstanding PCIe read).
    /// Serialization of a pull's packets cannot start before its read
    /// completes. Under light load pulls fetch what little is queued and
    /// the read latency paces the wire into small jittery clumps; under
    /// backlog the engine fetches up to [`BatchDist::cap`] descriptors per
    /// read and the wire goes serialization-limited. This is how the same
    /// NIC parameters yield I ~ 0.5 at 40 Gbps but I ~ 0.1 at 80 Gbps
    /// (the paper's §7 observation).
    pub pull_read_latency: Jitter,
    /// Contention model when this is a shared (SR-IOV VF) port.
    pub shared: Option<SharedVfModel>,
}

impl NicTxModel {
    /// An idealized 100 Gbps port: no jitter, no batching, no sharing.
    pub fn ideal(line_rate_bps: u64) -> Self {
        NicTxModel {
            line_rate_bps,
            ring_cap: 4096,
            doorbell: Jitter::None,
            batch: BatchDist::One,
            rearm_latency: Jitter::None,
            pull_read_latency: Jitter::None,
            shared: None,
        }
    }

    /// Time to put `wire_bytes` on the wire at this port's rate.
    pub fn serialization_ps(&self, wire_bytes: usize) -> u64 {
        serialization_ps(wire_bytes, self.line_rate_bps)
    }
}

/// Receive-side NIC model for one port.
#[derive(Debug, Clone)]
pub struct NicRxModel {
    /// Receive ring capacity; arrivals beyond this are dropped.
    pub ring_cap: usize,
    /// Hardware timestamping behaviour.
    pub timestamp: TimestampModel,
    /// Random per-packet drop probability (models VF rx overruns under
    /// co-tenant load; 0 in clean environments).
    pub drop_prob: f64,
    /// Wire-to-host-visibility latency.
    pub deliver_latency: Jitter,
    /// Residual rate error of the timestamp clock versus true time, in
    /// parts per billion. The PTP/PHC servo re-steers between runs, so
    /// experiments re-sample this per replay run ([`crate::Sim::set_rx_clock_slope`]);
    /// within a run it makes latency deltas ramp — the paper's observed
    /// 500 ns–5 µs latency variation over a 0.3 s trial (§6.1).
    pub clock_slope_ppb: i64,
    /// Time the slope is anchored at (error is zero there).
    pub slope_base_ps: u64,
}

impl NicRxModel {
    /// An idealized receive port: huge ring, exact stamps, no loss.
    pub fn ideal() -> Self {
        NicRxModel {
            ring_cap: 1 << 16,
            timestamp: TimestampModel::exact(),
            drop_prob: 0.0,
            deliver_latency: Jitter::None,
            clock_slope_ppb: 0,
            slope_base_ps: 0,
        }
    }

    /// True arrival time adjusted by the timestamp clock's rate error.
    pub fn slope_adjusted_ps(&self, t_ps: u64) -> u64 {
        let dt = t_ps as i128 - self.slope_base_ps as i128;
        let err = dt * self.clock_slope_ppb as i128 / 1_000_000_000;
        (t_ps as i128 + err).max(0) as u64
    }
}

/// Serialization time of `wire_bytes` at `rate_bps`, in ps.
pub fn serialization_ps(wire_bytes: usize, rate_bps: u64) -> u64 {
    ((wire_bytes as u128 * 8 * PS_PER_SEC as u128) / rate_bps as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, NS};

    #[test]
    fn serialization_times() {
        // 1424 wire bytes at 100 Gbps = 113.92 ns.
        assert_eq!(serialization_ps(1424, 100_000_000_000), 113_920);
        // At 40 Gbps = 284.8 ns.
        assert_eq!(serialization_ps(1424, 40_000_000_000), 284_800);
    }

    #[test]
    fn batch_dists_sample_in_range() {
        let mut rng = DetRng::derive(1, &["batch"]);
        assert_eq!(BatchDist::One.sample(&mut rng), 1);
        assert_eq!(BatchDist::Fixed(4).sample(&mut rng), 4);
        for _ in 0..200 {
            let u = BatchDist::UniformRange(2, 6).sample(&mut rng);
            assert!((2..=6).contains(&u));
            let g = BatchDist::Geometric { p: 0.7, max: 8 }.sample(&mut rng);
            assert!((1..=8).contains(&g));
        }
    }

    #[test]
    fn geometric_batch_mean_reasonable() {
        let mut rng = DetRng::derive(2, &["batch2"]);
        let d = BatchDist::Geometric { p: 0.5, max: 64 };
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        // Mean of 1 + Geom(0.5 continue) ~ 2.
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn util_process_stays_bounded_and_moves() {
        let mut rng = DetRng::derive(3, &["util"]);
        let mut u = UtilProcess::new(0.35, 0.50, 0.02, MS);
        let mut seen_min = f64::INFINITY;
        let mut seen_max = f64::NEG_INFINITY;
        for step in 0..5_000u64 {
            let v = u.util_at(step * MS, &mut rng);
            assert!((0.35..=0.50).contains(&v), "v={v}");
            seen_min = seen_min.min(v);
            seen_max = seen_max.max(v);
        }
        assert!(seen_max - seen_min > 0.05, "walk barely moved");
    }

    #[test]
    fn util_process_is_stable_before_first_period() {
        let mut rng = DetRng::derive(4, &["util2"]);
        let mut u = UtilProcess::new(0.2, 0.6, 0.05, MS);
        let v0 = u.util_at(0, &mut rng);
        let v1 = u.util_at(MS - 1, &mut rng);
        assert_eq!(v0, v1);
    }

    #[test]
    fn contention_wait_grows_with_utilization() {
        let mut rng = DetRng::derive(5, &["vf"]);
        let mut low = SharedVfModel {
            util: UtilProcess::new(0.05, 0.05, 0.0, MS),
            noise_pkt_wire_bytes: 1538,
            burst_wait_mean_ps: 200_000.0,
            pause: Jitter::None,
            pause_prob: 0.0,
        };
        let mut high = SharedVfModel {
            util: UtilProcess::new(0.9, 0.9, 0.0, MS),
            noise_pkt_wire_bytes: 1538,
            burst_wait_mean_ps: 200_000.0,
            pause: Jitter::None,
            pause_prob: 0.0,
        };
        let n = 5_000;
        let rate = 100_000_000_000;
        let lo: u64 = (0..n).map(|i| low.contention_wait_ps(i, rate, &mut rng)).sum();
        let hi: u64 = (0..n).map(|i| high.contention_wait_ps(i, rate, &mut rng)).sum();
        assert!(hi > lo * 10, "hi={hi} lo={lo}");
    }

    #[test]
    fn pauses_add_large_waits() {
        let mut rng = DetRng::derive(6, &["vfp"]);
        let mut m = SharedVfModel {
            util: UtilProcess::new(0.0, 0.0, 0.0, MS),
            noise_pkt_wire_bytes: 1538,
            burst_wait_mean_ps: 200_000.0,
            pause: Jitter::Const(50_000 * NS as i64),
            pause_prob: 1.0,
        };
        let w = m.contention_wait_ps(0, 100_000_000_000, &mut rng);
        assert_eq!(w, 50_000 * NS);
    }

    #[test]
    fn clock_slope_ramps_from_base() {
        let mut rx = NicRxModel::ideal();
        rx.clock_slope_ppb = 1_000_000; // 1000 ppm for easy math
        rx.slope_base_ps = 1_000_000;
        // At the base: no error.
        assert_eq!(rx.slope_adjusted_ps(1_000_000), 1_000_000);
        // 1 ms past the base: +1 us error.
        assert_eq!(
            rx.slope_adjusted_ps(1_000_000 + MS),
            1_000_000 + MS + 1_000_000
        );
        // Before the base the error is negative (clamped at zero here).
        assert_eq!(rx.slope_adjusted_ps(0), 0);
        assert_eq!(rx.slope_adjusted_ps(500_000), 500_000 - 500);
    }

    #[test]
    fn ideal_models() {
        let tx = NicTxModel::ideal(100_000_000_000);
        assert_eq!(tx.serialization_ps(1424), 113_920);
        let rx = NicRxModel::ideal();
        assert_eq!(rx.drop_prob, 0.0);
    }
}
