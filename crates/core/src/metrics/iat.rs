//! `I` — variation in inter-arrival time (paper Eq. 4).
//!
//! For a common packet, `g_Xi` is the gap between it and its immediate
//! predecessor *in that trial* (`g_X0 = 0` for a trial's first packet, via
//! the paper's base case `t_X0 = t_X(−1)`). The metric sums `|g_Ai − g_Bi|`
//! over the overlap and normalizes by the proven maximum — the Fig. 3
//! construction — whose value is the sum of the two trials' spans:
//!
//! ```text
//! I_AB = Σ |g_Ai − g_Bi| / ((t_B|B| − t_B0) + (t_A|A| − t_A0))
//! ```
//!
//! The numerator is GapReplay's "IAT deviation"; the denominator is this
//! paper's normalization contribution.

use super::allpairs::TrialIndex;
use super::matching::Matching;
use super::trial::Trial;

/// IAT analysis output.
#[derive(Debug, Clone)]
pub struct IatResult {
    /// The normalized IAT metric in `[0, 1]`.
    pub i: f64,
    /// Per-common-packet IAT deltas `g_Ai − g_Bi` in nanoseconds, in B
    /// arrival order — the series behind the figures' histograms.
    pub deltas_ns: Vec<f64>,
}

/// Compute `I` from trials and a prebuilt matching.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn iat(a: &Trial, b: &Trial, m: &Matching) -> f64 {
    iat_full_core(a, b, m).i
}

/// Compute `I` along with the delta series.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn iat_full(a: &Trial, b: &Trial, m: &Matching) -> IatResult {
    iat_full_core(a, b, m)
}

/// Shared kernel behind the deprecated free functions and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn iat_full_core(a: &Trial, b: &Trial, m: &Matching) -> IatResult {
    let mc = m.common();
    if mc == 0 {
        return IatResult {
            i: 0.0,
            deltas_ns: Vec::new(),
        };
    }
    let mut num: u128 = 0;
    let mut deltas_ns = Vec::with_capacity(mc);
    for p in &m.pairs {
        let ga = a.gap_ps(p.a_idx);
        let gb = b.gap_ps(p.b_idx);
        let d = ga - gb;
        num += d.unsigned_abs() as u128;
        deltas_ns.push(d as f64 / 1000.0);
    }
    // Min/max spans keep the bound valid when hardware stamp noise
    // inverts a few arrivals; the clamp covers residual pathology.
    //
    // Degenerate cases are pinned to exactly 0.0 rather than left to the
    // clamp: with ≤1 common packet there is no *pair* of common arrivals
    // to take an inter-arrival time between (the lone gap is measured
    // against a non-common predecessor, or is the g_X0 = 0 base case),
    // and a zero joint span would divide by zero. Both say "nothing
    // measurable deviated", and 0.0 — never NaN — is what flows into κ.
    let denom = a.minmax_span_ps() as u128 + b.minmax_span_ps() as u128;
    let i = if mc <= 1 || denom == 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    };
    IatResult { i, deltas_ns }
}

/// Convenience: `I` straight from two trials.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn iat_of(a: &Trial, b: &Trial) -> IatResult {
    iat_full_core(a, b, &Matching::build(a, b))
}

/// Arena kernel behind [`super::pair::PairAnalyzer`]'s indexed path —
/// bit-identical to [`iat_full_core`], streaming the prebuilt gap series
/// into a caller-owned scratch vector.
///
/// The reference accumulates `Σ|d|` in a `u128`, which the compiler will
/// not vectorize. Here each `|d| < 2^64` is split into its low and high
/// 32-bit halves and both are summed in independent `u64` lanes — exact,
/// because `mc ≤ u32::MAX` terms of at most `2^32 − 1` each cannot
/// overflow a `u64` — and recombined into the identical `u128` total
/// after the loop. Same values, same order, autovectorizable shape.
pub(crate) fn iat_arena(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
    deltas_ns: &mut Vec<f64>,
) -> f64 {
    deltas_ns.clear();
    let mc = m.common();
    if mc == 0 {
        return 0.0;
    }
    deltas_ns.reserve(mc);
    let ga = a.gaps();
    let gb = b.gaps();
    let (mut lo, mut hi) = (0u64, 0u64);
    for p in &m.pairs {
        let d = ga[p.a_idx] - gb[p.b_idx];
        let ad = d.unsigned_abs();
        lo += ad & 0xFFFF_FFFF;
        hi += ad >> 32;
        deltas_ns.push(d as f64 / 1000.0);
    }
    let num = ((hi as u128) << 32) + lo as u128;
    // Identical degenerate-denominator semantics to the reference: see
    // the comment in `iat_full_core`.
    let denom = a.minmax_span_ps() as u128 + b.minmax_span_ps() as u128;
    if mc <= 1 || denom == 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;

    #[test]
    fn identical_trials_zero() {
        let mut a = Trial::new();
        for i in 0..100u64 {
            a.push_tagged(0, 0, i, i * 284_800);
        }
        let r = iat_of(&a, &a.clone());
        assert_eq!(r.i, 0.0);
        assert!(r.deltas_ns.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn first_packet_base_case() {
        // Both trials' first packets have g = 0 regardless of times.
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 12345);
        a.push_tagged(0, 0, 1, 20000);
        let mut b = Trial::new();
        b.push_tagged(0, 0, 0, 0);
        b.push_tagged(0, 0, 1, 7655);
        let r = iat_of(&a, &b);
        assert_eq!(r.deltas_ns[0], 0.0);
    }

    #[test]
    fn uniform_shift_of_gap() {
        // B stretches each 1 us gap by 10 ns: each delta = -10 ns.
        let n = 11u64;
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..n {
            a.push_tagged(0, 0, i, i * 1_000_000);
            b.push_tagged(0, 0, i, i * 1_010_000);
        }
        let r = iat_of(&a, &b);
        for &d in &r.deltas_ns[1..] {
            assert!((d + 10.0).abs() < 1e-9, "delta {d}");
        }
        // num = (n-1)*10ns; denom = spanA + spanB = 10us + 10.1us.
        let expected = (10.0 * 10_000.0) / (10_000_000.0 + 10_100_000.0);
        assert!((r.i - expected).abs() < 1e-12, "got {}", r.i);
    }

    #[test]
    fn figure3_maximum_situation_reaches_one() {
        // Fig. 3: in A the first common packet at t_A0 and all others at
        // t_A|A|; in B all at t_B0 except the last common packet at t_B|B|.
        let t = 1_000_000u64;
        let n = 6u64; // > 2 common packets, per the paper's caveat
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 0);
        for i in 1..n {
            a.push_tagged(0, 0, i, t);
        }
        let mut b = Trial::new();
        for i in 0..n - 1 {
            b.push_tagged(0, 0, i, 0);
        }
        b.push_tagged(0, 0, n - 1, t);
        let r = iat_of(&a, &b);
        assert!((r.i - 1.0).abs() < 1e-12, "got {}", r.i);
    }

    #[test]
    fn symmetric() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..30u64 {
            a.push_tagged(0, 0, i, i * 100 + (i % 5) * 3);
            b.push_tagged(0, 0, i, i * 100 + (i % 7) * 2);
        }
        let iab = iat_of(&a, &b).i;
        let iba = iat_of(&b, &a).i;
        assert!((iab - iba).abs() < 1e-15);
    }

    #[test]
    fn gaps_use_trial_local_predecessor() {
        // §3's example: common packet is 5th in A and 4th in B; gaps are
        // measured against each trial's own preceding packet, common or
        // not.
        let mut a = Trial::new();
        for i in 0..4u64 {
            a.push_tagged(7, 0, i, i * 100); // non-common filler
        }
        a.push_tagged(0, 0, 0, 450); // the common packet, gap 150
        let mut b = Trial::new();
        for i in 0..3u64 {
            b.push_tagged(8, 0, i, i * 100);
        }
        b.push_tagged(0, 0, 0, 230); // gap 30
        let r = iat_of(&a, &b);
        assert_eq!(r.deltas_ns.len(), 1);
        assert!((r.deltas_ns[0] - 0.120).abs() < 1e-12); // 120 ps = 0.12 ns
    }

    #[test]
    fn no_overlap_is_zero() {
        let mut a = Trial::new();
        a.push_tagged(0, 0, 1, 0);
        let mut b = Trial::new();
        b.push_tagged(1, 0, 1, 0);
        assert_eq!(iat_of(&a, &b).i, 0.0);
    }

    #[test]
    fn zero_span_degenerate() {
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 5);
        a.push_tagged(0, 0, 1, 5);
        let r = iat_of(&a, &a.clone());
        assert_eq!(r.i, 0.0);
        assert!(!r.i.is_nan());
    }

    #[test]
    fn single_common_packet_is_exactly_zero() {
        // One common packet carries no inter-arrival information (its
        // only gap is the base case g_X0 = 0): I is defined as exactly
        // 0.0 even when the trials have non-zero spans.
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 0);
        a.push_tagged(7, 0, 0, 1_000_000);
        let mut b = Trial::new();
        b.push_tagged(8, 0, 0, 0);
        b.push_tagged(0, 0, 0, 500_000);
        let r = iat_of(&a, &b);
        assert_eq!(r.deltas_ns.len(), 1);
        assert_eq!(r.i, 0.0);
        assert!(!r.i.is_nan());
    }

    #[test]
    fn bounded_by_one_under_stress() {
        // Extreme but valid constructions stay within [0, 1].
        let mut a = Trial::new();
        let mut b = Trial::new();
        a.push_tagged(0, 0, 0, 0);
        a.push_tagged(0, 0, 1, 1_000_000_000);
        a.push_tagged(0, 0, 2, 1_000_000_001);
        b.push_tagged(0, 0, 0, 0);
        b.push_tagged(0, 0, 1, 1);
        b.push_tagged(0, 0, 2, 1_000_000_001);
        let r = iat_of(&a, &b);
        assert!(r.i >= 0.0 && r.i <= 1.0, "got {}", r.i);
    }
}
