//! End-to-end integration tests spanning every crate: generator →
//! middlebox (record) → replays → recorder → metrics, through the
//! simulated testbeds.
//!
//! These tests assert the *shape criteria* from DESIGN.md §5 — the
//! qualitative structure of the paper's results — at reduced scale.

use choir::testbed::{EnvKind, Experiment, ExperimentConfig, ExperimentOutput};

fn quick(kind: EnvKind, scale: f64, seed: u64, runs: usize) -> ExperimentOutput {
    let mut profile = kind.profile();
    profile.runs = runs;
    Experiment::new(ExperimentConfig {
        profile,
        scale,
        seed,
    })
    .run()
}

#[test]
fn local_single_replayer_is_nearly_perfect() {
    let out = quick(EnvKind::LocalSingle, 0.01, 1, 3);
    for run in &out.report.runs {
        assert_eq!(run.metrics.u, 0.0, "no drops on the local testbed");
        assert_eq!(run.metrics.o, 0.0, "no reordering on the local testbed");
        assert!(
            run.iat_within_10ns > 0.85,
            "expected ~92% within 10 ns, got {}",
            run.iat_within_10ns
        );
        assert!(run.metrics.kappa > 0.97, "kappa {}", run.metrics.kappa);
    }
}

#[test]
fn fabric_is_less_consistent_than_local_by_an_order_of_magnitude() {
    // The paper's core finding (§8.1): FABRIC adds IAT deviation; the
    // dedicated-NIC runs see I grow by ~10x or more versus local.
    let local = quick(EnvKind::LocalSingle, 0.005, 2, 3);
    let ded = quick(EnvKind::FabricDedicated40A, 0.005, 2, 3);
    let shared = quick(EnvKind::FabricShared40, 0.005, 2, 3);
    assert!(
        ded.report.mean.i > 10.0 * local.report.mean.i,
        "dedicated I {} vs local I {}",
        ded.report.mean.i,
        local.report.mean.i
    );
    assert!(
        shared.report.mean.i > 2.0 * local.report.mean.i,
        "shared I {} vs local I {}",
        shared.report.mean.i,
        local.report.mean.i
    );
    assert!(ded.report.mean.kappa < local.report.mean.kappa);
    assert!(shared.report.mean.kappa < local.report.mean.kappa);
}

#[test]
fn table2_kappa_ordering_shape_holds() {
    // Table 2's ordering: Local single best; shared 40G close behind;
    // 80 Gbps runs around 0.94; the anomalous dedicated 40G runs and the
    // noisy shared run worst (~0.74).
    let scale = 0.01;
    let k = |kind| quick(kind, scale, 3, 3).report.mean.kappa;
    let local = k(EnvKind::LocalSingle);
    let shared40 = k(EnvKind::FabricShared40);
    let ded80 = k(EnvKind::FabricDedicated80);
    let ded40 = k(EnvKind::FabricDedicated40A);
    let noisy = k(EnvKind::FabricShared40Noisy);

    assert!(local > shared40, "local {local} vs shared40 {shared40}");
    assert!(shared40 > ded80, "shared40 {shared40} vs ded80 {ded80}");
    assert!(ded80 > ded40, "ded80 {ded80} vs ded40 {ded40}");
    assert!(ded80 > noisy, "ded80 {ded80} vs noisy {noisy}");
    // Bands, loosely.
    assert!(local > 0.97);
    assert!((0.60..0.90).contains(&ded40), "ded40 kappa {ded40}");
    assert!((0.60..0.90).contains(&noisy), "noisy kappa {noisy}");
}

#[test]
fn dedicated_nic_anomaly_disappears_at_80g() {
    // §7: the same dedicated NIC that shows I ~ 0.5 at 40 Gbps shows
    // I ~ 0.1 at 80 Gbps ("the IATs get a little more consistent").
    let ded40 = quick(EnvKind::FabricDedicated40A, 0.005, 4, 3);
    let ded80 = quick(EnvKind::FabricDedicated80, 0.005, 4, 3);
    assert!(
        ded40.report.mean.i > 2.0 * ded80.report.mean.i,
        "40G I {} should far exceed 80G I {}",
        ded40.report.mean.i,
        ded80.report.mean.i
    );
}

#[test]
fn only_noisy_shared_environment_drops_packets() {
    let noisy = quick(EnvKind::FabricShared40Noisy, 0.01, 5, 3);
    let drops: usize = noisy.report.runs.iter().map(|r| r.missing + r.extra).sum();
    assert!(drops > 0, "noisy shared must drop packets");

    let clean = quick(EnvKind::FabricShared40, 0.01, 5, 3);
    let clean_drops: usize = clean.report.runs.iter().map(|r| r.missing + r.extra).sum();
    assert_eq!(clean_drops, 0, "idle shared site must not drop");

    let ded = quick(EnvKind::FabricDedicated80Noisy, 0.01, 5, 3);
    let ded_drops: usize = ded.report.runs.iter().map(|r| r.missing + r.extra).sum();
    assert_eq!(ded_drops, 0, "dedicated hardware shields the data path");
}

#[test]
fn dual_replayer_reorders_in_whole_bursts() {
    let out = quick(EnvKind::LocalDual, 0.02, 6, 3);
    let reordered: Vec<_> = out
        .report
        .runs
        .iter()
        .filter(|r| r.metrics.o > 0.0)
        .collect();
    assert!(!reordered.is_empty(), "dual replayer must reorder");
    for r in &reordered {
        // Table 1's signature at full scale is thousands-of-packet block
        // moves; at this reduced scale the arming skew often exceeds the
        // whole trial, so only assert that real movement happened (the
        // full-scale structure is checked by `repro table1`).
        assert!(r.moved > 10, "moved {}", r.moved);
        assert!(
            r.edit_stats.abs_mean >= 1.0,
            "moves expected, abs mean {}",
            r.edit_stats.abs_mean
        );
    }
    // Both replayers contribute packets, distinguishable by tag.
    let ids: std::collections::HashSet<u16> = out.trials[0]
        .observations()
        .iter()
        .filter_map(|o| o.id.tag_fields().map(|(r, _, _)| r))
        .collect();
    assert_eq!(ids.len(), 2);
}

#[test]
fn experiments_are_bit_deterministic() {
    let a = quick(EnvKind::FabricShared40, 0.002, 42, 2);
    let b = quick(EnvKind::FabricShared40, 0.002, 42, 2);
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.events, b.events);
    let c = quick(EnvKind::FabricShared40, 0.002, 43, 2);
    assert_ne!(a.trials, c.trials);
}

#[test]
fn every_replay_of_a_recording_is_the_same_packet_sequence() {
    // The simulator is a consistent network in the paper's sense: the
    // packet *sets and orders* match run to run on clean environments;
    // only timing varies.
    let out = quick(EnvKind::LocalSingle, 0.005, 7, 4);
    let ids: Vec<Vec<_>> = out
        .trials
        .iter()
        .map(|t| t.observations().iter().map(|o| o.id).collect())
        .collect();
    for w in ids.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    assert_eq!(out.trials[0].len() as u64, out.recorded_packets);
}

#[test]
fn eighty_gbps_doubles_packet_count() {
    let p40 = EnvKind::FabricShared40.profile();
    let p80 = EnvKind::FabricShared80.profile();
    let n40 = p40.full_packet_count();
    let n80 = p80.full_packet_count();
    assert!((n80 as f64 / n40 as f64 - 2.0).abs() < 0.01);
    // Paper: 1,052,268-1,055,648 at 40 Gbps; 6.97 Mpps * 0.3 s at 80.
    assert!((1_040_000..1_070_000).contains(&n40));
}

// ---------------------------------------------------------------------------
// Hot-path golden tests: the burst-coalesced timing-wheel pipeline must be
// a pure optimisation — per-tuning bit-determinism, and wheel == heap
// byte-for-byte at identical settings (DESIGN.md §10).
// ---------------------------------------------------------------------------

use choir::netsim::QueueKind;
use choir::testbed::SimTuning;

fn quick_tuned(kind: EnvKind, scale: f64, seed: u64, tuning: SimTuning) -> ExperimentOutput {
    let mut profile = kind.profile();
    profile.runs = 2;
    Experiment::new(ExperimentConfig {
        profile,
        scale,
        seed,
    })
    .tuning(tuning)
    .run()
}

#[test]
fn wheel_and_heap_produce_byte_identical_captures() {
    // The timing wheel is an *implementation* of the (time, insertion seq)
    // total order, not a new schedule: at identical tuning it must yield
    // exactly the heap's captures, byte for byte.
    for kind in [EnvKind::LocalSingle, EnvKind::FabricShared40Noisy] {
        let wheel = quick_tuned(kind, 0.003, 11, SimTuning::default());
        let heap = quick_tuned(
            kind,
            0.003,
            11,
            SimTuning {
                queue: QueueKind::Heap,
                ..SimTuning::default()
            },
        );
        assert_eq!(wheel.trials, heap.trials, "{kind:?}: wheel vs heap capture");
        assert_eq!(wheel.events, heap.events, "{kind:?}: wheel vs heap events");
    }
}

#[test]
fn per_packet_reference_path_is_self_deterministic() {
    // The pre-optimisation baseline (`per_packet`) is kept alive as the
    // benchmark reference; it must stay bit-deterministic in its own right.
    let a = quick_tuned(EnvKind::LocalSingle, 0.003, 12, SimTuning::per_packet());
    let b = quick_tuned(EnvKind::LocalSingle, 0.003, 12, SimTuning::per_packet());
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.events, b.events);
    // And coalescing must actually engage on the default path — otherwise
    // the benchmark would be comparing the baseline to itself.
    let c = quick_tuned(EnvKind::LocalSingle, 0.003, 12, SimTuning::default());
    assert_eq!(a.sim_stats.coalesced_events, 0);
    assert_eq!(a.sim_stats.wire_events_elided, 0);
    assert!(c.sim_stats.coalesced_events > 0);
    assert!(c.sim_stats.wire_events_elided > 0);
    assert!(c.sim_stats.events_processed < a.sim_stats.events_processed);
}

#[test]
fn coalescing_preserves_packet_sequence_and_count() {
    // Cross-tuning runs are NOT bit-identical (RNG draws interleave
    // differently), but the delivered packet *set and order* — what the
    // paper calls a consistent network — must match exactly.
    let old = quick_tuned(EnvKind::LocalSingle, 0.003, 13, SimTuning::per_packet());
    let new = quick_tuned(EnvKind::LocalSingle, 0.003, 13, SimTuning::default());
    assert_eq!(old.recorded_packets, new.recorded_packets);
    for (a, b) in old.trials.iter().zip(&new.trials) {
        let ids_a: Vec<_> = a.observations().iter().map(|o| o.id).collect();
        let ids_b: Vec<_> = b.observations().iter().map(|o| o.id).collect();
        assert_eq!(ids_a, ids_b, "packet sequence must survive coalescing");
    }
}
