//! # choir-packet
//!
//! Packet-level substrate for the Choir replay toolkit: Ethernet/IPv4/UDP
//! header construction and parsing, the 16-byte Choir trailer tag that the
//! paper uses to give every replayed packet a unique identity (§3, §6), and
//! nanosecond-resolution pcap reading/writing for interoperability with
//! conventional capture tooling.
//!
//! The paper's evaluation streams are 1400-byte UDP-in-IPv4 frames stamped
//! with a unique 16-byte tag by the replayer; the recorder then uses the tag
//! as *the* definition of packet identity when computing the consistency
//! metrics. [`ChoirTag`] implements exactly that: a magic number, the
//! emitting replay node, a stream id and a 64-bit sequence number.
//!
//! Nothing in this crate allocates per-packet on the hot path: frames are
//! built into caller-provided buffers or cheaply-cloneable [`bytes::Bytes`].

pub mod builder;
pub mod headers;
pub mod ident;
pub mod pcap;
pub mod tag;
pub mod wire;

pub use builder::FrameBuilder;
pub use headers::{EtherType, EthernetHeader, Ipv4Header, MacAddr, UdpHeader};
pub use ident::PacketId;
pub use tag::ChoirTag;
pub use wire::{frame_wire_bytes, FrameSpec, WIRE_OVERHEAD_BYTES};

use bytes::Bytes;

/// A fully-built network frame plus the metadata Choir needs.
///
/// `data` is reference-counted ([`Bytes`]), so recording a transmitted packet
/// — as Choir's middlebox does — is a refcount bump, never a copy (paper §4:
/// "A recording is made by holding forwarded packets in memory after their
/// transmission without making a copy").
///
/// Like a pcap record, a frame distinguishes the bytes it *stores*
/// (`data`, the "included" bytes) from the length the packet had on the
/// network (`orig_len`). Simulated bulk traffic stores only headers and the
/// trailer tag while declaring the full original length, so timing models
/// stay exact without materializing megabytes of fill payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Stored frame bytes from the Ethernet header onward (exclusive of
    /// preamble/FCS/inter-frame gap, like a pcap capture).
    pub data: Bytes,
    orig_len: u32,
}

impl Frame {
    /// Wrap raw bytes as a frame whose original length equals the stored
    /// length.
    pub fn new(data: Bytes) -> Self {
        let orig_len = data.len() as u32;
        Frame { data, orig_len }
    }

    /// A frame storing a truncated view of a packet that was `orig_len`
    /// bytes on the network (snap-length capture semantics).
    ///
    /// # Panics
    /// Panics if `orig_len` is smaller than the stored data.
    pub fn truncated(data: Bytes, orig_len: u32) -> Self {
        assert!(
            orig_len as usize >= data.len(),
            "orig_len {orig_len} smaller than stored {} bytes",
            data.len()
        );
        Frame { data, orig_len }
    }

    /// Number of stored bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Length the packet had on the network (>= [`Frame::len`]).
    pub fn orig_len(&self) -> usize {
        self.orig_len as usize
    }

    /// True when the frame stores no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes this frame occupies on the wire, including preamble, FCS and
    /// minimum inter-frame gap — the figure that matters for line-rate
    /// math. Computed from the original length, not the stored bytes.
    pub fn wire_len(&self) -> usize {
        frame_wire_bytes(self.orig_len as usize)
    }

    /// Extract the Choir trailer tag, if the frame carries one.
    pub fn tag(&self) -> Option<ChoirTag> {
        ChoirTag::parse_trailer(&self.data)
    }

    /// The identity used by the consistency metrics: the trailer tag when
    /// present, otherwise a hash of the full frame contents.
    pub fn packet_id(&self) -> PacketId {
        match self.tag() {
            Some(t) => PacketId::from_tag(&t),
            None => PacketId::from_bytes(&self.data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_basic_accessors() {
        let f = Frame::new(Bytes::from_static(b"hello"));
        assert_eq!(f.len(), 5);
        assert_eq!(f.orig_len(), 5);
        assert!(!f.is_empty());
        assert_eq!(f.wire_len(), 5 + WIRE_OVERHEAD_BYTES + (64usize.saturating_sub(5 + 4)));
    }

    #[test]
    fn truncated_frame_uses_orig_len_for_wire_math() {
        let f = Frame::truncated(Bytes::from(vec![0u8; 58]), 1400);
        assert_eq!(f.len(), 58);
        assert_eq!(f.orig_len(), 1400);
        assert_eq!(f.wire_len(), 1424);
    }

    #[test]
    #[should_panic(expected = "smaller than stored")]
    fn truncated_orig_len_too_small_panics() {
        Frame::truncated(Bytes::from(vec![0u8; 100]), 50);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new(Bytes::new());
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn frame_clone_is_shallow() {
        let f = Frame::new(Bytes::from(vec![7u8; 1400]));
        let g = f.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(f.data.as_ptr(), g.data.as_ptr());
    }

    #[test]
    fn untagged_frame_id_is_content_hash() {
        let a = Frame::new(Bytes::from_static(b"abcdef"));
        let b = Frame::new(Bytes::from_static(b"abcdef"));
        let c = Frame::new(Bytes::from_static(b"abcdeg"));
        assert_eq!(a.packet_id(), b.packet_id());
        assert_ne!(a.packet_id(), c.packet_id());
    }
}
