//! The [`Dataplane`] trait — the contract Choir applications are written
//! against — and the [`App`] polling interface.
//!
//! The original Choir is a DPDK program whose environment provides: burst
//! RX/TX on a set of ports, the CPU's Time Stamp Counter ("a constantly-
//! increasing counter on the CPU", paper §4), a PTP-disciplined wall clock
//! (§2.2), and an out-of-band control channel (§4). [`Dataplane`] abstracts
//! exactly that surface so the same application code runs on:
//!
//! - the deterministic simulator in `choir-netsim` (where busy-wait loops
//!   become scheduled wake-ups), and
//! - the real-time [`crate::loopback`] backend (where they really spin).

use crate::burst::Burst;
use crate::mbuf::Mempool;
use crate::stats::PortStats;

/// Index of a port on a node.
pub type PortId = usize;

/// Control-plane commands, delivered out-of-band (or in-band, see paper §5)
/// to Choir middleboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Begin recording forwarded traffic.
    StartRecord,
    /// Stop recording; the recording becomes the replay buffer.
    StopRecord,
    /// Run the recorded replay, starting at the given wall-clock time
    /// (nanoseconds). The paper: "The user command to run a replay
    /// specifies a future time to start the replay" (§4).
    ScheduleReplay {
        /// PTP wall-clock start time in nanoseconds.
        start_wall_ns: u64,
    },
    /// Cancel a scheduled or in-progress replay.
    AbortReplay,
    /// Application-defined escape hatch.
    Custom(u64),
}

/// Environment handed to an [`App`] on every wake-up.
pub trait Dataplane {
    /// Number of ports attached to this node.
    fn num_ports(&self) -> usize;

    /// The node's packet buffer pool.
    fn mempool(&self) -> &Mempool;

    /// Receive up to `Burst` capacity packets from `port` into `out`
    /// (which is cleared first). Returns the number received.
    fn rx_burst(&mut self, port: PortId, out: &mut Burst) -> usize;

    /// Hand `burst` to the NIC for transmission on `port`. Accepted
    /// packets are drained from the front of `burst`; packets left behind
    /// did not fit in the descriptor ring. Returns the number accepted.
    ///
    /// Acceptance is *notification only*: the NIC pulls the packets to the
    /// wire by DMA at a later time (paper §2.3).
    fn tx_burst(&mut self, port: PortId, burst: &mut Burst) -> usize;

    /// Current Time Stamp Counter value (cycles).
    fn tsc(&self) -> u64;

    /// TSC frequency in Hz (constant; paper §4 notes FABRIC nodes have
    /// constant-TSC CPUs).
    fn tsc_hz(&self) -> u64;

    /// PTP-disciplined wall-clock time in nanoseconds. Subject to the
    /// node's synchronization error — two nodes' `wall_ns` disagree by the
    /// PTP offset, which is what §6.2 measures the consequences of.
    fn wall_ns(&self) -> u64;

    /// Ask to be woken at the given TSC value. In the simulator this
    /// schedules an event; in the real-time backend the driver loop spins
    /// until the deadline. The paper's replay loop — "looping over a TSC
    /// read, transmitting each packet burst when the TSC read is greater
    /// than or equal to the burst's stored TSC time plus the delta" (§4) —
    /// maps onto repeated calls to this.
    fn request_wake_at_tsc(&mut self, tsc: u64);

    /// Counters for `port`.
    fn stats(&self, port: PortId) -> PortStats;

    /// Slew this node's wall clock by `delta_ns` (what a PTP servo does
    /// after computing an offset). Backends without an adjustable clock
    /// ignore it; the simulator applies it to the node's PTP state.
    fn adjust_wall_clock(&mut self, _delta_ns: i64) {}

    /// Convert a nanosecond duration into TSC cycles.
    fn ns_to_cycles(&self, ns: u64) -> u64 {
        ((ns as u128 * self.tsc_hz() as u128) / 1_000_000_000) as u64
    }

    /// Convert TSC cycles into nanoseconds.
    fn cycles_to_ns(&self, cycles: u64) -> u64 {
        ((cycles as u128 * 1_000_000_000) / self.tsc_hz() as u128) as u64
    }
}

/// A pollable dataplane application (generator, middlebox, recorder, …).
pub trait App {
    /// Called when a packet arrives, a requested wake-up fires, or the
    /// driver simply polls. The app should drain its RX rings.
    fn on_wake(&mut self, dp: &mut dyn Dataplane);

    /// Called when a control-plane message arrives.
    fn on_control(&mut self, _msg: &ControlMsg, _dp: &mut dyn Dataplane) {}

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "app"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakePlane {
        pool: Mempool,
        hz: u64,
    }

    impl Dataplane for FakePlane {
        fn num_ports(&self) -> usize {
            0
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _port: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _port: PortId, _burst: &mut Burst) -> usize {
            0
        }
        fn tsc(&self) -> u64 {
            42
        }
        fn tsc_hz(&self) -> u64 {
            self.hz
        }
        fn wall_ns(&self) -> u64 {
            0
        }
        fn request_wake_at_tsc(&mut self, _tsc: u64) {}
        fn stats(&self, _port: PortId) -> PortStats {
            PortStats::default()
        }
    }

    #[test]
    fn cycle_conversions_roundtrip() {
        let p = FakePlane {
            pool: Mempool::new("t", 1),
            hz: 2_500_000_000, // 2.5 GHz
        };
        assert_eq!(p.ns_to_cycles(1_000), 2_500);
        assert_eq!(p.cycles_to_ns(2_500), 1_000);
        // Round-trip within quantization for odd values.
        let ns = 123_456_789;
        let rt = p.cycles_to_ns(p.ns_to_cycles(ns));
        assert!(ns - rt <= 1, "{ns} vs {rt}");
    }

    #[test]
    fn conversions_handle_large_values_without_overflow() {
        let p = FakePlane {
            pool: Mempool::new("t", 1),
            hz: 3_000_000_000,
        };
        // One hour in ns.
        let ns = 3_600_000_000_000u64;
        let cycles = p.ns_to_cycles(ns);
        assert_eq!(cycles, 10_800_000_000_000);
        assert_eq!(p.cycles_to_ns(cycles), ns);
    }

    #[test]
    fn control_msg_equality() {
        assert_eq!(
            ControlMsg::ScheduleReplay { start_wall_ns: 5 },
            ControlMsg::ScheduleReplay { start_wall_ns: 5 }
        );
        assert_ne!(ControlMsg::StartRecord, ControlMsg::StopRecord);
    }
}
