//! Nanosecond-resolution pcap reading and writing.
//!
//! The paper's artifact captures traffic with `dpdkcap` and analyzes the
//! resulting pcaps. This module implements the classic pcap container with
//! the nanosecond-timestamp magic (`0xA1B23C4D`), which is what
//! high-precision capture tools emit, so Choir trials can round-trip
//! through standard tooling.
//!
//! The simulator's native resolution is picoseconds; callers round
//! timestamps to the nearest nanosecond before writing (pcap cannot
//! represent finer — see `choir_capture::Recorder::write_pcap` and
//! `choir_netsim`'s clock, which both round-to-nearest rather than
//! truncate, so sub-ns residue never biases IAT/latency deltas).
//!
//! Reading accepts all four classic magics: nanosecond and microsecond
//! resolution, in both native and byte-swapped (opposite-endian writer)
//! order. Writing emits little-endian nanosecond pcap and clamps stored
//! bytes to the advertised snap length, preserving the original length,
//! exactly as capture tooling does for oversize frames.

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::Frame;

/// Magic number for nanosecond-resolution pcap, native byte order.
pub const PCAP_NS_MAGIC: u32 = 0xA1B2_3C4D;
/// Magic number for classic microsecond-resolution pcap.
pub const PCAP_US_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Default snap length: capture whole frames.
pub const DEFAULT_SNAPLEN: u32 = 65_535;

/// One captured record: a frame and its arrival timestamp in nanoseconds
/// since the capture epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Arrival time in nanoseconds.
    pub ts_ns: u64,
    /// The captured frame.
    pub frame: Frame,
}

/// Errors from pcap parsing.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The global header's magic number was not a known pcap magic.
    BadMagic(u32),
    /// A record header claimed more bytes than remain. `offset` is the
    /// byte position (from the start of the capture) where the cut item
    /// begins, so truncation reports say *where* the capture broke.
    Truncated {
        /// Byte offset of the item the capture was cut inside.
        offset: u64,
    },
}

impl PcapError {
    /// The byte offset a truncation was detected at, if this is a
    /// truncation error.
    pub fn offset(&self) -> Option<u64> {
        match self {
            PcapError::Truncated { offset } => Some(*offset),
            _ => None,
        }
    }
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap capture (magic {m:#010x})"),
            PcapError::Truncated { offset } => {
                write!(f, "pcap truncated mid-record at byte offset {offset}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    records: u64,
    bytes_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return a writer. Failures report the
    /// byte offset the write broke at, like every other writer error.
    pub fn new(out: W) -> io::Result<Self> {
        let mut w = PcapWriter {
            out,
            records: 0,
            bytes_written: 0,
        };
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&PCAP_NS_MAGIC.to_le_bytes());
        hdr.extend_from_slice(&2u16.to_le_bytes()); // major
        hdr.extend_from_slice(&4u16.to_le_bytes()); // minor
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        hdr.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        w.write_tracked(&hdr)?;
        Ok(w)
    }

    /// `write_all` that threads the output byte offset into any error, so
    /// a failed write says exactly where the container was left cut.
    fn write_tracked(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.out.write_all(bytes).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "pcap write failed at byte offset {} (record {}): {e}",
                    self.bytes_written, self.records
                ),
            )
        })?;
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Append one record. Frames larger than the advertised
    /// [`DEFAULT_SNAPLEN`] are stored truncated — `incl` and the bytes
    /// written are clamped to the snap length while `orig` keeps the full
    /// on-wire length, so oversize frames round-trip as properly
    /// truncated records instead of corrupting the container (a record
    /// header whose `incl` exceeds the global snaplen is rejected by
    /// standard tooling).
    pub fn write_record(&mut self, ts_ns: u64, frame: &Frame) -> io::Result<()> {
        let sec = (ts_ns / 1_000_000_000) as u32;
        let nsec = (ts_ns % 1_000_000_000) as u32;
        let incl = (frame.len() as u32).min(DEFAULT_SNAPLEN);
        let orig = frame.orig_len() as u32;
        let mut hdr = [0u8; 16];
        hdr[0..4].copy_from_slice(&sec.to_le_bytes());
        hdr[4..8].copy_from_slice(&nsec.to_le_bytes());
        hdr[8..12].copy_from_slice(&incl.to_le_bytes());
        hdr[12..16].copy_from_slice(&orig.to_le_bytes());
        self.write_tracked(&hdr)?;
        self.write_tracked(&frame.data[..incl as usize])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Total container bytes written so far (global header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Read an entire nanosecond pcap into memory.
pub fn read_pcap<R: Read>(mut input: R) -> Result<Vec<PcapRecord>, PcapError> {
    let mut all = Vec::new();
    input.read_to_end(&mut all)?;
    parse_pcap(&all)
}

/// Parse a nanosecond or microsecond pcap from a byte slice.
///
/// Both byte orders are accepted: a byte-swapped magic
/// (`0x4D3CB2A1` / `0xD4C3B2A1` as read little-endian) marks a capture
/// written on an opposite-endian host, and every header and record field
/// is byte-swapped accordingly. The parsed records are identical to
/// those of the native-endian twin of the same capture.
pub fn parse_pcap(data: &[u8]) -> Result<Vec<PcapRecord>, PcapError> {
    if data.len() < 24 {
        return Err(PcapError::Truncated { offset: 0 });
    }
    let raw_magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    // Sub-second units: nanoseconds for the high-precision magic the
    // recorder writes, microseconds for classic captures from ordinary
    // tooling. A swapped magic means the writer's byte order was the
    // opposite of little-endian wire order, so all fields swap.
    let (subsec_to_ns, swapped): (u64, bool) = match raw_magic {
        PCAP_NS_MAGIC => (1, false),
        PCAP_US_MAGIC => (1_000, false),
        m if m == PCAP_NS_MAGIC.swap_bytes() => (1, true),
        m if m == PCAP_US_MAGIC.swap_bytes() => (1_000, true),
        other => return Err(PcapError::BadMagic(other)),
    };
    let mut records = Vec::new();
    let body = Bytes::copy_from_slice(&data[24..]);
    let mut boff = 0usize;
    while boff < body.len() {
        if body.len() - boff < 16 {
            return Err(PcapError::Truncated {
                offset: 24 + boff as u64,
            });
        }
        let u32at = |o: usize| {
            let v = u32::from_le_bytes([body[o], body[o + 1], body[o + 2], body[o + 3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let sec = u32at(boff) as u64;
        let nsec = u32at(boff + 4) as u64;
        let incl = u32at(boff + 8) as usize;
        let orig = u32at(boff + 12);
        boff += 16;
        if body.len() - boff < incl {
            return Err(PcapError::Truncated {
                offset: 24 + boff as u64 - 16,
            });
        }
        // slice() on Bytes is zero-copy: records share the file buffer.
        let data = body.slice(boff..boff + incl);
        let frame = if orig as usize > incl {
            Frame::truncated(data, orig)
        } else {
            Frame::new(data)
        };
        boff += incl;
        records.push(PcapRecord {
            ts_ns: sec * 1_000_000_000 + nsec * subsec_to_ns,
            frame,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ChoirTag;

    fn tagged_frame(seq: u64) -> Frame {
        let mut buf = vec![0u8; 128];
        ChoirTag::new(1, 0, seq).stamp_trailer(&mut buf);
        Frame::new(Bytes::from(buf))
    }

    #[test]
    fn roundtrip_three_records() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (i, ts) in [(0u64, 100u64), (1, 2_000_000_123), (2, 2_000_000_456)] {
            w.write_record(ts, &tagged_frame(i)).unwrap();
        }
        assert_eq!(w.records_written(), 3);
        let buf = w.finish().unwrap();
        let recs = parse_pcap(&buf).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].ts_ns, 100);
        assert_eq!(recs[1].ts_ns, 2_000_000_123);
        assert_eq!(recs[2].frame.tag().unwrap().seq, 2);
    }

    #[test]
    fn empty_pcap_roundtrip() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert!(parse_pcap(&buf).unwrap().is_empty());
    }

    #[test]
    fn bad_magic() {
        let mut buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        buf[0] ^= 0xff;
        assert!(matches!(parse_pcap(&buf), Err(PcapError::BadMagic(_))));
    }

    #[test]
    fn classic_microsecond_pcap_parses() {
        // A hand-built classic (us) pcap with one 4-byte record at
        // 1.000002 s.
        let mut buf = Vec::new();
        buf.extend_from_slice(&PCAP_US_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0i32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // sec
        buf.extend_from_slice(&2u32.to_le_bytes()); // usec
        buf.extend_from_slice(&4u32.to_le_bytes()); // incl
        buf.extend_from_slice(&4u32.to_le_bytes()); // orig
        buf.extend_from_slice(b"abcd");
        let recs = parse_pcap(&buf).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts_ns, 1_000_002_000);
        assert_eq!(&recs[0].frame.data[..], b"abcd");
    }

    #[test]
    fn truncated_header() {
        assert!(matches!(
            parse_pcap(&[0u8; 10]),
            Err(PcapError::Truncated { offset: 0 })
        ));
    }

    #[test]
    fn truncated_record_body_reports_record_start() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(5, &tagged_frame(0)).unwrap();
        let buf = w.finish().unwrap();
        // The cut record starts right after the 24-byte global header.
        match parse_pcap(&buf[..buf.len() - 1]) {
            Err(PcapError::Truncated { offset }) => assert_eq!(offset, 24),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_header_reports_record_start() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(5, &tagged_frame(0)).unwrap();
        let buf = w.finish().unwrap();
        // Keep global header + 8 bytes of the record header.
        match parse_pcap(&buf[..32]) {
            Err(PcapError::Truncated { offset }) => assert_eq!(offset, 24),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_in_second_record_reports_its_offset() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(5, &tagged_frame(0)).unwrap();
        let first_end = w.bytes_written();
        w.write_record(6, &tagged_frame(1)).unwrap();
        let buf = w.finish().unwrap();
        match parse_pcap(&buf[..buf.len() - 3]) {
            Err(PcapError::Truncated { offset }) => {
                assert_eq!(offset, first_end, "offset names the second record");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(parse_pcap(&buf[..buf.len() - 3])
            .unwrap_err()
            .to_string()
            .contains(&format!("byte offset {first_end}")));
    }

    #[test]
    fn writer_errors_carry_byte_offset() {
        /// A sink that accepts `cap` bytes, then fails.
        struct Flaky {
            cap: usize,
            seen: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.seen + buf.len() > self.cap {
                    return Err(io::Error::other("disk full"));
                }
                self.seen += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Room for the global header and one record header, then fail
        // inside the second record's payload write.
        let f = tagged_frame(0);
        let cap = 24 + 16 + f.len() + 16;
        let mut w = PcapWriter::new(Flaky { cap, seen: 0 }).unwrap();
        w.write_record(1, &f).unwrap();
        let err = w.write_record(2, &f).unwrap_err();
        let offset = 24 + 16 + f.len() as u64 + 16;
        assert!(
            err.to_string().contains(&format!("byte offset {offset}")),
            "error should name the failing offset: {err}"
        );
        assert!(err.to_string().contains("record 1"));
    }

    #[test]
    fn timestamps_above_one_second() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let ts = 12 * 1_000_000_000 + 345;
        w.write_record(ts, &tagged_frame(0)).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(parse_pcap(&buf).unwrap()[0].ts_ns, ts);
    }

    #[test]
    fn snaplen_roundtrip_preserves_orig_len() {
        let mut buf = vec![0u8; 58];
        ChoirTag::new(0, 0, 5).stamp_trailer(&mut buf);
        let f = Frame::truncated(Bytes::from(buf), 1400);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(7, &f).unwrap();
        let out = w.finish().unwrap();
        let recs = parse_pcap(&out).unwrap();
        assert_eq!(recs[0].frame.len(), 58);
        assert_eq!(recs[0].frame.orig_len(), 1400);
        assert_eq!(recs[0].frame.tag().unwrap().seq, 5);
    }

    /// Build a one-record pcap with explicit endianness and magic.
    fn handmade_pcap(magic: u32, big_endian: bool, sec: u32, subsec: u32, payload: &[u8]) -> Vec<u8> {
        let put = |buf: &mut Vec<u8>, v: u32| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let put16 = |buf: &mut Vec<u8>, v: u16| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let mut buf = Vec::new();
        put(&mut buf, magic);
        put16(&mut buf, 2);
        put16(&mut buf, 4);
        put(&mut buf, 0); // thiszone
        put(&mut buf, 0); // sigfigs
        put(&mut buf, DEFAULT_SNAPLEN);
        put(&mut buf, LINKTYPE_ETHERNET);
        put(&mut buf, sec);
        put(&mut buf, subsec);
        put(&mut buf, payload.len() as u32);
        put(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn byte_swapped_ns_magic_parses_identically() {
        let native = handmade_pcap(PCAP_NS_MAGIC, false, 3, 123_456_789, b"wxyz");
        let swapped = handmade_pcap(PCAP_NS_MAGIC, true, 3, 123_456_789, b"wxyz");
        let a = parse_pcap(&native).unwrap();
        let b = parse_pcap(&swapped).unwrap();
        assert_eq!(a, b);
        assert_eq!(b[0].ts_ns, 3_123_456_789);
        assert_eq!(&b[0].frame.data[..], b"wxyz");
    }

    #[test]
    fn byte_swapped_us_magic_parses_identically() {
        let native = handmade_pcap(PCAP_US_MAGIC, false, 1, 2, b"abcd");
        let swapped = handmade_pcap(PCAP_US_MAGIC, true, 1, 2, b"abcd");
        let a = parse_pcap(&native).unwrap();
        let b = parse_pcap(&swapped).unwrap();
        assert_eq!(a, b);
        assert_eq!(b[0].ts_ns, 1_000_002_000);
    }

    #[test]
    fn swapped_record_lengths_are_swapped_too() {
        // A record whose incl would be enormous if misread in the wrong
        // byte order: 4 = 0x00000004 LE reads as 0x04000000 when the
        // parser forgets to swap record fields, tripping Truncated.
        let swapped = handmade_pcap(PCAP_NS_MAGIC, true, 0, 0, b"abcd");
        let recs = parse_pcap(&swapped).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].frame.len(), 4);
    }

    #[test]
    fn oversize_frame_roundtrips_as_truncated_record() {
        // A frame larger than the advertised snaplen must be stored
        // clamped, with orig preserving the on-wire length.
        let n = DEFAULT_SNAPLEN as usize + 1_000;
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let f = Frame::new(Bytes::from(data.clone()));
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(11, &f).unwrap();
        let buf = w.finish().unwrap();
        let recs = parse_pcap(&buf).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].frame.len(), DEFAULT_SNAPLEN as usize);
        assert_eq!(recs[0].frame.orig_len(), n);
        assert_eq!(&recs[0].frame.data[..], &data[..DEFAULT_SNAPLEN as usize]);
        // Another record after the oversize one still parses: the clamp
        // kept the container well-formed.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(11, &f).unwrap();
        w.write_record(22, &tagged_frame(7)).unwrap();
        let buf = w.finish().unwrap();
        let recs = parse_pcap(&buf).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].frame.tag().unwrap().seq, 7);
    }

    #[test]
    fn read_pcap_from_reader() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(1, &tagged_frame(9)).unwrap();
        let buf = w.finish().unwrap();
        let recs = read_pcap(&buf[..]).unwrap();
        assert_eq!(recs[0].frame.tag().unwrap().seq, 9);
    }
}
