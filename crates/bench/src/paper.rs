//! The paper's published numbers, for paper-vs-measured reporting.
//!
//! Sources: Table 2 (mean metrics per environment), the per-section
//! "within 10 ns" ranges, Table 1 (edit-script distances), and the §10
//! throughput claim.

use choir_core::metrics::ConsistencyMetrics;
use choir_testbed::EnvKind;

/// One Table 2 row as published.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Environment.
    pub kind: EnvKind,
    /// Mean metrics (κ recomputed by the paper as the mean of per-run κ).
    pub mean: ConsistencyMetrics,
    /// Published range of the per-run "% of IAT deltas within ±10 ns"
    /// statistic, as fractions (lo, hi). `None` where the paper gives no
    /// figure (dual-replayer reports it only in passing).
    pub within_10ns: Option<(f64, f64)>,
}

/// Table 2 of the paper, row by row.
pub fn table2() -> Vec<PaperRow> {
    let m = |u: f64, o: f64, i: f64, l: f64, kappa: f64| ConsistencyMetrics {
        u,
        o,
        l,
        i,
        kappa,
    };
    vec![
        PaperRow {
            kind: EnvKind::LocalSingle,
            mean: m(0.0, 0.0, 0.0294, 4.27e-6, 0.9853),
            within_10ns: Some((0.9223, 0.9251)),
        },
        PaperRow {
            kind: EnvKind::LocalDual,
            mean: m(0.0, 0.0259, 0.2022, 9.68e-3, 0.9282),
            within_10ns: Some((0.9275, 0.9290)),
        },
        PaperRow {
            kind: EnvKind::FabricDedicated40A,
            mean: m(0.0, 0.0, 0.4996, 3.07e-5, 0.7426),
            within_10ns: Some((0.3064, 0.4844)),
        },
        PaperRow {
            kind: EnvKind::FabricShared40,
            mean: m(0.0, 0.0, 0.0662, 2.24e-5, 0.9669),
            within_10ns: Some((0.2644, 0.2915)),
        },
        PaperRow {
            kind: EnvKind::FabricDedicated40B,
            mean: m(0.0, 0.0, 0.4998, 4.20e-4, 0.7502),
            within_10ns: Some((0.2401, 0.2718)),
        },
        PaperRow {
            kind: EnvKind::FabricDedicated80,
            mean: m(0.0, 0.0, 0.1073, 8.20e-6, 0.9463),
            within_10ns: Some((0.3011, 0.3019)),
        },
        PaperRow {
            kind: EnvKind::FabricShared80,
            mean: m(0.0, 0.0, 0.1105, 2.26e-5, 0.9448),
            within_10ns: Some((0.3012, 0.3020)),
        },
        PaperRow {
            kind: EnvKind::FabricDedicated80Noisy,
            mean: m(0.0, 0.0, 0.1085, 1.37e-5, 0.9458),
            within_10ns: Some((0.3015, 0.3216)),
        },
        PaperRow {
            kind: EnvKind::FabricShared40Noisy,
            mean: m(1.99e-4, 0.0, 0.5024, 2.04e-5, 0.7488),
            within_10ns: Some((0.0931, 0.1381)),
        },
    ]
}

/// The published row for one environment.
pub fn row_for(kind: EnvKind) -> PaperRow {
    table2()
        .into_iter()
        .find(|r| r.kind == kind)
        .expect("every environment has a Table 2 row")
}

/// Table 1 as published: per-run edit-script distance statistics for the
/// local dual-replayer runs (mean, sigma, abs-mean, abs-sigma, min, max).
pub fn table1() -> [(&'static str, f64, f64, f64, f64, i64, i64); 4] {
    [
        ("B", 1790.54, 8111.16, 7240.23, 4071.35, -5632, 16573),
        ("C", 3487.95, 16011.25, 14277.30, 8042.66, -11072, 32925),
        ("D", 3873.69, 17843.43, 15908.56, 8961.64, -12352, 36735),
        ("E", 4179.75, 19305.66, 17209.84, 9695.35, -13378, 39809),
    ]
}

/// §6.2: packets in each run's edit script, and the fraction of captured
/// packets they represent.
pub const TABLE1_EDIT_SCRIPT_PACKETS: u64 = 525_824;
/// §6.2: the edit script covered 49.8% of captured packets.
pub const TABLE1_EDIT_SCRIPT_FRACTION: f64 = 0.498;

/// §10: Choir sustains 100 Gbps == 8.9 Mpps.
pub const HEADLINE_GBPS: f64 = 100.0;
/// §10's packet-rate form of the throughput claim.
pub const HEADLINE_MPPS: f64 = 8.9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_env_has_a_row() {
        for kind in EnvKind::all() {
            let r = row_for(kind);
            assert_eq!(r.kind, kind);
            assert!(r.mean.kappa > 0.5 && r.mean.kappa < 1.0);
        }
    }

    #[test]
    fn published_kappas_descend_from_local() {
        let local = row_for(EnvKind::LocalSingle).mean.kappa;
        for kind in EnvKind::all() {
            assert!(row_for(kind).mean.kappa <= local);
        }
    }

    #[test]
    fn table1_rows_are_ordered_b_to_e() {
        let t = table1();
        assert_eq!(t[0].0, "B");
        assert_eq!(t[3].0, "E");
        // Distances grow run over run in the published data.
        assert!(t[0].1 < t[3].1);
    }
}
