//! Property tests of the arena-backed metric kernels: the flat-arena
//! `TrialIndex` pair path (`PairAnalyzer::from_indexes`, streamed by the
//! vectorizable kernels) must be bit-identical to the uncached reference
//! path (`PairAnalyzer::new`) over randomized trials with duplicates,
//! reorders, drops, and empty trials — the same ground-truth contract the
//! sharded engine is held to, stated at the pair level.

use choir::metrics::allpairs::TrialIndex;
use choir::metrics::report::TrialComparison;
use choir::metrics::{DeltaHistogram, PairAnalyzer, PairScratch, Trial};
use proptest::prelude::*;

/// A random trial: sequence numbers drawn with duplicates and drops from
/// a small space (forcing deep occurrence chains), shuffled arbitrarily,
/// with non-decreasing timestamps. `max_len == 0` yields empty trials.
fn arb_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    (
        proptest::collection::vec(0u64..48, 0..max_len + 1),
        proptest::collection::vec(0u64..5_000, 0..max_len + 1),
    )
        .prop_map(|(seqs, mut gaps)| {
            gaps.resize(seqs.len(), 100);
            let mut t = Trial::new();
            let mut now = 0u64;
            for (s, g) in seqs.iter().zip(gaps) {
                now += g;
                t.push_tagged(0, 0, *s, now);
            }
            t
        })
}

/// Bit-level equality of everything a pair analysis computes, excluding
/// wall-clock timings.
fn comparisons_bit_identical(x: &TrialComparison, y: &TrialComparison) -> bool {
    x.label == y.label
        && x.metrics.u.to_bits() == y.metrics.u.to_bits()
        && x.metrics.o.to_bits() == y.metrics.o.to_bits()
        && x.metrics.l.to_bits() == y.metrics.l.to_bits()
        && x.metrics.i.to_bits() == y.metrics.i.to_bits()
        && x.metrics.kappa.to_bits() == y.metrics.kappa.to_bits()
        && (x.a_len, x.b_len, x.common, x.missing, x.extra, x.moved)
            == (y.a_len, y.b_len, y.common, y.missing, y.extra, y.moved)
        && x.iat_within_10ns.to_bits() == y.iat_within_10ns.to_bits()
        && x.iat_abs_percentiles_ns == y.iat_abs_percentiles_ns
        && x.latency_abs_percentiles_ns == y.latency_abs_percentiles_ns
        && x.edit_stats == y.edit_stats
        && x.iat_hist.to_csv() == y.iat_hist.to_csv()
        && x.latency_hist.to_csv() == y.latency_hist.to_csv()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arena_pair_path_is_bit_identical_to_uncached(
        a in arb_trial(48),
        b in arb_trial(48),
    ) {
        let reference = PairAnalyzer::new(&a, &b).analyze();
        let ia = TrialIndex::build(&a).unwrap();
        let ib = TrialIndex::build(&b).unwrap();
        let arena = PairAnalyzer::from_indexes(&ia, &ib).analyze();
        prop_assert!(
            comparisons_bit_identical(&arena, &reference),
            "arena {:?} != uncached {:?}",
            arena.metrics,
            reference.metrics
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_random_pairs(
        trials in proptest::collection::vec(arb_trial(32), 2..5),
    ) {
        // One scratch threaded through every pair (the engine's worker
        // pattern) must match fresh-scratch analyses: no state leaks
        // between pairs of very different sizes.
        let indexes: Vec<TrialIndex<'_>> = trials
            .iter()
            .map(TrialIndex::build)
            .collect::<Result<_, _>>()
            .unwrap();
        let mut scratch = PairScratch::new();
        for i in 0..indexes.len() {
            for j in (i + 1)..indexes.len() {
                let reused = PairAnalyzer::from_indexes(&indexes[i], &indexes[j])
                    .analyze_with_scratch(&mut scratch);
                let fresh = PairAnalyzer::from_indexes(&indexes[i], &indexes[j]).analyze();
                prop_assert!(
                    comparisons_bit_identical(&reused, &fresh),
                    "scratch reuse diverged at pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn empty_vs_nonempty_trials_agree(b in arb_trial(32)) {
        let a = Trial::new();
        let reference = PairAnalyzer::new(&a, &b).analyze();
        let ia = TrialIndex::build(&a).unwrap();
        let ib = TrialIndex::build(&b).unwrap();
        let arena = PairAnalyzer::from_indexes(&ia, &ib).analyze();
        prop_assert!(comparisons_bit_identical(&arena, &reference));
    }

    #[test]
    fn record_slice_matches_scalar_add(
        deltas in proptest::collection::vec(
            prop_oneof![
                // Magnitudes across the bucket decades, both signs,
                // including sub-ns and clamp-range values.
                -1e10f64..1e10,
                -1.0f64..1.0,
                Just(0.0f64),
            ],
            0..200,
        ),
    ) {
        let mut scalar = DeltaHistogram::new();
        for &d in &deltas {
            scalar.add(d);
        }
        let mut sliced = DeltaHistogram::new();
        sliced.record_slice(&deltas);
        prop_assert_eq!(sliced.total(), scalar.total());
        prop_assert_eq!(sliced.clamped(), scalar.clamped());
        prop_assert_eq!(sliced.to_csv(), scalar.to_csv());
    }
}
