//! Whole-frame construction for evaluation traffic.
//!
//! Builds the 1400-byte UDP-in-IPv4 frames the paper's generator emits
//! (§6), with space reserved for the 16-byte Choir trailer the replayer
//! stamps. The builder reuses a scratch buffer across packets so the
//! generator's hot loop performs one allocation per frame (the `Bytes`
//! freeze) and no header re-serialization beyond field updates.

use bytes::Bytes;

use crate::headers::{
    EtherType, EthernetHeader, Ipv4Header, MacAddr, UdpHeader, UDP_FRAME_HEADER_LEN,
};
use crate::tag::{ChoirTag, TAG_LEN};
use crate::Frame;

/// Builder for a stream of uniform test frames.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    /// Total frame length (headers + payload + trailer space).
    frame_len: usize,
    eth: EthernetHeader,
    ip: Ipv4Header,
    udp: UdpHeader,
    fill: u8,
}

impl FrameBuilder {
    /// A builder for frames of `frame_len` bytes between `src` and `dst`
    /// node ids.
    ///
    /// # Panics
    /// Panics if `frame_len` cannot hold headers plus a trailer tag.
    pub fn new(frame_len: usize, src_node: u32, dst_node: u32) -> Self {
        assert!(
            frame_len >= UDP_FRAME_HEADER_LEN + TAG_LEN,
            "frame_len {frame_len} too small: need at least {}",
            UDP_FRAME_HEADER_LEN + TAG_LEN
        );
        let ip_len = (frame_len - EthernetHeader::LEN) as u16;
        let udp_len = ip_len - Ipv4Header::LEN as u16;
        FrameBuilder {
            frame_len,
            eth: EthernetHeader {
                dst: MacAddr::local(dst_node),
                src: MacAddr::local(src_node),
                ethertype: EtherType::Ipv4 as u16,
            },
            ip: Ipv4Header {
                total_len: ip_len,
                identification: 0,
                ttl: 64,
                protocol: Ipv4Header::PROTO_UDP,
                src: 0x0A00_0000 | src_node,
                dst: 0x0A00_0000 | dst_node,
            },
            udp: UdpHeader {
                src_port: 5001,
                dst_port: 5001,
                len: udp_len,
            },
            fill: 0x5A,
        }
    }

    /// Override the payload fill byte (useful to make runs distinguishable
    /// in hex dumps).
    pub fn with_fill(mut self, fill: u8) -> Self {
        self.fill = fill;
        self
    }

    /// Total frame length this builder produces.
    pub fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Build one frame carrying `tag` as its trailer.
    pub fn build_tagged(&self, tag: ChoirTag) -> Frame {
        let mut buf = vec![self.fill; self.frame_len];
        self.eth.write(&mut buf);
        let mut ip = self.ip;
        // Fold the low sequence bits into the IP id for debuggability.
        ip.identification = tag.seq as u16;
        ip.write(&mut buf[EthernetHeader::LEN..]);
        self.udp
            .write(&mut buf[EthernetHeader::LEN + Ipv4Header::LEN..]);
        tag.stamp_trailer(&mut buf);
        Frame::new(Bytes::from(buf))
    }

    /// Build a tagged frame that *stores* only headers plus the trailer but
    /// declares the full frame length — the memory-frugal representation
    /// simulated bulk traffic uses (snap-length semantics; see
    /// [`Frame::truncated`]). Wire-timing math still sees the full length.
    pub fn build_tagged_snap(&self, tag: ChoirTag) -> Frame {
        let stored = UDP_FRAME_HEADER_LEN + TAG_LEN;
        if stored >= self.frame_len {
            return self.build_tagged(tag);
        }
        let mut buf = vec![self.fill; stored];
        self.eth.write(&mut buf);
        let mut ip = self.ip;
        ip.identification = tag.seq as u16;
        ip.write(&mut buf[EthernetHeader::LEN..]);
        self.udp
            .write(&mut buf[EthernetHeader::LEN + Ipv4Header::LEN..]);
        tag.stamp_trailer(&mut buf);
        Frame::truncated(Bytes::from(buf), self.frame_len as u32)
    }

    /// Build one untagged frame (trailer region left as fill bytes).
    pub fn build_plain(&self) -> Frame {
        let mut buf = vec![self.fill; self.frame_len];
        self.eth.write(&mut buf);
        self.ip.write(&mut buf);
        Frame::new(Bytes::from(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_frame_parses_back() {
        let b = FrameBuilder::new(1400, 1, 2);
        let f = b.build_tagged(ChoirTag::new(4, 1, 77));
        assert_eq!(f.len(), 1400);
        let eth = EthernetHeader::parse(&f.data).unwrap();
        assert_eq!(eth.src, MacAddr::local(1));
        assert_eq!(eth.dst, MacAddr::local(2));
        let ip = Ipv4Header::parse(&f.data[14..]).unwrap();
        assert_eq!(ip.total_len, 1386);
        assert_eq!(ip.protocol, Ipv4Header::PROTO_UDP);
        assert!(Ipv4Header::checksum_ok(&f.data[14..]));
        let udp = UdpHeader::parse(&f.data[34..]).unwrap();
        assert_eq!(udp.len, 1366);
        assert_eq!(f.tag(), Some(ChoirTag::new(4, 1, 77)));
    }

    #[test]
    fn minimum_frame_size() {
        let b = FrameBuilder::new(UDP_FRAME_HEADER_LEN + TAG_LEN, 0, 1);
        let f = b.build_tagged(ChoirTag::new(0, 0, 0));
        assert_eq!(f.len(), 58);
        assert!(f.tag().is_some());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_panics() {
        FrameBuilder::new(40, 0, 1);
    }

    #[test]
    fn snap_frame_declares_full_length() {
        let b = FrameBuilder::new(1400, 1, 2);
        let f = b.build_tagged_snap(ChoirTag::new(2, 0, 10));
        assert_eq!(f.len(), 58);
        assert_eq!(f.orig_len(), 1400);
        assert_eq!(f.wire_len(), 1424);
        assert_eq!(f.tag(), Some(ChoirTag::new(2, 0, 10)));
        // Identity must match regardless of snap vs full build.
        let full = b.build_tagged(ChoirTag::new(2, 0, 10));
        assert_eq!(f.packet_id(), full.packet_id());
    }

    #[test]
    fn snap_of_minimal_frame_is_full() {
        let b = FrameBuilder::new(UDP_FRAME_HEADER_LEN + TAG_LEN, 1, 2);
        let f = b.build_tagged_snap(ChoirTag::new(0, 0, 0));
        assert_eq!(f.len(), f.orig_len());
    }

    #[test]
    fn plain_frame_has_no_tag() {
        let b = FrameBuilder::new(200, 0, 1).with_fill(0x00);
        let f = b.build_plain();
        assert_eq!(f.tag(), None);
        // Distinct plain frames share identity (content hash).
        assert_eq!(f.packet_id(), b.build_plain().packet_id());
    }

    #[test]
    fn sequence_distinguishes_frames() {
        let b = FrameBuilder::new(1400, 1, 2);
        let f1 = b.build_tagged(ChoirTag::new(0, 0, 1));
        let f2 = b.build_tagged(ChoirTag::new(0, 0, 2));
        assert_ne!(f1.packet_id(), f2.packet_id());
    }
}
