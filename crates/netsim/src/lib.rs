//! # choir-netsim
//!
//! A deterministic discrete-event network simulator standing in for the
//! hardware the paper's evaluation ran on: 100 Gbps ConnectX-5/6 and Intel
//! E810 NICs, Tofino2 / Cisco 5700 switches, FABRIC VMs with PTP, and a
//! noisy co-tenant. See DESIGN.md §2 for the substitution rationale.
//!
//! The simulator models, per component:
//!
//! - **Clocks** ([`clock`]): per-node TSC (constant frequency with a ppm
//!   error), a PTP-disciplined wall clock (bounded offset + slow drift —
//!   "synchronizes to within 10s of nanoseconds", paper §6.2), and NIC
//!   receive-timestamp models (E810-style realtime vs ConnectX-style
//!   sampled-clock conversion, paper §8.1).
//! - **NICs** ([`nic`]): transmit descriptor rings, doorbell-to-DMA
//!   latency ("packets are pulled by the NIC through a DMA at a future
//!   time", §2.3), DMA pull batching (back-to-back wire bursts), line-rate
//!   serialization, SR-IOV VF contention from a noisy co-tenant, and
//!   receive rings with overflow drops.
//! - **Switches** ([`switchdev`]): static port-forwarding (the paper's
//!   "simple ingress to egress port forwarding program"), per-egress
//!   queues, cut-through vs store-and-forward latency profiles.
//! - **The engine** ([`engine`]): a picosecond-resolution event queue
//!   hosting [`choir_dpdk::App`]s on nodes, delivering packets, wake-ups
//!   and control messages deterministically (same seed, same run —
//!   bit-for-bit).
//!
//! Everything stochastic draws from per-component seeded streams
//! ([`rng`]), so a simulation is itself a *consistent network* in the
//! paper's sense — a property the test suite asserts with κ = 1.

pub mod clock;
pub mod engine;
pub mod impair;
pub mod nic;
pub mod ptp;
pub mod rng;
pub mod shard;
pub mod switchdev;
pub mod time;
pub mod topology;
pub mod wheel;

pub use clock::{NodeClock, PtpModel, TimestampModel};
pub use engine::{Endpoint, NodeId, RemoteBurst, Sim, SimConfig, SimStats};
pub use wheel::{EventQueue, QueueKind, TimingWheel};
pub use impair::LinkImpairments;
pub use nic::{BatchDist, NicRxModel, NicTxModel, SharedVfModel, UtilProcess};
pub use ptp::{PtpClient, PtpGrandmaster};
pub use rng::{DetRng, Jitter};
pub use shard::{partition_round_robin, ShardedSim, SimBuilder, SyncStats};
pub use switchdev::{Switch, SwitchProfile};
pub use time::{MS, NS, PS_PER_SEC, US};
pub use topology::{TopologyBuilder, TopologyError};
