//! Property-based tests of the consistency metric suite (paper §3):
//! symmetry, normalization, invariances, and agreement with reference
//! implementations, over randomized trials.

// These properties are stated per kernel (U, O, L, I in isolation, with
// their full result structs), which only the deprecated free functions
// expose; `PairAnalyzer` equivalence is covered in metrics::pair tests.
#![allow(deprecated)]

use choir::metrics::iat::iat_of;
use choir::metrics::latency::latency_of;
use choir::metrics::matching::Matching;
use choir::metrics::ordering::ordering_of;
use choir::metrics::uniqueness::uniqueness_of;
use choir::metrics::{compare, Trial};
use proptest::prelude::*;

/// A random trial with *arbitrary* (possibly non-monotonic) timestamps —
/// what pathological hardware stamping could produce.
fn arb_unsorted_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    proptest::collection::vec((0u64..64, 0u64..1_000_000), 0..max_len).prop_map(|obs| {
        let mut t = Trial::new();
        for (s, ts) in obs {
            t.push_tagged(0, 0, s, ts);
        }
        t
    })
}

/// A random trial: a subset of sequence numbers 0..n (possibly shuffled,
/// possibly with duplicates) with non-decreasing timestamps.
fn arb_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    (
        proptest::collection::vec(0u64..64, 0..max_len),
        proptest::collection::vec(0u64..5_000, 0..max_len),
    )
        .prop_map(|(seqs, mut gaps)| {
            gaps.resize(seqs.len(), 100);
            let mut t = Trial::new();
            let mut now = 0u64;
            for (s, g) in seqs.iter().zip(gaps) {
                now += g;
                t.push_tagged(0, 0, *s, now);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_metrics_are_symmetric(a in arb_trial(40), b in arb_trial(40)) {
        prop_assert!((uniqueness_of(&a, &b) - uniqueness_of(&b, &a)).abs() < 1e-12);
        prop_assert!((ordering_of(&a, &b).o - ordering_of(&b, &a).o).abs() < 1e-9);
        prop_assert!((latency_of(&a, &b).l - latency_of(&b, &a).l).abs() < 1e-12);
        prop_assert!((iat_of(&a, &b).i - iat_of(&b, &a).i).abs() < 1e-12);
        let mab = compare(&a, &b);
        let mba = compare(&b, &a);
        prop_assert!((mab.kappa - mba.kappa).abs() < 1e-9);
    }

    #[test]
    fn all_metrics_are_normalized(a in arb_trial(40), b in arb_trial(40)) {
        let m = compare(&a, &b);
        prop_assert!((0.0..=1.0).contains(&m.u), "U = {}", m.u);
        prop_assert!((0.0..=1.0).contains(&m.o), "O = {}", m.o);
        prop_assert!((0.0..=1.0).contains(&m.l), "L = {}", m.l);
        prop_assert!((0.0..=1.0).contains(&m.i), "I = {}", m.i);
        prop_assert!((0.0..=1.0).contains(&m.kappa), "kappa = {}", m.kappa);
        prop_assert!(m.magnitude() <= 2.0 + 1e-12);
    }

    #[test]
    fn metrics_stay_normalized_even_for_disordered_stamps(
        a in arb_unsorted_trial(40),
        b in arb_unsorted_trial(40),
    ) {
        // Hardware stamp noise can hand the analyzer captures whose
        // timestamps are not monotone; every metric must stay in [0, 1]
        // regardless (no u64 wraparound, no denominator undershoot).
        let m = compare(&a, &b);
        prop_assert!((0.0..=1.0).contains(&m.u), "U = {}", m.u);
        prop_assert!((0.0..=1.0).contains(&m.o), "O = {}", m.o);
        prop_assert!((0.0..=1.0).contains(&m.l), "L = {}", m.l);
        prop_assert!((0.0..=1.0).contains(&m.i), "I = {}", m.i);
        prop_assert!((0.0..=1.0).contains(&m.kappa), "kappa = {}", m.kappa);
        // And rezeroing such a capture never explodes.
        let z = a.rezeroed();
        prop_assert!(z.minmax_span_ps() <= a.minmax_span_ps());
    }

    #[test]
    fn self_comparison_is_perfect(a in arb_trial(40)) {
        let m = compare(&a, &a.clone());
        prop_assert_eq!(m.u, 0.0);
        prop_assert_eq!(m.o, 0.0);
        prop_assert_eq!(m.l, 0.0);
        prop_assert_eq!(m.i, 0.0);
        prop_assert_eq!(m.kappa, 1.0);
    }

    #[test]
    fn uniqueness_ignores_order_and_time(
        seqs in proptest::collection::vec(0u64..64, 1..40),
        shuffle_seed in any::<u64>(),
    ) {
        let mut a = Trial::new();
        for (i, &s) in seqs.iter().enumerate() {
            a.push_tagged(0, 0, s, i as u64 * 100);
        }
        // Deterministic shuffle of the same multiset.
        let mut shuffled = seqs.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut b = Trial::new();
        for (i, &s) in shuffled.iter().enumerate() {
            b.push_tagged(0, 0, s, i as u64 * 777);
        }
        prop_assert!(uniqueness_of(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn uniqueness_counts_missing_packets_exactly(
        n in 2usize..50,
        k in 1usize..10,
    ) {
        let k = k.min(n - 1);
        let mut a = Trial::new();
        for i in 0..n as u64 {
            a.push_tagged(0, 0, i, i * 100);
        }
        let mut b = Trial::new();
        for i in 0..(n - k) as u64 {
            b.push_tagged(0, 0, i, i * 100);
        }
        let expected = 1.0 - (2.0 * (n - k) as f64) / ((n + n - k) as f64);
        prop_assert!((uniqueness_of(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn lis_ordering_matches_quadratic_reference(perm in proptest::collection::vec(0u32..1000, 1..60)) {
        // Build a permutation of distinct values by deduplicating.
        let mut vals: Vec<u32> = perm;
        vals.sort_unstable();
        vals.dedup();
        let n = vals.len();
        // Derive a deterministic permutation from the values themselves.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| vals[i].wrapping_mul(2654435761) ^ i as u32);

        let mut a = Trial::new();
        let mut b = Trial::new();
        for (i, &o) in order.iter().enumerate() {
            a.push_tagged(0, 0, i as u64, i as u64 * 100);
            b.push_tagged(0, 0, o as u64, i as u64 * 100);
        }
        let r = ordering_of(&a, &b);
        // Reference: O(n^2) LIS length over B's a-ranks.
        let seq: Vec<usize> = order.clone();
        let mut best = vec![1usize; n];
        let mut lis = 0;
        for i in 0..n {
            for j in 0..i {
                if seq[j] < seq[i] {
                    best[i] = best[i].max(best[j] + 1);
                }
            }
            lis = lis.max(best[i]);
        }
        prop_assert_eq!(r.lcs_len, lis);
        prop_assert_eq!(r.moved(), n - lis);
    }

    #[test]
    fn uniform_time_shift_changes_nothing(a in arb_trial(40), shift in 0u64..1_000_000) {
        // Latency and IAT are defined relative to each trial's own
        // timeline, so shifting a whole trial must not change any metric.
        let shifted: Trial = a
            .observations()
            .iter()
            .map(|o| (o.id, o.t_ps + shift))
            .collect();
        let m0 = compare(&a, &a.clone());
        let m1 = compare(&a, &shifted);
        prop_assert!((m0.l - m1.l).abs() < 1e-12);
        prop_assert!((m0.i - m1.i).abs() < 1e-12);
        prop_assert!((m0.kappa - m1.kappa).abs() < 1e-12);
    }

    #[test]
    fn matching_counts_are_consistent(a in arb_trial(40), b in arb_trial(40)) {
        let m = Matching::build(&a, &b);
        prop_assert_eq!(m.common() + m.missing_in_b(), m.a_len);
        prop_assert_eq!(m.common() + m.extra_in_b(), m.b_len);
        prop_assert!(m.common() <= m.a_len.min(m.b_len));
        // Pairs are ordered by B index and use valid indices.
        for w in m.pairs.windows(2) {
            prop_assert!(w[0].b_idx < w[1].b_idx);
        }
        for p in &m.pairs {
            prop_assert_eq!(a.id(p.a_idx), b.id(p.b_idx));
        }
    }

    #[test]
    fn kappa_decreases_with_added_drops(n in 10usize..60, drops in 1usize..5) {
        let drops = drops.min(n - 2);
        let mut a = Trial::new();
        for i in 0..n as u64 {
            a.push_tagged(0, 0, i, i * 1_000);
        }
        let mut fewer = Trial::new();
        for i in drops as u64..n as u64 {
            fewer.push_tagged(0, 0, i, i * 1_000);
        }
        let perfect = compare(&a, &a.clone());
        let dropped = compare(&a, &fewer);
        prop_assert!(dropped.kappa < perfect.kappa);
        prop_assert!(dropped.u > 0.0);
    }
}

#[test]
fn histogram_mass_is_conserved_under_merge() {
    use choir::metrics::DeltaHistogram;
    let mut h1 = DeltaHistogram::of((0..500).map(|i| (i as f64 - 250.0) * 3.3));
    let h2 = DeltaHistogram::of((0..300).map(|i| i as f64 * 11.1));
    h1.merge(&h2);
    assert_eq!(h1.total(), 800);
    let sum: u64 = h1.buckets().iter().map(|&(_, _, c, _)| c).sum();
    assert_eq!(sum, 800);
}
