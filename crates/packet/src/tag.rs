//! The Choir trailer tag.
//!
//! Paper §3: "we stamped each packet with a unique trailer and used that to
//! define a packet", and §6: "the packets were stamped with unique 16-byte
//! tags in the replayer, which included the replay node they were emitted
//! by". This module implements that 16-byte trailer:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = 0x43484F49  ("CHOI")
//! 4       2     replayer id (the node that emitted the packet)
//! 6       2     stream id
//! 8       8     sequence number
//! ```
//!
//! The tag occupies the *last* 16 bytes of the frame so it can be appended
//! to arbitrary traffic without understanding the payload.

use crate::ident::PacketId;

/// Magic marker identifying a Choir trailer ("CHOI" in ASCII).
pub const TAG_MAGIC: u32 = 0x4348_4F49;

/// Size of the serialized trailer in bytes.
pub const TAG_LEN: usize = 16;

/// A parsed 16-byte Choir trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChoirTag {
    /// Which replay node emitted the packet.
    pub replayer: u16,
    /// Which stream within that replayer.
    pub stream: u16,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
}

impl ChoirTag {
    /// Construct a tag.
    pub fn new(replayer: u16, stream: u16, seq: u64) -> Self {
        ChoirTag { replayer, stream, seq }
    }

    /// Serialize into exactly [`TAG_LEN`] bytes.
    pub fn to_bytes(&self) -> [u8; TAG_LEN] {
        let mut out = [0u8; TAG_LEN];
        out[0..4].copy_from_slice(&TAG_MAGIC.to_be_bytes());
        out[4..6].copy_from_slice(&self.replayer.to_be_bytes());
        out[6..8].copy_from_slice(&self.stream.to_be_bytes());
        out[8..16].copy_from_slice(&self.seq.to_be_bytes());
        out
    }

    /// Write the tag into the last [`TAG_LEN`] bytes of `frame`.
    ///
    /// # Panics
    /// Panics if `frame` is shorter than [`TAG_LEN`].
    pub fn stamp_trailer(&self, frame: &mut [u8]) {
        let n = frame.len();
        assert!(n >= TAG_LEN, "frame too short for a Choir trailer");
        frame[n - TAG_LEN..].copy_from_slice(&self.to_bytes());
    }

    /// Parse a tag from exactly [`TAG_LEN`] bytes.
    pub fn from_bytes(buf: &[u8; TAG_LEN]) -> Option<Self> {
        if u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) != TAG_MAGIC {
            return None;
        }
        Some(ChoirTag {
            replayer: u16::from_be_bytes([buf[4], buf[5]]),
            stream: u16::from_be_bytes([buf[6], buf[7]]),
            seq: u64::from_be_bytes([
                buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
            ]),
        })
    }

    /// Parse the trailer from the *end* of a frame, if present.
    pub fn parse_trailer(frame: &[u8]) -> Option<Self> {
        if frame.len() < TAG_LEN {
            return None;
        }
        let mut buf = [0u8; TAG_LEN];
        buf.copy_from_slice(&frame[frame.len() - TAG_LEN..]);
        Self::from_bytes(&buf)
    }

    /// The packet identity the consistency metrics use.
    pub fn packet_id(&self) -> PacketId {
        PacketId::from_tag(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = ChoirTag::new(3, 7, 0xDEAD_BEEF_0BAD_F00D);
        let b = t.to_bytes();
        assert_eq!(ChoirTag::from_bytes(&b), Some(t));
    }

    #[test]
    fn bad_magic_rejected() {
        let t = ChoirTag::new(1, 2, 3);
        let mut b = t.to_bytes();
        b[0] ^= 1;
        assert_eq!(ChoirTag::from_bytes(&b), None);
    }

    #[test]
    fn stamp_and_parse_trailer() {
        let mut frame = vec![0xAAu8; 1400];
        let t = ChoirTag::new(2, 0, 99);
        t.stamp_trailer(&mut frame);
        assert_eq!(ChoirTag::parse_trailer(&frame), Some(t));
        // Payload before the trailer untouched.
        assert!(frame[..1400 - TAG_LEN].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn trailer_too_short() {
        assert_eq!(ChoirTag::parse_trailer(&[0u8; 15]), None);
    }

    #[test]
    #[should_panic(expected = "frame too short")]
    fn stamp_too_short_panics() {
        ChoirTag::new(0, 0, 0).stamp_trailer(&mut [0u8; 8]);
    }

    #[test]
    fn distinct_fields_distinct_ids() {
        let a = ChoirTag::new(1, 0, 5).packet_id();
        let b = ChoirTag::new(2, 0, 5).packet_id();
        let c = ChoirTag::new(1, 0, 6).packet_id();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn tag_len_is_16() {
        assert_eq!(TAG_LEN, 16);
        assert_eq!(ChoirTag::new(0, 0, 0).to_bytes().len(), 16);
    }
}
