//! The sharded, cache-blocked all-pairs consistency engine.
//!
//! The paper reports κ per environment by comparing every run against
//! baseline A (Tables 1–2), but its §7 run lists show κ varying 0.65–0.82
//! *within one test* — understanding that spread needs the full N×N
//! upper-triangular κ matrix, not just the baseline column. Rebuilt
//! naively that is `N(N−1)/2` independent [`analyze_with`] calls, each of
//! which re-hashes both trials and re-derives their gap/span statistics
//! from scratch.
//!
//! This module scales that computation three ways:
//!
//! - **[`TrialIndex`]** — a flat per-trial arena built **once per trial**
//!   and shared immutably across every pair that trial participates in.
//!   One contiguous `u32` allocation holds the occurrence positions
//!   (grouped by identity), per-position occurrence ranks, group extents,
//!   and an open-addressed identity table; dense sidecar arrays hold the
//!   gap series, the timestamp series, and the identity keys. No
//!   `HashMap`, no per-identity `Vec`s, no pointer chasing on the pair
//!   hot path (see DESIGN.md §15 for the layout).
//! - **Arena kernels** — the matching/latency/IAT/ordering/histogram
//!   stages stream the arena with autovectorization-friendly inner loops
//!   (split-lane `u64` accumulation instead of `u128` adds, branchless
//!   histogram binning, bit-pattern percentile sorts). Every kernel is
//!   bit-identical to the uncached reference implementations — same
//!   arithmetic values in the same order.
//! - **A cache-blocked bounded worker pool** — at most `shards` worker
//!   threads steal *block-pairs* `(bi, bj)` of trials from a shared
//!   atomic cursor and sweep every cell inside the block, so each block
//!   of indexes is streamed once per block rather than once per pair,
//!   and an expensive pair (heavy reordering → long LIS stage) doesn't
//!   stall the pool behind a static partition.
//!
//! Invariants (enforced by unit tests here and the property tests in
//! `tests/allpairs_properties.rs` / `tests/arena_properties.rs`):
//!
//! 1. `all_pairs_sharded(trials, s)` is bit-identical to
//!    [`all_pairs_serial`] — the unchanged, uncached serial reference —
//!    for every shard count `s ≥ 1` and every block size.
//! 2. No more than `shards` workers are ever alive at once
//!    ([`EngineStats::peak_workers`] observes this).
//! 3. A [`TrialIndex`] is immutable after construction; pairs only read.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::obs;
use choir_packet::ident::PacketId;

use super::iat::IatResult;
use super::kappa::KappaConfig;
use super::latency::LatencyResult;
use super::matching::Matching;
use super::pair::{PairAnalyzer, PairScratch};
use super::report::{analyze_with, trial_label, StageTimings, TrialComparison};
use super::stats;
use super::trial::Trial;

/// Sentinel for an unoccupied identity-table slot. Safe because a group
/// id is an index into `ids`, and `ids.len() ≤ n ≤ u32::MAX` means a real
/// group id never equals `u32::MAX` (that trial would have failed
/// [`TrialIndex::build`] with [`IndexError::TrialTooLarge`]).
const EMPTY_SLOT: u32 = u32::MAX;

/// Typed failure from [`TrialIndex::build`] — the arena indexes positions
/// with `u32`, so a trial beyond `u32::MAX` packets cannot be indexed.
/// Propagated through the all-pairs engine instead of aborting a whole
/// matrix run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The trial at `trial` (its position in the run set) holds `len`
    /// packets, more than the `u32` position space can address.
    TrialTooLarge {
        /// Position of the offending trial in the run set (0 when indexed
        /// standalone).
        trial: usize,
        /// Its packet count.
        len: usize,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::TrialTooLarge { trial, len } => write!(
                f,
                "trial {trial} holds {len} packets, beyond the u32 index limit ({})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Per-trial precomputation cache: everything a pairwise comparison needs
/// from one side that does not depend on the other side, laid out as one
/// flat arena.
///
/// Built once per trial in O(n), then shared immutably (`&TrialIndex`)
/// across all N−1 pairs the trial participates in, instead of being
/// rebuilt inside every `Matching::build` / `iat` / `latency` call.
///
/// # Arena layout
///
/// The `u32` arena packs four regions back to back:
///
/// ```text
/// [ positions(n) | occ(n) | group_start(≤ n+1) | table(cap) ]
/// ```
///
/// - `positions` — observation indices grouped by identity, each group's
///   occurrences in arrival order;
/// - `occ` — the occurrence rank of each position within its identity;
/// - `group_start` — prefix offsets into `positions` (group `g` owns
///   `positions[group_start[g]..group_start[g+1]]`);
/// - `table` — an open-addressed (linear-probe, power-of-two, ≤ 0.5 load)
///   map from identity hash to group id.
///
/// Dense sidecars carry the identity keys (`ids`, indexed by group id),
/// the gap series, and the timestamp series, so the metric kernels
/// stream plain slices instead of chasing `HashMap` buckets.
#[derive(Debug)]
pub struct TrialIndex<'t> {
    trial: &'t Trial,
    arena: Box<[u32]>,
    /// Identity key per group id (probe confirmation).
    ids: Box<[PacketId]>,
    /// `gap_ps(i)` for every position (0 for the first packet).
    gaps_ps: Box<[i64]>,
    /// `time(i)` for every position (dense copy — `Observation` has u128
    /// alignment, so streaming times through it wastes half the cache
    /// line).
    times_ps: Box<[u64]>,
    n: usize,
    groups: usize,
    table_mask: usize,
    /// First-arrival offset `t_X0` (0 for an empty trial).
    start_ps: u64,
    /// Min/max timestamp span (the IAT/latency denominators).
    minmax_span_ps: u64,
    /// Largest raw timestamp — gates the latency kernel's i64 fast path.
    max_time_ps: u64,
}

/// SplitMix64-style finalizer over the folded 128-bit identity. The table
/// only needs good low-bit diffusion for its power-of-two mask.
#[inline]
fn hash_id(id: PacketId) -> u64 {
    let mut z = (id.0 as u64) ^ ((id.0 >> 64) as u64);
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 32;
    z
}

impl<'t> TrialIndex<'t> {
    /// Index a trial. O(n) time, O(n) memory, one arena allocation plus
    /// three dense sidecars.
    pub fn build(trial: &'t Trial) -> Result<Self, IndexError> {
        Self::build_at(trial, 0)
    }

    /// [`TrialIndex::build`] carrying the trial's position in its run set
    /// so [`IndexError`] can name the offending trial.
    pub(crate) fn build_at(trial: &'t Trial, at: usize) -> Result<Self, IndexError> {
        let n = trial.len();
        if n > u32::MAX as usize {
            return Err(IndexError::TrialTooLarge { trial: at, len: n });
        }
        let cap = (n * 2).max(4).next_power_of_two();
        let table_mask = cap - 1;
        let table_off = 3 * n + 1;
        let mut arena = vec![0u32; table_off + cap].into_boxed_slice();
        arena[table_off..].fill(EMPTY_SLOT);

        // Pass 1: assign group ids through the open-addressed table,
        // record each position's occurrence rank and group.
        let mut ids: Vec<PacketId> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut group_of: Vec<u32> = Vec::with_capacity(n);
        for (i, o) in trial.observations().iter().enumerate() {
            let mut slot = hash_id(o.id) as usize & table_mask;
            let g = loop {
                let v = arena[table_off + slot];
                if v == EMPTY_SLOT {
                    let g = ids.len() as u32;
                    arena[table_off + slot] = g;
                    ids.push(o.id);
                    counts.push(0);
                    break g;
                }
                if ids[v as usize] == o.id {
                    break v;
                }
                slot = (slot + 1) & table_mask;
            };
            arena[n + i] = counts[g as usize];
            counts[g as usize] += 1;
            group_of.push(g);
        }
        let groups = ids.len();

        // Pass 2: prefix-sum the group counts into group_start, reusing
        // `counts` as the scatter cursors.
        let mut acc = 0u32;
        for (g, c) in counts.iter_mut().enumerate() {
            arena[2 * n + g] = acc;
            let start = acc;
            acc += *c;
            *c = start;
        }
        arena[2 * n + groups] = acc;

        // Pass 3: scatter positions into their group extents.
        for (i, &g) in group_of.iter().enumerate() {
            let cur = counts[g as usize];
            arena[cur as usize] = i as u32;
            counts[g as usize] = cur + 1;
        }

        let mut gaps_ps = Vec::with_capacity(n);
        let mut times_ps = Vec::with_capacity(n);
        let mut max_time_ps = 0u64;
        for i in 0..n {
            gaps_ps.push(trial.gap_ps(i));
            let t = trial.time(i);
            max_time_ps = max_time_ps.max(t);
            times_ps.push(t);
        }

        Ok(TrialIndex {
            trial,
            arena,
            ids: ids.into_boxed_slice(),
            gaps_ps: gaps_ps.into_boxed_slice(),
            times_ps: times_ps.into_boxed_slice(),
            n,
            groups,
            table_mask,
            start_ps: trial.start_ps(),
            minmax_span_ps: trial.minmax_span_ps(),
            max_time_ps,
        })
    }

    /// Number of packets in the indexed trial.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the indexed trial holds no packets.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The indexed trial.
    pub fn trial(&self) -> &'t Trial {
        self.trial
    }

    /// Number of distinct identities.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Observation indices grouped by identity (see the layout doc).
    #[inline]
    pub(crate) fn positions(&self) -> &[u32] {
        &self.arena[..self.n]
    }

    /// Occurrence rank of each position within its identity.
    #[inline]
    pub(crate) fn occ(&self) -> &[u32] {
        &self.arena[self.n..2 * self.n]
    }

    /// Prefix offsets into [`TrialIndex::positions`], one per group plus
    /// the terminating total.
    #[inline]
    pub(crate) fn group_start(&self) -> &[u32] {
        &self.arena[2 * self.n..2 * self.n + self.groups + 1]
    }

    /// Group id of `id`, or `None` when the trial never saw it.
    #[inline]
    pub(crate) fn find(&self, id: PacketId) -> Option<u32> {
        let table = &self.arena[3 * self.n + 1..];
        let mut slot = hash_id(id) as usize & self.table_mask;
        loop {
            let v = table[slot];
            if v == EMPTY_SLOT {
                return None;
            }
            if self.ids[v as usize] == id {
                return Some(v);
            }
            slot = (slot + 1) & self.table_mask;
        }
    }

    /// The dense gap series.
    #[inline]
    pub(crate) fn gaps(&self) -> &[i64] {
        &self.gaps_ps
    }

    /// The dense timestamp series.
    #[inline]
    pub(crate) fn times(&self) -> &[u64] {
        &self.times_ps
    }

    /// First-arrival offset `t_X0`.
    #[inline]
    pub(crate) fn start_ps(&self) -> u64 {
        self.start_ps
    }

    /// Min/max timestamp span.
    #[inline]
    pub(crate) fn minmax_span_ps(&self) -> u64 {
        self.minmax_span_ps
    }

    /// Largest raw timestamp.
    #[inline]
    pub(crate) fn max_time_ps(&self) -> u64 {
        self.max_time_ps
    }
}

/// Occurrence-wise matching from two prebuilt indexes — bit-identical to
/// [`Matching::build`] on the underlying trials, but with no per-pair
/// hash-table construction: only B's arrival scan remains, each packet
/// resolved with one probe into A's (shared, immutable) identity table.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn matching_indexed(a: &TrialIndex<'_>, b: &TrialIndex<'_>) -> Matching {
    super::matching::matching_arena(a, b)
}

/// [`super::iat::iat_full`] on the arena's gap series — bit-identical.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn iat_full_indexed(a: &TrialIndex<'_>, b: &TrialIndex<'_>, m: &Matching) -> IatResult {
    let mut deltas_ns = Vec::new();
    let i = super::iat::iat_arena(a, b, m, &mut deltas_ns);
    IatResult { i, deltas_ns }
}

/// [`super::latency::latency_full`] on the arena's timestamp series —
/// bit-identical.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn latency_full_indexed(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
) -> LatencyResult {
    let mut deltas_ns = Vec::new();
    let l = super::latency::latency_arena(a, b, m, &mut deltas_ns);
    LatencyResult { l, deltas_ns }
}

/// Analyze one pair from prebuilt indexes, recording per-stage wall-clock
/// time. Metric output is bit-identical to [`analyze_with`] on the
/// underlying trials (only the `timings` field differs run to run).
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn analyze_indexed(
    label: impl Into<String>,
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    cfg: &KappaConfig,
) -> TrialComparison {
    PairAnalyzer::from_indexes(a, b).label(label).config(*cfg).analyze()
}

/// Summary statistics of the off-diagonal κ values — the "how unstable is
/// this environment run-to-run" number the per-baseline view hides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixSummary {
    /// Number of trials (N).
    pub trials: usize,
    /// Number of off-diagonal pairs (N(N−1)/2).
    pub pairs: usize,
    /// Smallest off-diagonal κ.
    pub kappa_min: f64,
    /// Median off-diagonal κ.
    pub kappa_median: f64,
    /// Largest off-diagonal κ.
    pub kappa_max: f64,
}

/// The full upper-triangular κ matrix over N trials.
///
/// Cell `(i, j)` with `i < j` holds the complete [`TrialComparison`] of
/// trial `j` against trial `i`; the diagonal is implicit (κ = 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KappaMatrix {
    /// Per-trial labels ("A", "B", … "Z", "AA", …).
    pub labels: Vec<String>,
    /// Upper-triangular cells in row-major `(i, j), i < j` order.
    pub cells: Vec<TrialComparison>,
}

impl KappaMatrix {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.labels.len()
    }

    /// Number of off-diagonal pairs.
    pub fn pairs(&self) -> usize {
        self.cells.len()
    }

    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.labels.len());
        let n = self.labels.len();
        i * n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The comparison for `(i, j)` (either order); `None` on the diagonal
    /// or out of range.
    pub fn get(&self, i: usize, j: usize) -> Option<&TrialComparison> {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if i == j || j >= self.labels.len() {
            return None;
        }
        self.cells.get(self.offset(i, j))
    }

    /// κ of `(i, j)`; 1.0 on the diagonal.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn kappa(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.labels.len() && j < self.labels.len(), "index out of range");
        if i == j {
            1.0
        } else {
            self.get(i, j).expect("in-range off-diagonal cell").metrics.kappa
        }
    }

    /// The baseline row (everything vs trial 0), relabelled per run — a
    /// drop-in for the paper's B-vs-A, C-vs-A, … comparisons.
    pub fn baseline_row(&self) -> Vec<TrialComparison> {
        (1..self.trials())
            .map(|j| {
                let mut c = self.get(0, j).expect("baseline cell").clone();
                c.label = self.labels[j].clone();
                c
            })
            .collect()
    }

    /// Min/median/max of the off-diagonal κ values; `None` for fewer than
    /// two trials.
    pub fn summary(&self) -> Option<MatrixSummary> {
        if self.cells.is_empty() {
            return None;
        }
        let mut kappas: Vec<f64> = self.cells.iter().map(|c| c.metrics.kappa).collect();
        // κ = 1 − x can never be −0.0 and the engine never emits NaN, so
        // total_cmp orders exactly like partial_cmp here — without the
        // panic path a hand-deserialized NaN cell used to hit.
        kappas.sort_by(f64::total_cmp);
        Some(MatrixSummary {
            trials: self.trials(),
            pairs: self.pairs(),
            kappa_min: kappas[0],
            kappa_median: stats::percentile_sorted(&kappas, 50.0),
            kappa_max: *kappas.last().expect("non-empty"),
        })
    }

    /// Sum of every cell's per-stage wall-clock timings.
    pub fn total_timings(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for c in &self.cells {
            t.add(&c.timings);
        }
        t
    }
}

/// Diagnostics from one sharded run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Worker threads actually used (min of `shards` and the pair count).
    pub shards_used: usize,
    /// Peak number of workers observed alive at once (≤ `shards`).
    pub peak_workers: usize,
    /// Wall-clock spent building the per-trial indexes, ns.
    pub index_build_ns: u64,
    /// Wall-clock of the pair computation (pool start to last join), ns.
    pub pair_wall_ns: u64,
    /// Trials per cache block actually used (after clamping).
    pub block_size: usize,
}

/// Serial reference: the full matrix via the original uncached
/// [`analyze_with`] path, one pair at a time. This is the ground truth the
/// sharded engine must reproduce bit-for-bit.
pub fn all_pairs_serial(trials: &[Trial]) -> KappaMatrix {
    all_pairs_serial_with(trials, &KappaConfig::paper())
}

/// [`all_pairs_serial`] with a custom κ configuration.
pub fn all_pairs_serial_with(trials: &[Trial], cfg: &KappaConfig) -> KappaMatrix {
    let labels: Vec<String> = (0..trials.len()).map(trial_label).collect();
    let mut cells = Vec::with_capacity(pair_count(trials.len()));
    for i in 0..trials.len() {
        for j in i + 1..trials.len() {
            let label = format!("{}-{}", labels[i], labels[j]);
            cells.push(analyze_with(label, &trials[i], &trials[j], cfg));
        }
    }
    KappaMatrix { labels, cells }
}

/// Sharded all-pairs analysis with the paper's κ configuration and the
/// default cache-block size.
pub fn all_pairs_sharded(trials: &[Trial], shards: usize) -> Result<KappaMatrix, IndexError> {
    Ok(all_pairs_sharded_with(trials, shards, &KappaConfig::paper())?.0)
}

/// Sharded all-pairs analysis: build every [`TrialIndex`] once, then let a
/// bounded pool of at most `shards` workers steal cache blocks of pairs
/// from a shared cursor. Bit-identical to [`all_pairs_serial_with`] for
/// any `shards ≥ 1`.
pub fn all_pairs_sharded_with(
    trials: &[Trial],
    shards: usize,
    cfg: &KappaConfig,
) -> Result<(KappaMatrix, EngineStats), IndexError> {
    all_pairs_blocked_with(trials, shards, default_block_size(trials), cfg)
}

/// Cache-block size heuristic: fit two blocks' worth of index data
/// (~48 B/packet: positions + occ + group extents + gaps + times + ids)
/// in a ~2 MiB hot-set budget, clamped to `[2, 32]` trials per block.
pub fn default_block_size(trials: &[Trial]) -> usize {
    let per = trials.iter().map(Trial::len).max().unwrap_or(0);
    const BUDGET: usize = 2 << 20;
    (BUDGET / (per * 48).max(1)).clamp(2, 32)
}

/// The engine proper, with an explicit cache-block size (trials per
/// block): the upper triangle is covered by block-pairs `(bi, bj)`,
/// `bi ≤ bj`, each swept cell-by-cell by one worker so the two blocks'
/// indexes stay hot while every cross-pair between them is scored.
///
/// Block size only changes the traversal schedule, never the values:
/// cells land at their row-major offsets and each cell's arithmetic is
/// independent, so the output is bit-identical to [`all_pairs_serial_with`]
/// at every `block ≥ 1`.
pub fn all_pairs_blocked_with(
    trials: &[Trial],
    shards: usize,
    block: usize,
    cfg: &KappaConfig,
) -> Result<(KappaMatrix, EngineStats), IndexError> {
    let n = trials.len();
    let labels: Vec<String> = (0..n).map(trial_label).collect();
    let total_pairs = pair_count(n);

    let _span = obs::span("allpairs");
    let t_index = Instant::now();
    let indexes: Vec<TrialIndex<'_>> = {
        let _s = obs::span("index_build");
        trials
            .iter()
            .enumerate()
            .map(|(i, t)| TrialIndex::build_at(t, i))
            .collect::<Result<_, _>>()?
    };
    let index_build_ns = t_index.elapsed().as_nanos() as u64;

    let workers = shards.max(1).min(total_pairs.max(1));
    // Keep at least ~workers block-pairs so blocking never serializes the
    // pool: nb blocks yield nb(nb+1)/2 block-pairs ≥ workers when
    // nb ≥ ceil(sqrt(2·workers)).
    let target_nb = ((2 * workers) as f64).sqrt().ceil() as usize;
    let block = block.max(1).min(n.div_ceil(target_nb.max(1)).max(1));
    let nb = n.div_ceil(block);
    let block_pairs: Vec<(u32, u32)> = (0..nb as u32)
        .flat_map(|bi| (bi..nb as u32).map(move |bj| (bi, bj)))
        .collect();

    let cell_offset = |i: usize, j: usize| i * n - i * (i + 1) / 2 + (j - i - 1);
    let block_range = |b: usize| (b * block, ((b + 1) * block).min(n));
    let analyze_cell = |i: usize, j: usize, scratch: &mut PairScratch| {
        PairAnalyzer::from_indexes(&indexes[i], &indexes[j])
            .label(format!("{}-{}", labels[i], labels[j]))
            .config(*cfg)
            .analyze_with_scratch(scratch)
    };

    let t_pairs = Instant::now();
    let mut stats = EngineStats {
        shards_used: workers,
        peak_workers: usize::from(total_pairs > 0),
        index_build_ns,
        pair_wall_ns: 0,
        block_size: block,
    };
    let cells: Vec<TrialComparison> = if workers <= 1 {
        let _s = obs::span("pairs");
        let mut scratch = PairScratch::new();
        let mut slots: Vec<Option<TrialComparison>> = Vec::new();
        slots.resize_with(total_pairs, || None);
        for &(bi, bj) in &block_pairs {
            let (i_lo, i_hi) = block_range(bi as usize);
            let (j_lo, j_hi) = block_range(bj as usize);
            for i in i_lo..i_hi {
                for j in j_lo.max(i + 1)..j_hi {
                    slots[cell_offset(i, j)] = Some(analyze_cell(i, j, &mut scratch));
                }
            }
        }
        obs::counter_add("allpairs.pairs_analyzed", total_pairs as u64);
        slots
            .into_iter()
            .map(|c| c.expect("every pair computed"))
            .collect()
    } else {
        let _s = obs::span("pairs");
        let cursor = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut slots: Vec<Option<TrialComparison>> = Vec::new();
        slots.resize_with(total_pairs, || None);
        let slots = Mutex::new(slots);
        std::thread::scope(|s| {
            for widx in 0..workers {
                let (cursor, live, peak, slots) = (&cursor, &live, &peak, &slots);
                let (block_pairs, analyze_cell) = (&block_pairs, &analyze_cell);
                let (block_range, cell_offset) = (&block_range, &cell_offset);
                s.spawn(move || {
                    let alive = live.fetch_add(1, AtomicOrdering::SeqCst) + 1;
                    peak.fetch_max(alive, AtomicOrdering::SeqCst);
                    let mut scratch = PairScratch::new();
                    // Cells are staged per block and published under one
                    // lock acquisition, so contention scales with blocks
                    // stolen, not cells computed.
                    let mut batch: Vec<(usize, TrialComparison)> = Vec::new();
                    let mut stolen_cells = 0u64;
                    loop {
                        let k = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        if k >= block_pairs.len() {
                            break;
                        }
                        obs::event("allpairs.steal", widx as u64, k as u64);
                        let (bi, bj) = block_pairs[k];
                        let (i_lo, i_hi) = block_range(bi as usize);
                        let (j_lo, j_hi) = block_range(bj as usize);
                        batch.clear();
                        for i in i_lo..i_hi {
                            for j in j_lo.max(i + 1)..j_hi {
                                batch.push((cell_offset(i, j), analyze_cell(i, j, &mut scratch)));
                            }
                        }
                        stolen_cells += batch.len() as u64;
                        let mut guard = slots.lock().expect("cell slots");
                        for (off, cell) in batch.drain(..) {
                            guard[off] = Some(cell);
                        }
                    }
                    if stolen_cells > 0 {
                        obs::counter_add("allpairs.pairs_analyzed", stolen_cells);
                        obs::gauge_max("allpairs.worker_pairs_peak", stolen_cells);
                    }
                    live.fetch_sub(1, AtomicOrdering::SeqCst);
                });
            }
        });
        stats.peak_workers = peak.load(AtomicOrdering::SeqCst);
        slots
            .into_inner()
            .expect("cell slots")
            .into_iter()
            .map(|c| c.expect("every pair computed"))
            .collect()
    };
    stats.pair_wall_ns = t_pairs.elapsed().as_nanos() as u64;

    let matrix = KappaMatrix { labels, cells };
    if obs::is_enabled() {
        obs::gauge_max("allpairs.shards_used", stats.shards_used as u64);
        obs::gauge_max("allpairs.peak_workers", stats.peak_workers as u64);
        obs::counter_add("allpairs.index_build_ns", stats.index_build_ns);
        obs::counter_add("allpairs.pair_wall_ns", stats.pair_wall_ns);
        // Mirror the per-cell StageTimings so the span tree and the
        // existing per-stage accounting tell one coherent story.
        let t = matrix.total_timings();
        obs::counter_add("allpairs.stage.match_ns", t.match_ns);
        obs::counter_add("allpairs.stage.order_ns", t.order_ns);
        obs::counter_add("allpairs.stage.latency_ns", t.latency_ns);
        obs::counter_add("allpairs.stage.iat_ns", t.iat_ns);
        obs::counter_add("allpairs.stage.histogram_ns", t.histogram_ns);
    }
    Ok((matrix, stats))
}

/// Number of off-diagonal pairs for `n` trials (0 for an empty set).
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;
    use crate::metrics::iat::iat_full;
    use crate::metrics::latency::latency_full;
    use crate::metrics::report::analyze;

    fn cbr_trial(n: u64, gap: u64, jitter: impl Fn(u64) -> i64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            let base = (i * gap) as i64;
            t.push_tagged(0, 0, i, (base + jitter(i)).max(0) as u64);
        }
        t
    }

    fn jittered_set(n_trials: u64, n_packets: u64) -> Vec<Trial> {
        (0..n_trials)
            .map(|k| cbr_trial(n_packets, 1000, move |i| ((i % (k + 2)) * 31) as i64))
            .collect()
    }

    fn assert_cells_equal(x: &TrialComparison, y: &TrialComparison) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.metrics.kappa.to_bits(), y.metrics.kappa.to_bits());
        assert_eq!(x.metrics.u.to_bits(), y.metrics.u.to_bits());
        assert_eq!(x.metrics.o.to_bits(), y.metrics.o.to_bits());
        assert_eq!(x.metrics.l.to_bits(), y.metrics.l.to_bits());
        assert_eq!(x.metrics.i.to_bits(), y.metrics.i.to_bits());
        assert_eq!(
            (x.a_len, x.b_len, x.common, x.missing, x.extra, x.moved),
            (y.a_len, y.b_len, y.common, y.missing, y.extra, y.moved)
        );
        assert_eq!(x.iat_within_10ns.to_bits(), y.iat_within_10ns.to_bits());
        assert_eq!(x.iat_abs_percentiles_ns, y.iat_abs_percentiles_ns);
        assert_eq!(x.latency_abs_percentiles_ns, y.latency_abs_percentiles_ns);
        assert_eq!(x.edit_stats, y.edit_stats);
        assert_eq!(x.iat_hist.total(), y.iat_hist.total());
        assert_eq!(x.latency_hist.total(), y.latency_hist.total());
    }

    #[test]
    fn indexed_matching_matches_reference() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        // Duplicates, drops, extras, reordering all at once.
        for (s, t) in [(5u64, 0u64), (5, 100), (6, 200), (7, 300)] {
            a.push_tagged(0, 0, s, t);
        }
        for (s, t) in [(6u64, 0u64), (5, 100), (9, 150), (5, 200)] {
            b.push_tagged(0, 0, s, t);
        }
        let ia = TrialIndex::build(&a).unwrap();
        let ib = TrialIndex::build(&b).unwrap();
        let m = matching_indexed(&ia, &ib);
        let reference = Matching::build(&a, &b);
        assert_eq!(m.pairs, reference.pairs);
        assert_eq!((m.a_len, m.b_len), (reference.a_len, reference.b_len));
    }

    #[test]
    fn indexed_metrics_bit_identical_to_uncached() {
        let trials = jittered_set(4, 300);
        for i in 0..trials.len() {
            for j in 0..trials.len() {
                let (a, b) = (&trials[i], &trials[j]);
                let (ia, ib) = (
                    TrialIndex::build(a).unwrap(),
                    TrialIndex::build(b).unwrap(),
                );
                let m = Matching::build(a, b);
                let mi = matching_indexed(&ia, &ib);
                assert_eq!(m.pairs, mi.pairs);
                let lat = latency_full(a, b, &m);
                let lat_i = latency_full_indexed(&ia, &ib, &mi);
                assert_eq!(lat.l.to_bits(), lat_i.l.to_bits());
                assert_eq!(lat.deltas_ns, lat_i.deltas_ns);
                let ir = iat_full(a, b, &m);
                let ir_i = iat_full_indexed(&ia, &ib, &mi);
                assert_eq!(ir.i.to_bits(), ir_i.i.to_bits());
                assert_eq!(ir.deltas_ns, ir_i.deltas_ns);
            }
        }
    }

    #[test]
    fn arena_groups_and_extents_are_consistent() {
        let mut a = Trial::new();
        for s in [3u64, 1, 3, 2, 3, 1] {
            a.push_tagged(0, 0, s, 0);
        }
        let ia = TrialIndex::build(&a).unwrap();
        assert_eq!(ia.len(), 6);
        assert_eq!(ia.groups(), 3);
        let starts = ia.group_start();
        assert_eq!(starts.first(), Some(&0));
        assert_eq!(*starts.last().unwrap() as usize, ia.len());
        // Every position appears exactly once across the group extents,
        // each group's occurrences in arrival order with matching ranks.
        let mut seen = vec![false; ia.len()];
        for g in 0..ia.groups() {
            let (s, e) = (starts[g] as usize, starts[g + 1] as usize);
            let ext = &ia.positions()[s..e];
            assert!(ext.windows(2).all(|w| w[0] < w[1]));
            for (k, &p) in ext.iter().enumerate() {
                assert!(!std::mem::replace(&mut seen[p as usize], true));
                assert_eq!(ia.occ()[p as usize] as usize, k);
                assert_eq!(ia.find(a.id(p as usize)), Some(g as u32));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn index_error_names_the_trial() {
        let e = IndexError::TrialTooLarge { trial: 7, len: 5_000_000_000 };
        let msg = e.to_string();
        assert!(msg.contains("trial 7"), "{msg}");
        assert!(msg.contains("5000000000"), "{msg}");
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.downcast_ref::<IndexError>().is_some());
    }

    #[test]
    fn sharded_matrix_bit_identical_to_serial_reference() {
        let trials = jittered_set(5, 400);
        let serial = all_pairs_serial(&trials);
        for shards in [1usize, 2, 8] {
            let (sharded, stats) =
                all_pairs_sharded_with(&trials, shards, &KappaConfig::paper()).unwrap();
            assert_eq!(sharded.labels, serial.labels);
            assert_eq!(sharded.cells.len(), serial.cells.len());
            for (x, y) in sharded.cells.iter().zip(&serial.cells) {
                assert_cells_equal(x, y);
            }
            assert!(stats.peak_workers <= shards, "pool exceeded shard bound");
        }
    }

    #[test]
    fn blocked_matrix_bit_identical_at_every_block_size() {
        let trials = jittered_set(7, 150);
        let serial = all_pairs_serial(&trials);
        for block in [1usize, 2, 3, 5, 7, 64] {
            for shards in [1usize, 3] {
                let (m, stats) =
                    all_pairs_blocked_with(&trials, shards, block, &KappaConfig::paper())
                        .unwrap();
                assert_eq!(m.labels, serial.labels);
                assert_eq!(m.cells.len(), serial.cells.len());
                for (x, y) in m.cells.iter().zip(&serial.cells) {
                    assert_cells_equal(x, y);
                }
                assert!(stats.block_size >= 1);
            }
        }
    }

    #[test]
    fn bounded_pool_never_exceeds_shards() {
        let trials = jittered_set(6, 50); // 15 pairs
        for shards in [1usize, 2, 3, 4] {
            let (_, stats) =
                all_pairs_sharded_with(&trials, shards, &KappaConfig::paper()).unwrap();
            assert!(
                stats.peak_workers <= shards,
                "shards {shards}: peak {}",
                stats.peak_workers
            );
            assert_eq!(stats.shards_used, shards.min(15));
        }
    }

    #[test]
    fn matrix_indexing_and_summary() {
        let trials = jittered_set(4, 200);
        let m = all_pairs_sharded(&trials, 2).unwrap();
        assert_eq!(m.trials(), 4);
        assert_eq!(m.pairs(), 6);
        assert_eq!(m.labels, ["A", "B", "C", "D"]);
        // Symmetric accessor, implicit diagonal.
        assert_eq!(m.kappa(0, 0), 1.0);
        assert_eq!(m.kappa(1, 3).to_bits(), m.kappa(3, 1).to_bits());
        assert!(m.get(2, 2).is_none());
        // Every off-diagonal cell is reachable and labelled i-j.
        assert_eq!(m.get(0, 1).unwrap().label, "A-B");
        assert_eq!(m.get(2, 3).unwrap().label, "C-D");
        let s = m.summary().unwrap();
        assert_eq!((s.trials, s.pairs), (4, 6));
        assert!(s.kappa_min <= s.kappa_median && s.kappa_median <= s.kappa_max);
        let all: Vec<f64> = m.cells.iter().map(|c| c.metrics.kappa).collect();
        assert_eq!(s.kappa_min, all.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(s.kappa_max, all.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn baseline_row_matches_legacy_analysis() {
        let trials = jittered_set(4, 300);
        let m = all_pairs_sharded(&trials, 3).unwrap();
        let row = m.baseline_row();
        assert_eq!(row.len(), 3);
        for (j, c) in row.iter().enumerate() {
            let legacy = analyze(c.label.clone(), &trials[0], &trials[j + 1]);
            assert_cells_equal(c, &legacy);
        }
        assert_eq!(row[0].label, "B");
        assert_eq!(row[2].label, "D");
    }

    #[test]
    fn degenerate_matrices() {
        // Zero or one trial: no pairs, no summary, no panic.
        let none = all_pairs_sharded(&[], 4).unwrap();
        assert_eq!(none.pairs(), 0);
        assert!(none.summary().is_none());
        let one = all_pairs_sharded(&[Trial::new()], 4).unwrap();
        assert_eq!(one.pairs(), 0);
        assert!(one.summary().is_none());
        // Empty trials still compare (κ = 1: two empty captures agree).
        let two = all_pairs_sharded(&[Trial::new(), Trial::new()], 4).unwrap();
        assert_eq!(two.pairs(), 1);
        assert_eq!(two.kappa(0, 1), 1.0);
    }

    #[test]
    fn stage_timings_populated_and_summable() {
        let trials = jittered_set(3, 2_000);
        let m = all_pairs_sharded(&trials, 2).unwrap();
        let t = m.total_timings();
        // Wall-clock is noisy, but the match stage walks 2000 packets per
        // pair — it cannot be literally zero across all three pairs.
        assert!(t.match_ns > 0, "{t:?}");
        assert_eq!(
            t.total_ns(),
            t.match_ns + t.order_ns + t.latency_ns + t.iat_ns + t.histogram_ns
        );
    }

    #[test]
    fn matrix_serializes() {
        let trials = jittered_set(3, 50);
        let m = all_pairs_sharded(&trials, 2).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: KappaMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.labels, m.labels);
        assert_eq!(back.pairs(), m.pairs());
        assert_eq!(
            back.kappa(0, 2).to_bits(),
            m.kappa(0, 2).to_bits()
        );
    }
}
