//! End-to-end: a slice provisioned through the FABRIC model materializes
//! into a working simulated topology — packets flow between nodes over
//! the L2 bridge, with VM/NIC characteristics applied.

use choir_dpdk::{App, Burst, Dataplane};
use choir_fabric::{NicKind, NodeSpec, Site, Slice};
use choir_netsim::time::MS;
use choir_netsim::{Sim, SimConfig};
use choir_packet::{ChoirTag, FrameBuilder};

struct Sender {
    builder: FrameBuilder,
    count: u64,
    sent: u64,
    start: Option<u64>,
}

impl App for Sender {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        while self.sent < self.count {
            let now = dp.tsc();
            let start = *self.start.get_or_insert(now);
            let due = start + self.sent * 285;
            if now < due {
                dp.request_wake_at_tsc(due);
                return;
            }
            let m = dp
                .mempool()
                .alloc(self.builder.build_tagged_snap(ChoirTag::new(0, 0, self.sent)))
                .unwrap();
            let mut b = Burst::new();
            b.push(m).unwrap();
            dp.tx_burst(0, &mut b);
            self.sent += 1;
        }
    }
}

struct Sink {
    got: Vec<u64>,
    buf: Burst,
}

impl App for Sink {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut b = std::mem::take(&mut self.buf);
            let n = dp.rx_burst(0, &mut b);
            for m in b.drain() {
                self.got.push(m.frame.tag().unwrap().seq);
            }
            self.buf = b;
            if n == 0 {
                break;
            }
        }
    }
}

fn run_slice(nic_a: NicKind, nic_b: NicKind, count: u64) -> Vec<u64> {
    let mut site = Site::large("TEST");
    let mut slice = Slice::new("materialize-test");
    let a = slice.add_node(NodeSpec::vm("sender", 4, 8).with_nic(nic_a));
    let b = slice.add_node(NodeSpec::vm("sink", 4, 8).with_nic(nic_b));
    let net = slice.add_l2bridge("net1");
    slice.attach(a, 0, net).unwrap();
    slice.attach(b, 0, net).unwrap();
    let mut prov = slice.submit(&mut site).unwrap();

    let mut sim = Sim::new(SimConfig::default());
    let sender = prov.build_node(
        &mut sim,
        a,
        Sender {
            builder: FrameBuilder::new(1400, 1, 2),
            count,
            sent: 0,
            start: None,
        },
        0xFAB,
    );
    let sink = prov.build_node(
        &mut sim,
        b,
        Sink {
            got: Vec::new(),
            buf: Burst::new(),
        },
        0xFAB,
    );
    let switches = prov.wire(&mut sim);
    assert_eq!(switches.len(), 1);
    // The bridge forwards sender -> sink (the one-direction map the
    // experiment needs, like the paper's port-forwarding program).
    sim.switch_map(switches[0], 0, 1);

    assert_eq!(prov.node_id(a), Some(sender));
    assert_eq!(prov.node_id(b), Some(sink));

    sim.wake_app(sender, MS);
    sim.run_to_idle();
    sim.with_app::<Sink, _>(sink, |s| s.got.clone())
}

#[test]
fn smart_nic_slice_carries_traffic() {
    let got = run_slice(NicKind::SmartConnectX6, NicKind::SmartConnectX6, 500);
    assert_eq!(got.len(), 500, "no loss on a clean slice");
    // FIFO on a single path.
    assert!(got.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn shared_vf_slice_carries_traffic() {
    let got = run_slice(NicKind::SharedVf, NicKind::SharedVf, 500);
    assert_eq!(got.len(), 500);
}

#[test]
fn mixed_slice_is_deterministic() {
    let a = run_slice(NicKind::SmartConnectX5, NicKind::SharedVf, 200);
    let b = run_slice(NicKind::SmartConnectX5, NicKind::SharedVf, 200);
    assert_eq!(a, b);
}
