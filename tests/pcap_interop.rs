//! pcap interoperability: captures written by the recorder round-trip
//! through the standard nanosecond pcap container back into identical
//! trials, including snap-length (truncated) frames, under randomized
//! inputs — and foreign captures (microsecond resolution, either byte
//! order) parse identically to their native twins.

use bytes::Bytes;
use choir::capture::{Recorder, RecorderConfig};
use choir::dpdk::{App, Burst, Dataplane, Mempool, PortId, PortStats};
use choir::metrics::Trial;
use choir::packet::pcap::{
    parse_pcap, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_ETHERNET, PCAP_NS_MAGIC, PCAP_US_MAGIC,
};
use choir::packet::{ChoirTag, Frame, FrameBuilder};
use proptest::prelude::*;

/// Build a pcap byte stream the way a foreign capture tool would: with
/// the given magic (ns or µs resolution) and byte order. Every header
/// and record field honours `big_endian`.
fn foreign_pcap(magic: u32, big_endian: bool, records: &[(u32, u32, Vec<u8>)]) -> Vec<u8> {
    let w32 = |out: &mut Vec<u8>, v: u32| {
        out.extend_from_slice(&if big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        })
    };
    let w16 = |out: &mut Vec<u8>, v: u16| {
        out.extend_from_slice(&if big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        })
    };
    let mut out = Vec::new();
    w32(&mut out, magic);
    w16(&mut out, 2);
    w16(&mut out, 4);
    w32(&mut out, 0); // thiszone
    w32(&mut out, 0); // sigfigs
    w32(&mut out, DEFAULT_SNAPLEN);
    w32(&mut out, LINKTYPE_ETHERNET);
    for (sec, subsec, payload) in records {
        w32(&mut out, *sec);
        w32(&mut out, *subsec);
        w32(&mut out, payload.len() as u32);
        w32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_frames_roundtrip_through_pcap(
        recs in proptest::collection::vec((0u64..u32::MAX as u64, 16usize..200), 0..40)
    ) {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let mut frames = Vec::new();
        let mut ts = 0u64;
        for (i, (dt, len)) in recs.iter().enumerate() {
            ts += dt;
            let mut data = vec![(i % 251) as u8; *len];
            ChoirTag::new(3, 1, i as u64).stamp_trailer(&mut data);
            let f = Frame::new(Bytes::from(data));
            w.write_record(ts, &f).unwrap();
            frames.push((ts, f));
        }
        let buf = w.finish().unwrap();
        let parsed = parse_pcap(&buf).unwrap();
        prop_assert_eq!(parsed.len(), frames.len());
        for (rec, (ts, f)) in parsed.iter().zip(&frames) {
            prop_assert_eq!(rec.ts_ns, *ts);
            prop_assert_eq!(&rec.frame.data, &f.data);
            prop_assert_eq!(rec.frame.packet_id(), f.packet_id());
        }
    }

    #[test]
    fn foreign_endianness_and_resolution_parse_identically(
        recs in proptest::collection::vec(
            (0u32..100_000, 0u32..999_999, proptest::collection::vec(any::<u8>(), 16..120)),
            0..20
        )
    ) {
        // The same records through all four container variants: the two
        // byte orders must parse bit-identically at each resolution, and
        // the µs variant must land on exactly 1000x the subsecond field.
        for (magic, subsec_to_ns) in [(PCAP_NS_MAGIC, 1u64), (PCAP_US_MAGIC, 1_000u64)] {
            let native = parse_pcap(&foreign_pcap(magic, false, &recs)).unwrap();
            let swapped = parse_pcap(&foreign_pcap(magic, true, &recs)).unwrap();
            prop_assert_eq!(&native, &swapped,
                "byte-swapped capture must parse identically to its native twin");
            prop_assert_eq!(native.len(), recs.len());
            for (rec, (sec, subsec, payload)) in native.iter().zip(&recs) {
                prop_assert_eq!(
                    rec.ts_ns,
                    *sec as u64 * 1_000_000_000 + *subsec as u64 * subsec_to_ns
                );
                prop_assert_eq!(&rec.frame.data[..], &payload[..]);
            }
        }
    }

    #[test]
    fn snap_frames_preserve_identity_and_length(seqs in proptest::collection::vec(0u64..10_000, 1..30)) {
        let b = FrameBuilder::new(1400, 1, 2);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (i, &s) in seqs.iter().enumerate() {
            let f = b.build_tagged_snap(ChoirTag::new(0, 0, s));
            w.write_record(i as u64 * 285, &f).unwrap();
        }
        let buf = w.finish().unwrap();
        let parsed = parse_pcap(&buf).unwrap();
        for (rec, &s) in parsed.iter().zip(&seqs) {
            prop_assert_eq!(rec.frame.orig_len(), 1400);
            prop_assert_eq!(rec.frame.tag().unwrap().seq, s);
            // Identity equals the full-size build of the same tag.
            let full = b.build_tagged(ChoirTag::new(0, 0, s));
            prop_assert_eq!(rec.frame.packet_id(), full.packet_id());
        }
    }
}

/// A rx-only dataplane feeding pre-queued mbufs to the recorder.
struct Feed {
    pool: Mempool,
    queued: std::collections::VecDeque<choir::dpdk::Mbuf>,
}
impl Dataplane for Feed {
    fn num_ports(&self) -> usize {
        1
    }
    fn mempool(&self) -> &Mempool {
        &self.pool
    }
    fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
        out.clear();
        let mut n = 0;
        while n < choir::dpdk::MAX_BURST {
            match self.queued.pop_front() {
                Some(m) => {
                    out.push(m).unwrap();
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
    fn tx_burst(&mut self, _p: PortId, _b: &mut Burst) -> usize {
        0
    }
    fn tsc(&self) -> u64 {
        0
    }
    fn tsc_hz(&self) -> u64 {
        1_000_000_000
    }
    fn wall_ns(&self) -> u64 {
        0
    }
    fn request_wake_at_tsc(&mut self, _t: u64) {}
    fn stats(&self, _p: PortId) -> PortStats {
        PortStats::default()
    }
}

#[test]
fn recorder_capture_to_pcap_to_trial_is_lossless() {
    // Drive the recorder app, export pcap, re-import as a Trial; the
    // metric comparison between original and re-imported must be perfect
    // (modulo pcap's nanosecond resolution, which our timestamps already
    // honour).
    let pool = Mempool::new("pcapio", 1 << 10);
    let builder = FrameBuilder::new(1400, 1, 2);
    let mut feed = Feed {
        pool: pool.clone(),
        queued: Default::default(),
    };
    for i in 0..500u64 {
        let mut m = pool
            .alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, i)))
            .unwrap();
        m.rx_ts_ps = Some(i * 284_800 / 1_000 * 1_000); // ns-aligned ps
        feed.queued.push_back(m);
    }

    let mut rec = Recorder::new(RecorderConfig {
        keep_frames: true,
        ..RecorderConfig::default()
    });
    rec.on_wake(&mut feed);
    let original = rec.take_trials().pop().unwrap();

    let mut pcap = Vec::new();
    let written = rec.write_pcap(&mut pcap).unwrap();
    assert_eq!(written, 500);

    let reimported = Trial::from_pcap_records(&parse_pcap(&pcap).unwrap());
    assert_eq!(reimported.len(), original.len());
    let m = choir::metrics::compare(&original, &reimported);
    assert_eq!(m.kappa, 1.0, "pcap round trip must be lossless");
}

#[test]
fn recorder_rounds_sub_ns_timestamps_to_nearest() {
    // Hardware timestamps land on picoseconds; the pcap container holds
    // nanoseconds. Export must round to nearest, not truncate — a
    // floor() here would bias every IAT/latency delta derived from an
    // exported capture by up to 1 ns.
    let pool = Mempool::new("round", 1 << 8);
    let builder = FrameBuilder::new(200, 1, 2);
    let cases: &[(u64, u64)] = &[
        (0, 0),
        (499, 0),         // below the midpoint: down
        (500, 1),         // midpoint: up
        (1_499, 1),
        (1_500, 2),
        (2_000, 2),       // exact ns: unchanged
        (999_999_999_499, 999_999_999),
        (999_999_999_500, 1_000_000_000), // carries into the seconds field
    ];
    let mut feed = Feed {
        pool: pool.clone(),
        queued: Default::default(),
    };
    for (i, &(ps, _)) in cases.iter().enumerate() {
        let mut m = pool
            .alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, i as u64)))
            .unwrap();
        m.rx_ts_ps = Some(ps);
        feed.queued.push_back(m);
    }
    let mut rec = Recorder::new(RecorderConfig {
        keep_frames: true,
        ..RecorderConfig::default()
    });
    rec.on_wake(&mut feed);
    let mut out = Vec::new();
    rec.write_pcap(&mut out).unwrap();
    let parsed = parse_pcap(&out).unwrap();
    assert_eq!(parsed.len(), cases.len());
    for (recd, &(ps, want_ns)) in parsed.iter().zip(cases) {
        assert_eq!(
            recd.ts_ns, want_ns,
            "{ps} ps must round to {want_ns} ns, got {} ns",
            recd.ts_ns
        );
    }
}

#[test]
fn oversize_frames_are_clamped_to_snaplen_not_corrupted() {
    // A frame longer than the advertised snaplen must be stored
    // truncated (incl clamped, orig preserved) instead of writing a
    // record that claims more bytes than the container allows — and the
    // records after it must stay parseable.
    let big = DEFAULT_SNAPLEN as usize + 1_000;
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    w.write_record(1_000, &Frame::new(Bytes::from(vec![0xAB; big])))
        .unwrap();
    w.write_record(2_000, &Frame::new(Bytes::from(vec![0xCD; 64])))
        .unwrap();
    let buf = w.finish().unwrap();
    let parsed = parse_pcap(&buf).unwrap();
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed[0].frame.len(), DEFAULT_SNAPLEN as usize);
    assert_eq!(parsed[0].frame.orig_len(), big);
    assert!(parsed[0].frame.data.iter().all(|&b| b == 0xAB));
    assert_eq!(parsed[1].ts_ns, 2_000);
    assert_eq!(parsed[1].frame.len(), 64);
}
