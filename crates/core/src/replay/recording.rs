//! In-memory recordings of forwarded traffic.
//!
//! Paper §4: "A recording is made by holding forwarded packets in memory
//! after their transmission without making a copy. While expensive in RAM,
//! avoiding disk writes or copy operations allows an accurate recording to
//! be made without slowing the packet forwarding. Besides the packets,
//! which are stored as the burst they were transmitted as, the recording
//! also stores the time of transmission through reading the Time Stamp
//! Counter."
//!
//! [`Recording`] is exactly that: a vector of [`RecordedBurst`]s, each an
//! `Mbuf` clone set (refcount bumps, no data copies) plus the transmit
//! TSC. [`RollingRecorder`] adds the rolling-window mode the paper defers
//! to future work ("future work can add recording in a rolling manner").

use std::collections::VecDeque;

use choir_dpdk::{Burst, Mbuf};

/// One recorded burst: the packets exactly as transmitted, and when.
#[derive(Debug, Clone)]
pub struct RecordedBurst {
    /// TSC value read at transmit time.
    pub tsc: u64,
    /// The transmitted packets (shared handles into the original buffers).
    pub pkts: Vec<Mbuf>,
}

impl RecordedBurst {
    /// Number of packets in the burst.
    pub fn len(&self) -> usize {
        self.pkts.len()
    }

    /// True when the burst holds no packets.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// Rebuild a transmittable [`Burst`] of shared handles.
    pub fn to_burst(&self) -> Burst {
        Burst::from_iter_checked(self.pkts.iter().cloned())
    }
}

/// A completed (or in-progress) recording.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    bursts: Vec<RecordedBurst>,
    packets: usize,
}

impl Recording {
    /// An empty recording.
    pub fn new() -> Self {
        Recording::default()
    }

    /// Append one transmitted burst. Packets are cloned handles — the
    /// caller keeps transmitting the originals.
    pub fn push_burst<'a, I: IntoIterator<Item = &'a Mbuf>>(&mut self, tsc: u64, pkts: I) {
        let pkts: Vec<Mbuf> = pkts.into_iter().cloned().collect();
        if pkts.is_empty() {
            return;
        }
        debug_assert!(
            self.bursts.last().is_none_or(|b| b.tsc <= tsc),
            "recording TSC must be monotonic"
        );
        self.packets += pkts.len();
        self.bursts.push(RecordedBurst { tsc, pkts });
    }

    /// Number of recorded bursts.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total packets across all bursts.
    pub fn packets(&self) -> usize {
        self.packets
    }

    /// TSC of the first burst (the replay time origin), or `None` when
    /// empty.
    pub fn first_tsc(&self) -> Option<u64> {
        self.bursts.first().map(|b| b.tsc)
    }

    /// TSC span from first to last burst, in cycles.
    pub fn duration_cycles(&self) -> u64 {
        match (self.bursts.first(), self.bursts.last()) {
            (Some(f), Some(l)) => l.tsc - f.tsc,
            _ => 0,
        }
    }

    /// The recorded bursts in transmit order.
    pub fn bursts(&self) -> &[RecordedBurst] {
        &self.bursts
    }

    /// Burst by index.
    pub fn burst(&self, i: usize) -> &RecordedBurst {
        &self.bursts[i]
    }

    /// Drop all recorded bursts (releasing their pool slots).
    pub fn clear(&mut self) {
        self.bursts.clear();
        self.packets = 0;
    }

    /// A new recording covering burst range `range` (handles cloned, the
    /// original untouched) — the replay-from-here primitive the debugger
    /// uses.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Recording {
        let mut out = Recording::new();
        for b in &self.bursts[range] {
            out.push_burst(b.tsc, b.pkts.iter());
        }
        out
    }
}

/// A bounded, rolling recording: always holds the most recent window of
/// traffic, evicting the oldest bursts when the packet budget is exceeded.
#[derive(Debug, Clone)]
pub struct RollingRecorder {
    window: VecDeque<RecordedBurst>,
    packets: usize,
    max_packets: usize,
    evicted: u64,
}

impl RollingRecorder {
    /// A rolling recorder keeping at most `max_packets` packets.
    ///
    /// # Panics
    /// Panics if `max_packets` is zero.
    pub fn new(max_packets: usize) -> Self {
        assert!(max_packets > 0, "rolling window must hold packets");
        RollingRecorder {
            window: VecDeque::new(),
            packets: 0,
            max_packets,
            evicted: 0,
        }
    }

    /// Append a burst, evicting old bursts to stay within budget.
    pub fn push_burst<'a, I: IntoIterator<Item = &'a Mbuf>>(&mut self, tsc: u64, pkts: I) {
        let pkts: Vec<Mbuf> = pkts.into_iter().cloned().collect();
        if pkts.is_empty() {
            return;
        }
        self.packets += pkts.len();
        self.window.push_back(RecordedBurst { tsc, pkts });
        while self.packets > self.max_packets && self.window.len() > 1 {
            let old = self.window.pop_front().expect("nonempty");
            self.packets -= old.len();
            self.evicted += old.len() as u64;
        }
    }

    /// Packets currently held.
    pub fn packets(&self) -> usize {
        self.packets
    }

    /// Total packets evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Freeze the current window into a [`Recording`] (handles cloned,
    /// window retained).
    pub fn snapshot(&self) -> Recording {
        let mut r = Recording::new();
        for b in &self.window {
            r.push_burst(b.tsc, b.pkts.iter());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::Mempool;
    use choir_packet::Frame;

    fn mbufs(pool: &Mempool, n: usize) -> Vec<Mbuf> {
        (0..n)
            .map(|i| {
                pool.alloc(Frame::new(Bytes::from(vec![i as u8; 60])))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn recording_accumulates_without_copy() {
        let pool = Mempool::new("r", 64);
        let pkts = mbufs(&pool, 4);
        let mut rec = Recording::new();
        rec.push_burst(100, pkts.iter());
        rec.push_burst(200, pkts[..2].iter());
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.packets(), 6);
        assert_eq!(rec.first_tsc(), Some(100));
        assert_eq!(rec.duration_cycles(), 100);
        // No new pool slots were taken: recording shares the 4 slots.
        assert_eq!(pool.in_use(), 4);
        // And the data pointers are shared.
        assert_eq!(
            rec.burst(0).pkts[0].frame.data.as_ptr(),
            pkts[0].frame.data.as_ptr()
        );
    }

    #[test]
    fn empty_bursts_ignored() {
        let mut rec = Recording::new();
        rec.push_burst(5, std::iter::empty());
        assert!(rec.is_empty());
        assert_eq!(rec.first_tsc(), None);
        assert_eq!(rec.duration_cycles(), 0);
    }

    #[test]
    fn clear_releases_slots() {
        let pool = Mempool::new("r", 8);
        let mut rec = Recording::new();
        {
            let pkts = mbufs(&pool, 3);
            rec.push_burst(1, pkts.iter());
        }
        // Originals dropped; recording still holds the slots.
        assert_eq!(pool.in_use(), 3);
        rec.clear();
        assert_eq!(pool.in_use(), 0);
        assert_eq!(rec.packets(), 0);
    }

    #[test]
    fn to_burst_rebuilds() {
        let pool = Mempool::new("r", 8);
        let pkts = mbufs(&pool, 3);
        let mut rec = Recording::new();
        rec.push_burst(1, pkts.iter());
        let b = rec.burst(0).to_burst();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn rolling_evicts_oldest() {
        let pool = Mempool::new("r", 64);
        let mut roll = RollingRecorder::new(6);
        for t in 0..5u64 {
            let pkts = mbufs(&pool, 2);
            roll.push_burst(t * 10, pkts.iter());
        }
        // 10 packets pushed, budget 6 -> oldest two bursts evicted.
        assert_eq!(roll.packets(), 6);
        assert_eq!(roll.evicted(), 4);
        let snap = roll.snapshot();
        assert_eq!(snap.packets(), 6);
        assert_eq!(snap.first_tsc(), Some(20));
    }

    #[test]
    fn rolling_keeps_at_least_one_burst() {
        let pool = Mempool::new("r", 64);
        let mut roll = RollingRecorder::new(2);
        let pkts = mbufs(&pool, 5);
        roll.push_burst(0, pkts.iter());
        // A single burst larger than the budget is retained (cannot evict
        // the only burst).
        assert_eq!(roll.packets(), 5);
        assert_eq!(roll.snapshot().packets(), 5);
    }

    #[test]
    #[should_panic(expected = "rolling window")]
    fn rolling_zero_budget_panics() {
        RollingRecorder::new(0);
    }

    #[test]
    fn rolling_eviction_frees_slots() {
        let pool = Mempool::new("r", 64);
        let mut roll = RollingRecorder::new(4);
        for t in 0..8u64 {
            let pkts = mbufs(&pool, 2);
            roll.push_burst(t, pkts.iter());
        }
        // Only the window's packets remain allocated.
        assert_eq!(pool.in_use(), 4);
    }
}
