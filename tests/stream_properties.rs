//! Property-based tests of the streaming incremental-κ engine
//! (`metrics::stream`): with full lookahead the engine is bit-identical
//! to the batch analyzer on every randomized trial pair, at every
//! chunking of the input (including packet-at-a-time and
//! whole-trial-at-once), with any snapshot cadence; with a bounded
//! window it must respect its residency cap and, on drop-free
//! adjacent-swap pairs, never score below the batch κ.

use choir::metrics::pair::PairAnalyzer;
use choir::metrics::report::TrialComparison;
use choir::metrics::stream::{IncrementalComparison, Side, StreamConfig, StreamOutcome};
use choir::metrics::{KappaConfig, Trial};
use proptest::prelude::*;

/// A random trial: a subset of sequence numbers 0..n (possibly shuffled,
/// possibly with duplicates) with non-decreasing timestamps.
fn arb_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    (
        proptest::collection::vec(0u64..64, 0..max_len),
        proptest::collection::vec(0u64..5_000, 0..max_len),
    )
        .prop_map(|(seqs, mut gaps)| {
            gaps.resize(seqs.len(), 100);
            let mut t = Trial::new();
            let mut now = 0u64;
            for (s, g) in seqs.iter().zip(gaps) {
                now += g;
                t.push_tagged(0, 0, *s, now);
            }
            t
        })
}

/// Feed a pair into a fresh engine, alternating sides `chunk` records at
/// a time (`chunk >= len` degenerates to whole-side bursts).
fn stream_pair(a: &Trial, b: &Trial, cfg: StreamConfig, chunk: usize) -> StreamOutcome {
    let mut eng = IncrementalComparison::new(cfg);
    let (oa, ob) = (a.observations(), b.observations());
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < oa.len() || ib < ob.len() {
        let ea = (ia + chunk).min(oa.len());
        eng.push_burst(Side::A, &oa[ia..ea]);
        ia = ea;
        let eb = (ib + chunk).min(ob.len());
        eng.push_burst(Side::B, &ob[ib..eb]);
        ib = eb;
    }
    eng.finalize("stream")
}

/// Bit-level equality of everything both paths compute, excluding labels
/// and wall-clock timings.
fn assert_bit_identical(live: &TrialComparison, batch: &TrialComparison) {
    for (name, got, want) in [
        ("u", live.metrics.u, batch.metrics.u),
        ("o", live.metrics.o, batch.metrics.o),
        ("l", live.metrics.l, batch.metrics.l),
        ("i", live.metrics.i, batch.metrics.i),
        ("kappa", live.metrics.kappa, batch.metrics.kappa),
        ("iat_within_10ns", live.iat_within_10ns, batch.iat_within_10ns),
    ] {
        prop_assert_eq!(got.to_bits(), want.to_bits(), "{} diverged", name);
    }
    prop_assert_eq!(
        (live.a_len, live.b_len, live.common, live.missing, live.extra, live.moved),
        (batch.a_len, batch.b_len, batch.common, batch.missing, batch.extra, batch.moved)
    );
    prop_assert_eq!(live.iat_abs_percentiles_ns, batch.iat_abs_percentiles_ns);
    prop_assert_eq!(live.latency_abs_percentiles_ns, batch.latency_abs_percentiles_ns);
    prop_assert_eq!(live.edit_stats, batch.edit_stats);
    prop_assert_eq!(live.iat_hist.total(), batch.iat_hist.total());
    prop_assert_eq!(live.latency_hist.total(), batch.latency_hist.total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn full_lookahead_is_bit_identical_to_batch_at_any_chunking(
        a in arb_trial(40),
        b in arb_trial(40),
        chunk in 1usize..16,
        snapshot_every in 0u64..20,
    ) {
        let batch = PairAnalyzer::new(&a, &b).analyze();
        let cfg = StreamConfig {
            lookahead: None,
            snapshot_every,
            kappa: KappaConfig::paper(),
        };
        // Packet-at-a-time, whole-trial-at-once, and a random chunking
        // in between must all land on the same bits — and the snapshot
        // cadence must never perturb the final result.
        let whole = a.len().max(b.len()).max(1);
        for c in [1usize, chunk, whole] {
            let live = stream_pair(&a, &b, cfg, c);
            assert_bit_identical(&live.comparison, &batch);
            prop_assert_eq!(live.evicted, 0, "full lookahead never evicts");
        }
    }

    #[test]
    fn bounded_window_caps_residency_on_random_pairs(
        a in arb_trial(40),
        b in arb_trial(40),
        window in 1usize..48,
        chunk in 1usize..16,
    ) {
        let cfg = StreamConfig {
            lookahead: Some(window),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let live = stream_pair(&a, &b, cfg, chunk);
        prop_assert!(
            live.peak_resident <= window,
            "peak resident {} exceeds window {}",
            live.peak_resident,
            window
        );
        let m = &live.comparison.metrics;
        for (name, v) in [("u", m.u), ("o", m.o), ("l", m.l), ("i", m.i), ("kappa", m.kappa)] {
            prop_assert!((0.0..=1.0).contains(&v), "{} = {} out of range", name, v);
        }
    }

    #[test]
    fn bounded_window_never_undershoots_batch_on_dropfree_swapped_pairs(
        n in 4usize..60,
        swaps in proptest::collection::vec(0usize..58, 0..12),
        jitter in proptest::collection::vec(0u64..40, 0..60),
        extra in 0usize..16,
    ) {
        // Drop-free pair: B carries exactly A's packets, locally
        // reordered by adjacent swaps, with bounded timestamp jitter.
        // With lock-step feeding and a window exceeding twice the
        // maximum displacement, every match lands before any eviction
        // (nothing common is lost), so the only bounded-mode deviation
        // left is the segment-local ordering count — a lower bound on
        // the global one. The bounded κ must therefore never fall below
        // the batch κ. (With a window *smaller* than the displacement,
        // unmatched evictions legitimately push κ down; that regime is
        // covered by the residency property above, not this one.)
        let mut a = Trial::new();
        for i in 0..n as u64 {
            a.push_tagged(0, 0, i, i * 1_000);
        }
        let mut order: Vec<u64> = (0..n as u64).collect();
        for &s in &swaps {
            let s = s % (n - 1);
            order.swap(s, s + 1);
        }
        let max_disp = order
            .iter()
            .enumerate()
            .map(|(i, &seq)| (i as i64 - seq as i64).unsigned_abs() as usize)
            .max()
            .unwrap_or(0);
        let window = 2 * max_disp + 2 + extra;
        let mut b = Trial::new();
        for (i, &seq) in order.iter().enumerate() {
            let j = jitter.get(i).copied().unwrap_or(0);
            b.push_tagged(0, 0, seq, i as u64 * 1_000 + j);
        }
        let batch = PairAnalyzer::new(&a, &b).metrics();
        let cfg = StreamConfig {
            lookahead: Some(window),
            snapshot_every: 0,
            kappa: KappaConfig::paper(),
        };
        let live = stream_pair(&a, &b, cfg, 1);
        prop_assert!(live.peak_resident <= window);
        prop_assert_eq!(
            live.comparison.common, n,
            "window {} must cover displacement {}", window, max_disp
        );
        prop_assert!(
            live.comparison.metrics.kappa >= batch.kappa - 1e-12,
            "bounded kappa {} undershoots batch {} (window {})",
            live.comparison.metrics.kappa,
            batch.kappa,
            window
        );
    }
}
