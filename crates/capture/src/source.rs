//! The unified ingestion surface: every way observations reach a κ
//! engine — chunked pcap files, live receive taps, replayed journals —
//! behind one pull-based trait.
//!
//! Before this module the tree had three ad-hoc ingestion paths:
//! [`PcapChunkReader`] batches for offline captures, the testbed
//! runner's rx-tap closures for live runs, and hand-rolled journal
//! replay in the crash supervisor. [`Source`] collapses them:
//! a consumer pulls [`Observation`]s one at a time with
//! [`Source::next_record`] and journals its position with
//! [`Source::cursor`], never caring where the stream comes from. The
//! κ-as-a-service daemon and the streaming `Experiment` runner share
//! this one code path (DESIGN.md §16).
//!
//! Two implementations cover the tree's needs:
//!
//! - [`PcapSource`] adapts a [`PcapChunkReader`] record-by-record, with
//!   byte-exact journal cursors and [`PcapSource::resume`] re-opening a
//!   capture at a cursor (CRC-verified, like the reader underneath).
//! - [`QueueSource`] is the live leg: a push handle
//!   ([`QueueHandle`], clonable, `Send`) feeds a bounded-unbounded FIFO
//!   that the consumer drains. An rx tap or a wire-protocol ingest
//!   handler pushes; the engine side pulls. `Ok(None)` here means
//!   "nothing buffered *right now*" until the handle is closed, after
//!   which it means end-of-stream for good.

use std::collections::VecDeque;
use std::io::Read;
use std::sync::{Arc, Mutex};

use choir_core::metrics::Observation;
use choir_packet::PacketId;

use crate::chunked::{ChunkError, IngestCursor, PcapChunkReader, DEFAULT_CHUNK_RECORDS};

/// A typed ingestion failure. Queue sources never fail; capture-backed
/// sources surface the underlying [`ChunkError`] (which carries the
/// byte offset and salvage accounting).
#[derive(Debug)]
pub enum SourceError {
    /// The backing capture failed to parse.
    Capture(ChunkError),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Capture(e) => write!(f, "capture source failed: {e}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Capture(e) => Some(e),
        }
    }
}

impl From<ChunkError> for SourceError {
    fn from(e: ChunkError) -> Self {
        SourceError::Capture(e)
    }
}

/// One stream of observations, wherever it comes from.
///
/// The contract mirrors the streaming engine's needs exactly: a
/// consumer pulls records in arrival order and persists [`Self::cursor`]
/// next to its engine checkpoint, so after a crash the pair
/// (checkpoint, cursor) resumes bit-identically. `Ok(None)` means no
/// record is available — permanently for finite sources (a fully read
/// capture), momentarily for live ones (see [`Source::is_exhausted`]).
pub trait Source {
    /// Pull the next observation in arrival order.
    fn next_record(&mut self) -> Result<Option<Observation>, SourceError>;

    /// The journaled position after everything pulled so far: the
    /// cursor always names the first *undelivered* record. Byte offset
    /// and CRC are meaningful only for byte-backed sources; live
    /// sources report `0` for both and journal by record count alone.
    fn cursor(&self) -> IngestCursor;

    /// `true` once the stream can never yield another record: a finite
    /// source that hit EOF (or a terminal error), or a live source
    /// whose producer closed the handle and whose buffer is drained.
    fn is_exhausted(&self) -> bool;
}

/// A [`PcapChunkReader`] as a [`Source`]: record-at-a-time delivery
/// with byte-exact journal cursors. Timestamps are converted exactly
/// as [`choir_core::metrics::Trial::from_pcap_records`] converts them
/// (nanoseconds → picoseconds), so a drained `PcapSource` feeds an
/// engine the same observations the batch pipeline would build.
pub struct PcapSource<R: Read> {
    reader: PcapChunkReader<R>,
    exhausted: bool,
}

impl<R: Read> PcapSource<R> {
    /// Open a capture for streaming ingestion.
    pub fn new(input: R) -> Result<Self, ChunkError> {
        let reader = PcapChunkReader::new(input, DEFAULT_CHUNK_RECORDS).map_err(|error| {
            ChunkError {
                byte_offset: 0,
                record_index: 0,
                salvaged: Vec::new(),
                error,
            }
        })?;
        Ok(PcapSource {
            reader,
            exhausted: false,
        })
    }

    /// Re-open a capture at a journaled cursor (CRC-verified; see
    /// [`PcapChunkReader::resume`]). The next pulled record is exactly
    /// the one the original source would have delivered next.
    pub fn resume(input: R, cursor: IngestCursor) -> Result<Self, ChunkError> {
        let reader = PcapChunkReader::resume(input, DEFAULT_CHUNK_RECORDS, cursor)?;
        Ok(PcapSource {
            reader,
            exhausted: false,
        })
    }
}

impl<R: Read> Source for PcapSource<R> {
    fn next_record(&mut self) -> Result<Option<Observation>, SourceError> {
        match self.reader.next_record() {
            Ok(Some(rec)) => Ok(Some(Observation {
                id: rec.frame.packet_id(),
                t_ps: rec.ts_ns * 1_000,
            })),
            Ok(None) => {
                self.exhausted = true;
                Ok(None)
            }
            Err(e) => {
                self.exhausted = true;
                Err(SourceError::Capture(e))
            }
        }
    }

    fn cursor(&self) -> IngestCursor {
        self.reader.cursor()
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[derive(Debug, Default)]
struct QueueInner {
    buf: VecDeque<Observation>,
    closed: bool,
}

/// The producer end of a [`QueueSource`]: clonable and `Send`, so an
/// rx-tap closure, a wire-protocol handler, or another thread can push
/// while the consumer drains. Dropping every handle does NOT close the
/// stream — closing is explicit, so a handle can be parked and revived.
#[derive(Debug, Clone)]
pub struct QueueHandle {
    q: Arc<Mutex<QueueInner>>,
}

impl QueueHandle {
    /// Append one observation. Pushing after [`Self::close`] is a
    /// programming error and panics — a closed stream promised its
    /// consumer no further records.
    pub fn push(&self, id: PacketId, t_ps: u64) {
        let mut q = self.q.lock().expect("queue poisoned");
        assert!(!q.closed, "push on a closed QueueSource");
        q.buf.push_back(Observation { id, t_ps });
    }

    /// Declare end-of-stream: once the buffered tail is drained the
    /// source is exhausted. Idempotent.
    pub fn close(&self) {
        self.q.lock().expect("queue poisoned").closed = true;
    }

    /// Records currently buffered (pushed but not yet pulled).
    pub fn backlog(&self) -> usize {
        self.q.lock().expect("queue poisoned").buf.len()
    }
}

/// The live leg of the [`Source`] API: a FIFO fed through a
/// [`QueueHandle`]. The cursor journals by record count (byte offset
/// and CRC are `0` — there are no bytes). A consumer resuming a live
/// stream after a crash re-synchronizes by asking the producer to
/// replay from `cursor().records_consumed`, which is exactly what the
/// service wire protocol does.
#[derive(Debug)]
pub struct QueueSource {
    q: Arc<Mutex<QueueInner>>,
    delivered: u64,
}

impl QueueSource {
    /// A fresh empty stream and its push handle.
    pub fn new() -> (Self, QueueHandle) {
        let q = Arc::new(Mutex::new(QueueInner::default()));
        (
            QueueSource {
                q: Arc::clone(&q),
                delivered: 0,
            },
            QueueHandle { q },
        )
    }

    /// A stream resuming at a journaled position: the first
    /// `cursor.records_consumed` records are already accounted for, so
    /// the cursor keeps counting from there. The producer must replay
    /// only records *after* the cursor.
    pub fn resume(cursor: IngestCursor) -> (Self, QueueHandle) {
        let (mut src, h) = Self::new();
        src.delivered = cursor.records_consumed;
        (src, h)
    }
}

impl Source for QueueSource {
    fn next_record(&mut self) -> Result<Option<Observation>, SourceError> {
        let mut q = self.q.lock().expect("queue poisoned");
        match q.buf.pop_front() {
            Some(o) => {
                self.delivered += 1;
                Ok(Some(o))
            }
            None => Ok(None),
        }
    }

    fn cursor(&self) -> IngestCursor {
        IngestCursor {
            records_consumed: self.delivered,
            byte_offset: 0,
            last_record_crc: 0,
        }
    }

    fn is_exhausted(&self) -> bool {
        let q = self.q.lock().expect("queue poisoned");
        q.closed && q.buf.is_empty()
    }
}

/// Drain everything currently available from a source into a callback
/// — the shared inner loop of every consumer (the testbed runner's
/// live streams, the daemon's ingest path, batch refills). Returns how
/// many records were delivered. Stops at the first unavailable record;
/// a live source may have more later.
pub fn drain_available<S: Source + ?Sized>(
    src: &mut S,
    mut sink: impl FnMut(Observation),
) -> Result<u64, SourceError> {
    let mut n = 0;
    while let Some(o) = src.next_record()? {
        sink(o);
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_core::metrics::Trial;
    use choir_packet::pcap::{parse_pcap, PcapWriter};
    use choir_packet::{ChoirTag, Frame};

    fn sample_pcap(n: u64) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            let mut buf = vec![0u8; 80];
            ChoirTag::new(1, 0, i).stamp_trailer(&mut buf);
            w.write_record(i * 1_000 + 37, &Frame::new(Bytes::from(buf)))
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn pcap_source_matches_batch_trial_exactly() {
        let buf = sample_pcap(60);
        let batch = Trial::from_pcap_records(&parse_pcap(&buf).unwrap());
        let mut src = PcapSource::new(&buf[..]).unwrap();
        let mut streamed = Trial::new();
        let n = drain_available(&mut src, |o| streamed.push(o.id, o.t_ps)).unwrap();
        assert_eq!(n, 60);
        assert_eq!(streamed, batch);
        assert!(src.is_exhausted());
        assert_eq!(src.cursor().records_consumed, 60);
    }

    #[test]
    fn pcap_source_resumes_at_cursor_without_duplicates() {
        let buf = sample_pcap(20);
        let mut src = PcapSource::new(&buf[..]).unwrap();
        let mut head = Vec::new();
        for _ in 0..7 {
            head.push(src.next_record().unwrap().unwrap());
        }
        let cur = src.cursor();
        assert_eq!(cur.records_consumed, 7);

        let mut rest_direct = Vec::new();
        drain_available(&mut src, |o| rest_direct.push(o)).unwrap();

        let mut resumed = PcapSource::resume(&buf[..], cur).unwrap();
        let mut rest_resumed = Vec::new();
        drain_available(&mut resumed, |o| rest_resumed.push(o)).unwrap();
        assert_eq!(rest_resumed, rest_direct);
        assert_eq!(head.len() + rest_resumed.len(), 20);
    }

    #[test]
    fn pcap_source_surfaces_truncation_as_typed_error() {
        let buf = sample_pcap(3);
        let mut src = PcapSource::new(&buf[..buf.len() - 5]).unwrap();
        // Two intact records deliver, then the cut one errors.
        assert!(src.next_record().unwrap().is_some());
        assert!(src.next_record().unwrap().is_some());
        let err = src.next_record().unwrap_err();
        assert!(matches!(err, SourceError::Capture(_)));
        assert!(err.to_string().contains("capture source failed"));
        assert!(src.is_exhausted());
        // The cursor still names the records that made it through.
        assert_eq!(src.cursor().records_consumed, 2);
        // Errors are terminal.
        assert!(src.next_record().unwrap().is_none());
    }

    #[test]
    fn queue_source_delivers_in_push_order_and_closes() {
        let (mut src, h) = QueueSource::new();
        assert!(src.next_record().unwrap().is_none(), "empty, not exhausted");
        assert!(!src.is_exhausted());
        h.push(PacketId(1), 100);
        h.push(PacketId(2), 200);
        assert_eq!(h.backlog(), 2);
        let a = src.next_record().unwrap().unwrap();
        assert_eq!((a.id, a.t_ps), (PacketId(1), 100));
        h.push(PacketId(3), 300);
        let rest: Vec<u64> = {
            let mut v = Vec::new();
            drain_available(&mut src, |o| v.push(o.t_ps)).unwrap();
            v
        };
        assert_eq!(rest, [200, 300]);
        assert!(!src.is_exhausted(), "drained but not closed");
        h.close();
        h.close(); // idempotent
        assert!(src.is_exhausted());
        assert_eq!(src.cursor().records_consumed, 3);
    }

    #[test]
    fn queue_source_resume_continues_record_count() {
        let (mut src, h) = QueueSource::resume(IngestCursor {
            records_consumed: 41,
            byte_offset: 0,
            last_record_crc: 0,
        });
        h.push(PacketId(9), 900);
        assert!(src.next_record().unwrap().is_some());
        assert_eq!(src.cursor().records_consumed, 42);
    }

    #[test]
    #[should_panic(expected = "push on a closed QueueSource")]
    fn push_after_close_panics() {
        let (_src, h) = QueueSource::new();
        h.close();
        h.push(PacketId(1), 1);
    }

    #[test]
    fn queue_handle_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<QueueHandle>();
        assert_send::<QueueSource>();
    }

    #[test]
    fn sources_compose_as_trait_objects() {
        let buf = sample_pcap(4);
        let (mut live, h) = QueueSource::new();
        for i in 0..4u64 {
            h.push(PacketId(i as u128), i * 10);
        }
        h.close();
        let mut pcap = PcapSource::new(&buf[..]).unwrap();
        let mut sources: Vec<&mut dyn Source> = vec![&mut pcap, &mut live];
        let mut total = 0;
        for s in sources.iter_mut() {
            total += drain_available(*s, |_| {}).unwrap();
            assert!(s.is_exhausted());
        }
        assert_eq!(total, 8);
    }
}
