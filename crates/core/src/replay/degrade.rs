//! Typed failure causes and graceful-degradation accounting.
//!
//! The paper's replay loop assumes a cooperative NIC: `tx_burst` is
//! retried until the descriptor ring accepts everything. On a healthy
//! testbed that spin is momentary; on a faulty one (ring wedged, pool
//! exhausted, co-tenant hogging the PCIe bus) it is an unbounded hang.
//! This module gives the supervised replay path a vocabulary for the
//! alternative: every shortcut the engine or middlebox takes to stay
//! live is *counted* here, and every abort carries a typed cause plus
//! the partial statistics accumulated up to that point — a degraded run
//! is still a measurement, not a crash.

use std::fmt;

use serde::{Deserialize, Serialize};

use super::scheduler::ReplayStats;

/// Counters of every graceful-degradation event across the replay
/// pipeline: the supervised engine (bounded retries, backoff,
/// abandoned bursts), the middlebox forwarding path (recording skipped
/// under pool pressure, packets dropped after bounded transmit
/// retries), and the reliable control link (retransmissions, duplicate
/// suppression, gave-up sends).
///
/// Reports from different components are combined with
/// [`DegradationReport::absorb`]; `choir-testbed` attaches the merged
/// report to each experiment's [`crate::metrics::report::RunReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// `tx_burst` calls that accepted zero packets of a non-empty burst.
    pub tx_rejections: u64,
    /// Transmit retry attempts beyond each burst's first call.
    pub tx_retries: u64,
    /// Exponential-backoff waits taken between retries.
    pub backoffs: u64,
    /// Total cycles spent waiting in backoff.
    pub backoff_cycles: u64,
    /// Bursts abandoned after the per-burst retry budget ran out.
    pub bursts_abandoned: u64,
    /// Packets in abandoned bursts that were never transmitted.
    pub packets_abandoned: u64,
    /// Packets forwarded but *not* recorded because the mempool fell
    /// below the middlebox's reserve (drop-from-recording-and-count).
    pub record_skipped_packets: u64,
    /// Packets the middlebox dropped on its forwarding path after its
    /// bounded transmit retries.
    pub forward_dropped_packets: u64,
    /// Control frames retransmitted by the reliable controller.
    pub control_retransmits: u64,
    /// Control sends that exhausted their retry budget without an ack.
    pub control_failures: u64,
    /// Duplicate control deliveries suppressed by sequence dedupe.
    pub control_duplicates: u64,
    /// Capture-path `Mempool::alloc` failures tolerated by dropping the
    /// allocation (an unacknowledged ack, an unrecorded frame) instead
    /// of panicking. The run continues; retransmission or a shorter
    /// capture recovers.
    #[serde(default)]
    pub capture_alloc_failed: u64,
    /// Capture-path ring/buffer pushes rejected because the ring was
    /// full (frame dropped from capture and counted; forwarding and the
    /// live trial are unaffected).
    #[serde(default)]
    pub capture_ring_full: u64,
}

impl DegradationReport {
    /// True when nothing degraded: the run behaved as if unsupervised.
    pub fn is_clean(&self) -> bool {
        *self == DegradationReport::default()
    }

    /// Total degradation events (backoff cycles excluded — they are a
    /// magnitude, not an event count).
    pub fn total_events(&self) -> u64 {
        self.tx_rejections
            + self.tx_retries
            + self.backoffs
            + self.bursts_abandoned
            + self.record_skipped_packets
            + self.forward_dropped_packets
            + self.control_retransmits
            + self.control_failures
            + self.control_duplicates
            + self.capture_alloc_failed
            + self.capture_ring_full
    }

    /// Field-wise add another component's counters into this report.
    pub fn absorb(&mut self, other: &DegradationReport) {
        self.tx_rejections += other.tx_rejections;
        self.tx_retries += other.tx_retries;
        self.backoffs += other.backoffs;
        self.backoff_cycles += other.backoff_cycles;
        self.bursts_abandoned += other.bursts_abandoned;
        self.packets_abandoned += other.packets_abandoned;
        self.record_skipped_packets += other.record_skipped_packets;
        self.forward_dropped_packets += other.forward_dropped_packets;
        self.control_retransmits += other.control_retransmits;
        self.control_failures += other.control_failures;
        self.control_duplicates += other.control_duplicates;
        self.capture_alloc_failed += other.capture_alloc_failed;
        self.capture_ring_full += other.capture_ring_full;
    }
}

/// Why a supervised replay stopped before transmitting everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayErrorKind {
    /// The configured wall-clock budget elapsed mid-replay.
    DeadlineExceeded {
        /// The budget that elapsed, in nanoseconds.
        deadline_ns: u64,
    },
    /// A burst exhausted its retry budget and the configuration forbids
    /// abandoning bursts.
    TxBudgetExhausted {
        /// Index of the burst that could not be transmitted.
        burst_index: usize,
        /// Retries attempted on it.
        retries: u32,
    },
}

/// A supervised replay abort: a typed cause plus the partial — but
/// internally consistent — statistics accumulated before stopping.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError {
    /// What stopped the replay.
    pub kind: ReplayErrorKind,
    /// Transmit counters up to the abort. `packets_sent` reflects every
    /// packet actually handed to the NIC.
    pub stats: ReplayStats,
    /// Degradation events observed before the abort.
    pub degradation: DegradationReport,
    /// Wall time consumed before aborting, in nanoseconds.
    pub elapsed_ns: u64,
    /// Index of the first burst that was not fully transmitted.
    pub aborted_at_burst: usize,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ReplayErrorKind::DeadlineExceeded { deadline_ns } => write!(
                f,
                "replay aborted at burst {}: {} ns deadline exceeded ({} packets sent, {} retries)",
                self.aborted_at_burst,
                deadline_ns,
                self.stats.packets_sent,
                self.degradation.tx_retries
            ),
            ReplayErrorKind::TxBudgetExhausted {
                burst_index,
                retries,
            } => write!(
                f,
                "replay aborted: burst {burst_index} still unsent after {retries} retries ({} packets sent)",
                self.stats.packets_sent
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_has_no_events() {
        let r = DegradationReport::default();
        assert!(r.is_clean());
        assert_eq!(r.total_events(), 0);
    }

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = DegradationReport {
            tx_rejections: 1,
            backoff_cycles: 100,
            control_retransmits: 2,
            ..DegradationReport::default()
        };
        let b = DegradationReport {
            tx_rejections: 3,
            packets_abandoned: 7,
            backoff_cycles: 50,
            ..DegradationReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.tx_rejections, 4);
        assert_eq!(a.packets_abandoned, 7);
        assert_eq!(a.backoff_cycles, 150);
        assert_eq!(a.control_retransmits, 2);
        assert!(!a.is_clean());
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = DegradationReport {
            tx_rejections: 5,
            tx_retries: 9,
            bursts_abandoned: 1,
            packets_abandoned: 64,
            control_failures: 1,
            ..DegradationReport::default()
        };
        let c = serde::Serialize::to_content(&r);
        let back: DegradationReport = serde::Deserialize::from_content(&c).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn errors_render_their_cause() {
        let e = ReplayError {
            kind: ReplayErrorKind::DeadlineExceeded { deadline_ns: 1_000 },
            stats: ReplayStats {
                packets_sent: 42,
                ..ReplayStats::default()
            },
            degradation: DegradationReport::default(),
            elapsed_ns: 1_100,
            aborted_at_burst: 3,
        };
        let s = e.to_string();
        assert!(s.contains("burst 3"), "{s}");
        assert!(s.contains("42 packets"), "{s}");
        let e2 = ReplayError {
            kind: ReplayErrorKind::TxBudgetExhausted {
                burst_index: 7,
                retries: 16,
            },
            ..e
        };
        assert!(e2.to_string().contains("16 retries"), "{}", e2.to_string());
    }
}
