//! The experiment runner: builds the paper's topology in the simulator,
//! orchestrates record-then-replay-N-times, and produces the consistency
//! reports.
//!
//! Pipeline per environment (§6's test setup: "a generator, replayer, and
//! recorder, with traffic flowing from the generator through the replayer
//! to the recorder", all through one switch):
//!
//! 1. **Record.** The middlebox is told to record, then the generator
//!    streams `N` CBR packets through it. The middlebox stamps each
//!    forwarded packet with a unique trailer tag and holds the transmitted
//!    bursts in RAM with their TSC times.
//! 2. **Replay ×R.** Each replay is scheduled at a future wall-clock
//!    time. Before each run the between-run clock state is re-sampled
//!    (PTP resync; recorder timestamp-servo slope) — the minutes that
//!    separate real runs, compressed.
//! 3. **Compare.** The recorder's per-run captures become [`Trial`]s
//!    (re-zeroed to their own first arrival, as Eqs. 3–4 require). The
//!    sharded all-pairs engine computes the full κ matrix; its baseline
//!    row (everything vs run A) is what the paper's tables report, and
//!    the off-diagonal summary quantifies the run-to-run spread §7's run
//!    lists exhibit.

use std::cell::RefCell;
use std::rc::Rc;

use choir_capture::{PcapChunkReader, QueueSource, Recorder, RecorderConfig, Source};
use choir_core::metrics::allpairs::{all_pairs_sharded_with, KappaMatrix};
use choir_core::metrics::report::{RecoveryReport, RunReport, TrialComparison};
use choir_core::metrics::{
    trial_label, IncrementalComparison, KappaConfig, Observation, Side, StreamCheckpoint,
    StreamConfig, StreamOutcome, StreamReport, StreamRunTrail, Trial,
};
use choir_core::obs;
use choir_core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
use choir_dpdk::ControlMsg;
use choir_netsim::clock::{NodeClock, PtpModel};
use choir_netsim::nic::{NicRxModel, NicTxModel, SharedVfModel, UtilProcess};
use choir_netsim::rng::{DetRng, Jitter};
use choir_netsim::time::MS;
use choir_netsim::topology::TopologyBuilder;
use choir_netsim::{QueueKind, Sim, SimConfig, SimStats};
use choir_pktgen::{Generator, GeneratorConfig};

use crate::profiles::EnvProfile;

/// What to run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The environment.
    pub profile: EnvProfile,
    /// Fraction of the paper's full packet count (1.0 = ~1M packets at
    /// 40 Gbps; tests use much smaller scales).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Full-scale experiment with the default seed.
    pub fn full(profile: EnvProfile) -> Self {
        ExperimentConfig {
            profile,
            scale: 1.0,
            seed: 0x00C4_0112,
        }
    }

    /// Packets per recorded stream under this config.
    pub fn packet_count(&self) -> u64 {
        ((self.profile.full_packet_count() as f64 * self.scale) as u64).max(50)
    }
}

/// Simulator hot-path knobs, orthogonal to *what* runs ([`ExperimentConfig`]).
///
/// Defaults to the fast path (timing wheel + burst coalescing); the
/// per-packet `BinaryHeap` path stays available as the reference
/// baseline `repro pipeline` times itself against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTuning {
    /// Coalesce contiguous wire bursts into single delivery events.
    pub coalesce: bool,
    /// Event-queue implementation.
    pub queue: QueueKind,
    /// Allocate a dedicated guard `Arc` per mbuf (the pre-optimization
    /// mempool path) instead of folding slot accounting into the frame's
    /// storage refcount.
    pub guard_slot_alloc: bool,
    /// Stamp trailer tags by copying frame bytes (the pre-optimization
    /// stamping path) instead of writing the reserved tailroom in place.
    pub copy_stamp: bool,
    /// Shard the engine across worker threads (multi-domain experiments
    /// only; the classic single-switch runner is indivisible and ignores
    /// this). `0` runs the serial engine in-process — the reference the
    /// determinism gates compare against; `n >= 1` runs a
    /// [`choir_netsim::ShardedSim`] with `n` workers, whose captures are
    /// byte-identical to serial at every shard count.
    pub shards: usize,
}

impl Default for SimTuning {
    fn default() -> Self {
        SimTuning {
            coalesce: true,
            queue: QueueKind::Wheel,
            guard_slot_alloc: false,
            copy_stamp: false,
            shards: 0,
        }
    }
}

impl SimTuning {
    /// The pre-PR reference hot path, reproduced knob by knob: per-packet
    /// delivery events on a `BinaryHeap`, a guard allocation per mbuf,
    /// and copy-based tag stamping. Captures are NOT expected to be
    /// bit-identical to the coalesced path (different RNG interleaving),
    /// but the path is self-deterministic and statistically equivalent.
    pub fn per_packet() -> Self {
        SimTuning {
            coalesce: false,
            queue: QueueKind::Heap,
            guard_slot_alloc: true,
            copy_stamp: true,
            shards: 0,
        }
    }
}

/// Everything an experiment produces.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Per-run comparisons against run A, plus the environment mean
    /// (a Table 2 row).
    pub report: RunReport,
    /// The full all-pairs κ matrix over every run (the report's `runs`
    /// are its baseline row).
    pub matrix: KappaMatrix,
    /// The raw re-zeroed trials (run A first).
    pub trials: Vec<Trial>,
    /// Packets held in the middlebox recording(s).
    pub recorded_packets: u64,
    /// Simulator events processed (diagnostics).
    pub events: u64,
    /// Event-queue and coalescing counters from the simulation.
    pub sim_stats: SimStats,
    /// Wall-clock time of the capture pipeline (generate → forward →
    /// record → replay → capture), excluding the all-pairs consistency
    /// analysis that follows it.
    pub capture_wall_ns: u64,
}

/// One experiment, composed instead of dispatched: what to run
/// ([`ExperimentConfig`]) plus every orthogonal axis — simulator tuning,
/// live streaming κ, crash supervision — as chainable builder steps,
/// mirroring the `PairAnalyzer` redesign (DESIGN.md §12).
///
/// ```no_run
/// use choir_testbed::{EnvKind, Experiment, ExperimentConfig, StreamingMode};
///
/// let cfg = ExperimentConfig::full(EnvKind::LocalSingle.profile());
/// let out = Experiment::new(cfg)
///     .streaming(StreamingMode { lookahead: None, snapshot_every: 500 })
///     .run();
/// assert!(out.report.stream.is_some());
/// ```
///
/// This replaces the four free functions `run_experiment`,
/// `run_experiment_tuned`, `run_experiment_streaming`, and
/// `run_experiment_streaming_supervised`, which survive as deprecated
/// shims over the builder (migration table in DESIGN.md §16).
#[derive(Debug, Clone)]
pub struct Experiment {
    cfg: ExperimentConfig,
    tuning: SimTuning,
    streaming: Option<StreamingMode>,
    supervised: Option<SupervisorConfig>,
}

impl Experiment {
    /// An experiment with default tuning, no streaming engine, and no
    /// crash supervision.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Experiment {
            cfg,
            tuning: SimTuning::default(),
            streaming: None,
            supervised: None,
        }
    }

    /// Explicit simulator hot-path tuning (default: the fast path).
    pub fn tuning(mut self, tuning: SimTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Tap a live streaming-κ engine into the recorder's rx path: from
    /// the second replay run onward, every admitted packet is scored
    /// against the baseline run *while the simulation executes*, and
    /// the per-run snapshot trails ride along in `report.stream`.
    pub fn streaming(mut self, mode: StreamingMode) -> Self {
        self.streaming = Some(mode);
        self
    }

    /// Run the streaming engine under a crash supervisor (checkpoint
    /// cadence, injected kills and tap panics, capture salvage) —
    /// meaningful together with [`Self::streaming`]; without it only
    /// the capture-salvage leg and the recovery accounting engage.
    pub fn supervised(mut self, sup: SupervisorConfig) -> Self {
        self.supervised = Some(sup);
        self
    }

    /// Run the experiment end to end.
    ///
    /// # Panics
    /// Panics if the pipeline produces fewer than two trials (nothing
    /// to compare) — that would indicate a wiring bug, not a
    /// measurement. Injected tap panics never escape the supervisor.
    pub fn run(self) -> ExperimentOutput {
        run_experiment_inner(&self.cfg, self.tuning, self.streaming, self.supervised)
    }
}

/// Run one environment end to end.
///
/// # Panics
/// Panics if the pipeline produces fewer than two trials (nothing to
/// compare) — that would indicate a wiring bug, not a measurement.
#[deprecated(note = "use Experiment::new(cfg).run() (see DESIGN.md §16)")]
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentOutput {
    Experiment::new(cfg.clone()).run()
}

/// [`Experiment::run`] with explicit simulator hot-path tuning.
///
/// # Panics
/// Same contract as [`Experiment::run`].
#[deprecated(note = "use Experiment::new(cfg).tuning(tuning).run() (see DESIGN.md §16)")]
pub fn run_experiment_tuned(cfg: &ExperimentConfig, tuning: SimTuning) -> ExperimentOutput {
    Experiment::new(cfg.clone()).tuning(tuning).run()
}

/// Streaming-κ configuration for [`Experiment::streaming`].
#[derive(Debug, Clone, Copy)]
pub struct StreamingMode {
    /// Reorder window for the incremental engine: `None` streams with
    /// full lookahead (exact, bit-identical to the batch analysis on
    /// time-ordered trials); `Some(w)` bounds resident packets at `w`.
    pub lookahead: Option<usize>,
    /// Emit a [`choir_core::metrics::KappaSnapshot`] every this many
    /// pushed packets (`0` disables automatic snapshots).
    pub snapshot_every: u64,
}

/// [`Experiment::run`] with a live streaming-κ engine tapped into the
/// recorder's rx path.
///
/// # Panics
/// Same contract as [`Experiment::run`].
#[deprecated(
    note = "use Experiment::new(cfg).tuning(tuning).streaming(mode).run() (see DESIGN.md §16)"
)]
pub fn run_experiment_streaming(
    cfg: &ExperimentConfig,
    tuning: SimTuning,
    mode: StreamingMode,
) -> ExperimentOutput {
    Experiment::new(cfg.clone()).tuning(tuning).streaming(mode).run()
}

/// Fault schedule and recovery policy for
/// [`Experiment::supervised`]. The same philosophy as the
/// PR-1 replay supervision (bounded budgets, degrade-and-count, typed
/// accounting) applied to the streaming κ engine's lifetime: the
/// supervisor checkpoints on a cadence, injects process-death and
/// tap-panic faults on their own cadences, and recovers every one from
/// the last durable checkpoint plus its journal.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Serialize a durable checkpoint every this many tapped packets
    /// (`0` = only the initial pre-stream checkpoint).
    pub checkpoint_every: u64,
    /// Kill the streaming engine (simulated process death: the live
    /// state is discarded wholesale) every this many tapped packets.
    pub kill_every: Option<u64>,
    /// Throw a panic inside the rx tap every this many tapped packets.
    /// The supervisor catches it at the tap boundary (`catch_unwind`)
    /// and recovers exactly as for a kill.
    pub panic_every: Option<u64>,
    /// After the runs, export the retained capture to pcap bytes, cut
    /// them at a seeded offset ([`choir_dpdk::fault::truncate_stream`]),
    /// and salvage-read the damage, recording salvaged-vs-lost records.
    pub corrupt_capture_seed: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_every: 256,
            kill_every: None,
            panic_every: None,
            corrupt_capture_seed: None,
        }
    }
}

/// Streaming [`Experiment::run`] under a crash supervisor: the
/// streaming engine is checkpointed on a cadence and driven through
/// injected kills, tap panics, and (optionally) a corrupted capture
/// stream, recovering every fault from the last durable checkpoint.
/// The recovery accounting rides on `report.recovery`; the measurement
/// itself is bit-identical to an unsupervised run — that is the
/// recovery layer's whole contract, and `repro recover` gates on it.
///
/// # Panics
/// Same contract as [`Experiment::run`]. Injected tap panics never
/// escape the supervisor.
#[deprecated(
    note = "use Experiment::new(cfg).tuning(tuning).streaming(mode).supervised(sup).run() \
            (see DESIGN.md §16)"
)]
pub fn run_experiment_streaming_supervised(
    cfg: &ExperimentConfig,
    tuning: SimTuning,
    mode: StreamingMode,
    sup: SupervisorConfig,
) -> ExperimentOutput {
    Experiment::new(cfg.clone())
        .tuning(tuning)
        .streaming(mode)
        .supervised(sup)
        .run()
}

/// A live comparison between the baseline run (side A, fed from the
/// already-captured first trial) and the in-flight run (side B, pulled
/// from a [`choir_capture::Source`] that the recorder-port rx tap
/// pushes into). This is the same ingestion path the κ-as-a-service
/// daemon drives — the tap is just one producer behind a
/// [`QueueHandle`].
///
/// A is fed in lock step — one baseline observation per pulled packet —
/// so bounded-window mode keeps residency near the configured window
/// instead of buffering one whole side. Any baseline tail left when the
/// run ends is flushed in [`LiveStream::finish`]; in full-lookahead mode
/// feeding order cannot affect the result, so the flush preserves
/// exactness.
struct LiveStream {
    eng: IncrementalComparison,
    baseline: Vec<Observation>,
    fed_a: usize,
    src: QueueSource,
}

impl LiveStream {
    /// Drain everything the tap has pushed since the last pump.
    fn pump(&mut self) {
        while let Ok(Some(o)) = self.src.next_record() {
            if let Some(&a) = self.baseline.get(self.fed_a) {
                self.eng.push(Side::A, a.id, a.t_ps);
                self.fed_a += 1;
            }
            self.eng.push(Side::B, o.id, o.t_ps);
        }
    }

    fn finish(mut self, label: String) -> StreamOutcome {
        self.pump();
        while let Some(&o) = self.baseline.get(self.fed_a) {
            self.eng.push(Side::A, o.id, o.t_ps);
            self.fed_a += 1;
        }
        self.eng.finalize(label)
    }
}

/// A [`LiveStream`] under crash supervision: everything tapped since
/// the last durable checkpoint is journaled, so when an injected kill
/// discards the engine (or a tap panic is caught), the supervisor
/// parses the checkpoint back, resumes, and re-feeds the journal —
/// landing in a state bit-identical to never having crashed.
///
/// "Durable" here means the checkpoint is held only as serialized JSON
/// bytes, exactly what a real supervisor would have on disk: every
/// recovery round-trips the full parse path, not just a clone.
struct SupervisedStream {
    eng: IncrementalComparison,
    baseline: Vec<Observation>,
    fed_a: usize,
    sup: SupervisorConfig,
    /// The engine's config and identity, for the checked resume: a
    /// recovery must refuse a checkpoint that pairs with a different
    /// engine or config instead of silently computing a wrong κ.
    cfg: StreamConfig,
    engine_id: u64,
    /// Last durable checkpoint (serialized) and the A-side cursor at
    /// the moment it was taken.
    ck_json: String,
    ck_fed_a: usize,
    /// B-side arrivals since the last checkpoint, oldest first.
    journal: Vec<(choir_packet::PacketId, u64)>,
    /// Packets tapped so far (fault cadences count these).
    tapped: u64,
    rec: RecoveryReport,
    src: QueueSource,
}

impl SupervisedStream {
    fn new(
        cfg: StreamConfig,
        engine_id: u64,
        baseline: Vec<Observation>,
        sup: SupervisorConfig,
        src: QueueSource,
    ) -> Self {
        let eng = IncrementalComparison::new(cfg).with_engine_id(engine_id);
        let ck_json = serde_json::to_string(&eng.checkpoint()).expect("checkpoint serializes");
        let bytes = ck_json.len() as u64;
        SupervisedStream {
            eng,
            baseline,
            fed_a: 0,
            sup,
            cfg,
            engine_id,
            ck_json,
            ck_fed_a: 0,
            journal: Vec::new(),
            tapped: 0,
            rec: RecoveryReport {
                checkpoint_every: sup.checkpoint_every,
                checkpoints_taken: 1,
                checkpoint_bytes_last: bytes,
                checkpoint_bytes_peak: bytes,
                ..RecoveryReport::default()
            },
            src,
        }
    }

    /// Drain everything the tap has pushed, feeding each record under
    /// its own blast shield: an injected (or real) panic inside the
    /// engine never reaches the simulator, it becomes a recovery, and
    /// the drain continues with the next record.
    fn pump(&mut self) {
        while let Ok(Some(o)) = self.src.next_record() {
            let fed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.feed(o.id, o.t_ps)));
            if fed.is_err() {
                self.recover_from_panic();
            }
        }
    }

    fn due(count: u64, every: Option<u64>) -> bool {
        matches!(every, Some(n) if n > 0 && count.is_multiple_of(n))
    }

    /// Feed one tapped packet, then run any fault or checkpoint due at
    /// this position. May panic at an injected fault point — the caller
    /// catches at the tap boundary and calls [`Self::recover_from_panic`].
    fn feed(&mut self, id: choir_packet::PacketId, t_ps: u64) {
        // Journal before anything can fail: a crash between here and
        // the engine push must not lose the packet.
        self.journal.push((id, t_ps));
        self.tapped += 1;
        if Self::due(self.tapped, self.sup.panic_every) {
            panic!("injected tap fault at packet {}", self.tapped);
        }
        self.push_pair(id, t_ps);
        if Self::due(self.tapped, self.sup.kill_every) {
            self.rec.kills_injected += 1;
            if obs::is_enabled() {
                obs::counter_inc("recover.kills");
                obs::event("recover.kill", self.tapped, self.journal.len() as u64);
            }
            self.recover();
            self.rec.kills_survived += 1;
        } else if Self::due(self.tapped, Some(self.sup.checkpoint_every)) {
            self.take_checkpoint();
        }
    }

    /// The lock-step A/B feeding of [`LiveStream::on_rx`].
    fn push_pair(&mut self, id: choir_packet::PacketId, t_ps: u64) {
        if let Some(&o) = self.baseline.get(self.fed_a) {
            self.eng.push(Side::A, o.id, o.t_ps);
            self.fed_a += 1;
        }
        self.eng.push(Side::B, id, t_ps);
    }

    fn take_checkpoint(&mut self) {
        let json = serde_json::to_string(&self.eng.checkpoint()).expect("checkpoint serializes");
        self.rec.checkpoints_taken += 1;
        self.rec.checkpoint_bytes_last = json.len() as u64;
        self.rec.checkpoint_bytes_peak = self.rec.checkpoint_bytes_peak.max(json.len() as u64);
        self.ck_json = json;
        self.ck_fed_a = self.fed_a;
        self.journal.clear();
    }

    /// Discard the live engine and rebuild it: parse the durable
    /// checkpoint, resume, re-feed the journal. The journal is kept —
    /// it only becomes durable at the next checkpoint, and a second
    /// crash before then must be able to replay it again.
    fn recover(&mut self) {
        let t = std::time::Instant::now();
        let ck: StreamCheckpoint =
            serde_json::from_str(&self.ck_json).expect("durable checkpoint parses");
        // The checked resume: a checkpoint that pairs with another
        // engine or config is a supervisor bug, not a recovery.
        self.eng = IncrementalComparison::resume_checked(ck, self.engine_id, &self.cfg)
            .expect("durable checkpoint pairs with this engine");
        self.fed_a = self.ck_fed_a;
        let n = self.journal.len();
        for i in 0..n {
            let (id, t_ps) = self.journal[i];
            self.push_pair(id, t_ps);
        }
        self.rec.records_replayed += n as u64;
        self.rec.resume_latency_ns_total += t.elapsed().as_nanos() as u64;
        if obs::is_enabled() {
            obs::counter_add("recover.records_replayed", n as u64);
        }
    }

    /// Entry point for the tap-boundary `catch_unwind` handler.
    fn recover_from_panic(&mut self) {
        self.rec.tap_panics_caught += 1;
        if obs::is_enabled() {
            obs::counter_inc("recover.tap_panics");
        }
        self.recover();
    }

    fn finish(mut self, label: String) -> (StreamOutcome, RecoveryReport) {
        self.pump();
        while let Some(&o) = self.baseline.get(self.fed_a) {
            self.eng.push(Side::A, o.id, o.t_ps);
            self.fed_a += 1;
        }
        (self.eng.finalize(label), self.rec)
    }
}

fn run_experiment_inner(
    cfg: &ExperimentConfig,
    tuning: SimTuning,
    streaming: Option<StreamingMode>,
    supervised: Option<SupervisorConfig>,
) -> ExperimentOutput {
    let t_capture = std::time::Instant::now();
    let p = &cfg.profile;
    let n_packets = cfg.packet_count();
    let label = p.kind.label();

    let mut sim = Sim::new(SimConfig {
        master_seed: cfg.seed,
        trial: 0,
        pool_slots: (n_packets as usize) * 2 + 65_536,
        queue: tuning.queue,
        coalesce: tuning.coalesce,
        guard_slot_alloc: tuning.guard_slot_alloc,
    });
    let mut rng = DetRng::derive(cfg.seed, &["runner", label]);

    // --- Nodes ------------------------------------------------------
    let clock = |rng: &mut DetRng, p: &EnvProfile| NodeClock {
        tsc_hz: p.tsc_hz,
        tsc_offset: rng.range_u64(0, 1 << 40),
        freq_error_ppb: rng.range_u64(0, 60) as i64 - 30,
        ptp: PtpModel::sampled(rng, p.ptp_offset_sigma_ns, p.ptp_drift_sigma),
    };

    let mut gen_cfg = GeneratorConfig::cbr(p.rate_bps, n_packets);
    gen_cfg.ports = (0..p.replayers).collect();
    let gen = sim.add_node(
        "generator",
        Generator::new(gen_cfg),
        clock(&mut rng, p),
        p.wake_jitter.clone(),
    );
    for _ in 0..p.replayers {
        sim.add_port(
            gen,
            NicTxModel {
                doorbell: p.doorbell.clone(),
                ..NicTxModel::ideal(p.link_rate_bps)
            },
            NicRxModel::ideal(),
        );
    }

    let mut mbs = Vec::new();
    for r in 0..p.replayers {
        let mb = sim.add_node(
            &format!("replayer{r}"),
            ChoirMiddlebox::new(MiddleboxConfig {
                rx_port: 0,
                tx_port: 1,
                replayer_id: r as u16,
                stamp_tags: true,
                in_band_control: false,
                tx_retries: 3,
                rolling_window: None,
                bridge_reverse: false,
                pool_reserve: 128,
                copy_stamp: tuning.copy_stamp,
            }),
            clock(&mut rng, p),
            p.wake_jitter.clone(),
        );
        // rx port: the poll loop sees arrivals after the profile's poll
        // visibility latency (this sets the recorded burst structure).
        sim.add_port(
            mb,
            NicTxModel::ideal(p.link_rate_bps),
            NicRxModel {
                ring_cap: 8192,
                deliver_latency: p.poll_latency.clone(),
                ..NicRxModel::ideal()
            },
        );
        // tx port: the environment's NIC behaviour lives here.
        let shared = p.shared_vf.as_ref().map(|s| SharedVfModel {
            util: UtilProcess::new(s.util_min, s.util_max, s.util_step, s.util_period_ps),
            noise_pkt_wire_bytes: 1538,
            burst_wait_mean_ps: s.burst_wait_mean_ps,
            pause: s.pause.clone(),
            pause_prob: s.pause_prob,
        });
        sim.add_port(
            mb,
            NicTxModel {
                line_rate_bps: p.link_rate_bps,
                ring_cap: 4096,
                doorbell: p.doorbell.clone(),
                batch: p.batch.clone(),
                rearm_latency: p.pull_rearm.clone(),
                pull_read_latency: p.pull_read.clone(),
                shared,
            },
            NicRxModel::ideal(),
        );
        mbs.push(mb);
    }

    // The salvage leg needs the raw frames back out as pcap bytes.
    let keep_frames = supervised.is_some_and(|s| s.corrupt_capture_seed.is_some());
    let rec = sim.add_node(
        "recorder",
        Recorder::new(RecorderConfig {
            keep_frames,
            ..RecorderConfig::default()
        }),
        clock(&mut rng, p),
        p.wake_jitter.clone(),
    );
    sim.add_port(
        rec,
        NicTxModel::ideal(p.link_rate_bps),
        NicRxModel {
            ring_cap: 1 << 14,
            timestamp: p.recorder_ts.clone(),
            drop_prob: p.recorder_drop_prob,
            deliver_latency: Jitter::Const(100_000), // 100 ns poll latency
            clock_slope_ppb: 0,
            slope_base_ps: 0,
        },
    );

    // --- Topology: everything through one switch ---------------------
    let mut topo = TopologyBuilder::with_switch(
        &mut sim,
        p.switch.clone(),
        4 * p.replayers,
        "switch0",
    );
    for (r, &mb) in mbs.iter().enumerate() {
        // The switch is sized to 4 ports per replayer above, so
        // exhaustion here is a wiring bug, not a runtime condition.
        topo.path(&mut sim, gen, r, mb, 0, 5_000)
            .expect("switch sized for all replayer paths");
        topo.path(&mut sim, mb, 1, rec, 0, 5_000)
            .expect("switch sized for all replayer paths");
    }

    // --- Phase 1: record the stream ----------------------------------
    let gap = p.gap_ps();
    let duration = n_packets * gap;
    let t_rec_start = MS;
    let t_gen_start = 2 * MS;
    let t_stop = t_gen_start + duration + 2 * MS;
    for &mb in &mbs {
        sim.send_control(mb, ControlMsg::StartRecord, t_rec_start);
        sim.send_control(mb, ControlMsg::StopRecord, t_stop);
    }
    sim.wake_app(gen, t_gen_start);
    sim.run_until(t_stop + MS);
    // Discard the recording-phase capture.
    sim.with_app::<Recorder, _>(rec, |r| {
        r.take_trials();
    });

    let recorded_packets: u64 = mbs
        .iter()
        .map(|&mb| sim.with_app::<ChoirMiddlebox, _>(mb, |m| m.recording().packets() as u64))
        .sum();

    // --- Phase 2: replays --------------------------------------------
    let mut resync = DetRng::derive(cfg.seed, &["resync", label]);
    let margin = 3 * MS;
    let mut raw_trials: Vec<Trial> = Vec::new();
    let mut stream_trails: Vec<StreamRunTrail> = Vec::new();
    let mut recovery_acc = RecoveryReport::default();
    enum TapStream {
        Plain(Rc<RefCell<Option<LiveStream>>>),
        Supervised(Rc<RefCell<Option<SupervisedStream>>>),
    }
    for run in 0..p.runs {
        // Between-run clock wander: PTP resync on every node, timestamp
        // servo re-steered on the recorder.
        for &node in mbs.iter().chain([gen, rec].iter()) {
            sim.set_ptp(
                node,
                PtpModel::sampled(&mut resync, p.ptp_offset_sigma_ns, p.ptp_drift_sigma),
            );
        }
        let slope = (p.ts_slope_sigma_ppb * resync.std_normal()) as i64;
        sim.set_rx_clock_slope(rec, 0, slope);

        // Streaming mode: from the second run onward, score this run
        // against the baseline capture live, via the recorder's rx tap.
        // The tap fires on exactly the admitted packets the Recorder
        // app later drains, with the same hardware timestamps, so the
        // engine sees the same stream the batch path analyzes.
        let live: Option<TapStream> = match (streaming, raw_trials.first()) {
            (Some(mode), Some(baseline)) if run >= 1 => {
                let stream_cfg = StreamConfig {
                    lookahead: mode.lookahead,
                    snapshot_every: mode.snapshot_every,
                    kappa: KappaConfig::paper(),
                };
                // The rx tap is just a producer behind the unified
                // Source API: it pushes into a QueueHandle, and the
                // stream pulls — the same ingestion path the
                // κ-as-a-service daemon drives (DESIGN.md §16).
                let (src, handle) = QueueSource::new();
                if let Some(sup) = supervised {
                    let ss = SupervisedStream::new(
                        stream_cfg,
                        run as u64 + 1,
                        baseline.observations().to_vec(),
                        sup,
                        src,
                    );
                    let cell = Rc::new(RefCell::new(Some(ss)));
                    let tap_cell = Rc::clone(&cell);
                    sim.set_rx_tap(
                        rec,
                        0,
                        Box::new(move |ts, m| {
                            handle.push(m.frame.packet_id(), ts);
                            if let Some(ss) = tap_cell.borrow_mut().as_mut() {
                                ss.pump();
                            }
                        }),
                    );
                    Some(TapStream::Supervised(cell))
                } else {
                    let ls = LiveStream {
                        eng: IncrementalComparison::new(stream_cfg),
                        baseline: baseline.observations().to_vec(),
                        fed_a: 0,
                        src,
                    };
                    let cell = Rc::new(RefCell::new(Some(ls)));
                    let tap_cell = Rc::clone(&cell);
                    sim.set_rx_tap(
                        rec,
                        0,
                        Box::new(move |ts, m| {
                            handle.push(m.frame.packet_id(), ts);
                            if let Some(ls) = tap_cell.borrow_mut().as_mut() {
                                ls.pump();
                            }
                        }),
                    );
                    Some(TapStream::Plain(cell))
                }
            }
            _ => None,
        };

        let start_wall_ns = (sim.now_ps() + margin) / 1_000;
        let mut max_skew_ps: u64 = 0;
        for &mb in &mbs {
            let skew_ns = p.replay_start_skew.sample(&mut resync) / 1_000;
            let start = (start_wall_ns as i64 + skew_ns).max(0) as u64;
            max_skew_ps = max_skew_ps.max(skew_ns.unsigned_abs() * 1_000);
            sim.send_control(
                mb,
                ControlMsg::ScheduleReplay {
                    start_wall_ns: start,
                },
                sim.now_ps(),
            );
        }
        let end = sim.now_ps() + margin + duration + margin + max_skew_ps;
        sim.run_until(end);
        if let Some(tap) = live {
            sim.clear_rx_tap(rec, 0);
            let run_label = trial_label(run);
            let out = match tap {
                TapStream::Plain(cell) => {
                    let ls = cell.borrow_mut().take().expect("live stream installed");
                    ls.finish(run_label.clone())
                }
                TapStream::Supervised(cell) => {
                    let ss = cell.borrow_mut().take().expect("supervised stream installed");
                    let (out, run_recovery) = ss.finish(run_label.clone());
                    recovery_acc.absorb(&run_recovery);
                    out
                }
            };
            stream_trails.push(StreamRunTrail {
                label: run_label,
                final_kappa: out.comparison.metrics.kappa,
                peak_resident: out.peak_resident,
                evicted: out.evicted,
                bounds: Some(out.bounds),
                missed_matches: out.missed_matches,
                snapshots: out.snapshots,
            });
        }
        // Harvest this run's capture immediately (cut + drain); the
        // streaming tap needs run A materialized before run B starts.
        let mut cut = sim.with_app::<Recorder, _>(rec, |r| r.take_trials());
        raw_trials.append(&mut cut);
    }

    let trials: Vec<Trial> = raw_trials.into_iter().map(|t| t.rezeroed()).collect();
    assert!(
        trials.len() >= 2,
        "experiment produced {} trials; wiring bug",
        trials.len()
    );
    // The capture pipeline (generate → forward → record → replay →
    // capture) ends here; everything below is consistency analysis,
    // benchmarked separately by `repro matrix`.
    let capture_wall_ns = t_capture.elapsed().as_nanos() as u64;

    // Post-processing hot spot at full scale: the all-pairs κ matrix via
    // the sharded engine — per-trial indexes built once, at most one
    // worker per available core (never a thread per pair).
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (matrix, _engine) = all_pairs_sharded_with(&trials, shards, &KappaConfig::paper())
        .expect("captured trials fit the u32 index limit");
    // The paper's tables are the baseline row (runs B, C, … vs run A).
    let comparisons: Vec<TrialComparison> = matrix.baseline_row();

    // Every middlebox's graceful-degradation counters ride along with
    // the consistency numbers: a κ is only interpretable next to how
    // degraded the run that produced it was.
    let mut degradation = choir_core::replay::DegradationReport::default();
    for &mb in &mbs {
        let d = sim.with_app::<ChoirMiddlebox, _>(mb, |m| m.degradation_report());
        degradation.absorb(&d);
    }
    let sim_stats = sim.sim_stats();
    let mut report = RunReport::new(label, comparisons)
        .expect("at least two trials asserted above")
        .with_degradation(degradation)
        .with_sim_stats(sim_stats_report(&sim_stats));
    if let Some(summary) = matrix.summary() {
        report = report.with_matrix(summary);
    }
    if let Some(mode) = streaming {
        report = report.with_stream(StreamReport {
            lookahead: mode.lookahead,
            snapshot_every: mode.snapshot_every,
            runs: stream_trails,
        });
    }
    if let Some(sup) = supervised {
        // Salvage leg: export the retained capture, cut it at a seeded
        // offset, and count what the journaled chunk reader gets back.
        if let Some(seed) = sup.corrupt_capture_seed {
            let mut bytes = sim.with_app::<Recorder, _>(rec, |r| {
                let mut v = Vec::new();
                r.write_pcap(&mut v).expect("in-memory pcap export");
                v
            });
            let total = choir_packet::pcap::parse_pcap(&bytes)
                .map(|rs| rs.len() as u64)
                .unwrap_or(0);
            choir_dpdk::fault::truncate_stream(&mut bytes, seed, 24);
            let mut salvaged = 0u64;
            if let Ok(mut rd) = PcapChunkReader::new(&bytes[..], 256) {
                loop {
                    match rd.next_chunk() {
                        Ok(Some(chunk)) => salvaged += chunk.len() as u64,
                        Ok(None) => break,
                        // Salvage mode: the failed chunk's good prefix
                        // still counts; errors are terminal.
                        Err(e) => {
                            salvaged += e.salvaged.len() as u64;
                            break;
                        }
                    }
                }
            }
            recovery_acc.salvaged_records = salvaged;
            recovery_acc.lost_records = total - salvaged;
            if obs::is_enabled() {
                obs::counter_add("recover.salvaged_records", salvaged);
                obs::counter_add("recover.lost_records", total - salvaged);
            }
        }
        report = report.with_recovery(recovery_acc);
    }
    // `with_obs` drops empty snapshots, so this is a no-op unless the
    // caller configured the obs layer before running the experiment.
    report = report.with_obs(choir_core::obs::snapshot());

    ExperimentOutput {
        report,
        matrix,
        trials,
        recorded_packets,
        events: sim.events_processed(),
        sim_stats,
        capture_wall_ns,
    }
}

/// Mirror the simulator's counters into the report's serializable form.
/// `shards` and `sync_windows` stay 0 here; the multi-domain runner
/// overrides them for sharded fleets.
pub fn sim_stats_report(s: &SimStats) -> choir_core::metrics::SimStatsReport {
    choir_core::metrics::SimStatsReport {
        events_processed: s.events_processed,
        queue_depth_peak: s.queue_depth_peak,
        coalesced_events: s.coalesced_events,
        coalesced_packets: s.coalesced_packets,
        wire_events_elided: s.wire_events_elided,
        packets_per_event: s.packets_per_event(),
        remote_bursts: s.remote_bursts,
        remote_packets: s.remote_packets,
        shards: 0,
        sync_windows: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::EnvKind;

    fn quick(kind: EnvKind, scale: f64, seed: u64) -> ExperimentOutput {
        let mut profile = kind.profile();
        profile.runs = 3; // A + two comparisons is enough for tests
        Experiment::new(ExperimentConfig {
            profile,
            scale,
            seed,
        })
        .run()
    }

    #[test]
    fn local_single_pipeline_end_to_end() {
        let out = quick(EnvKind::LocalSingle, 0.003, 7);
        // ~3100 packets recorded and replayed intact.
        assert!(out.recorded_packets > 3_000, "{}", out.recorded_packets);
        assert_eq!(out.trials.len(), 3);
        for t in &out.trials {
            assert_eq!(t.len() as u64, out.recorded_packets, "no drops expected");
            assert!(t.is_time_ordered());
        }
        for run in &out.report.runs {
            assert_eq!(run.metrics.u, 0.0, "no uniqueness variation");
            assert_eq!(run.metrics.o, 0.0, "no reordering");
            assert!(run.metrics.kappa > 0.9, "kappa {}", run.metrics.kappa);
        }
        assert!(
            out.report.degradation.is_clean(),
            "a clean local run must report zero degradation: {:?}",
            out.report.degradation
        );
    }

    #[test]
    fn matrix_covers_all_pairs_and_matches_report() {
        let out = quick(EnvKind::LocalSingle, 0.001, 17);
        assert_eq!(out.matrix.trials(), out.trials.len());
        assert_eq!(out.matrix.pairs(), 3); // 3 trials -> 3 pairs
        // The report's runs are exactly the matrix's baseline row.
        assert_eq!(out.report.runs.len(), out.trials.len() - 1);
        for (j, run) in out.report.runs.iter().enumerate() {
            let cell = out.matrix.get(0, j + 1).unwrap();
            assert_eq!(run.metrics, cell.metrics);
            assert_eq!(run.common, cell.common);
        }
        // The off-diagonal summary rides along in the serialized report.
        let summary = out.report.matrix.expect("matrix summary attached");
        assert_eq!(summary.trials, out.trials.len());
        assert_eq!(summary.pairs, 3);
        assert!(summary.kappa_min <= summary.kappa_median);
        assert!(summary.kappa_median <= summary.kappa_max);
        // Legacy labels are preserved on the baseline row.
        assert_eq!(out.report.runs[0].label, "B");
        assert_eq!(out.report.runs[1].label, "C");
        // Stage timings were recorded for real work.
        assert!(out.matrix.total_timings().total_ns() > 0);
    }

    #[test]
    fn streaming_mode_matches_batch_kappa_bitwise() {
        let mut profile = EnvKind::LocalSingle.profile();
        profile.runs = 3;
        let cfg = ExperimentConfig {
            profile,
            scale: 0.001,
            seed: 7,
        };
        let out = Experiment::new(cfg.clone())
            .streaming(StreamingMode {
                lookahead: None,
                snapshot_every: 500,
            })
            .run();
        let stream = out.report.stream.as_ref().expect("stream trail attached");
        assert_eq!(stream.lookahead, None);
        assert_eq!(stream.snapshot_every, 500);
        assert_eq!(stream.runs.len(), out.report.runs.len());
        // Raw-timestamp streaming is bit-identical to the batch analysis
        // of the re-zeroed trials only when each trial is time-ordered
        // (the uniform first-arrival shift then cancels in every
        // component); LocalSingle captures are, and the batch runs come
        // rezeroed out of the pipeline, so the gate is exact.
        assert!(out.trials.iter().all(|t| t.is_time_ordered()));
        for (trail, run) in stream.runs.iter().zip(out.report.runs.iter()) {
            assert_eq!(trail.label, run.label);
            assert_eq!(
                trail.final_kappa.to_bits(),
                run.metrics.kappa.to_bits(),
                "streaming κ must match batch κ bitwise for run {}",
                run.label
            );
            assert!(!trail.snapshots.is_empty(), "cadence produced snapshots");
            assert_eq!(trail.evicted, 0, "full lookahead never evicts");
            assert!(trail.peak_resident > 0);
        }
        // Streaming is an observer: trials and batch report are
        // unchanged vs the plain tuned run.
        let plain = Experiment::new(cfg).run();
        assert_eq!(plain.trials, out.trials);
    }

    #[test]
    fn supervised_streaming_survives_kills_and_panics_bit_identically() {
        let mut profile = EnvKind::LocalSingle.profile();
        profile.runs = 3;
        let cfg = ExperimentConfig {
            profile,
            scale: 0.001,
            seed: 7,
        };
        let mode = StreamingMode {
            lookahead: None,
            snapshot_every: 137,
        };
        let unsupervised = Experiment::new(cfg.clone()).streaming(mode).run();
        let sup = SupervisorConfig {
            checkpoint_every: 97,
            kill_every: Some(211),
            panic_every: Some(401),
            corrupt_capture_seed: Some(11),
        };
        let out = Experiment::new(cfg).streaming(mode).supervised(sup).run();

        let rec = out.report.recovery.expect("recovery report attached");
        assert!(rec.kills_injected > 0, "kill cadence must have fired");
        assert_eq!(rec.kills_survived, rec.kills_injected, "every kill survived");
        assert!(rec.tap_panics_caught > 0, "panic cadence must have fired");
        assert!(rec.records_replayed > 0, "recoveries replay the journal");
        assert!(rec.checkpoints_taken > 1, "cadence checkpoints were taken");
        assert!(rec.checkpoint_bytes_peak >= rec.checkpoint_bytes_last);
        assert!(rec.checkpoint_bytes_last > 0);

        // The hard contract: kills, panics, and recoveries are invisible
        // in the measurement — final κ AND the whole snapshot trail are
        // bit-identical to the uninterrupted streaming run.
        let s = out.report.stream.as_ref().expect("stream trail");
        let u = unsupervised.report.stream.as_ref().expect("stream trail");
        assert_eq!(s.runs.len(), u.runs.len());
        for (a, b) in s.runs.iter().zip(u.runs.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(
                a.final_kappa.to_bits(),
                b.final_kappa.to_bits(),
                "supervised κ must be bit-identical for run {}",
                a.label
            );
            assert_eq!(a.peak_resident, b.peak_resident);
            assert_eq!(a.evicted, b.evicted);
            assert_eq!(a.snapshots.len(), b.snapshots.len());
            for (x, y) in a.snapshots.iter().zip(b.snapshots.iter()) {
                assert_eq!((x.seen_a, x.seen_b, x.common), (y.seen_a, y.seen_b, y.common));
                assert_eq!(x.running.kappa.to_bits(), y.running.kappa.to_bits());
                assert_eq!(x.window.metrics.kappa.to_bits(), y.window.metrics.kappa.to_bits());
            }
        }
        // Trials themselves are untouched by supervision.
        assert_eq!(out.trials, unsupervised.trials);

        // Salvage leg: the corrupted capture still yielded its prefix.
        assert!(rec.salvaged_records > 0, "salvage recovered a prefix");
        assert!(
            rec.salvaged_records + rec.lost_records > 0,
            "capture export was non-empty"
        );
    }

    #[test]
    fn supervisor_with_no_faults_is_accounting_only() {
        let mut profile = EnvKind::LocalSingle.profile();
        profile.runs = 2;
        let cfg = ExperimentConfig {
            profile,
            scale: 0.001,
            seed: 21,
        };
        let mode = StreamingMode {
            lookahead: Some(64),
            snapshot_every: 200,
        };
        let out = Experiment::new(cfg.clone())
            .streaming(mode)
            .supervised(SupervisorConfig {
                checkpoint_every: 128,
                ..SupervisorConfig::default()
            })
            .run();
        let rec = out.report.recovery.expect("recovery report attached");
        assert_eq!(rec.kills_injected, 0);
        assert_eq!(rec.tap_panics_caught, 0);
        assert_eq!(rec.records_replayed, 0);
        assert!(rec.checkpoints_taken > 1);
        // Bounded-mode streaming still matches the unsupervised run.
        let plain = Experiment::new(cfg).streaming(mode).run();
        let a = &out.report.stream.as_ref().unwrap().runs;
        let b = &plain.report.stream.as_ref().unwrap().runs;
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.final_kappa.to_bits(), y.final_kappa.to_bits());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_builder() {
        // The four legacy free functions are pure shims over Experiment;
        // determinism means shim and builder produce identical captures.
        let mut profile = EnvKind::LocalSingle.profile();
        profile.runs = 2;
        let cfg = ExperimentConfig {
            profile,
            scale: 0.001,
            seed: 5,
        };
        let shim = run_experiment(&cfg);
        let built = Experiment::new(cfg.clone()).run();
        assert_eq!(shim.trials, built.trials);
        let shim = run_experiment_tuned(&cfg, SimTuning::per_packet());
        let built = Experiment::new(cfg).tuning(SimTuning::per_packet()).run();
        assert_eq!(shim.trials, built.trials);
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = quick(EnvKind::LocalSingle, 0.001, 42);
        let b = quick(EnvKind::LocalSingle, 0.001, 42);
        assert_eq!(a.trials, b.trials, "same seed, same capture");
        let c = quick(EnvKind::LocalSingle, 0.001, 43);
        assert_ne!(a.trials, c.trials, "different seed differs");
    }

    #[test]
    fn replays_reproduce_identical_packet_sets() {
        let out = quick(EnvKind::LocalSingle, 0.001, 9);
        let ids: Vec<Vec<_>> = out
            .trials
            .iter()
            .map(|t| t.observations().iter().map(|o| o.id).collect())
            .collect();
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
    }

    #[test]
    fn dual_replayer_tags_both_nodes_and_reorders() {
        let out = quick(EnvKind::LocalDual, 0.004, 11);
        let t = &out.trials[0];
        let mut replayers: Vec<u16> = t
            .observations()
            .iter()
            .filter_map(|o| o.id.tag_fields().map(|(r, _, _)| r))
            .collect();
        replayers.dedup();
        let distinct: std::collections::HashSet<u16> = replayers.iter().copied().collect();
        assert_eq!(distinct.len(), 2, "both replayers must contribute");
        // The §6.2 signature: ordering variation appears.
        let any_reorder = out.report.runs.iter().any(|r| r.metrics.o > 0.0);
        assert!(any_reorder, "dual replayer must reorder");
    }

    #[test]
    fn three_replayers_also_work() {
        // Fig. 1 shows a THREE-way split; the runner is generic in the
        // replayer count even though the paper's tables use 1 and 2.
        let mut profile = EnvKind::LocalDual.profile();
        profile.replayers = 3;
        profile.runs = 2;
        let out = Experiment::new(ExperimentConfig {
            profile,
            scale: 0.003,
            seed: 31,
        })
        .run();
        let replayer_ids: std::collections::HashSet<u16> = out.trials[0]
            .observations()
            .iter()
            .filter_map(|o| o.id.tag_fields().map(|(r, _, _)| r))
            .collect();
        assert_eq!(replayer_ids.len(), 3, "all three replayers contribute");
        assert_eq!(out.trials[0].len() as u64, out.recorded_packets);
    }

    #[test]
    fn noisy_shared_drops_packets() {
        let out = quick(EnvKind::FabricShared40Noisy, 0.004, 13);
        let missing: usize = out.report.runs.iter().map(|r| r.missing).sum();
        let extra: usize = out.report.runs.iter().map(|r| r.extra).sum();
        assert!(
            missing + extra > 0,
            "noisy shared environment must lose packets"
        );
        let any_u = out.report.runs.iter().any(|r| r.metrics.u > 0.0);
        assert!(any_u);
    }

    #[test]
    fn fabric_less_consistent_than_local() {
        let local = quick(EnvKind::LocalSingle, 0.002, 21);
        let fabric = quick(EnvKind::FabricDedicated40A, 0.002, 21);
        assert!(
            fabric.report.mean.i > local.report.mean.i * 3.0,
            "FABRIC I {} vs local {}",
            fabric.report.mean.i,
            local.report.mean.i
        );
        assert!(fabric.report.mean.kappa < local.report.mean.kappa);
    }
}
