//! κ-as-a-service: a long-running, multi-tenant streaming consistency
//! monitor (DESIGN.md §16).
//!
//! The batch pipeline answers "how consistent *were* these trials?"
//! after the fact. This crate turns the same engines into a daemon that
//! answers it **while the trials are still running**, for many
//! experiments at once:
//!
//! * [`daemon`] — the service: tenants, streams, per-stream
//!   [`choir_core::metrics::IncrementalComparison`] engines in
//!   unbounded (batch-identical) mode, event-sourced durability
//!   (journal + checkpoint) reusing the supervised-runner design, and a
//!   thread-per-connection TCP serve loop.
//! * [`store`] — the evictable trial store: per-tenant LRU memory
//!   budget, file-backed spill, rebuild on demand; eviction is
//!   invisible to every query.
//! * [`wire`] — the protocol: 4-byte length-prefixed JSON frames,
//!   with κ carried both as `f64` and as `f64::to_bits` so bit-identity
//!   gates survive the wire.
//! * [`client`] — a blocking client used by `choir-ctl`, the
//!   integration tests, and the `repro service` benchmark.
//!
//! The load-bearing property, gated by `repro service`: every κ the
//! daemon serves is bit-identical to a post-hoc batch analysis of the
//! same records — across stream interleavings, store evictions, and
//! kill/restart recovery.

pub mod client;
pub mod daemon;
pub mod store;
pub mod wire;

pub use client::{Client, ClientError};
pub use daemon::{Daemon, DaemonConfig, DaemonError, DaemonHandle};
pub use store::{StoreError, StoreStats, TrialStore, OBS_BYTES};
pub use wire::{Request, Response, WireError, WireFinal, WireKappa, WireObs};
