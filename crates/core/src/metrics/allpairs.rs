//! The sharded all-pairs consistency engine.
//!
//! The paper reports κ per environment by comparing every run against
//! baseline A (Tables 1–2), but its §7 run lists show κ varying 0.65–0.82
//! *within one test* — understanding that spread needs the full N×N
//! upper-triangular κ matrix, not just the baseline column. Rebuilt
//! naively that is `N(N−1)/2` independent [`analyze_with`] calls, each of
//! which re-hashes both trials and re-derives their gap/span statistics
//! from scratch.
//!
//! This module scales that computation two ways:
//!
//! - **[`TrialIndex`]** — a per-trial precomputation cache (packet-identity
//!   hash table with per-occurrence position lists, occurrence ranks,
//!   inter-arrival gaps, first-arrival offset, min/max timestamp span)
//!   built **once per trial** and shared immutably across every pair that
//!   trial participates in. The indexed matching/latency/IAT paths are
//!   bit-identical to the uncached reference implementations — same
//!   arithmetic on the same operands in the same order.
//! - **A bounded worker pool** — at most `shards` worker threads, never a
//!   thread per pair. Workers steal pair indices from a shared atomic
//!   cursor, so an expensive pair (heavy reordering → long LIS stage)
//!   doesn't stall the pool behind a static partition.
//!
//! Invariants (enforced by unit tests here and the property tests in
//! `tests/allpairs_properties.rs`):
//!
//! 1. `all_pairs_sharded(trials, s)` is bit-identical to
//!    [`all_pairs_serial`] — the unchanged, uncached serial reference —
//!    for every shard count `s ≥ 1`.
//! 2. No more than `shards` workers are ever alive at once
//!    ([`EngineStats::peak_workers`] observes this).
//! 3. A [`TrialIndex`] is immutable after construction; pairs only read.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::obs;
use choir_packet::ident::PacketId;

use super::iat::IatResult;
use super::kappa::KappaConfig;
use super::latency::LatencyResult;
use super::matching::{MatchedPair, Matching};
use super::pair::PairAnalyzer;
use super::report::{analyze_with, trial_label, StageTimings, TrialComparison};
use super::stats;
use super::trial::Trial;

/// Per-trial precomputation cache: everything a pairwise comparison needs
/// from one side that does not depend on the other side.
///
/// Built once per trial in O(n), then shared immutably (`&TrialIndex`)
/// across all N−1 pairs the trial participates in, instead of being
/// rebuilt inside every `Matching::build` / `iat` / `latency` call.
#[derive(Debug)]
pub struct TrialIndex<'t> {
    trial: &'t Trial,
    /// Identity → positions of its occurrences, in arrival order.
    by_id: HashMap<PacketId, Vec<u32>>,
    /// Occurrence rank of each position within its identity (0 for the
    /// first copy of an identity, 1 for the second, …).
    occ: Vec<u32>,
    /// `gap_ps(i)` for every position (0 for the first packet).
    gaps_ps: Vec<i64>,
    /// First-arrival offset `t_X0` (0 for an empty trial).
    start_ps: u64,
    /// Min/max timestamp span (the IAT/latency denominators).
    minmax_span_ps: u64,
}

impl<'t> TrialIndex<'t> {
    /// Index a trial. O(n) time, O(n) memory.
    pub fn build(trial: &'t Trial) -> Self {
        let n = trial.len();
        assert!(n <= u32::MAX as usize, "trial too large to index");
        let mut by_id: HashMap<PacketId, Vec<u32>> = HashMap::with_capacity(n);
        let mut occ = Vec::with_capacity(n);
        for (i, o) in trial.observations().iter().enumerate() {
            let positions = by_id.entry(o.id).or_default();
            occ.push(positions.len() as u32);
            positions.push(i as u32);
        }
        let mut gaps_ps = Vec::with_capacity(n);
        for i in 0..n {
            gaps_ps.push(trial.gap_ps(i));
        }
        TrialIndex {
            trial,
            by_id,
            occ,
            gaps_ps,
            start_ps: trial.start_ps(),
            minmax_span_ps: trial.minmax_span_ps(),
        }
    }

    /// Number of packets in the indexed trial.
    pub fn len(&self) -> usize {
        self.occ.len()
    }

    /// True when the indexed trial holds no packets.
    pub fn is_empty(&self) -> bool {
        self.occ.is_empty()
    }

    /// The indexed trial.
    pub fn trial(&self) -> &'t Trial {
        self.trial
    }
}

/// Occurrence-wise matching from two prebuilt indexes — bit-identical to
/// [`Matching::build`] on the underlying trials, but with no per-pair
/// hash-table construction: only B's arrival scan remains, each packet
/// resolved with one lookup into A's (shared, immutable) identity table.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn matching_indexed(a: &TrialIndex<'_>, b: &TrialIndex<'_>) -> Matching {
    matching_indexed_core(a, b)
}

/// Shared kernel behind [`matching_indexed`] and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn matching_indexed_core(a: &TrialIndex<'_>, b: &TrialIndex<'_>) -> Matching {
    let mut pairs = Vec::with_capacity(a.len().min(b.len()));
    for (j, o) in b.trial.observations().iter().enumerate() {
        if let Some(positions) = a.by_id.get(&o.id) {
            // The k-th occurrence in B pairs with the k-th in A, exactly
            // as the reference's consumed-queue formulation.
            if let Some(&ai) = positions.get(b.occ[j] as usize) {
                pairs.push(MatchedPair {
                    a_idx: ai as usize,
                    b_idx: j,
                });
            }
        }
    }
    Matching {
        pairs,
        a_len: a.len(),
        b_len: b.len(),
    }
}

/// [`super::iat::iat_full`] on cached gaps and spans — bit-identical.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn iat_full_indexed(a: &TrialIndex<'_>, b: &TrialIndex<'_>, m: &Matching) -> IatResult {
    iat_full_indexed_core(a, b, m)
}

/// Shared kernel behind [`iat_full_indexed`] and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn iat_full_indexed_core(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
) -> IatResult {
    let mc = m.common();
    if mc == 0 {
        return IatResult {
            i: 0.0,
            deltas_ns: Vec::new(),
        };
    }
    let mut num: u128 = 0;
    let mut deltas_ns = Vec::with_capacity(mc);
    for p in &m.pairs {
        let d = a.gaps_ps[p.a_idx] - b.gaps_ps[p.b_idx];
        num += d.unsigned_abs() as u128;
        deltas_ns.push(d as f64 / 1000.0);
    }
    let denom = a.minmax_span_ps as u128 + b.minmax_span_ps as u128;
    // Degenerate-denominator semantics (see iat.rs): exactly 0.0 for ≤1
    // common packet or a zero joint span — never NaN.
    let i = if mc <= 1 || denom == 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    };
    IatResult { i, deltas_ns }
}

/// [`super::latency::latency_full`] on cached offsets and spans —
/// bit-identical.
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn latency_full_indexed(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
) -> LatencyResult {
    latency_full_indexed_core(a, b, m)
}

/// Shared kernel behind [`latency_full_indexed`] and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn latency_full_indexed_core(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
) -> LatencyResult {
    let mc = m.common();
    if mc == 0 {
        return LatencyResult {
            l: 0.0,
            deltas_ns: Vec::new(),
        };
    }
    let ta0 = a.start_ps as i128;
    let tb0 = b.start_ps as i128;
    let mut num: u128 = 0;
    let mut deltas_ns = Vec::with_capacity(mc);
    for p in &m.pairs {
        let la = a.trial.time(p.a_idx) as i128 - ta0;
        let lb = b.trial.time(p.b_idx) as i128 - tb0;
        let d = la - lb;
        num += d.unsigned_abs();
        deltas_ns.push(d as f64 / 1000.0);
    }
    let reach = (a.minmax_span_ps as i128).max(b.minmax_span_ps as i128);
    let denom = mc as i128 * reach;
    let l = if mc <= 1 || denom <= 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    };
    LatencyResult { l, deltas_ns }
}

/// Analyze one pair from prebuilt indexes, recording per-stage wall-clock
/// time. Metric output is bit-identical to [`analyze_with`] on the
/// underlying trials (only the `timings` field differs run to run).
#[deprecated(note = "use metrics::PairAnalyzer::from_indexes (see DESIGN.md §12)")]
pub fn analyze_indexed(
    label: impl Into<String>,
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    cfg: &KappaConfig,
) -> TrialComparison {
    PairAnalyzer::from_indexes(a, b).label(label).config(*cfg).analyze()
}

/// Summary statistics of the off-diagonal κ values — the "how unstable is
/// this environment run-to-run" number the per-baseline view hides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixSummary {
    /// Number of trials (N).
    pub trials: usize,
    /// Number of off-diagonal pairs (N(N−1)/2).
    pub pairs: usize,
    /// Smallest off-diagonal κ.
    pub kappa_min: f64,
    /// Median off-diagonal κ.
    pub kappa_median: f64,
    /// Largest off-diagonal κ.
    pub kappa_max: f64,
}

/// The full upper-triangular κ matrix over N trials.
///
/// Cell `(i, j)` with `i < j` holds the complete [`TrialComparison`] of
/// trial `j` against trial `i`; the diagonal is implicit (κ = 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KappaMatrix {
    /// Per-trial labels ("A", "B", … "Z", "AA", …).
    pub labels: Vec<String>,
    /// Upper-triangular cells in row-major `(i, j), i < j` order.
    pub cells: Vec<TrialComparison>,
}

impl KappaMatrix {
    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.labels.len()
    }

    /// Number of off-diagonal pairs.
    pub fn pairs(&self) -> usize {
        self.cells.len()
    }

    fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.labels.len());
        let n = self.labels.len();
        i * n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// The comparison for `(i, j)` (either order); `None` on the diagonal
    /// or out of range.
    pub fn get(&self, i: usize, j: usize) -> Option<&TrialComparison> {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if i == j || j >= self.labels.len() {
            return None;
        }
        self.cells.get(self.offset(i, j))
    }

    /// κ of `(i, j)`; 1.0 on the diagonal.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn kappa(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.labels.len() && j < self.labels.len(), "index out of range");
        if i == j {
            1.0
        } else {
            self.get(i, j).expect("in-range off-diagonal cell").metrics.kappa
        }
    }

    /// The baseline row (everything vs trial 0), relabelled per run — a
    /// drop-in for the paper's B-vs-A, C-vs-A, … comparisons.
    pub fn baseline_row(&self) -> Vec<TrialComparison> {
        (1..self.trials())
            .map(|j| {
                let mut c = self.get(0, j).expect("baseline cell").clone();
                c.label = self.labels[j].clone();
                c
            })
            .collect()
    }

    /// Min/median/max of the off-diagonal κ values; `None` for fewer than
    /// two trials.
    pub fn summary(&self) -> Option<MatrixSummary> {
        if self.cells.is_empty() {
            return None;
        }
        let mut kappas: Vec<f64> = self.cells.iter().map(|c| c.metrics.kappa).collect();
        kappas.sort_by(|a, b| a.partial_cmp(b).expect("kappa not NaN"));
        Some(MatrixSummary {
            trials: self.trials(),
            pairs: self.pairs(),
            kappa_min: kappas[0],
            kappa_median: stats::percentile_sorted(&kappas, 50.0),
            kappa_max: *kappas.last().expect("non-empty"),
        })
    }

    /// Sum of every cell's per-stage wall-clock timings.
    pub fn total_timings(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for c in &self.cells {
            t.add(&c.timings);
        }
        t
    }
}

/// Diagnostics from one sharded run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Worker threads actually used (min of `shards` and the pair count).
    pub shards_used: usize,
    /// Peak number of workers observed alive at once (≤ `shards`).
    pub peak_workers: usize,
    /// Wall-clock spent building the per-trial indexes, ns.
    pub index_build_ns: u64,
    /// Wall-clock of the pair computation (pool start to last join), ns.
    pub pair_wall_ns: u64,
}

/// Serial reference: the full matrix via the original uncached
/// [`analyze_with`] path, one pair at a time. This is the ground truth the
/// sharded engine must reproduce bit-for-bit.
pub fn all_pairs_serial(trials: &[Trial]) -> KappaMatrix {
    all_pairs_serial_with(trials, &KappaConfig::paper())
}

/// [`all_pairs_serial`] with a custom κ configuration.
pub fn all_pairs_serial_with(trials: &[Trial], cfg: &KappaConfig) -> KappaMatrix {
    let labels: Vec<String> = (0..trials.len()).map(trial_label).collect();
    let mut cells = Vec::with_capacity(pair_count(trials.len()));
    for i in 0..trials.len() {
        for j in i + 1..trials.len() {
            let label = format!("{}-{}", labels[i], labels[j]);
            cells.push(analyze_with(label, &trials[i], &trials[j], cfg));
        }
    }
    KappaMatrix { labels, cells }
}

/// Sharded all-pairs analysis with the paper's κ configuration.
pub fn all_pairs_sharded(trials: &[Trial], shards: usize) -> KappaMatrix {
    all_pairs_sharded_with(trials, shards, &KappaConfig::paper()).0
}

/// Sharded all-pairs analysis: build every [`TrialIndex`] once, then let a
/// bounded pool of at most `shards` workers steal pair indices from a
/// shared cursor. Bit-identical to [`all_pairs_serial_with`] for any
/// `shards ≥ 1`.
pub fn all_pairs_sharded_with(
    trials: &[Trial],
    shards: usize,
    cfg: &KappaConfig,
) -> (KappaMatrix, EngineStats) {
    let n = trials.len();
    let labels: Vec<String> = (0..n).map(trial_label).collect();
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| (i + 1..n as u32).map(move |j| (i, j)))
        .collect();

    let _span = obs::span("allpairs");
    let t_index = Instant::now();
    let indexes: Vec<TrialIndex<'_>> = {
        let _s = obs::span("index_build");
        trials.iter().map(TrialIndex::build).collect()
    };
    let index_build_ns = t_index.elapsed().as_nanos() as u64;

    let workers = shards.max(1).min(pairs.len().max(1));
    let analyze_pair = |&(i, j): &(u32, u32)| {
        let (i, j) = (i as usize, j as usize);
        let label = format!("{}-{}", labels[i], labels[j]);
        PairAnalyzer::from_indexes(&indexes[i], &indexes[j])
            .label(label)
            .config(*cfg)
            .analyze()
    };

    let t_pairs = Instant::now();
    let mut stats = EngineStats {
        shards_used: workers,
        peak_workers: usize::from(!pairs.is_empty()),
        index_build_ns,
        pair_wall_ns: 0,
    };
    let cells: Vec<TrialComparison> = if workers <= 1 {
        let _s = obs::span("pairs");
        let cells: Vec<TrialComparison> = pairs.iter().map(analyze_pair).collect();
        obs::counter_add("allpairs.pairs_analyzed", pairs.len() as u64);
        cells
    } else {
        let _s = obs::span("pairs");
        let cursor = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut slots: Vec<Option<TrialComparison>> = Vec::new();
        slots.resize_with(pairs.len(), || None);
        let slots = Mutex::new(slots);
        std::thread::scope(|s| {
            for widx in 0..workers {
                let (cursor, live, peak, slots) = (&cursor, &live, &peak, &slots);
                let (pairs, analyze_pair) = (&pairs, &analyze_pair);
                s.spawn(move || {
                    let alive = live.fetch_add(1, AtomicOrdering::SeqCst) + 1;
                    peak.fetch_max(alive, AtomicOrdering::SeqCst);
                    // Steals are tallied locally and published once per
                    // worker so the disabled path costs one register.
                    let mut stolen = 0u64;
                    loop {
                        let k = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        if k >= pairs.len() {
                            break;
                        }
                        stolen += 1;
                        obs::event("allpairs.steal", widx as u64, k as u64);
                        let cell = analyze_pair(&pairs[k]);
                        slots.lock().expect("cell slots")[k] = Some(cell);
                    }
                    if stolen > 0 {
                        obs::counter_add("allpairs.pairs_analyzed", stolen);
                        obs::gauge_max("allpairs.worker_pairs_peak", stolen);
                    }
                    live.fetch_sub(1, AtomicOrdering::SeqCst);
                });
            }
        });
        stats.peak_workers = peak.load(AtomicOrdering::SeqCst);
        slots
            .into_inner()
            .expect("cell slots")
            .into_iter()
            .map(|c| c.expect("every pair computed"))
            .collect()
    };
    stats.pair_wall_ns = t_pairs.elapsed().as_nanos() as u64;

    let matrix = KappaMatrix { labels, cells };
    if obs::is_enabled() {
        obs::gauge_max("allpairs.shards_used", stats.shards_used as u64);
        obs::gauge_max("allpairs.peak_workers", stats.peak_workers as u64);
        obs::counter_add("allpairs.index_build_ns", stats.index_build_ns);
        obs::counter_add("allpairs.pair_wall_ns", stats.pair_wall_ns);
        // Mirror the per-cell StageTimings so the span tree and the
        // existing per-stage accounting tell one coherent story.
        let t = matrix.total_timings();
        obs::counter_add("allpairs.stage.match_ns", t.match_ns);
        obs::counter_add("allpairs.stage.order_ns", t.order_ns);
        obs::counter_add("allpairs.stage.latency_ns", t.latency_ns);
        obs::counter_add("allpairs.stage.iat_ns", t.iat_ns);
        obs::counter_add("allpairs.stage.histogram_ns", t.histogram_ns);
    }
    (matrix, stats)
}

/// Number of off-diagonal pairs for `n` trials.
pub fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;
    use crate::metrics::iat::iat_full;
    use crate::metrics::latency::latency_full;
    use crate::metrics::report::analyze;

    fn cbr_trial(n: u64, gap: u64, jitter: impl Fn(u64) -> i64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            let base = (i * gap) as i64;
            t.push_tagged(0, 0, i, (base + jitter(i)).max(0) as u64);
        }
        t
    }

    fn jittered_set(n_trials: u64, n_packets: u64) -> Vec<Trial> {
        (0..n_trials)
            .map(|k| cbr_trial(n_packets, 1000, move |i| ((i % (k + 2)) * 31) as i64))
            .collect()
    }

    fn assert_cells_equal(x: &TrialComparison, y: &TrialComparison) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.metrics.kappa.to_bits(), y.metrics.kappa.to_bits());
        assert_eq!(x.metrics.u.to_bits(), y.metrics.u.to_bits());
        assert_eq!(x.metrics.o.to_bits(), y.metrics.o.to_bits());
        assert_eq!(x.metrics.l.to_bits(), y.metrics.l.to_bits());
        assert_eq!(x.metrics.i.to_bits(), y.metrics.i.to_bits());
        assert_eq!(
            (x.a_len, x.b_len, x.common, x.missing, x.extra, x.moved),
            (y.a_len, y.b_len, y.common, y.missing, y.extra, y.moved)
        );
        assert_eq!(x.iat_within_10ns.to_bits(), y.iat_within_10ns.to_bits());
        assert_eq!(x.iat_abs_percentiles_ns, y.iat_abs_percentiles_ns);
        assert_eq!(x.latency_abs_percentiles_ns, y.latency_abs_percentiles_ns);
        assert_eq!(x.edit_stats, y.edit_stats);
        assert_eq!(x.iat_hist.total(), y.iat_hist.total());
        assert_eq!(x.latency_hist.total(), y.latency_hist.total());
    }

    #[test]
    fn indexed_matching_matches_reference() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        // Duplicates, drops, extras, reordering all at once.
        for (s, t) in [(5u64, 0u64), (5, 100), (6, 200), (7, 300)] {
            a.push_tagged(0, 0, s, t);
        }
        for (s, t) in [(6u64, 0u64), (5, 100), (9, 150), (5, 200)] {
            b.push_tagged(0, 0, s, t);
        }
        let ia = TrialIndex::build(&a);
        let ib = TrialIndex::build(&b);
        let m = matching_indexed(&ia, &ib);
        let reference = Matching::build(&a, &b);
        assert_eq!(m.pairs, reference.pairs);
        assert_eq!((m.a_len, m.b_len), (reference.a_len, reference.b_len));
    }

    #[test]
    fn indexed_metrics_bit_identical_to_uncached() {
        let trials = jittered_set(4, 300);
        for i in 0..trials.len() {
            for j in 0..trials.len() {
                let (a, b) = (&trials[i], &trials[j]);
                let (ia, ib) = (TrialIndex::build(a), TrialIndex::build(b));
                let m = Matching::build(a, b);
                let mi = matching_indexed(&ia, &ib);
                assert_eq!(m.pairs, mi.pairs);
                let lat = latency_full(a, b, &m);
                let lat_i = latency_full_indexed(&ia, &ib, &mi);
                assert_eq!(lat.l.to_bits(), lat_i.l.to_bits());
                assert_eq!(lat.deltas_ns, lat_i.deltas_ns);
                let ir = iat_full(a, b, &m);
                let ir_i = iat_full_indexed(&ia, &ib, &mi);
                assert_eq!(ir.i.to_bits(), ir_i.i.to_bits());
                assert_eq!(ir.deltas_ns, ir_i.deltas_ns);
            }
        }
    }

    #[test]
    fn sharded_matrix_bit_identical_to_serial_reference() {
        let trials = jittered_set(5, 400);
        let serial = all_pairs_serial(&trials);
        for shards in [1usize, 2, 8] {
            let (sharded, stats) =
                all_pairs_sharded_with(&trials, shards, &KappaConfig::paper());
            assert_eq!(sharded.labels, serial.labels);
            assert_eq!(sharded.cells.len(), serial.cells.len());
            for (x, y) in sharded.cells.iter().zip(&serial.cells) {
                assert_cells_equal(x, y);
            }
            assert!(stats.peak_workers <= shards, "pool exceeded shard bound");
        }
    }

    #[test]
    fn bounded_pool_never_exceeds_shards() {
        let trials = jittered_set(6, 50); // 15 pairs
        for shards in [1usize, 2, 3, 4] {
            let (_, stats) = all_pairs_sharded_with(&trials, shards, &KappaConfig::paper());
            assert!(
                stats.peak_workers <= shards,
                "shards {shards}: peak {}",
                stats.peak_workers
            );
            assert_eq!(stats.shards_used, shards.min(15));
        }
    }

    #[test]
    fn matrix_indexing_and_summary() {
        let trials = jittered_set(4, 200);
        let m = all_pairs_sharded(&trials, 2);
        assert_eq!(m.trials(), 4);
        assert_eq!(m.pairs(), 6);
        assert_eq!(m.labels, ["A", "B", "C", "D"]);
        // Symmetric accessor, implicit diagonal.
        assert_eq!(m.kappa(0, 0), 1.0);
        assert_eq!(m.kappa(1, 3).to_bits(), m.kappa(3, 1).to_bits());
        assert!(m.get(2, 2).is_none());
        // Every off-diagonal cell is reachable and labelled i-j.
        assert_eq!(m.get(0, 1).unwrap().label, "A-B");
        assert_eq!(m.get(2, 3).unwrap().label, "C-D");
        let s = m.summary().unwrap();
        assert_eq!((s.trials, s.pairs), (4, 6));
        assert!(s.kappa_min <= s.kappa_median && s.kappa_median <= s.kappa_max);
        let all: Vec<f64> = m.cells.iter().map(|c| c.metrics.kappa).collect();
        assert_eq!(s.kappa_min, all.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(s.kappa_max, all.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn baseline_row_matches_legacy_analysis() {
        let trials = jittered_set(4, 300);
        let m = all_pairs_sharded(&trials, 3);
        let row = m.baseline_row();
        assert_eq!(row.len(), 3);
        for (j, c) in row.iter().enumerate() {
            let legacy = analyze(c.label.clone(), &trials[0], &trials[j + 1]);
            assert_cells_equal(c, &legacy);
        }
        assert_eq!(row[0].label, "B");
        assert_eq!(row[2].label, "D");
    }

    #[test]
    fn degenerate_matrices() {
        // Zero or one trial: no pairs, no summary, no panic.
        let none = all_pairs_sharded(&[], 4);
        assert_eq!(none.pairs(), 0);
        assert!(none.summary().is_none());
        let one = all_pairs_sharded(&[Trial::new()], 4);
        assert_eq!(one.pairs(), 0);
        assert!(one.summary().is_none());
        // Empty trials still compare (κ = 1: two empty captures agree).
        let two = all_pairs_sharded(&[Trial::new(), Trial::new()], 4);
        assert_eq!(two.pairs(), 1);
        assert_eq!(two.kappa(0, 1), 1.0);
    }

    #[test]
    fn stage_timings_populated_and_summable() {
        let trials = jittered_set(3, 2_000);
        let m = all_pairs_sharded(&trials, 2);
        let t = m.total_timings();
        // Wall-clock is noisy, but the match stage walks 2000 packets per
        // pair — it cannot be literally zero across all three pairs.
        assert!(t.match_ns > 0, "{t:?}");
        assert_eq!(
            t.total_ns(),
            t.match_ns + t.order_ns + t.latency_ns + t.iat_ns + t.histogram_ns
        );
    }

    #[test]
    fn matrix_serializes() {
        let trials = jittered_set(3, 50);
        let m = all_pairs_sharded(&trials, 2);
        let json = serde_json::to_string(&m).unwrap();
        let back: KappaMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.labels, m.labels);
        assert_eq!(back.pairs(), m.pairs());
        assert_eq!(
            back.kappa(0, 2).to_bits(),
            m.kappa(0, 2).to_bits()
        );
    }
}
