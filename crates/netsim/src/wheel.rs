//! The event queue behind [`crate::Sim`]: a hierarchical timing wheel
//! with a binary-heap reference implementation.
//!
//! The simulator's determinism contract is that events pop in exactly
//! `(time, insertion sequence)` order. A global `BinaryHeap` satisfies
//! that trivially but pays `O(log n)` pointer-chasing per packet event;
//! the wheel replaces it with `O(1)` bucket pushes for the near future
//! (where virtually every wire event lands) while far-future events
//! (replay schedules, PTP resyncs) overflow into a small heap that is
//! drained into the wheel as the horizon advances. Both implementations
//! pop in the identical order — a property the proptests in this module
//! assert against random schedules.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the bucket width in picoseconds (65.536 ns per bucket: about
/// half a 1400-byte serialization at 100 Gbps, so back-to-back wire
/// events map to distinct or adjacent buckets).
const BUCKET_BITS: u32 = 16;
/// Bucket width in ps.
const BUCKET_WIDTH: u64 = 1 << BUCKET_BITS;
/// Buckets in the wheel (power of two). Horizon = width × buckets ≈ 67 µs.
const NUM_BUCKETS: usize = 1024;
/// Span of simulated time the wheel covers before events overflow.
const HORIZON: u64 = BUCKET_WIDTH * NUM_BUCKETS as u64;

/// Which event-queue implementation a [`crate::Sim`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The hierarchical timing wheel (production path).
    #[default]
    Wheel,
    /// The original global `BinaryHeap` (reference path, kept for the
    /// golden-capture equivalence tests).
    Heap,
}

struct Entry<T> {
    t: u64,
    seq: u64,
    item: T,
}

/// Heap entry ordered earliest-first (reversed, since `BinaryHeap` is a
/// max-heap).
struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.t == other.0.t && self.0.seq == other.0.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0.t, other.0.seq).cmp(&(self.0.t, self.0.seq))
    }
}

/// A hierarchical timing wheel preserving exact `(time, seq)` pop order.
///
/// Near-future events (within [`HORIZON`] of the cursor) live in
/// fixed-width buckets; everything further out waits in an overflow heap
/// and is migrated into buckets as the cursor sweeps forward. Buckets
/// cover disjoint time spans, so the global minimum is always the
/// `(t, seq)`-minimum of the first non-empty bucket.
///
/// Non-cursor buckets are unsorted append-only deques (`O(1)` push).
/// When the cursor enters a bucket it is sorted once; from then on pops
/// are `O(1)` front removals and new same-span pushes keep order by
/// sorted insertion — which is nearly always a tail append, because new
/// events carry a later `(t, seq)` than everything already queued. This
/// matters when simulated event spacing is much finer than the bucket
/// width: the whole working set then lives in the cursor bucket, and a
/// min-scan per pop would degenerate to `O(depth)`.
pub struct TimingWheel<T> {
    /// Start time (inclusive) of the cursor bucket's span; aligned to
    /// `BUCKET_WIDTH`.
    start: u64,
    cursor: usize,
    buckets: Vec<VecDeque<Entry<T>>>,
    /// The cursor bucket is currently in sorted order (pops may take the
    /// front; pushes into it must insert in order).
    cursor_sorted: bool,
    /// Entries at `t >= start + HORIZON`.
    overflow: BinaryHeap<HeapEntry<T>>,
    /// Entries in buckets (excludes overflow).
    in_wheel: usize,
    len: usize,
    depth_peak: usize,
    /// Pushes that landed past the horizon and spilled to the heap.
    overflow_spills: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel starting at t = 0.
    pub fn new() -> Self {
        TimingWheel {
            start: 0,
            cursor: 0,
            buckets: (0..NUM_BUCKETS).map(|_| VecDeque::new()).collect(),
            cursor_sorted: false,
            overflow: BinaryHeap::new(),
            in_wheel: 0,
            len: 0,
            depth_peak: 0,
            overflow_spills: 0,
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of queued events (diagnostics).
    pub fn depth_peak(&self) -> usize {
        self.depth_peak
    }

    /// Pushes that fell past the horizon into the overflow heap
    /// (diagnostics; each one costs a heap op now and a migration later).
    pub fn overflow_spills(&self) -> u64 {
        self.overflow_spills
    }

    fn bucket_of(t: u64) -> usize {
        ((t >> BUCKET_BITS) as usize) & (NUM_BUCKETS - 1)
    }

    /// Queue `item` at `(t, seq)`. Times earlier than the cursor's span
    /// are clamped into the cursor bucket (the engine never schedules
    /// into the past, but clamping keeps ordering sane if it did).
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        if t >= self.start + HORIZON {
            self.overflow_spills += 1;
            choir_obs::event("wheel.overflow_spill", t, seq);
            self.overflow.push(HeapEntry(Entry { t, seq, item }));
        } else {
            let idx = if t < self.start {
                self.cursor
            } else {
                Self::bucket_of(t)
            };
            let b = &mut self.buckets[idx];
            if idx == self.cursor && self.cursor_sorted {
                // Keep the sorted bucket sorted. New events almost always
                // carry the largest (t, seq) so far, so the binary search
                // lands at the back and this is a plain append.
                let pos = b.partition_point(|e| (e.t, e.seq) < (t, seq));
                if pos == b.len() {
                    b.push_back(Entry { t, seq, item });
                } else {
                    b.insert(pos, Entry { t, seq, item });
                }
            } else {
                b.push_back(Entry { t, seq, item });
            }
            self.in_wheel += 1;
        }
        self.len += 1;
        self.depth_peak = self.depth_peak.max(self.len);
    }

    /// Advance the cursor one bucket and migrate any overflow entries
    /// that the new horizon now covers.
    fn advance(&mut self) {
        self.start += BUCKET_WIDTH;
        self.cursor = (self.cursor + 1) & (NUM_BUCKETS - 1);
        self.cursor_sorted = false;
        let horizon_end = self.start + HORIZON;
        while let Some(top) = self.overflow.peek() {
            if top.0.t >= horizon_end {
                break;
            }
            let HeapEntry(e) = self.overflow.pop().expect("peeked");
            self.buckets[Self::bucket_of(e.t)].push_back(e);
            self.in_wheel += 1;
        }
    }

    /// Jump the cursor directly to the span containing `t` (only valid
    /// while every bucket is empty).
    fn fast_forward_to(&mut self, t: u64) {
        debug_assert_eq!(self.in_wheel, 0);
        self.start = t & !(BUCKET_WIDTH - 1);
        self.cursor = Self::bucket_of(t);
        self.cursor_sorted = false;
        let horizon_end = self.start + HORIZON;
        while let Some(top) = self.overflow.peek() {
            if top.0.t >= horizon_end {
                break;
            }
            let HeapEntry(e) = self.overflow.pop().expect("peeked");
            self.buckets[Self::bucket_of(e.t)].push_back(e);
            self.in_wheel += 1;
        }
    }

    /// Move the cursor to the first non-empty bucket and sort it so the
    /// front entry is the global `(t, seq)` minimum. Caller guarantees
    /// `len > 0`.
    fn seek(&mut self) {
        if self.in_wheel == 0 {
            let t = self.overflow.peek().expect("len > 0").0.t;
            self.fast_forward_to(t);
        }
        while self.buckets[self.cursor].is_empty() {
            self.advance();
        }
        if !self.cursor_sorted {
            self.buckets[self.cursor]
                .make_contiguous()
                .sort_unstable_by_key(|e| (e.t, e.seq));
            self.cursor_sorted = true;
        }
    }

    /// The `(time, seq)` of the next event, without removing it.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        self.seek();
        let e = self.buckets[self.cursor].front().expect("seek: non-empty");
        Some((e.t, e.seq))
    }

    /// Remove and return the next event if its time is `<= deadline`.
    pub fn pop_due(&mut self, deadline: u64) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.seek();
        let b = &mut self.buckets[self.cursor];
        if b.front().expect("seek: non-empty").t > deadline {
            return None;
        }
        let e = b.pop_front().expect("checked front");
        self.in_wheel -= 1;
        self.len -= 1;
        Some((e.t, e.item))
    }
}

/// The pluggable event queue: wheel or reference heap, identical order.
pub struct EventQueue<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Wheel(TimingWheel<T>),
    Heap {
        heap: BinaryHeap<HeapEntry<T>>,
        depth_peak: usize,
    },
}

impl<T> EventQueue<T> {
    /// An empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        let inner = match kind {
            QueueKind::Wheel => Inner::Wheel(TimingWheel::new()),
            QueueKind::Heap => Inner::Heap {
                heap: BinaryHeap::new(),
                depth_peak: 0,
            },
        };
        EventQueue { inner }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len(),
            Inner::Heap { heap, .. } => heap.len(),
        }
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of queued events.
    pub fn depth_peak(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.depth_peak(),
            Inner::Heap { depth_peak, .. } => *depth_peak,
        }
    }

    /// Overflow-heap spills so far (always 0 for the reference heap).
    pub fn overflow_spills(&self) -> u64 {
        match &self.inner {
            Inner::Wheel(w) => w.overflow_spills(),
            Inner::Heap { .. } => 0,
        }
    }

    /// Queue `item` at `(t, seq)`.
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        match &mut self.inner {
            Inner::Wheel(w) => w.push(t, seq, item),
            Inner::Heap { heap, depth_peak } => {
                heap.push(HeapEntry(Entry { t, seq, item }));
                *depth_peak = (*depth_peak).max(heap.len());
            }
        }
    }

    /// The time of the next event, without removing it. Used by the
    /// shard coordinator to compute the conservative horizon.
    pub fn peek_time(&mut self) -> Option<u64> {
        match &mut self.inner {
            Inner::Wheel(w) => w.peek_key().map(|(t, _)| t),
            Inner::Heap { heap, .. } => heap.peek().map(|e| e.0.t),
        }
    }

    /// Remove and return the next event if its time is `<= deadline`.
    pub fn pop_due(&mut self, deadline: u64) -> Option<(u64, T)> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop_due(deadline),
            Inner::Heap { heap, .. } => {
                if heap.peek().is_some_and(|e| e.0.t <= deadline) {
                    let HeapEntry(e) = heap.pop().expect("peeked");
                    Some((e.t, e.item))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drain both queues fully and assert identical pop order.
    fn assert_same_order(pushes: &[(u64, u64)]) {
        let mut wheel = EventQueue::new(QueueKind::Wheel);
        let mut heap = EventQueue::new(QueueKind::Heap);
        for &(t, seq) in pushes {
            wheel.push(t, seq, seq);
            heap.push(t, seq, seq);
        }
        loop {
            let a = wheel.pop_due(u64::MAX);
            let b = heap.pop_due(u64::MAX);
            assert_eq!(a, b, "wheel and heap disagree");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.pop_due(u64::MAX).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn fifo_within_same_time() {
        let mut w = TimingWheel::new();
        for seq in 0..10u64 {
            w.push(500, seq, seq);
        }
        for seq in 0..10 {
            assert_eq!(w.pop_due(u64::MAX), Some((500, seq)));
        }
    }

    #[test]
    fn deadline_is_respected() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 'a');
        w.push(200, 1, 'b');
        assert_eq!(w.pop_due(150), Some((100, 'a')));
        assert!(w.pop_due(150).is_none());
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(200), Some((200, 'b')));
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w = TimingWheel::new();
        // Beyond the horizon in several rotations' worth of spread.
        let times = [
            5 * HORIZON + 3,
            HORIZON,
            2,
            HORIZON - 1,
            3 * HORIZON + BUCKET_WIDTH,
            HORIZON + BUCKET_WIDTH / 2,
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, t);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, _)) = w.pop_due(u64::MAX) {
            popped.push(t);
        }
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        // Pops advance the cursor; later pushes at the current time must
        // still come out after earlier same-time entries (seq order).
        let mut w = TimingWheel::new();
        w.push(1_000, 0, 0u64);
        w.push(2_000_000, 1, 1);
        assert_eq!(w.pop_due(u64::MAX), Some((1_000, 0)));
        // Now at t=1000; push same-time and future entries.
        w.push(1_000, 2, 2);
        w.push(1_500, 3, 3);
        assert_eq!(w.pop_due(u64::MAX), Some((1_000, 2)));
        assert_eq!(w.pop_due(u64::MAX), Some((1_500, 3)));
        assert_eq!(w.pop_due(u64::MAX), Some((2_000_000, 1)));
    }

    #[test]
    fn depth_peak_tracks_high_water() {
        let mut w = TimingWheel::new();
        for i in 0..5u64 {
            w.push(i, i, i);
        }
        w.pop_due(u64::MAX);
        w.push(10, 5, 5);
        assert_eq!(w.depth_peak(), 5);
    }

    proptest! {
        /// The wheel pops random schedules in exactly the order the
        /// BinaryHeap reference does.
        #[test]
        fn wheel_matches_heap_on_random_schedules(
            times in proptest::collection::vec(0u64..(4 * HORIZON), 1..200)
        ) {
            let pushes: Vec<(u64, u64)> = times
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, i as u64))
                .collect();
            assert_same_order(&pushes);
        }

        /// Same, with monotonically-scheduled interleaved push/pop the
        /// way the simulator drives its queue (every push at or after the
        /// last popped time).
        #[test]
        fn wheel_matches_heap_under_simulation_discipline(
            rounds in proptest::collection::vec(
                (proptest::collection::vec(0u64..(2 * HORIZON), 0..8), 1usize..6),
                1..40,
            )
        ) {
            let mut wheel = EventQueue::new(QueueKind::Wheel);
            let mut heap = EventQueue::new(QueueKind::Heap);
            let mut seq = 0u64;
            let mut now = 0u64;
            for (deltas, pops) in rounds {
                for d in deltas {
                    let t = now + d;
                    wheel.push(t, seq, seq);
                    heap.push(t, seq, seq);
                    seq += 1;
                }
                for _ in 0..pops {
                    let a = wheel.pop_due(u64::MAX);
                    let b = heap.pop_due(u64::MAX);
                    prop_assert_eq!(&a, &b);
                    if let Some((t, _)) = a {
                        now = t;
                    } else {
                        break;
                    }
                }
            }
            // Drain what remains.
            loop {
                let a = wheel.pop_due(u64::MAX);
                let b = heap.pop_due(u64::MAX);
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
