//! Reordering probability as a function of packet spacing — the
//! Bellardo–Savage-style view the paper's related-work section points at
//! (§9: "their metric shows reordering (as a probability) as a function
//! of inter-packet spacing... Our metrics capture the distance of
//! reordering, and could also be shown as a function of spacing").
//!
//! For each spacing `k`, we sample all pairs of common packets that are
//! `k` apart in trial B and report the probability that their relative
//! order differs from trial A. This complements `O`: `O` weights *how
//! far* packets moved; this profile shows *at what spacings* inversions
//! occur (e.g. §6.2's burst-offset reordering shows up as inversions
//! concentrated at spacings up to one burst length).

use super::matching::Matching;

/// Reordering probability per spacing.
#[derive(Debug, Clone)]
pub struct ReorderProfile {
    /// `prob[k-1]` = probability that two common packets `k` apart in B
    /// are inverted relative to A.
    pub prob: Vec<f64>,
    /// Number of pairs sampled per spacing.
    pub samples: Vec<u64>,
}

impl ReorderProfile {
    /// Probability of inversion at spacing `k` (1-based), if measured.
    pub fn at(&self, k: usize) -> Option<f64> {
        self.prob.get(k.checked_sub(1)?).copied()
    }

    /// The largest spacing with a non-zero inversion probability.
    pub fn max_inverted_spacing(&self) -> Option<usize> {
        self.prob
            .iter()
            .rposition(|&p| p > 0.0)
            .map(|idx| idx + 1)
    }
}

/// Compute the inversion-probability profile up to spacing `max_k`.
///
/// Runs in O(m · max_k) over the m common packets.
pub fn reorder_profile(m: &Matching, max_k: usize) -> ReorderProfile {
    // a_rank of each common packet, in B order (same ranking as `ordering`).
    let mc = m.common();
    let mut order: Vec<u32> = (0..mc as u32).collect();
    order.sort_unstable_by_key(|&k| m.pairs[k as usize].a_idx);
    let mut seq = vec![0u32; mc];
    for (a_rank, &k) in order.iter().enumerate() {
        seq[k as usize] = a_rank as u32;
    }

    let kmax = max_k.min(mc.saturating_sub(1));
    let mut inverted = vec![0u64; kmax];
    let mut samples = vec![0u64; kmax];
    for k in 1..=kmax {
        for i in 0..mc - k {
            samples[k - 1] += 1;
            if seq[i] > seq[i + k] {
                inverted[k - 1] += 1;
            }
        }
    }
    let prob = inverted
        .iter()
        .zip(&samples)
        .map(|(&inv, &s)| if s == 0 { 0.0 } else { inv as f64 / s as f64 })
        .collect();
    ReorderProfile { prob, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::trial::Trial;

    fn trial(seqs: &[u64]) -> Trial {
        let mut t = Trial::new();
        for (i, &s) in seqs.iter().enumerate() {
            t.push_tagged(0, 0, s, i as u64 * 100);
        }
        t
    }

    fn profile(a: &[u64], b: &[u64], k: usize) -> ReorderProfile {
        reorder_profile(&Matching::build(&trial(a), &trial(b)), k)
    }

    #[test]
    fn in_order_has_zero_probability() {
        let p = profile(&[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4], 4);
        assert!(p.prob.iter().all(|&x| x == 0.0));
        assert_eq!(p.max_inverted_spacing(), None);
    }

    #[test]
    fn adjacent_swap_shows_at_spacing_one() {
        let p = profile(&[0, 1, 2, 3], &[1, 0, 2, 3], 3);
        // One inverted pair of 3 at spacing 1.
        assert!((p.at(1).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.at(2).unwrap(), 0.0);
        assert_eq!(p.max_inverted_spacing(), Some(1));
    }

    #[test]
    fn full_reversal_inverts_everything() {
        let p = profile(&[0, 1, 2, 3, 4], &[4, 3, 2, 1, 0], 4);
        for k in 1..=4 {
            assert_eq!(p.at(k).unwrap(), 1.0, "spacing {k}");
        }
    }

    #[test]
    fn burst_swap_concentrates_at_short_spacings() {
        // Two 4-packet bursts swapped: at spacing 8-1.. the profile decays.
        let a: Vec<u64> = (0..8).collect();
        let b: Vec<u64> = vec![4, 5, 6, 7, 0, 1, 2, 3];
        let p = profile(&a, &b, 7);
        // Spacing 4 compares i and i+4: all 4 pairs inverted.
        assert_eq!(p.at(4).unwrap(), 1.0);
        // Spacing 1: ordered within bursts, inverted only at the boundary
        // (pair 7,0) -> 1 of 7.
        assert!((p.at(1).unwrap() - 1.0 / 7.0).abs() < 1e-12);
        // Spacing 7: pair (4, 3): inverted.
        assert_eq!(p.at(7).unwrap(), 1.0);
    }

    #[test]
    fn spacing_capped_by_length() {
        let p = profile(&[0, 1], &[0, 1], 100);
        assert_eq!(p.prob.len(), 1);
        assert_eq!(p.samples[0], 1);
    }

    #[test]
    fn empty_matching() {
        let p = profile(&[], &[], 5);
        assert!(p.prob.is_empty());
    }
}
