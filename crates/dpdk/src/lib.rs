//! # choir-dpdk
//!
//! A miniature user-space dataplane with DPDK-like semantics. The original
//! Choir is "a 850-line C program using DPDK as the only library" (paper
//! §5); this crate supplies the slice of DPDK that program relies on, so
//! the Rust port of Choir (`choir-core::replay`) can be written against the
//! same concepts:
//!
//! - [`Mempool`] / [`Mbuf`] — fixed-capacity message-buffer pools. Cloning
//!   an [`Mbuf`] bumps a refcount; holding transmitted packets for a
//!   recording consumes pool slots but copies nothing (paper §4).
//! - [`Burst`] — up-to-64-packet transmit/receive bursts (paper §5:
//!   "transmits packets in up to 64-packet bursts").
//! - [`SpscRing`] — a lock-free single-producer/single-consumer descriptor
//!   ring, the building block of the real-time backend.
//! - [`Dataplane`] — the trait apps poll: `rx_burst`/`tx_burst`, TSC reads,
//!   a PTP-disciplined wall clock, and wake-up scheduling. Implemented by
//!   the simulator (`choir-netsim`) and by the in-process real-time
//!   [`loopback`] backend.
//!
//! Like DPDK, `tx_burst` is only a *notification*: buffers handed to the
//! NIC are pulled by DMA at a later time (paper §2.3), which both backends
//! model.

pub mod burst;
pub mod fault;
pub mod loopback;
pub mod mbuf;
pub mod plane;
pub mod ring;
pub mod stats;

pub use burst::{Burst, MAX_BURST};
pub use fault::{FaultConfig, FaultStats, FaultyDataplane};
pub use mbuf::{Mbuf, Mempool, PoolExhausted};
pub use plane::{App, ControlMsg, Dataplane, PortId};
pub use ring::SpscRing;
pub use stats::PortStats;
