//! FABRIC sites: finite pools of cores, RAM, disk and NIC components.
//!
//! The paper reports running "in a large yet barely used site, which only
//! had allocated 2% of available CPU, 1.1% of RAM and 0.8% of disk space"
//! (§7) — utilization is a first-class observable here for exactly that
//! kind of statement.

use serde::{Deserialize, Serialize};

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough CPU cores free.
    Cores {
        /// Cores requested.
        requested: u32,
        /// Cores free.
        free: u32,
    },
    /// Not enough RAM free (GB).
    Ram {
        /// GB requested.
        requested: u32,
        /// GB free.
        free: u32,
    },
    /// Not enough disk free (GB).
    Disk {
        /// GB requested.
        requested: u32,
        /// GB free.
        free: u32,
    },
    /// No dedicated SmartNIC components left.
    SmartNics,
    /// No shared-NIC virtual functions left.
    SharedVfs,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Cores { requested, free } => {
                write!(f, "insufficient cores: need {requested}, {free} free")
            }
            AllocError::Ram { requested, free } => {
                write!(f, "insufficient RAM: need {requested} GB, {free} GB free")
            }
            AllocError::Disk { requested, free } => {
                write!(f, "insufficient disk: need {requested} GB, {free} GB free")
            }
            AllocError::SmartNics => write!(f, "no dedicated SmartNICs available"),
            AllocError::SharedVfs => write!(f, "no shared-NIC VFs available"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Fractional utilization of a site's resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteUsage {
    /// Fraction of cores allocated.
    pub cpu: f64,
    /// Fraction of RAM allocated.
    pub ram: f64,
    /// Fraction of disk allocated.
    pub disk: f64,
}

/// One FABRIC site's capacity and current allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Site name (FABRIC names sites after their locations).
    pub name: String,
    total_cores: u32,
    total_ram_gb: u32,
    total_disk_gb: u32,
    smart_nics: u32,
    shared_vfs: u32,
    used_cores: u32,
    used_ram_gb: u32,
    used_disk_gb: u32,
    used_smart_nics: u32,
    used_shared_vfs: u32,
}

impl Site {
    /// A site with explicit capacities.
    pub fn new(
        name: impl Into<String>,
        cores: u32,
        ram_gb: u32,
        disk_gb: u32,
        smart_nics: u32,
        shared_vfs: u32,
    ) -> Self {
        Site {
            name: name.into(),
            total_cores: cores,
            total_ram_gb: ram_gb,
            total_disk_gb: disk_gb,
            smart_nics,
            shared_vfs,
            used_cores: 0,
            used_ram_gb: 0,
            used_disk_gb: 0,
            used_smart_nics: 0,
            used_shared_vfs: 0,
        }
    }

    /// A large site in the mold of FABRIC's bigger deployments
    /// (hundreds of cores, terabytes of RAM, a handful of dedicated
    /// ConnectX-6 components, many shared VFs).
    pub fn large(name: impl Into<String>) -> Self {
        Site::new(name, 640, 5_120, 100_000, 6, 128)
    }

    /// A small edge site.
    pub fn small(name: impl Into<String>) -> Self {
        Site::new(name, 64, 512, 10_000, 1, 32)
    }

    /// A catalog in the spirit of FABRIC's federation — "an
    /// intercontinental distribution of 33 sites" (§2.1); a handful of
    /// varied capacities is enough to exercise placement.
    pub fn catalog() -> Vec<Site> {
        vec![
            Site::small("EDUKY"),
            Site::small("CERN"),
            Site::large("STAR"),
            Site::large("TACC"),
            Site::large("UTAH"),
            Site::new("DALL", 320, 2_560, 50_000, 2, 64),
        ]
    }

    /// Current utilization fractions.
    pub fn usage(&self) -> SiteUsage {
        let frac = |used: u32, total: u32| {
            if total == 0 {
                0.0
            } else {
                used as f64 / total as f64
            }
        };
        SiteUsage {
            cpu: frac(self.used_cores, self.total_cores),
            ram: frac(self.used_ram_gb, self.total_ram_gb),
            disk: frac(self.used_disk_gb, self.total_disk_gb),
        }
    }

    /// Reserve compute for one node. All-or-nothing.
    pub fn reserve_compute(
        &mut self,
        cores: u32,
        ram_gb: u32,
        disk_gb: u32,
    ) -> Result<(), AllocError> {
        let free_cores = self.total_cores - self.used_cores;
        if cores > free_cores {
            return Err(AllocError::Cores {
                requested: cores,
                free: free_cores,
            });
        }
        let free_ram = self.total_ram_gb - self.used_ram_gb;
        if ram_gb > free_ram {
            return Err(AllocError::Ram {
                requested: ram_gb,
                free: free_ram,
            });
        }
        let free_disk = self.total_disk_gb - self.used_disk_gb;
        if disk_gb > free_disk {
            return Err(AllocError::Disk {
                requested: disk_gb,
                free: free_disk,
            });
        }
        self.used_cores += cores;
        self.used_ram_gb += ram_gb;
        self.used_disk_gb += disk_gb;
        Ok(())
    }

    /// Reserve one dedicated SmartNIC component.
    pub fn reserve_smart_nic(&mut self) -> Result<(), AllocError> {
        if self.used_smart_nics >= self.smart_nics {
            return Err(AllocError::SmartNics);
        }
        self.used_smart_nics += 1;
        Ok(())
    }

    /// Reserve one shared-NIC virtual function.
    pub fn reserve_shared_vf(&mut self) -> Result<(), AllocError> {
        if self.used_shared_vfs >= self.shared_vfs {
            return Err(AllocError::SharedVfs);
        }
        self.used_shared_vfs += 1;
        Ok(())
    }

    /// Release everything a failed or torn-down slice held. (Release is
    /// whole-slice granular, like deleting a FABRIC slice.)
    pub fn release(&mut self, cores: u32, ram_gb: u32, disk_gb: u32, smart: u32, vfs: u32) {
        self.used_cores -= cores.min(self.used_cores);
        self.used_ram_gb -= ram_gb.min(self.used_ram_gb);
        self.used_disk_gb -= disk_gb.min(self.used_disk_gb);
        self.used_smart_nics -= smart.min(self.used_smart_nics);
        self.used_shared_vfs -= vfs.min(self.used_shared_vfs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_tracks_reservations() {
        let mut s = Site::large("TACC");
        s.reserve_compute(13, 56, 800).unwrap();
        let u = s.usage();
        // The paper's "2% CPU, 1.1% RAM, 0.8% disk" barely-used site.
        assert!((u.cpu - 0.0203).abs() < 0.001, "cpu {}", u.cpu);
        assert!((u.ram - 0.0109).abs() < 0.001, "ram {}", u.ram);
        assert!((u.disk - 0.008).abs() < 0.001, "disk {}", u.disk);
    }

    #[test]
    fn compute_reservation_is_all_or_nothing() {
        let mut s = Site::new("tiny", 4, 8, 100, 0, 0);
        // RAM fails: cores must not leak.
        let e = s.reserve_compute(2, 100, 10).unwrap_err();
        assert!(matches!(e, AllocError::Ram { .. }));
        assert_eq!(s.usage().cpu, 0.0);
        s.reserve_compute(4, 8, 100).unwrap();
        assert!(matches!(
            s.reserve_compute(1, 0, 0),
            Err(AllocError::Cores { free: 0, .. })
        ));
    }

    #[test]
    fn nic_stock_is_finite() {
        let mut s = Site::new("nicky", 64, 256, 1000, 2, 3);
        s.reserve_smart_nic().unwrap();
        s.reserve_smart_nic().unwrap();
        assert_eq!(s.reserve_smart_nic(), Err(AllocError::SmartNics));
        for _ in 0..3 {
            s.reserve_shared_vf().unwrap();
        }
        assert_eq!(s.reserve_shared_vf(), Err(AllocError::SharedVfs));
    }

    #[test]
    fn release_returns_resources() {
        let mut s = Site::new("r", 8, 32, 100, 1, 1);
        s.reserve_compute(8, 32, 100).unwrap();
        s.reserve_smart_nic().unwrap();
        s.release(8, 32, 100, 1, 0);
        assert_eq!(s.usage().cpu, 0.0);
        s.reserve_smart_nic().unwrap();
    }

    #[test]
    fn errors_display() {
        let e = AllocError::Cores {
            requested: 9,
            free: 2,
        };
        assert!(e.to_string().contains("9"));
        assert!(AllocError::SmartNics.to_string().contains("SmartNIC"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Site::large("x");
        let j = serde_json::to_string(&s).unwrap();
        let back: Site = serde_json::from_str(&j).unwrap();
        assert_eq!(back.name, "x");
        assert_eq!(back.total_cores, 640);
    }
}
