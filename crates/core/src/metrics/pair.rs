//! The unified pair-analysis entry point.
//!
//! Historically every metric shipped its own free-function zoo
//! (`uniqueness`/`uniqueness_of`, `ordering`/`ordering_of`,
//! `latency`/`latency_full`/`latency_of`, `iat`/`iat_full`/`iat_of`, plus
//! the `*_indexed` variants in [`super::allpairs`]), each rebuilding or
//! re-threading the [`Matching`] by hand. [`PairAnalyzer`] collapses them
//! behind one builder that owns the matching (built lazily, built once)
//! and dispatches to the exact same kernels — plain-trial or
//! index-cached — so results stay bit-identical to the deprecated paths.
//!
//! ```
//! use choir_core::metrics::{PairAnalyzer, Trial};
//!
//! let mut a = Trial::new();
//! let mut b = Trial::new();
//! for i in 0..10u64 {
//!     a.push_tagged(0, 0, i, i * 1000);
//!     b.push_tagged(0, 0, i, i * 1000 + (i % 3) * 7);
//! }
//! // Quick look: just the metrics.
//! let m = PairAnalyzer::new(&a, &b).metrics();
//! assert_eq!(m.u, 0.0);
//! // Full report: histograms, percentiles, edit script, timings.
//! let cmp = PairAnalyzer::new(&a, &b).label("B").analyze();
//! assert_eq!(cmp.common, 10);
//! ```
//!
//! The migration table from the old free functions lives in DESIGN.md §12.

use std::time::Instant;

use super::allpairs::TrialIndex;
use super::histogram::DeltaHistogram;
use super::iat::{iat_arena, iat_full_core, IatResult};
use super::kappa::{ConsistencyMetrics, KappaConfig};
use super::latency::{latency_arena, latency_full_core, LatencyResult};
use super::matching::{matching_arena, Matching};
use super::ordering::{ordering_arena, ordering_core, OrderScratch};
use super::report::{abs_percentiles_ns, abs_percentiles_ns_bits, StageTimings, TrialComparison};
use super::trial::Trial;
use super::uniqueness::uniqueness_core;

/// Reusable per-worker workspace for the arena analysis path: the delta
/// series, the percentile sort keys, and the ordering kernel's scratch.
/// One `PairScratch` per worker thread means zero steady-state heap
/// allocation per pair beyond the returned report itself.
#[derive(Debug, Default)]
pub struct PairScratch {
    pub(crate) iat_deltas: Vec<f64>,
    pub(crate) latency_deltas: Vec<f64>,
    pub(crate) sort_bits: Vec<u64>,
    pub(crate) order: OrderScratch,
}

impl PairScratch {
    /// An empty workspace; buffers grow to the largest pair analyzed.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Where a pair's observations come from: borrowed trials (the matching
/// is built from scratch) or prebuilt [`TrialIndex`]es (the sharded
/// engine's cached path).
enum Source<'t> {
    Trials { a: &'t Trial, b: &'t Trial },
    Indexed { a: &'t TrialIndex<'t>, b: &'t TrialIndex<'t> },
}

/// Builder-style analyzer for one trial pair.
///
/// Owns the [`Matching`] cache: the first accessor that needs it builds
/// it, every later call (including [`PairAnalyzer::analyze`]) reuses it.
/// All outputs are bit-identical to the deprecated free-function paths —
/// the same kernels run on the same operands in the same order.
pub struct PairAnalyzer<'t> {
    source: Source<'t>,
    label: String,
    cfg: KappaConfig,
    matching: Option<Matching>,
}

impl<'t> PairAnalyzer<'t> {
    /// Analyze a pair of plain trials.
    pub fn new(a: &'t Trial, b: &'t Trial) -> Self {
        PairAnalyzer {
            source: Source::Trials { a, b },
            label: "B".to_string(),
            cfg: KappaConfig::paper(),
            matching: None,
        }
    }

    /// Analyze a pair through prebuilt per-trial indexes (the cached path
    /// the sharded all-pairs engine uses).
    pub fn from_indexes(a: &'t TrialIndex<'t>, b: &'t TrialIndex<'t>) -> Self {
        PairAnalyzer {
            source: Source::Indexed { a, b },
            label: "B".to_string(),
            cfg: KappaConfig::paper(),
            matching: None,
        }
    }

    /// Set the run label carried into the [`TrialComparison`] (default
    /// `"B"`, the paper's first non-baseline run).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Use a custom κ configuration (default: the paper's formula).
    pub fn config(mut self, cfg: KappaConfig) -> Self {
        self.cfg = cfg;
        self
    }

    fn build_matching(&self) -> Matching {
        match self.source {
            Source::Trials { a, b } => Matching::build(a, b),
            Source::Indexed { a, b } => matching_arena(a, b),
        }
    }

    fn latency(&self, m: &Matching) -> LatencyResult {
        match self.source {
            Source::Trials { a, b } => latency_full_core(a, b, m),
            Source::Indexed { a, b } => {
                let mut deltas_ns = Vec::new();
                let l = latency_arena(a, b, m, &mut deltas_ns);
                LatencyResult { l, deltas_ns }
            }
        }
    }

    fn iat(&self, m: &Matching) -> IatResult {
        match self.source {
            Source::Trials { a, b } => iat_full_core(a, b, m),
            Source::Indexed { a, b } => {
                let mut deltas_ns = Vec::new();
                let i = iat_arena(a, b, m, &mut deltas_ns);
                IatResult { i, deltas_ns }
            }
        }
    }

    /// The occurrence-wise matching, built on first access and cached.
    pub fn matching(&mut self) -> &Matching {
        if self.matching.is_none() {
            self.matching = Some(self.build_matching());
        }
        self.matching.as_ref().expect("matching just built")
    }

    /// `|A ∩ B|` — the number of common packets.
    pub fn common(&mut self) -> usize {
        self.matching().common()
    }

    /// Just the four component metrics plus κ — the light-weight path
    /// (no histograms, no percentiles) behind [`super::compare`] and the
    /// windowed scorer.
    pub fn metrics(&mut self) -> ConsistencyMetrics {
        let cfg = self.cfg;
        let m = self.matching();
        let u = uniqueness_core(m);
        let o = ordering_core(m).o;
        let (l, i) = {
            let m = self.matching.as_ref().expect("matching cached");
            (self.latency(m).l, self.iat(m).i)
        };
        cfg.combine(u, o, l, i)
    }

    /// The complete comparison: metrics, drop/extra/moved counts,
    /// histograms, percentiles, edit-script statistics, stage timings.
    ///
    /// Indexed sources run the arena kernels (through a one-shot
    /// [`PairScratch`]); plain-trial sources run the unchanged uncached
    /// reference pipeline. Both produce bit-identical metric output.
    pub fn analyze(self) -> TrialComparison {
        match self.source {
            Source::Trials { .. } => self.analyze_uncached(),
            Source::Indexed { .. } => self.analyze_arena(&mut PairScratch::new()),
        }
    }

    /// [`PairAnalyzer::analyze`] reusing a caller-owned workspace — the
    /// sharded engine's hot path, where each worker keeps one scratch for
    /// its whole run.
    pub fn analyze_with_scratch(self, scratch: &mut PairScratch) -> TrialComparison {
        match self.source {
            Source::Trials { .. } => self.analyze_uncached(),
            Source::Indexed { .. } => self.analyze_arena(scratch),
        }
    }

    /// The uncached reference pipeline — byte-for-byte the pre-arena
    /// `analyze` body, kept intact as the bit-identity ground truth.
    fn analyze_uncached(mut self) -> TrialComparison {
        // One span per pair comparison; inside the sharded engine each
        // worker thread roots its own "pair" spans, so the aggregate
        // count doubles as a pairs-analyzed tally in the span tree.
        let _span = crate::obs::span("pair");
        let t0 = Instant::now();
        let m = match self.matching.take() {
            Some(m) => m,
            None => self.build_matching(),
        };
        let t1 = Instant::now();
        let u = uniqueness_core(&m);
        let ord = ordering_core(&m);
        let t2 = Instant::now();
        let lat = self.latency(&m);
        let t3 = Instant::now();
        let ia = self.iat(&m);
        let t4 = Instant::now();
        let metrics = self.cfg.combine(u, ord.o, lat.l, ia.i);

        let iat_hist = DeltaHistogram::of(ia.deltas_ns.iter().copied());
        let latency_hist = DeltaHistogram::of(lat.deltas_ns.iter().copied());
        let within = super::stats::fraction_within(ia.deltas_ns.iter().copied(), 10.0);
        let iat_abs_percentiles_ns = abs_percentiles_ns(&ia.deltas_ns);
        let latency_abs_percentiles_ns = abs_percentiles_ns(&lat.deltas_ns);
        let t5 = Instant::now();

        TrialComparison {
            label: self.label,
            metrics,
            a_len: m.a_len,
            b_len: m.b_len,
            common: m.common(),
            missing: m.missing_in_b(),
            extra: m.extra_in_b(),
            moved: ord.moved(),
            iat_within_10ns: within,
            iat_abs_percentiles_ns,
            latency_abs_percentiles_ns,
            edit_stats: ord.stats(),
            iat_hist,
            latency_hist,
            timings: StageTimings {
                match_ns: (t1 - t0).as_nanos() as u64,
                order_ns: (t2 - t1).as_nanos() as u64,
                latency_ns: (t3 - t2).as_nanos() as u64,
                iat_ns: (t4 - t3).as_nanos() as u64,
                histogram_ns: (t5 - t4).as_nanos() as u64,
            },
        }
    }

    /// The arena pipeline: same stages in the same order as
    /// [`PairAnalyzer::analyze_uncached`], every kernel swapped for its
    /// bit-identical arena/scratch counterpart — flat-slice matching,
    /// scratch-backed LIS, split-lane latency/IAT accumulation, bulk
    /// table-driven histograms, and bit-key percentile sorts.
    fn analyze_arena(mut self, s: &mut PairScratch) -> TrialComparison {
        let Source::Indexed { a, b } = self.source else {
            unreachable!("arena path requires an indexed source")
        };
        let _span = crate::obs::span("pair");
        let t0 = Instant::now();
        let m = match self.matching.take() {
            Some(m) => m,
            None => matching_arena(a, b),
        };
        let t1 = Instant::now();
        let u = uniqueness_core(&m);
        let ord = ordering_arena(&m, &mut s.order);
        let t2 = Instant::now();
        let l = latency_arena(a, b, &m, &mut s.latency_deltas);
        let t3 = Instant::now();
        let i = iat_arena(a, b, &m, &mut s.iat_deltas);
        let t4 = Instant::now();
        let metrics = self.cfg.combine(u, ord.o, l, i);

        let mut iat_hist = DeltaHistogram::new();
        iat_hist.record_slice(&s.iat_deltas);
        let mut latency_hist = DeltaHistogram::new();
        latency_hist.record_slice(&s.latency_deltas);
        let within = super::stats::fraction_within(s.iat_deltas.iter().copied(), 10.0);
        let iat_abs_percentiles_ns = abs_percentiles_ns_bits(&s.iat_deltas, &mut s.sort_bits);
        let latency_abs_percentiles_ns =
            abs_percentiles_ns_bits(&s.latency_deltas, &mut s.sort_bits);
        let t5 = Instant::now();

        TrialComparison {
            label: self.label,
            metrics,
            a_len: m.a_len,
            b_len: m.b_len,
            common: m.common(),
            missing: m.missing_in_b(),
            extra: m.extra_in_b(),
            moved: ord.moved(),
            iat_within_10ns: within,
            iat_abs_percentiles_ns,
            latency_abs_percentiles_ns,
            edit_stats: ord.stats(),
            iat_hist,
            latency_hist,
            timings: StageTimings {
                match_ns: (t1 - t0).as_nanos() as u64,
                order_ns: (t2 - t1).as_nanos() as u64,
                latency_ns: (t3 - t2).as_nanos() as u64,
                iat_ns: (t4 - t3).as_nanos() as u64,
                histogram_ns: (t5 - t4).as_nanos() as u64,
            },
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // equivalence tests exercise the deprecated shims
mod tests {
    use super::*;
    use crate::metrics::iat::iat_of;
    use crate::metrics::latency::latency_of;
    use crate::metrics::ordering::ordering_of;
    use crate::metrics::report::analyze_with;
    use crate::metrics::uniqueness::uniqueness_of;

    fn jittered_pair(n: u64) -> (Trial, Trial) {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..n {
            a.push_tagged(0, 0, i, i * 1000);
            // Jitter plus one local swap and one drop to touch every
            // metric component.
            if i != 17 {
                let j = if i % 11 == 3 { i ^ 1 } else { i };
                b.push_tagged(0, 0, j, i * 1000 + (i % 5) * 37);
            }
        }
        (a, b)
    }

    #[test]
    fn metrics_match_the_deprecated_free_functions() {
        let (a, b) = jittered_pair(200);
        let got = PairAnalyzer::new(&a, &b).metrics();
        assert_eq!(got.u.to_bits(), uniqueness_of(&a, &b).to_bits());
        assert_eq!(got.o.to_bits(), ordering_of(&a, &b).o.to_bits());
        assert_eq!(got.l.to_bits(), latency_of(&a, &b).l.to_bits());
        assert_eq!(got.i.to_bits(), iat_of(&a, &b).i.to_bits());
    }

    #[test]
    fn analyze_matches_analyze_with_bitwise() {
        let (a, b) = jittered_pair(300);
        let new = PairAnalyzer::new(&a, &b).label("B").analyze();
        let old = analyze_with("B", &a, &b, &KappaConfig::paper());
        assert_eq!(new.metrics.kappa.to_bits(), old.metrics.kappa.to_bits());
        assert_eq!(new.iat_abs_percentiles_ns, old.iat_abs_percentiles_ns);
        assert_eq!(new.latency_abs_percentiles_ns, old.latency_abs_percentiles_ns);
        assert_eq!(new.edit_stats, old.edit_stats);
        assert_eq!(
            (new.a_len, new.b_len, new.common, new.missing, new.extra, new.moved),
            (old.a_len, old.b_len, old.common, old.missing, old.extra, old.moved)
        );
    }

    #[test]
    fn indexed_source_matches_trial_source_bitwise() {
        let (a, b) = jittered_pair(250);
        let (ia, ib) = (
            TrialIndex::build(&a).unwrap(),
            TrialIndex::build(&b).unwrap(),
        );
        let direct = PairAnalyzer::new(&a, &b).analyze();
        let indexed = PairAnalyzer::from_indexes(&ia, &ib).analyze();
        assert_eq!(direct.metrics.kappa.to_bits(), indexed.metrics.kappa.to_bits());
        assert_eq!(direct.metrics.o.to_bits(), indexed.metrics.o.to_bits());
        assert_eq!(direct.iat_within_10ns.to_bits(), indexed.iat_within_10ns.to_bits());
        assert_eq!(direct.edit_stats, indexed.edit_stats);
    }

    #[test]
    fn scratch_reuse_across_pairs_stays_bit_identical() {
        // A dirty scratch (sized by a big pair, then fed a small one, then
        // an empty one) must never leak state between analyses.
        let (a, b) = jittered_pair(300);
        let (c, d) = jittered_pair(40);
        let empty = Trial::new();
        let idx: Vec<TrialIndex> = [&a, &b, &c, &d, &empty]
            .into_iter()
            .map(|t| TrialIndex::build(t).unwrap())
            .collect();
        let mut scratch = PairScratch::new();
        for (x, y) in [(0, 1), (2, 3), (0, 4), (4, 4), (1, 2)] {
            let fresh = PairAnalyzer::from_indexes(&idx[x], &idx[y]).analyze();
            let reused =
                PairAnalyzer::from_indexes(&idx[x], &idx[y]).analyze_with_scratch(&mut scratch);
            assert_eq!(fresh.metrics.kappa.to_bits(), reused.metrics.kappa.to_bits());
            assert_eq!(fresh.iat_abs_percentiles_ns, reused.iat_abs_percentiles_ns);
            assert_eq!(fresh.latency_abs_percentiles_ns, reused.latency_abs_percentiles_ns);
            assert_eq!(fresh.edit_stats, reused.edit_stats);
            assert_eq!(fresh.iat_hist.total(), reused.iat_hist.total());
        }
    }

    #[test]
    fn matching_is_built_once_and_cached() {
        let (a, b) = jittered_pair(50);
        let mut pa = PairAnalyzer::new(&a, &b);
        let common = pa.common();
        let first = pa.matching() as *const Matching;
        let second = pa.matching() as *const Matching;
        assert_eq!(first, second, "second access must reuse the cache");
        // And the cache feeds analyze() without a rebuild changing results.
        let cmp = pa.analyze();
        assert_eq!(cmp.common, common);
    }

    #[test]
    fn custom_config_flows_through() {
        let (a, b) = jittered_pair(100);
        let linear = PairAnalyzer::new(&a, &b).metrics();
        let strict = PairAnalyzer::new(&a, &b)
            .config(KappaConfig::drop_sensitive())
            .metrics();
        assert!(strict.kappa < linear.kappa);
    }

    #[test]
    fn default_label_is_b() {
        let (a, b) = jittered_pair(10);
        assert_eq!(PairAnalyzer::new(&a, &b).analyze().label, "B");
        assert_eq!(PairAnalyzer::new(&a, &b).label("A-C").analyze().label, "A-C");
    }
}
