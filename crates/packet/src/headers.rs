//! Minimal Ethernet / IPv4 / UDP header construction and parsing.
//!
//! Choir is protocol-agnostic (paper §9: "no reliance on specific hardware
//! or protocols"), but its evaluation traffic is UDP-in-IPv4 Ethernet
//! frames, so those are the headers this substrate provides. Everything is
//! plain big-endian serialization into caller-provided buffers — no
//! per-packet allocation.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address derived from a small id —
    /// handy for simulated topologies.
    pub fn local(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if the multicast bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4 = 0x0800,
    /// Choir's out-of-band control frames (an experimental ethertype).
    ChoirControl = 0x88B5,
}

impl EtherType {
    /// Parse a raw ethertype, returning `None` for values this crate does
    /// not model.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            0x0800 => Some(EtherType::Ipv4),
            0x88B5 => Some(EtherType::ChoirControl),
            _ => None,
        }
    }
}

/// Ethernet II header (14 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType as a raw value (see [`EtherType`]).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Serialized size in bytes.
    pub const LEN: usize = 14;

    /// Write the header into the first 14 bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`Self::LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&self.ethertype.to_be_bytes());
    }

    /// Parse a header from the start of `buf`, if long enough.
    pub fn parse(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Some(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }
}

/// IPv4 header (20 bytes, no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Total length field: header + payload bytes.
    pub total_len: u16,
    /// Identification field (we thread a stream id through here for
    /// debuggability; identity for the metrics comes from the trailer tag).
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol number (17 = UDP).
    pub protocol: u8,
    /// Source address as a big-endian u32.
    pub src: u32,
    /// Destination address as a big-endian u32.
    pub dst: u32,
}

impl Ipv4Header {
    /// Serialized size in bytes (no options).
    pub const LEN: usize = 20;
    /// Protocol number for UDP.
    pub const PROTO_UDP: u8 = 17;

    /// Write the header (with a valid checksum) into the first 20 bytes of
    /// `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`Self::LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0; // DSCP/ECN
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.identification.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]); // flags/fragment
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10..12].copy_from_slice(&[0, 0]); // checksum placeholder
        buf[12..16].copy_from_slice(&self.src.to_be_bytes());
        buf[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let csum = ipv4_checksum(&buf[0..20]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Parse a header from the start of `buf`. Does not verify the
    /// checksum; call [`Ipv4Header::checksum_ok`] for that.
    pub fn parse(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::LEN || buf[0] >> 4 != 4 {
            return None;
        }
        Some(Ipv4Header {
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: buf[9],
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        })
    }

    /// Verify the header checksum of a serialized IPv4 header.
    pub fn checksum_ok(buf: &[u8]) -> bool {
        buf.len() >= Self::LEN && ipv4_checksum(&buf[0..Self::LEN]) == 0
    }
}

/// UDP header (8 bytes). The checksum is left zero (legal for IPv4), as
/// high-speed replay tooling conventionally does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// UDP length field: header + payload bytes.
    pub len: u16,
}

impl UdpHeader {
    /// Serialized size in bytes.
    pub const LEN: usize = 8;

    /// Write the header into the first 8 bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`Self::LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]); // checksum: none
    }

    /// Parse a header from the start of `buf`, if long enough.
    pub fn parse(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::LEN {
            return None;
        }
        Some(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            len: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

/// Internet checksum (RFC 1071) over `data`, with the checksum field
/// included as stored (write zeros there first when computing).
fn ipv4_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Combined header sizes for a UDP-in-IPv4 Ethernet frame.
pub const UDP_FRAME_HEADER_LEN: usize = EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_local() {
        let m = MacAddr::local(0x01020304);
        assert_eq!(m.to_string(), "02:00:01:02:03:04");
        assert!(!m.is_multicast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn ethernet_roundtrip() {
        let h = EthernetHeader {
            dst: MacAddr::local(1),
            src: MacAddr::local(2),
            ethertype: EtherType::Ipv4 as u16,
        };
        let mut buf = [0u8; 14];
        h.write(&mut buf);
        assert_eq!(EthernetHeader::parse(&buf), Some(h));
    }

    #[test]
    fn ethernet_parse_short_buffer() {
        assert_eq!(EthernetHeader::parse(&[0u8; 13]), None);
    }

    #[test]
    fn ethertype_from_u16() {
        assert_eq!(EtherType::from_u16(0x0800), Some(EtherType::Ipv4));
        assert_eq!(EtherType::from_u16(0x88B5), Some(EtherType::ChoirControl));
        assert_eq!(EtherType::from_u16(0x86DD), None);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let h = Ipv4Header {
            total_len: 1386,
            identification: 42,
            ttl: 64,
            protocol: Ipv4Header::PROTO_UDP,
            src: 0x0a000001,
            dst: 0x0a000002,
        };
        let mut buf = [0u8; 20];
        h.write(&mut buf);
        assert!(Ipv4Header::checksum_ok(&buf));
        assert_eq!(Ipv4Header::parse(&buf), Some(h));
    }

    #[test]
    fn ipv4_corrupted_checksum_detected() {
        let h = Ipv4Header {
            total_len: 100,
            identification: 1,
            ttl: 64,
            protocol: 17,
            src: 1,
            dst: 2,
        };
        let mut buf = [0u8; 20];
        h.write(&mut buf);
        buf[8] ^= 0xff; // corrupt TTL
        assert!(!Ipv4Header::checksum_ok(&buf));
    }

    #[test]
    fn ipv4_rejects_non_v4() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&buf), None);
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader {
            src_port: 5000,
            dst_port: 6000,
            len: 1366,
        };
        let mut buf = [0u8; 8];
        h.write(&mut buf);
        assert_eq!(UdpHeader::parse(&buf), Some(h));
    }

    #[test]
    fn udp_parse_short() {
        assert_eq!(UdpHeader::parse(&[0u8; 7]), None);
    }

    #[test]
    fn checksum_odd_length() {
        // RFC 1071 handles odd-length data; exercise the remainder path.
        let data = [0x12u8, 0x34, 0x56];
        let c = ipv4_checksum(&data);
        // Manually: 0x1234 + 0x5600 = 0x6834 -> !0x6834 = 0x97CB.
        assert_eq!(c, 0x97CB);
    }

    #[test]
    fn header_len_constant() {
        assert_eq!(UDP_FRAME_HEADER_LEN, 42);
    }
}
