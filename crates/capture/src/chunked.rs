//! Chunked pcap reading for the streaming κ engine.
//!
//! [`choir_packet::pcap::read_pcap`] materializes a whole capture before
//! anything can be analyzed — fine for the batch pipeline, wasteful for
//! [`choir_core::metrics::stream`], which only ever needs the next burst.
//! [`PcapChunkReader`] reads a capture incrementally from any
//! [`std::io::Read`], yielding record batches of a configurable size, so
//! a multi-gigabyte capture streams into an `IncrementalComparison` with
//! memory bounded by the chunk size (plus the engine's lookahead window).
//!
//! The reader accepts the same four magics as the batch parser
//! (nanosecond/microsecond resolution, native and byte-swapped) and
//! yields records identical to [`choir_packet::pcap::parse_pcap`]'s, in
//! the same order — only the delivery granularity differs.
//!
//! ## Salvage mode and the ingestion journal
//!
//! A truncated or garbage record no longer discards the chunk read so
//! far: the reader fails with a typed [`ChunkError`] carrying the byte
//! offset and index of the bad record *plus every record successfully
//! parsed before it* (`salvaged`), so a crash-tolerant consumer loses
//! nothing that was intact on disk.
//!
//! For crash recovery the reader also keeps a journaled ingestion
//! cursor, [`IngestCursor`]: records consumed, the byte offset of the
//! next unread record, and a CRC-32 of the last consumed record.
//! [`PcapChunkReader::resume`] re-opens a capture, fast-forwards to the
//! cursor, and verifies the CRC — so a resumed reader either
//! re-synchronizes to the *exact* next record or fails loudly when the
//! underlying capture changed underneath the journal. DESIGN.md §13
//! spells out the contract.

use std::io::{self, Read};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use choir_packet::pcap::{PcapError, PcapRecord, PCAP_NS_MAGIC, PCAP_US_MAGIC};
use choir_packet::Frame;

/// Default records per chunk: roughly a few mbuf bursts' worth.
pub const DEFAULT_CHUNK_RECORDS: usize = 1024;

/// CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`) — the tree
/// vendors no checksum crate, so the journal rolls its own. Bitwise,
/// which is plenty for one record at a time.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// The journaled ingestion cursor: where a reader stands in a capture,
/// in a form a supervisor can persist next to a stream checkpoint and
/// hand back to [`PcapChunkReader::resume`] after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestCursor {
    /// Records fully consumed so far.
    pub records_consumed: u64,
    /// Byte offset of the next unread record (the 24-byte global header
    /// counts, so a fresh reader starts at 24).
    pub byte_offset: u64,
    /// [`crc32`] of the last consumed record's 16-byte header + body;
    /// `0` when nothing has been consumed yet.
    pub last_record_crc: u32,
}

/// A typed chunk-read failure: where the capture broke, and everything
/// that parsed cleanly before it (salvage mode — the chunk's good prefix
/// is *returned*, not discarded).
#[derive(Debug)]
pub struct ChunkError {
    /// The underlying parse failure.
    pub error: PcapError,
    /// Byte offset where the failed record starts.
    pub byte_offset: u64,
    /// Zero-based index of the record that failed to parse.
    pub record_index: u64,
    /// Records of this chunk parsed successfully before the failure.
    pub salvaged: Vec<PcapRecord>,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chunk read failed at record {} (byte offset {}), {} record(s) salvaged: {}",
            self.record_index,
            self.byte_offset,
            self.salvaged.len(),
            self.error
        )
    }
}

impl std::error::Error for ChunkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// An incremental pcap reader yielding batches of records.
///
/// ```
/// use choir_capture::chunked::PcapChunkReader;
/// use choir_packet::pcap::PcapWriter;
/// use choir_packet::Frame;
/// use bytes::Bytes;
///
/// let mut w = PcapWriter::new(Vec::new()).unwrap();
/// for i in 0..10u64 {
///     w.write_record(i * 1_000, &Frame::new(Bytes::from(vec![0u8; 60]))).unwrap();
/// }
/// let buf = w.finish().unwrap();
/// let mut reader = PcapChunkReader::new(&buf[..], 4).unwrap();
/// let mut sizes = Vec::new();
/// for chunk in reader.by_ref() {
///     match chunk {
///         Ok(records) => sizes.push(records.len()),
///         Err(e) => {
///             // Salvage mode: the records before the failure are still
///             // here, with the byte offset of where the capture broke.
///             eprintln!("capture cut at byte {}, kept {}", e.byte_offset, e.salvaged.len());
///             sizes.push(e.salvaged.len());
///         }
///     }
/// }
/// assert_eq!(sizes, [4, 4, 2]);
/// assert_eq!(reader.cursor().records_consumed, 10);
/// ```
pub struct PcapChunkReader<R: Read> {
    input: R,
    swapped: bool,
    subsec_to_ns: u64,
    chunk: usize,
    done: bool,
    records_consumed: u64,
    byte_offset: u64,
    last_record_crc: u32,
}

impl<R: Read> std::fmt::Debug for PcapChunkReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcapChunkReader")
            .field("cursor", &self.cursor())
            .field("chunk", &self.chunk)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<R: Read> PcapChunkReader<R> {
    /// Validate the 24-byte global header and return a reader that yields
    /// up to `chunk_size` records per batch (`0` is clamped to 1).
    pub fn new(mut input: R, chunk_size: usize) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                // The capture was cut inside the global header, which
                // starts at byte 0.
                PcapError::Truncated { offset: 0 }
            } else {
                PcapError::Io(e)
            }
        })?;
        let raw_magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (subsec_to_ns, swapped): (u64, bool) = match raw_magic {
            PCAP_NS_MAGIC => (1, false),
            PCAP_US_MAGIC => (1_000, false),
            m if m == PCAP_NS_MAGIC.swap_bytes() => (1, true),
            m if m == PCAP_US_MAGIC.swap_bytes() => (1_000, true),
            other => return Err(PcapError::BadMagic(other)),
        };
        Ok(PcapChunkReader {
            input,
            swapped,
            subsec_to_ns,
            chunk: chunk_size.max(1),
            done: false,
            records_consumed: 0,
            byte_offset: 24,
            last_record_crc: 0,
        })
    }

    /// Re-open a capture and fast-forward to a journaled cursor. The
    /// skipped records are re-parsed (structure re-validated), and the
    /// last skipped record's CRC must equal the journal's — a mismatch
    /// means the capture on disk is not the one the journal describes,
    /// and resuming would silently misalign every subsequent record.
    ///
    /// On success the reader's next record is exactly the one the
    /// original would have read next.
    pub fn resume(input: R, chunk_size: usize, cursor: IngestCursor) -> Result<Self, ChunkError> {
        let mut rd = Self::new(input, chunk_size).map_err(|error| ChunkError {
            byte_offset: 0,
            record_index: 0,
            salvaged: Vec::new(),
            error,
        })?;
        for _ in 0..cursor.records_consumed {
            let start = rd.byte_offset;
            match rd.read_one_record() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(rd.resync_failure(
                        start,
                        "capture ends before the journaled cursor".into(),
                    ))
                }
                Err(error) => {
                    return Err(ChunkError {
                        byte_offset: start,
                        record_index: rd.records_consumed,
                        salvaged: Vec::new(),
                        error,
                    })
                }
            }
        }
        if rd.byte_offset != cursor.byte_offset {
            return Err(rd.resync_failure(
                rd.byte_offset,
                format!(
                    "journal byte offset {} but re-read landed at {}",
                    cursor.byte_offset, rd.byte_offset
                ),
            ));
        }
        if cursor.records_consumed > 0 && rd.last_record_crc != cursor.last_record_crc {
            return Err(rd.resync_failure(
                rd.byte_offset,
                format!(
                    "journal CRC {:#010x} but last consumed record hashes to {:#010x}",
                    cursor.last_record_crc, rd.last_record_crc
                ),
            ));
        }
        Ok(rd)
    }

    fn resync_failure(&self, byte_offset: u64, why: String) -> ChunkError {
        ChunkError {
            byte_offset,
            record_index: self.records_consumed,
            salvaged: Vec::new(),
            error: PcapError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal re-sync failed: {why}"),
            )),
        }
    }

    /// The journaled position after everything consumed so far. Records
    /// handed back inside a [`ChunkError`]'s `salvaged` list count as
    /// consumed — the cursor always names the first *unread* record.
    pub fn cursor(&self) -> IngestCursor {
        IngestCursor {
            records_consumed: self.records_consumed,
            byte_offset: self.byte_offset,
            last_record_crc: self.last_record_crc,
        }
    }

    /// Read a 16-byte record header, distinguishing clean end-of-capture
    /// (EOF on the first byte → `None`) from a capture cut mid-header.
    fn read_record_header(&mut self) -> Result<Option<[u8; 16]>, PcapError> {
        let mut hdr = [0u8; 16];
        let mut filled = 0;
        while filled < 16 {
            match self.input.read(&mut hdr[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => {
                    return Err(PcapError::Truncated {
                        offset: self.byte_offset,
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PcapError::Io(e)),
            }
        }
        Ok(Some(hdr))
    }

    /// Read one record, updating the journal cursor on success. Errors
    /// leave the cursor at the failed record's start.
    fn read_one_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        let Some(hdr) = self.read_record_header()? else {
            return Ok(None);
        };
        let u32at = |o: usize| {
            let v = u32::from_le_bytes([hdr[o], hdr[o + 1], hdr[o + 2], hdr[o + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let sec = u32at(0) as u64;
        let nsec = u32at(4) as u64;
        let incl = u32at(8) as usize;
        let orig = u32at(12);
        let mut body = vec![0u8; incl];
        self.input.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated {
                    offset: self.byte_offset,
                }
            } else {
                PcapError::Io(e)
            }
        })?;
        let mut crc = crc32(&hdr);
        // Chain header and body CRCs: crc32(hdr ++ body) without a copy.
        crc = crc32_continue(crc, &body);
        self.last_record_crc = crc;
        self.byte_offset += 16 + incl as u64;
        self.records_consumed += 1;
        let data = Bytes::from(body);
        let frame = if orig as usize > incl {
            Frame::truncated(data, orig)
        } else {
            Frame::new(data)
        };
        Ok(Some(PcapRecord {
            ts_ns: sec * 1_000_000_000 + nsec * self.subsec_to_ns,
            frame,
        }))
    }

    /// Read a single record, journaled exactly like [`Self::next_chunk`]
    /// (the cursor advances per record, so [`Self::cursor`] always names
    /// the first unread record). `Ok(None)` at clean EOF; a parse
    /// failure is terminal and carries no salvage list — at this
    /// granularity there is never a buffered prefix to hand back.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, ChunkError> {
        if self.done {
            return Ok(None);
        }
        let rec_start = self.byte_offset;
        match self.read_one_record() {
            Ok(Some(rec)) => Ok(Some(rec)),
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(error) => {
                self.done = true;
                Err(ChunkError {
                    byte_offset: rec_start,
                    record_index: self.records_consumed,
                    salvaged: Vec::new(),
                    error,
                })
            }
        }
    }

    /// The next batch of up to `chunk_size` records, `None` at clean EOF.
    ///
    /// The final batch may be short. A parse failure returns a
    /// [`ChunkError`] carrying the records read before it (salvage mode);
    /// after an error or EOF every further call returns `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<PcapRecord>>, ChunkError> {
        if self.done {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.chunk);
        while out.len() < self.chunk {
            let rec_start = self.byte_offset;
            match self.read_one_record() {
                Ok(Some(rec)) => out.push(rec),
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Err(error) => {
                    self.done = true;
                    return Err(ChunkError {
                        byte_offset: rec_start,
                        record_index: self.records_consumed,
                        salvaged: out,
                        error,
                    });
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

/// Continue a [`crc32`] computation across another slice (`crc` is the
/// finished CRC of the preceding bytes).
fn crc32_continue(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

impl<R: Read> Iterator for PcapChunkReader<R> {
    type Item = Result<Vec<PcapRecord>, ChunkError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_packet::pcap::{parse_pcap, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_ETHERNET};
    use choir_packet::ChoirTag;

    fn sample_pcap(n: u64) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            let mut buf = vec![0u8; 80];
            ChoirTag::new(1, 0, i).stamp_trailer(&mut buf);
            w.write_record(i * 1_000 + 37, &Frame::new(Bytes::from(buf)))
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn chunked_equals_batch_parse_across_chunk_sizes() {
        let buf = sample_pcap(101);
        let batch = parse_pcap(&buf).unwrap();
        for chunk in [1usize, 3, 64, 101, 10_000] {
            let reader = PcapChunkReader::new(&buf[..], chunk).unwrap();
            let streamed: Vec<PcapRecord> = reader.flat_map(|c| c.unwrap()).collect();
            assert_eq!(streamed, batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunk_sizes_and_short_tail() {
        let buf = sample_pcap(10);
        let sizes: Vec<usize> = PcapChunkReader::new(&buf[..], 4)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, [4, 4, 2]);
    }

    #[test]
    fn empty_capture_yields_no_chunks() {
        let buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        let mut reader = PcapChunkReader::new(&buf[..], 8).unwrap();
        assert!(reader.next_chunk().unwrap().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn zero_chunk_size_clamps_to_one() {
        let buf = sample_pcap(3);
        let sizes: Vec<usize> = PcapChunkReader::new(&buf[..], 0)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, [1, 1, 1]);
    }

    #[test]
    fn bad_magic_rejected_up_front() {
        let mut buf = sample_pcap(1);
        buf[0] ^= 0xff;
        assert!(matches!(
            PcapChunkReader::new(&buf[..], 8),
            Err(PcapError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_global_header() {
        assert!(matches!(
            PcapChunkReader::new(&[0u8; 10][..], 8),
            Err(PcapError::Truncated { offset: 0 })
        ));
    }

    #[test]
    fn truncated_record_body_salvages_prefix_then_stops() {
        let buf = sample_pcap(2);
        let mut reader = PcapChunkReader::new(&buf[..buf.len() - 5], 8).unwrap();
        let err = match reader.next() {
            Some(Err(e)) => e,
            other => panic!("expected ChunkError, got {other:?}"),
        };
        // Salvage mode: record 0 parsed fine and is handed back; the
        // error names record 1 and the byte where it starts.
        assert_eq!(err.salvaged.len(), 1);
        assert_eq!(err.record_index, 1);
        assert_eq!(err.byte_offset, 24 + 16 + 80);
        assert!(matches!(err.error, PcapError::Truncated { .. }));
        assert!(err.to_string().contains("1 record(s) salvaged"));
        assert!(reader.next().is_none(), "errors are terminal");
        // The cursor counts the salvaged record as consumed.
        assert_eq!(reader.cursor().records_consumed, 1);
    }

    #[test]
    fn truncated_record_header_errors_with_offset() {
        let buf = sample_pcap(1);
        // Global header + 8 of the 16 record-header bytes.
        let mut reader = PcapChunkReader::new(&buf[..32], 8).unwrap();
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err.error, PcapError::Truncated { offset: 24 }));
        assert_eq!(err.byte_offset, 24);
        assert!(err.salvaged.is_empty());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Chaining equals hashing the concatenation.
        assert_eq!(crc32_continue(crc32(b"1234"), b"56789"), crc32(b"123456789"));
    }

    #[test]
    fn cursor_tracks_consumption_and_resume_resynchronizes() {
        let buf = sample_pcap(10);
        let mut rd = PcapChunkReader::new(&buf[..], 4).unwrap();
        assert_eq!(rd.cursor(), IngestCursor { records_consumed: 0, byte_offset: 24, last_record_crc: 0 });
        let first = rd.next_chunk().unwrap().unwrap();
        assert_eq!(first.len(), 4);
        let cur = rd.cursor();
        assert_eq!(cur.records_consumed, 4);
        assert_eq!(cur.byte_offset, 24 + 4 * (16 + 80));
        assert_ne!(cur.last_record_crc, 0);

        // A resumed reader must yield exactly the remaining records.
        let rest_direct: Vec<PcapRecord> = rd.flat_map(|c| c.unwrap()).collect();
        let mut resumed = PcapChunkReader::resume(&buf[..], 4, cur).unwrap();
        let rest_resumed: Vec<PcapRecord> = resumed.by_ref().flat_map(|c| c.unwrap()).collect();
        assert_eq!(rest_resumed, rest_direct);
        assert_eq!(rest_resumed.len(), 6);
        assert_eq!(resumed.cursor().records_consumed, 10);
    }

    #[test]
    fn cursor_roundtrips_through_json() {
        let buf = sample_pcap(5);
        let mut rd = PcapChunkReader::new(&buf[..], 2).unwrap();
        let _ = rd.next_chunk().unwrap();
        let cur = rd.cursor();
        let json = serde_json::to_string(&cur).unwrap();
        let back: IngestCursor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cur);
        assert!(PcapChunkReader::resume(&buf[..], 2, back).is_ok());
    }

    #[test]
    fn resume_rejects_crc_mismatch() {
        let buf = sample_pcap(6);
        let mut rd = PcapChunkReader::new(&buf[..], 3).unwrap();
        let _ = rd.next_chunk().unwrap();
        let cur = rd.cursor();
        // Corrupt a payload byte of the last consumed record: the
        // journal no longer describes the capture on disk.
        let mut evil = buf.clone();
        evil[cur.byte_offset as usize - 1] ^= 0xff;
        let err = PcapChunkReader::resume(&evil[..], 3, cur).unwrap_err();
        assert!(err.to_string().contains("journal re-sync failed"));
        assert!(err.to_string().contains("CRC"));
        // The pristine capture still resumes.
        assert!(PcapChunkReader::resume(&buf[..], 3, cur).is_ok());
    }

    #[test]
    fn resume_rejects_capture_shorter_than_cursor() {
        let buf = sample_pcap(4);
        let mut rd = PcapChunkReader::new(&buf[..], 10).unwrap();
        let _ = rd.next_chunk().unwrap();
        let cur = rd.cursor();
        assert_eq!(cur.records_consumed, 4);
        let short = &buf[..buf.len() - (16 + 80)];
        let err = PcapChunkReader::resume(short, 10, cur).unwrap_err();
        assert!(err.to_string().contains("journal re-sync failed"));
    }

    #[test]
    fn salvage_yields_exact_prefix_of_batch_parse() {
        let buf = sample_pcap(9);
        let batch = parse_pcap(&buf).unwrap();
        // Cut inside record 6's body.
        let cut = 24 + 6 * (16 + 80) + 16 + 11;
        let mut rd = PcapChunkReader::new(&buf[..cut], 100).unwrap();
        let err = rd.next_chunk().unwrap_err();
        assert_eq!(err.salvaged, batch[..6].to_vec());
        assert_eq!(err.record_index, 6);
        assert_eq!(err.byte_offset, 24 + 6 * (16 + 80));
    }

    /// A one-record pcap with explicit endianness and magic (mirrors the
    /// batch parser's handmade fixture).
    fn handmade_pcap(magic: u32, big_endian: bool, sec: u32, subsec: u32, payload: &[u8]) -> Vec<u8> {
        let put = |buf: &mut Vec<u8>, v: u32| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let put16 = |buf: &mut Vec<u8>, v: u16| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let mut buf = Vec::new();
        put(&mut buf, magic);
        put16(&mut buf, 2);
        put16(&mut buf, 4);
        put(&mut buf, 0);
        put(&mut buf, 0);
        put(&mut buf, DEFAULT_SNAPLEN);
        put(&mut buf, LINKTYPE_ETHERNET);
        put(&mut buf, sec);
        put(&mut buf, subsec);
        put(&mut buf, payload.len() as u32);
        put(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn microsecond_and_swapped_magics_match_batch_parser() {
        for (magic, big_endian) in [
            (PCAP_US_MAGIC, false),
            (PCAP_US_MAGIC, true),
            (PCAP_NS_MAGIC, true),
        ] {
            let buf = handmade_pcap(magic, big_endian, 1, 2, b"abcd");
            let batch = parse_pcap(&buf).unwrap();
            let streamed: Vec<PcapRecord> = PcapChunkReader::new(&buf[..], 8)
                .unwrap()
                .flat_map(|c| c.unwrap())
                .collect();
            assert_eq!(streamed, batch, "magic {magic:#x} be={big_endian}");
        }
    }
}
