//! Failure-injection tests: force drops, duplications, truncation, pool
//! exhaustion and clock steps through the full stack, and check that the
//! system degrades the way the metrics say it should — no panics, no
//! silent lies.

use bytes::Bytes;
use choir::dpdk::{Burst, ControlMsg, Mempool, PoolExhausted};
use choir::metrics::report::analyze;
use choir::metrics::{compare, Trial};
use choir::packet::{ChoirTag, Frame};
use choir::replay::recording::Recording;
use choir::testbed::{EnvKind, Experiment, ExperimentConfig};

#[test]
fn forced_recorder_drops_surface_as_uniqueness_variation() {
    // Crank the drop probability far beyond the calibrated profile.
    let mut profile = EnvKind::FabricShared40Noisy.profile();
    profile.recorder_drop_prob = 0.05;
    profile.runs = 3;
    let out = Experiment::new(ExperimentConfig {
        profile,
        scale: 0.005,
        seed: 11,
    })
    .run();
    for run in &out.report.runs {
        assert!(run.missing > 0 || run.extra > 0, "5% loss must be visible");
        assert!(run.metrics.u > 0.01, "U = {}", run.metrics.u);
        assert!(run.metrics.kappa < 1.0);
    }
}

#[test]
fn truncated_capture_scores_as_missing_packets() {
    // Simulate a capture cut off mid-run: drop the tail of trial B.
    let mut a = Trial::new();
    for i in 0..1_000u64 {
        a.push_tagged(0, 0, i, i * 284_800);
    }
    let b: Trial = a
        .observations()
        .iter()
        .take(700)
        .map(|o| (o.id, o.t_ps))
        .collect();
    let cmp = analyze("truncated", &a, &b);
    assert_eq!(cmp.missing, 300);
    let expected_u = 1.0 - (2.0 * 700.0) / 1700.0;
    assert!((cmp.metrics.u - expected_u).abs() < 1e-12);
    // Common prefix is perfectly ordered and timed.
    assert_eq!(cmp.metrics.o, 0.0);
    assert_eq!(cmp.metrics.l, 0.0);
}

#[test]
fn duplicated_packets_score_as_extras_not_reordering() {
    let mut a = Trial::new();
    let mut b = Trial::new();
    for i in 0..100u64 {
        a.push_tagged(0, 0, i, i * 1_000);
        b.push_tagged(0, 0, i, i * 1_000);
        if i % 10 == 0 {
            // A duplicate delivery right after the original.
            b.push_tagged(0, 0, i, i * 1_000 + 10);
        }
    }
    let cmp = analyze("dup", &a, &b);
    assert_eq!(cmp.extra, 10);
    assert_eq!(cmp.missing, 0);
    assert!(cmp.metrics.u > 0.0);
    // The matched (first) occurrences stay in order.
    assert_eq!(cmp.metrics.o, 0.0);
}

#[test]
fn pool_exhaustion_fails_allocation_not_the_process() {
    let pool = Mempool::new("tiny", 8);
    let mut held = Vec::new();
    for i in 0..8 {
        held.push(
            pool.alloc(Frame::new(Bytes::from(vec![i as u8; 32])))
                .expect("within capacity"),
        );
    }
    // The 9th allocation fails cleanly...
    assert_eq!(
        pool.alloc(Frame::new(Bytes::from_static(b"x"))).unwrap_err(),
        PoolExhausted
    );
    assert_eq!(pool.failed_allocs(), 1);
    // ...and recording those mbufs takes no extra slots, so a recording
    // deeper than RAM is impossible by construction, not by crash.
    let mut rec = Recording::new();
    rec.push_burst(0, held.iter());
    assert_eq!(pool.in_use(), 8);
    drop(held);
    assert_eq!(pool.in_use(), 8, "recording retains the slots");
    rec.clear();
    assert_eq!(pool.in_use(), 0);
}

#[test]
fn generator_overruns_are_counted_when_the_ring_is_saturated() {
    // A generator pushed into a 1-slot transmit ring must count overruns
    // rather than wedge.
    use choir::dpdk::{App, Dataplane, PortId, PortStats};
    use choir::pktgen::{Generator, GeneratorConfig};

    struct OneSlot {
        pool: Mempool,
        now: u64,
        wake: Option<u64>,
        accepted: u64,
    }
    impl Dataplane for OneSlot {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
            // Accept only every third packet.
            if self.accepted.is_multiple_of(3) {
                burst.drain().for_each(drop);
                self.accepted += 1;
                1
            } else {
                self.accepted += 1;
                0
            }
        }
        fn tsc(&self) -> u64 {
            self.now
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now
        }
        fn request_wake_at_tsc(&mut self, t: u64) {
            self.wake = Some(t);
        }
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    let mut dp = OneSlot {
        pool: Mempool::new("sat", 1 << 12),
        now: 0,
        wake: None,
        accepted: 0,
    };
    let mut g = Generator::new(GeneratorConfig::cbr(40_000_000_000, 30));
    let mut guard = 0;
    loop {
        g.on_wake(&mut dp);
        match dp.wake.take() {
            Some(t) => dp.now = t,
            None => break,
        }
        guard += 1;
        assert!(guard < 1_000, "generator wedged");
    }
    assert!(g.done());
    assert!(g.overruns() > 0);
    assert!(g.overruns() < 30);
}

#[test]
fn clock_step_between_replays_shifts_start_but_not_consistency() {
    // A PTP step of several microseconds between runs moves the replay
    // start time; since latency is anchored per trial, kappa barely
    // moves. (The paper's single-replayer runs rely on this.)
    use choir::netsim::clock::PtpModel;

    let mut profile = EnvKind::LocalSingle.profile();
    profile.runs = 2;
    // Huge per-run PTP offsets.
    profile.ptp_offset_sigma_ns = 5_000.0;
    let stepped = Experiment::new(ExperimentConfig {
        profile,
        scale: 0.005,
        seed: 21,
    })
    .run();
    let mut profile2 = EnvKind::LocalSingle.profile();
    profile2.runs = 2;
    profile2.ptp_offset_sigma_ns = 5.0;
    let steady = Experiment::new(ExperimentConfig {
        profile: profile2,
        scale: 0.005,
        seed: 21,
    })
    .run();
    let d = (stepped.report.mean.kappa - steady.report.mean.kappa).abs();
    assert!(d < 0.02, "kappa moved {d} under a clock step");
    // Keep the import honest.
    let _ = PtpModel::perfect();
}

#[test]
fn corrupted_tag_changes_identity() {
    // A bit flip in the trailer makes the packet a different packet —
    // "corrupted packets" count against U exactly like drops (paper §3).
    let mut buf = vec![0u8; 64];
    ChoirTag::new(1, 0, 42).stamp_trailer(&mut buf);
    let good = Frame::new(Bytes::from(buf.clone()));
    buf[63] ^= 0x01; // corrupt the sequence number
    let bad = Frame::new(Bytes::from(buf));
    assert_ne!(good.packet_id(), bad.packet_id());

    let mut a = Trial::new();
    let mut b = Trial::new();
    a.push(good.packet_id(), 0);
    b.push(bad.packet_id(), 0);
    let m = compare(&a, &b);
    assert_eq!(m.u, 1.0);
}

#[test]
fn middlebox_survives_schedule_spam() {
    // Abusive control-plane input: replay scheduled repeatedly, aborted,
    // re-scheduled — the middlebox must stay consistent.
    use choir::core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
    use choir::dpdk::{App, Dataplane, PortId, PortStats};

    struct NullPlane {
        pool: Mempool,
    }
    impl Dataplane for NullPlane {
        fn num_ports(&self) -> usize {
            2
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
            let n = burst.len();
            burst.drain().for_each(drop);
            n
        }
        fn tsc(&self) -> u64 {
            7
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            7
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    let mut dp = NullPlane {
        pool: Mempool::new("null", 64),
    };
    let mut mb = ChoirMiddlebox::new(MiddleboxConfig::default());
    for _ in 0..100 {
        mb.on_control(&ControlMsg::ScheduleReplay { start_wall_ns: 1 }, &mut dp);
        mb.on_control(&ControlMsg::AbortReplay, &mut dp);
        mb.on_control(&ControlMsg::StartRecord, &mut dp);
        mb.on_control(&ControlMsg::StopRecord, &mut dp);
        mb.on_wake(&mut dp);
    }
    assert!(!mb.replay_active());
}
