//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer instead of criterion's statistical
//! machinery. Each bench runs a short warm-up, then a fixed number of
//! timed samples, and prints the median per-iteration time (plus
//! element/byte throughput when configured). Good enough to compare
//! orders of magnitude and to keep `cargo bench` / bench target builds
//! working hermetically; not a precision instrument.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque blackbox to defeat constant folding (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements (e.g. packets).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a bench body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a probe of how many iterations fit in a sample.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        // Aim for ~2ms per sample, capped so slow benches still finish.
        let iters = (Duration::from_millis(2).as_nanos() / probe.as_nanos())
            .clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benches with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run `f` as a benchmark named `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run `f` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let med = b.median();
        let ns = med.as_nanos().max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.3} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.3} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{}/{:<32} {:>12.1} ns/iter{rate}", self.name, id, ns);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_count: 20,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.default_sample_count;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count,
            _criterion: self,
        }
    }

    /// Run `f` as a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle bench functions into a group runner, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, like `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("vendored");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum64", |b| {
            b.iter(|| (0u64..64).map(black_box).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("in_order", 50).to_string(), "in_order/50");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
