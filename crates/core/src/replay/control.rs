//! In-band control-plane framing.
//!
//! Choir middleboxes are "joined out-of-band for inter-communication and
//! receiving user commands" (§4), but can also "run with just the 2
//! bridged interfaces if the control signals run in-band, as we do in our
//! evaluations to conserve resources" (§5). Out-of-band delivery is the
//! [`choir_dpdk::App::on_control`] callback; this module provides the
//! in-band path: control messages encoded as Ethernet frames with the
//! Choir control EtherType, intercepted (never forwarded) by the
//! middlebox.
//!
//! Frame layout after the 14-byte Ethernet header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic 0x43484F43 ("CHOC")
//! 4       1     opcode
//! 5       8     argument (big-endian u64)
//! 13      1     flags (optional; bit 0 = ack requested)     ── reliable
//! 14      4     sequence number (big-endian u32, optional)  ── extension
//! ```
//!
//! The last two fields are the reliable-delivery extension used by
//! [`super::reliable::ReliableController`]: a sender that wants
//! stop-and-wait confirmation appends a flags byte with bit 0 set and a
//! sequence number; the receiver answers with an `OP_ACK` frame whose
//! argument is the acknowledged sequence. Plain 27-byte frames (no
//! trailing fields, or a zero flags byte) remain valid — old senders and
//! new receivers interoperate.

use bytes::Bytes;
use choir_dpdk::ControlMsg;
use choir_packet::{EtherType, EthernetHeader, Frame, MacAddr};

/// Magic marking a Choir control payload.
pub const CONTROL_MAGIC: u32 = 0x4348_4F43;

const OP_START_RECORD: u8 = 1;
const OP_STOP_RECORD: u8 = 2;
const OP_SCHEDULE_REPLAY: u8 = 3;
const OP_ABORT_REPLAY: u8 = 4;
const OP_CUSTOM: u8 = 5;
const OP_ACK: u8 = 6;

/// Flags bit 0: the sender wants this frame acknowledged.
const FLAG_ACK_REQUESTED: u8 = 0x01;

/// Minimum control frame length: Ethernet header + magic + opcode + arg.
pub const CONTROL_FRAME_LEN: usize = EthernetHeader::LEN + 4 + 1 + 8;

/// Length of a sequenced (reliable) control frame: the minimum layout
/// plus a flags byte and a u32 sequence number.
pub const SEQUENCED_CONTROL_FRAME_LEN: usize = CONTROL_FRAME_LEN + 1 + 4;

/// A decoded in-band control protocol data unit: either an application
/// command (optionally sequenced) or an acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlPdu {
    /// A command. `seq` is present when the sender requested an ack.
    Msg {
        /// The decoded command.
        msg: ControlMsg,
        /// Sequence number, when the sender requested acknowledgement.
        seq: Option<u32>,
    },
    /// Acknowledgement of the sequenced command with this number.
    Ack {
        /// The acknowledged sequence number.
        seq: u32,
    },
}

fn opcode_of(msg: &ControlMsg) -> (u8, u64) {
    match *msg {
        ControlMsg::StartRecord => (OP_START_RECORD, 0),
        ControlMsg::StopRecord => (OP_STOP_RECORD, 0),
        ControlMsg::ScheduleReplay { start_wall_ns } => (OP_SCHEDULE_REPLAY, start_wall_ns),
        ControlMsg::AbortReplay => (OP_ABORT_REPLAY, 0),
        ControlMsg::Custom(v) => (OP_CUSTOM, v),
    }
}

fn raw_frame(op: u8, arg: u64, seq: Option<u32>, src: MacAddr, dst: MacAddr) -> Frame {
    let len = if seq.is_some() {
        SEQUENCED_CONTROL_FRAME_LEN
    } else {
        CONTROL_FRAME_LEN
    };
    let mut buf = vec![0u8; len];
    EthernetHeader {
        dst,
        src,
        ethertype: EtherType::ChoirControl as u16,
    }
    .write(&mut buf);
    buf[14..18].copy_from_slice(&CONTROL_MAGIC.to_be_bytes());
    buf[18] = op;
    buf[19..27].copy_from_slice(&arg.to_be_bytes());
    if let Some(s) = seq {
        buf[27] = FLAG_ACK_REQUESTED;
        buf[28..32].copy_from_slice(&s.to_be_bytes());
    }
    Frame::new(Bytes::from(buf))
}

/// Encode a control message as an in-band Ethernet frame.
pub fn encode_control(msg: &ControlMsg, src: MacAddr, dst: MacAddr) -> Frame {
    let (op, arg) = opcode_of(msg);
    raw_frame(op, arg, None, src, dst)
}

/// Encode a *sequenced* control message: the receiver is asked to
/// acknowledge `seq` with an [`encode_control_ack`] frame.
pub fn encode_control_seq(msg: &ControlMsg, seq: u32, src: MacAddr, dst: MacAddr) -> Frame {
    let (op, arg) = opcode_of(msg);
    raw_frame(op, arg, Some(seq), src, dst)
}

/// Encode an acknowledgement of sequenced command `seq`.
pub fn encode_control_ack(seq: u32, src: MacAddr, dst: MacAddr) -> Frame {
    raw_frame(OP_ACK, seq as u64, None, src, dst)
}

/// True when the frame carries the Choir control EtherType.
pub fn is_control_frame(frame: &Frame) -> bool {
    EthernetHeader::parse(&frame.data)
        .map(|h| h.ethertype == EtherType::ChoirControl as u16)
        .unwrap_or(false)
}

/// Decode an in-band control frame as a protocol data unit; `None` for
/// anything malformed. Every length/shape check happens here — garbage
/// input can never panic, only fail to decode:
///
/// - wrong EtherType or a frame too short for the Ethernet header;
/// - truncated payload (shorter than [`CONTROL_FRAME_LEN`]);
/// - bad magic or an unknown opcode;
/// - an ack whose argument does not fit a `u32`;
/// - a flags byte requesting an ack without a complete sequence number.
pub fn decode_control_pdu(frame: &Frame) -> Option<ControlPdu> {
    if !is_control_frame(frame) || frame.data.len() < CONTROL_FRAME_LEN {
        return None;
    }
    let p = &frame.data[14..];
    if u32::from_be_bytes([p[0], p[1], p[2], p[3]]) != CONTROL_MAGIC {
        return None;
    }
    let arg = u64::from_be_bytes([p[5], p[6], p[7], p[8], p[9], p[10], p[11], p[12]]);
    let msg = match p[4] {
        OP_START_RECORD => ControlMsg::StartRecord,
        OP_STOP_RECORD => ControlMsg::StopRecord,
        OP_SCHEDULE_REPLAY => ControlMsg::ScheduleReplay { start_wall_ns: arg },
        OP_ABORT_REPLAY => ControlMsg::AbortReplay,
        OP_CUSTOM => ControlMsg::Custom(arg),
        OP_ACK => {
            let seq = u32::try_from(arg).ok()?;
            return Some(ControlPdu::Ack { seq });
        }
        _ => return None,
    };
    // Reliable extension: a flags byte may follow; if it requests an
    // ack, a full sequence number must too (a truncated one is rejected,
    // not misread).
    let seq = match p.get(13) {
        Some(&flags) if flags & FLAG_ACK_REQUESTED != 0 => {
            if p.len() < 18 {
                return None;
            }
            Some(u32::from_be_bytes([p[14], p[15], p[16], p[17]]))
        }
        _ => None,
    };
    Some(ControlPdu::Msg { msg, seq })
}

/// Decode an in-band control frame to its command; `None` for anything
/// malformed — including acks, which carry no command.
pub fn decode_control(frame: &Frame) -> Option<ControlMsg> {
    match decode_control_pdu(frame) {
        Some(ControlPdu::Msg { msg, .. }) => Some(msg),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ControlMsg) {
        let f = encode_control(&msg, MacAddr::local(1), MacAddr::local(2));
        assert!(is_control_frame(&f));
        assert_eq!(decode_control(&f), Some(msg));
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(ControlMsg::StartRecord);
        roundtrip(ControlMsg::StopRecord);
        roundtrip(ControlMsg::ScheduleReplay {
            start_wall_ns: 123_456_789_012,
        });
        roundtrip(ControlMsg::AbortReplay);
        roundtrip(ControlMsg::Custom(u64::MAX));
    }

    #[test]
    fn data_frames_are_not_control() {
        let b = choir_packet::FrameBuilder::new(100, 1, 2);
        let f = b.build_plain();
        assert!(!is_control_frame(&f));
        assert_eq!(decode_control(&f), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let mut data = f.data.to_vec();
        data[14] ^= 0xff;
        assert_eq!(decode_control(&Frame::new(Bytes::from(data))), None);
    }

    #[test]
    fn bad_opcode_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let mut data = f.data.to_vec();
        data[18] = 99;
        assert_eq!(decode_control(&Frame::new(Bytes::from(data))), None);
    }

    #[test]
    fn short_frame_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let data = f.data.slice(..20);
        let short = Frame::new(data);
        assert_eq!(decode_control(&short), None);
    }

    #[test]
    fn truncation_at_every_length_never_panics() {
        // Chop a valid sequenced frame at every possible boundary: each
        // prefix must decode to None (or, at full length, Some) without
        // panicking — including cuts inside the Ethernet header, inside
        // the magic, mid-argument, and mid-sequence-number.
        let f = encode_control_seq(
            &ControlMsg::ScheduleReplay {
                start_wall_ns: 0xDEAD_BEEF,
            },
            77,
            MacAddr::local(1),
            MacAddr::local(2),
        );
        for cut in 0..f.data.len() {
            let prefix = Frame::new(f.data.slice(..cut));
            let decoded = decode_control_pdu(&prefix);
            if cut == CONTROL_FRAME_LEN {
                // Cutting exactly before the extension yields a valid
                // *legacy* frame: the command without its sequence.
                assert_eq!(
                    decoded,
                    Some(ControlPdu::Msg {
                        msg: ControlMsg::ScheduleReplay {
                            start_wall_ns: 0xDEAD_BEEF,
                        },
                        seq: None,
                    })
                );
            } else {
                assert_eq!(decoded, None, "cut at {cut} must not decode");
            }
        }
        assert!(decode_control_pdu(&f).is_some());
        // Same sweep over a legacy frame.
        let legacy = encode_control(&ControlMsg::Custom(9), MacAddr::local(1), MacAddr::local(2));
        for cut in 0..legacy.data.len() {
            assert_eq!(
                decode_control_pdu(&Frame::new(legacy.data.slice(..cut))),
                None
            );
        }
    }

    #[test]
    fn garbage_payloads_never_panic() {
        // Frames with the control EtherType but arbitrary payload bytes:
        // must decode to None or a valid PDU, never panic.
        for seed in 0..64u64 {
            for len in [0usize, 1, 13, 14, 18, 26, 27, 28, 31, 32, 60] {
                let mut data = vec![0u8; len];
                let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(len as u64);
                for b in data.iter_mut() {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    *b = x as u8;
                }
                if len >= EthernetHeader::LEN {
                    // Force the control EtherType so we reach the parser.
                    data[12..14]
                        .copy_from_slice(&(EtherType::ChoirControl as u16).to_be_bytes());
                }
                let _ = decode_control_pdu(&Frame::new(Bytes::from(data)));
            }
        }
    }

    #[test]
    fn sequenced_frames_round_trip_with_seq() {
        let f = encode_control_seq(
            &ControlMsg::StartRecord,
            0xABCD_1234,
            MacAddr::local(1),
            MacAddr::local(2),
        );
        assert_eq!(f.data.len(), SEQUENCED_CONTROL_FRAME_LEN);
        assert_eq!(
            decode_control_pdu(&f),
            Some(ControlPdu::Msg {
                msg: ControlMsg::StartRecord,
                seq: Some(0xABCD_1234),
            })
        );
        // decode_control still yields the command (seq is transport detail).
        assert_eq!(decode_control(&f), Some(ControlMsg::StartRecord));
    }

    #[test]
    fn acks_round_trip_and_are_not_commands() {
        let f = encode_control_ack(42, MacAddr::local(1), MacAddr::local(2));
        assert_eq!(decode_control_pdu(&f), Some(ControlPdu::Ack { seq: 42 }));
        assert_eq!(decode_control(&f), None, "an ack is not a command");
    }

    #[test]
    fn oversized_ack_argument_rejected() {
        // An OP_ACK whose argument exceeds u32 is malformed, not truncated.
        let good = encode_control_ack(1, MacAddr::local(1), MacAddr::local(2));
        let mut data = good.data.to_vec();
        data[19..27].copy_from_slice(&(u32::MAX as u64 + 1).to_be_bytes());
        assert_eq!(decode_control_pdu(&Frame::new(Bytes::from(data))), None);
    }

    #[test]
    fn ack_flag_without_sequence_rejected() {
        // Flags byte requests an ack but the sequence number is missing
        // or incomplete: reject rather than misread adjacent bytes.
        let legacy = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        for extra in 0..4usize {
            let mut data = legacy.data.to_vec();
            data.push(0x01); // FLAG_ACK_REQUESTED
            data.extend(std::iter::repeat_n(0xAA, extra)); // partial seq
            assert_eq!(
                decode_control_pdu(&Frame::new(Bytes::from(data))),
                None,
                "partial seq of {extra} bytes must not decode"
            );
        }
    }

    #[test]
    fn legacy_frames_with_zero_flags_still_decode() {
        // A 27-byte frame padded with a zero flags byte (e.g. by minimum
        // Ethernet frame padding) is still the plain command.
        let legacy = encode_control(&ControlMsg::AbortReplay, MacAddr::local(1), MacAddr::local(2));
        let mut data = legacy.data.to_vec();
        data.extend_from_slice(&[0, 0, 0, 0, 0]); // zero padding
        assert_eq!(
            decode_control_pdu(&Frame::new(Bytes::from(data))),
            Some(ControlPdu::Msg {
                msg: ControlMsg::AbortReplay,
                seq: None,
            })
        );
    }
}
