//! Plain-text rendering of the paper's tables and figures.

use choir_core::metrics::allpairs::KappaMatrix;
use choir_core::metrics::report::RunReport;
use choir_core::metrics::{ConsistencyMetrics, StageTimings};
use choir_core::obs::ObsSnapshot;
use choir_testbed::EnvKind;

use crate::paper::PaperRow;

/// Scientific-ish compact float formatting matching the paper's style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// Render a Table-2-style row pair: paper vs measured.
pub fn table2_pair(kind: EnvKind, paper: &ConsistencyMetrics, ours: &ConsistencyMetrics) -> String {
    format!(
        "{:<28} | {:>9} {:>9} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>9} {:>7}\n",
        kind.label(),
        sci(paper.u),
        sci(paper.o),
        sci(paper.i),
        sci(paper.l),
        format!("{:.4}", paper.kappa),
        sci(ours.u),
        sci(ours.o),
        sci(ours.i),
        sci(ours.l),
        format!("{:.4}", ours.kappa),
    )
}

/// Header for the Table 2 rendering.
pub fn table2_header() -> String {
    format!(
        "{:<28} | {:^49} | {:^49}\n{:<28} | {:>9} {:>9} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>9} {:>7}\n{}\n",
        "Environment",
        "paper (Table 2)",
        "measured (this run)",
        "",
        "U",
        "O",
        "I",
        "L",
        "kappa",
        "U",
        "O",
        "I",
        "L",
        "kappa",
        "-".repeat(130),
    )
}

/// One environment's per-run summary in the style of the paper's
/// evaluation prose: per run within-10ns%, I, L, κ.
pub fn run_summary(report: &RunReport, paper: &PaperRow) -> String {
    let mut s = String::new();
    s.push_str(&format!("Environment: {}\n", report.environment));
    for r in &report.runs {
        s.push_str(&format!(
            "  run {}: {:5.2}% IAT +-10ns, U {}, O {}, I {}, L {}, kappa {:.4}  (moved {}, missing {}, extra {})\n",
            r.label,
            100.0 * r.iat_within_10ns,
            sci(r.metrics.u),
            sci(r.metrics.o),
            sci(r.metrics.i),
            sci(r.metrics.l),
            r.metrics.kappa,
            r.moved,
            r.missing,
            r.extra,
        ));
    }
    s.push_str(&format!(
        "  mean: U {}, O {}, I {}, L {}, kappa {:.4}\n",
        sci(report.mean.u),
        sci(report.mean.o),
        sci(report.mean.i),
        sci(report.mean.l),
        report.mean.kappa
    ));
    s.push_str(&format!(
        "  paper: U {}, O {}, I {}, L {}, kappa {:.4}",
        sci(paper.mean.u),
        sci(paper.mean.o),
        sci(paper.mean.i),
        sci(paper.mean.l),
        paper.mean.kappa
    ));
    if let Some((lo, hi)) = paper.within_10ns {
        s.push_str(&format!(
            ", within-10ns {:.2}%..{:.2}%",
            lo * 100.0,
            hi * 100.0
        ));
    }
    s.push('\n');
    s
}

/// Render the upper-triangular κ matrix as an ASCII table (diagonal is
/// the implicit 1; the lower triangle is left blank).
pub fn kappa_matrix(m: &KappaMatrix) -> String {
    let n = m.trials();
    let mut s = String::new();
    s.push_str(&format!("{:>4}", ""));
    for l in &m.labels {
        s.push_str(&format!(" {l:>6}"));
    }
    s.push('\n');
    for i in 0..n {
        s.push_str(&format!("{:>4}", m.labels[i]));
        for j in 0..n {
            if j < i {
                s.push_str(&format!(" {:>6}", ""));
            } else if j == i {
                s.push_str(&format!(" {:>6}", "1"));
            } else {
                s.push_str(&format!(" {:>6.4}", m.kappa(i, j)));
            }
        }
        s.push('\n');
    }
    s
}

/// One line summarizing where the analysis wall-clock went.
pub fn stage_timings(t: &StageTimings, pairs: usize) -> String {
    let total = t.total_ns().max(1);
    let ms = |v: u64| v as f64 / 1e6;
    let pct = |v: u64| 100.0 * v as f64 / total as f64;
    format!(
        "stage wall-clock over {pairs} pairs: match {:.2} ms ({:.0}%), order {:.2} ms ({:.0}%), \
         latency {:.2} ms ({:.0}%), iat {:.2} ms ({:.0}%), histogram {:.2} ms ({:.0}%)\n",
        ms(t.match_ns),
        pct(t.match_ns),
        ms(t.order_ns),
        pct(t.order_ns),
        ms(t.latency_ns),
        pct(t.latency_ns),
        ms(t.iat_ns),
        pct(t.iat_ns),
        ms(t.histogram_ns),
        pct(t.histogram_ns),
    )
}

/// Human duration for a nanosecond count.
fn dur_ns(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2} s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.2} ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.2} us", v as f64 / 1e3)
    } else {
        format!("{v} ns")
    }
}

/// Render an [`ObsSnapshot`] as a span tree, a counter table, and the
/// tail of the event ring (DESIGN.md §11 explains how to read it).
///
/// Span paths are `/`-joined (`allpairs/pairs`); since the snapshot
/// lists them in lexicographic order, indenting each leaf by its depth
/// reproduces the nesting without any explicit tree structure.
pub fn render_obs(snap: &ObsSnapshot) -> String {
    let mut s = String::new();
    if !snap.enabled {
        s.push_str("obs profile: disabled\n");
        return s;
    }
    s.push_str("obs profile:\n");
    if !snap.spans.is_empty() {
        s.push_str("  spans:\n");
        for sp in &snap.spans {
            let depth = sp.path.matches('/').count();
            let leaf = sp.path.rsplit('/').next().unwrap_or(&sp.path);
            let mut line = format!(
                "  {}{:<w$} {:>6}x {:>12}",
                "  ".repeat(depth + 1),
                leaf,
                sp.count,
                dur_ns(sp.total_ns),
                w = 32usize.saturating_sub(2 * depth),
            );
            if sp.count > 1 {
                line.push_str(&format!(
                    "  (min {}, max {})",
                    dur_ns(sp.min_ns),
                    dur_ns(sp.max_ns)
                ));
            }
            line.push('\n');
            s.push_str(&line);
        }
    }
    if !snap.counters.is_empty() {
        s.push_str("  counters:\n");
        for c in &snap.counters {
            s.push_str(&format!("    {:<40} {:>14}\n", c.name, c.value));
        }
    }
    s.push_str(&format!(
        "  events: {} emitted, {} dropped, {} retained\n",
        snap.events_emitted,
        snap.events_dropped,
        snap.events.len()
    ));
    const EVENT_TAIL: usize = 8;
    for e in snap.events.iter().rev().take(EVENT_TAIL).rev() {
        s.push_str(&format!(
            "    [{:>6}] {} a={} b={}\n",
            e.seq, e.kind, e.a, e.b
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_core::metrics::{all_pairs_sharded, Trial};

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.0294), "0.0294");
        assert_eq!(sci(4.27e-6), "4.27e-6");
    }

    #[test]
    fn header_and_row_render() {
        let h = table2_header();
        assert!(h.contains("kappa"));
        let m = ConsistencyMetrics {
            u: 0.0,
            o: 0.0,
            l: 1e-5,
            i: 0.03,
            kappa: 0.985,
        };
        let row = table2_pair(EnvKind::LocalSingle, &m, &m);
        assert!(row.contains("Local Single-Replayer"));
    }

    #[test]
    fn kappa_matrix_renders_labels_and_diagonal() {
        let trials: Vec<Trial> = (0..3u64)
            .map(|k| {
                let mut t = Trial::new();
                for i in 0..20u64 {
                    t.push_tagged(0, 0, i, i * 1000 + (i % (k + 2)) * 17);
                }
                t
            })
            .collect();
        let m = all_pairs_sharded(&trials, 2).unwrap();
        let s = kappa_matrix(&m);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert!(lines[0].contains('A') && lines[0].contains('C'));
        assert!(lines[1].contains(" 1 ") || lines[1].trim_end().ends_with(char::is_numeric));
        assert!(lines[3].trim_end().ends_with('1'), "{s}");
    }

    #[test]
    fn obs_snapshot_renders_tree_counters_and_events() {
        use choir_core::obs::{CounterSnap, EventSnap, SpanSnap};
        let snap = ObsSnapshot {
            enabled: true,
            counters: vec![CounterSnap {
                name: "allpairs.pairs_analyzed".to_string(),
                value: 28,
            }],
            spans: vec![
                SpanSnap {
                    path: "allpairs".to_string(),
                    count: 1,
                    total_ns: 12_340_000,
                    min_ns: 12_340_000,
                    max_ns: 12_340_000,
                },
                SpanSnap {
                    path: "allpairs/pairs".to_string(),
                    count: 2,
                    total_ns: 11_020_000,
                    min_ns: 5_000_000,
                    max_ns: 6_020_000,
                },
            ],
            events: vec![EventSnap {
                seq: 7,
                kind: "sim.burst_delivered".to_string(),
                a: 32,
                b: 99,
            }],
            events_emitted: 1,
            events_dropped: 0,
        };
        let s = render_obs(&snap);
        assert!(s.contains("allpairs "), "{s}");
        assert!(s.contains("    pairs"), "indented child: {s}");
        assert!(s.contains("(min 5.00 ms, max 6.02 ms)"), "{s}");
        assert!(s.contains("allpairs.pairs_analyzed"), "{s}");
        assert!(s.contains("sim.burst_delivered a=32 b=99"), "{s}");

        let off = render_obs(&ObsSnapshot::default());
        assert!(off.contains("disabled"), "{off}");
    }

    #[test]
    fn stage_timings_line() {
        let t = StageTimings {
            match_ns: 1_000_000,
            order_ns: 2_000_000,
            latency_ns: 500_000,
            iat_ns: 500_000,
            histogram_ns: 1_000_000,
        };
        let s = stage_timings(&t, 120);
        assert!(s.contains("120 pairs"));
        assert!(s.contains("order 2.00 ms (40%)"), "{s}");
    }
}
