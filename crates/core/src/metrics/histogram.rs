//! Signed logarithmic delta histograms, in the style of the paper's
//! figures.
//!
//! Every evaluation figure (Figs. 4–10) is a histogram of "the percentage
//! of packets with a given IAT delta" (or latency delta) on a symmetric
//! log-ish axis spanning roughly ±10⁸ ns. [`DeltaHistogram`] reproduces
//! that: a zero bucket for |Δ| < 1 ns, then logarithmic buckets (a fixed
//! number per decade) out to ±10⁹ ns, mirrored for negative deltas.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// Sub-buckets per decade.
const SUBS: usize = 5;
/// Number of decades covered (1 ns .. 10^DECADES ns).
const DECADES: usize = 9;
/// Buckets per sign: decades × subs.
const PER_SIGN: usize = SUBS * DECADES;

/// Bucket-edge bit patterns plus a per-binade index for O(1) binning.
///
/// `edges[k]` (for `k ≤ PER_SIGN`) is the smallest positive-f64 bit
/// pattern whose [`DeltaHistogram::add`] position is `≥ k` — computed by
/// bisecting the bit space against the *same* `log10`-based expression
/// the scalar path uses, so the table-driven binning in
/// [`DeltaHistogram::record_slice`] reproduces the scalar bucket for
/// every finite input (for positive finite doubles the bit pattern
/// orders exactly like the value). `base[e]` is the bucket count at the
/// smallest pattern of biased exponent `e`; one binade spans
/// `log10(2) * SUBS ≈ 1.5` positions, so at most two edges fall inside
/// it and the per-sample refinement is exactly two integer compares. The
/// two `u64::MAX` pads past `edges[PER_SIGN]` keep those probes in
/// bounds without a branch.
struct EdgeTable {
    edges: [u64; PER_SIGN + 3],
    base: [u8; 2048],
}

fn edge_table() -> &'static EdgeTable {
    static TABLE: OnceLock<EdgeTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        let raw_pos = |mag: f64| (mag.log10() * SUBS as f64).floor() as isize;
        let mut edges = [u64::MAX; PER_SIGN + 3];
        for (k, e) in edges.iter_mut().enumerate().take(PER_SIGN + 1) {
            let (mut lo, mut hi) = (1.0f64.to_bits(), f64::MAX.to_bits());
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if raw_pos(f64::from_bits(mid)) >= k as isize {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // The scalar path must agree at both sides of the boundary.
            assert!(raw_pos(f64::from_bits(lo)) >= k as isize);
            assert!(k == 0 || raw_pos(f64::from_bits(lo - 1)) < k as isize);
            *e = lo;
        }
        let count_le =
            |mb: u64| edges[1..=PER_SIGN].iter().filter(|&&e| e <= mb).count();
        let mut base = [0u8; 2048];
        for (e, b) in base.iter_mut().enumerate() {
            let min = (e as u64) << 52;
            let max = min | ((1u64 << 52) - 1);
            let at_min = count_le(min);
            // The two-probe refinement in `record_slice` relies on this.
            assert!(count_le(max) - at_min <= 2, "binade {e} crosses > 2 edges");
            *b = at_min as u8;
        }
        EdgeTable { edges, base }
    })
}

/// A symmetric signed log histogram of deltas in nanoseconds.
///
/// ```
/// use choir_core::metrics::DeltaHistogram;
///
/// let h = DeltaHistogram::of([0.2, -3.0, 5.5, 180.0]);
/// assert_eq!(h.total(), 4);
/// assert!((h.fraction_within(10.0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeltaHistogram {
    /// Counts indexed `0..2*PER_SIGN+1`; the middle index is the zero
    /// bucket, lower indices negative deltas, higher positive.
    counts: Vec<u64>,
    total: u64,
    /// Values below −10⁹ ns or above +10⁹ ns (clamped into the end
    /// buckets but tallied separately for diagnostics).
    clamped: u64,
}

impl DeltaHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DeltaHistogram {
            counts: vec![0; 2 * PER_SIGN + 1],
            total: 0,
            clamped: 0,
        }
    }

    /// Histogram of a delta series.
    pub fn of<I: IntoIterator<Item = f64>>(deltas_ns: I) -> Self {
        let mut h = Self::new();
        for d in deltas_ns {
            h.add(d);
        }
        h
    }

    fn signed_index(&mut self, delta_ns: f64) -> usize {
        let mag = delta_ns.abs();
        if mag < 1.0 {
            return PER_SIGN; // zero bucket
        }
        let mut pos = (mag.log10() * SUBS as f64).floor() as isize;
        if pos >= PER_SIGN as isize {
            pos = PER_SIGN as isize - 1;
            self.clamped += 1;
        }
        if delta_ns > 0.0 {
            PER_SIGN + 1 + pos as usize
        } else {
            PER_SIGN - 1 - pos as usize
        }
    }

    /// Add one delta (in nanoseconds).
    pub fn add(&mut self, delta_ns: f64) {
        let idx = self.signed_index(delta_ns);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Record a whole delta series — bucket-identical to calling
    /// [`DeltaHistogram::add`] per element for every *finite* input (the
    /// metric kernels only ever produce finite deltas).
    ///
    /// The scalar path takes a `log10` per sample; here the f64 exponent
    /// indexes a per-binade bucket base and two branch-free integer
    /// compares refine within the binade (see [`EdgeTable`]) — no libm
    /// calls and no per-sample search.
    pub fn record_slice(&mut self, deltas_ns: &[f64]) {
        let t = edge_table();
        for &d in deltas_ns {
            let mag = d.abs();
            let idx = if mag < 1.0 {
                PER_SIGN // zero bucket
            } else {
                let mb = mag.to_bits();
                let b = t.base[(mb >> 52) as usize] as usize;
                let mut pos = b
                    + usize::from(t.edges[b + 1] <= mb)
                    + usize::from(t.edges[b + 2] <= mb);
                if pos >= PER_SIGN {
                    pos = PER_SIGN - 1;
                    self.clamped += 1;
                }
                if d > 0.0 {
                    PER_SIGN + 1 + pos
                } else {
                    PER_SIGN - 1 - pos
                }
            };
            self.counts[idx] += 1;
        }
        self.total += deltas_ns.len() as u64;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell outside ±10⁹ ns and were clamped.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The bucket boundaries and mass, as `(lo_ns, hi_ns, count, percent)`
    /// from the most negative bucket to the most positive. The zero bucket
    /// is `(-1, 1)`.
    pub fn buckets(&self) -> Vec<(f64, f64, u64, f64)> {
        let edge = |k: usize| 10f64.powf(k as f64 / SUBS as f64);
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = if i == PER_SIGN {
                (-1.0, 1.0)
            } else if i > PER_SIGN {
                let k = i - PER_SIGN - 1;
                (edge(k), edge(k + 1))
            } else {
                let k = PER_SIGN - 1 - i;
                (-edge(k + 1), -edge(k))
            };
            let pct = if self.total == 0 {
                0.0
            } else {
                100.0 * c as f64 / self.total as f64
            };
            out.push((lo, hi, c, pct));
        }
        out
    }

    /// Fraction (0–1) of samples with |Δ| ≤ `bound_ns`, computed from the
    /// raw counts of fully-contained buckets (conservative: a partially
    /// overlapping bucket is excluded).
    ///
    /// For the paper's headline "within 10 ns" statistic the bucket edges
    /// align exactly, so nothing is lost.
    pub fn fraction_within(&self, bound_ns: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut within = 0u64;
        for (lo, hi, c, _) in self.buckets() {
            if lo >= -bound_ns && hi <= bound_ns {
                within += c;
            }
        }
        within as f64 / self.total as f64
    }

    /// Merge another histogram into this one.
    ///
    /// Both histograms must share the same bucket geometry. Today that is
    /// guaranteed (`SUBS`/`DECADES` are compile-time constants), but a
    /// deserialized histogram from an older or foreign build could carry a
    /// different bucket count — zipping those would silently drop mass.
    pub fn merge(&mut self, other: &DeltaHistogram) {
        debug_assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "merging histograms with different bucket geometries"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.clamped += other.clamped;
    }

    /// CSV rows `lo_ns,hi_ns,count,percent` (no header), skipping empty
    /// leading/trailing buckets. An all-zero histogram yields an explicit
    /// comment marker instead of a spurious bucket-0 row.
    pub fn to_csv(&self) -> String {
        if self.total == 0 {
            return "# no samples\n".to_string();
        }
        let b = self.buckets();
        let first = b.iter().position(|&(_, _, c, _)| c > 0).expect("non-zero total");
        let last = b.iter().rposition(|&(_, _, c, _)| c > 0).expect("non-zero total");
        let mut s = String::new();
        for &(lo, hi, c, pct) in &b[first..=last] {
            s.push_str(&format!("{lo:.3},{hi:.3},{c},{pct:.4}\n"));
        }
        s
    }

    /// A terminal rendering in the style of the paper's figures: one bar
    /// per non-empty bucket, percent-scaled to `width` characters. An
    /// all-zero histogram renders an explicit empty marker instead of
    /// presenting bucket 0 as populated.
    pub fn render_ascii(&self, width: usize) -> String {
        if self.total == 0 {
            return "(no samples)\n".to_string();
        }
        let b = self.buckets();
        let first = b.iter().position(|&(_, _, c, _)| c > 0).expect("non-zero total");
        let last = b.iter().rposition(|&(_, _, c, _)| c > 0).expect("non-zero total");
        let maxpct = b
            .iter()
            .map(|&(_, _, _, p)| p)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut s = String::new();
        for &(lo, hi, c, pct) in &b[first..=last] {
            if c == 0 && !(lo <= 0.0 && hi >= 0.0) {
                continue;
            }
            let bar = "#".repeat(((pct / maxpct) * width as f64).round() as usize);
            s.push_str(&format!("{:>12.1} .. {:>12.1} ns |{:6.2}% {}\n", lo, hi, pct, bar));
        }
        s
    }
}

impl Default for DeltaHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bucket_catches_subnanosecond() {
        let h = DeltaHistogram::of([0.0, 0.5, -0.9, 0.99]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.fraction_within(1.0), 1.0);
    }

    #[test]
    fn within_ten_ns_statistic() {
        // 8 samples within ±10 ns, 2 outside.
        let h = DeltaHistogram::of([0.0, 1.0, -2.0, 3.0, 5.0, -7.0, 9.0, 9.9, 50.0, -800.0]);
        assert!((h.fraction_within(10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sign_symmetry() {
        let mut h = DeltaHistogram::new();
        h.add(123.0);
        h.add(-123.0);
        let b = h.buckets();
        let pos: Vec<_> = b.iter().filter(|&&(lo, _, c, _)| lo > 0.0 && c > 0).collect();
        let neg: Vec<_> = b.iter().filter(|&&(_, hi, c, _)| hi < 0.0 && c > 0).collect();
        assert_eq!(pos.len(), 1);
        assert_eq!(neg.len(), 1);
        assert!((pos[0].0 + neg[0].1).abs() < 1e-9, "mirrored edges");
    }

    #[test]
    fn bucket_mass_conservation() {
        let mut h = DeltaHistogram::new();
        for i in 0..1000 {
            h.add((i as f64 - 500.0) * 17.3);
        }
        let sum: u64 = h.buckets().iter().map(|&(_, _, c, _)| c).sum();
        assert_eq!(sum, h.total());
        let pct: f64 = h.buckets().iter().map(|&(_, _, _, p)| p).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn huge_values_clamp() {
        let mut h = DeltaHistogram::new();
        h.add(1e12);
        h.add(-2e15);
        assert_eq!(h.total(), 2);
        assert_eq!(h.clamped(), 2);
        let sum: u64 = h.buckets().iter().map(|&(_, _, c, _)| c).sum();
        assert_eq!(sum, 2);
    }

    #[test]
    fn merge_adds() {
        let mut a = DeltaHistogram::of([5.0, 10.0]);
        let b = DeltaHistogram::of([-5.0]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different bucket geometries")]
    fn merge_rejects_mismatched_geometry() {
        // A foreign/older build could serialize a different bucket count;
        // merging it must trip the debug assertion instead of silently
        // dropping mass.
        let mut a = DeltaHistogram::new();
        let b: DeltaHistogram =
            serde_json::from_str(r#"{"counts":[1,2,3],"total":6,"clamped":0}"#).unwrap();
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_renders() {
        let h = DeltaHistogram::new();
        assert_eq!(h.fraction_within(10.0), 0.0);
        let _ = h.render_ascii(40);
        let _ = h.to_csv();
    }

    #[test]
    fn empty_histogram_renders_explicit_marker() {
        // The old render picked bucket 0 via unwrap_or(0) and printed it
        // as if populated; an all-zero histogram must say so instead.
        let h = DeltaHistogram::new();
        assert_eq!(h.render_ascii(40), "(no samples)\n");
        assert_eq!(h.to_csv(), "# no samples\n");
        assert!(!h.render_ascii(40).contains(".."), "no bucket rows");
        // One sample and the rows come back.
        let h = DeltaHistogram::of([5.0]);
        assert!(h.render_ascii(40).contains(".."));
        assert!(h.to_csv().contains(','));
    }

    #[test]
    fn record_slice_matches_scalar_add() {
        // Sweep magnitudes across every decade, both signs, sub-ns and
        // clamped extremes.
        let mut deltas = vec![0.0, 0.25, -0.999, 1e12, -2e15];
        let mut x = 1.0f64;
        while x < 5e9 {
            deltas.push(x);
            deltas.push(-x);
            deltas.push(x * 1.37);
            x *= 1.9;
        }
        let mut scalar = DeltaHistogram::new();
        for &d in &deltas {
            scalar.add(d);
        }
        let mut bulk = DeltaHistogram::new();
        bulk.record_slice(&deltas);
        assert_eq!(scalar.counts, bulk.counts);
        assert_eq!(scalar.total, bulk.total);
        assert_eq!(scalar.clamped, bulk.clamped);
    }

    #[test]
    fn record_slice_agrees_at_every_edge_neighborhood() {
        // The exact bucket boundaries are where a table rebuilt from a
        // different expression would drift: check both sides of all 46
        // edges, positive and negative.
        let mut deltas = Vec::new();
        for &e in &edge_table().edges[..PER_SIGN + 1] {
            for bits in [e - 1, e, e + 1] {
                let v = f64::from_bits(bits);
                deltas.push(v);
                deltas.push(-v);
            }
        }
        let mut scalar = DeltaHistogram::new();
        for &d in &deltas {
            scalar.add(d);
        }
        let mut bulk = DeltaHistogram::new();
        bulk.record_slice(&deltas);
        assert_eq!(scalar.counts, bulk.counts);
        assert_eq!(scalar.clamped, bulk.clamped);
    }

    #[test]
    fn csv_has_rows_for_data() {
        let h = DeltaHistogram::of([3.0, 3.5, -100.0]);
        let csv = h.to_csv();
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains(','));
    }

    #[test]
    fn decade_boundaries_land_in_correct_bucket() {
        let mut h = DeltaHistogram::new();
        h.add(10.0); // exactly 10 ns: belongs to the [10, ...) bucket
        let b = h.buckets();
        let hit = b.iter().find(|&&(_, _, c, _)| c > 0).unwrap();
        assert!((hit.0 - 10.0).abs() < 1e-9, "lo = {}", hit.0);
    }

    #[test]
    fn serde_roundtrip() {
        let h = DeltaHistogram::of([1.0, -20.0, 300.0]);
        let json = serde_json::to_string(&h).unwrap();
        let back: DeltaHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total(), 3);
        assert_eq!(back.fraction_within(10.0), h.fraction_within(10.0));
    }
}
