//! Stop-and-wait reliability for the in-band control channel.
//!
//! The paper runs control in-band "to conserve resources" (§5) and
//! implicitly assumes the control frames arrive: a lost `StartRecord`
//! silently yields an empty recording, a lost `ScheduleReplay` a replay
//! that never happens. This module hardens that channel: the
//! [`ReliableController`] stamps each outgoing command with a sequence
//! number (the extension layout in [`super::control`]), requests an
//! acknowledgement, and retransmits on timeout with exponential backoff
//! until the command is acked or a bounded retry budget runs out. The
//! receiving middlebox acks sequenced frames and suppresses duplicate
//! deliveries, so a retransmitted command is applied exactly once.
//!
//! One command is in flight at a time (stop-and-wait): control traffic
//! is a handful of frames per experiment, so pipelining would buy
//! nothing and a single `Option<Inflight>` keeps the state machine
//! trivially auditable. [`ReliableController::send`] hands back the
//! message when the link is busy rather than queueing it.

use choir_dpdk::{Burst, ControlMsg, Dataplane, PortId};
use choir_packet::MacAddr;

use super::control::{decode_control_pdu, encode_control_seq, ControlPdu};
use super::degrade::DegradationReport;

/// Configuration for a [`ReliableController`].
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Source MAC stamped on outgoing control frames.
    pub src: MacAddr,
    /// Destination MAC (the middlebox being commanded).
    pub dst: MacAddr,
    /// Port the controller transmits on.
    pub port: PortId,
    /// Retransmissions attempted after the initial send before the
    /// command is declared failed.
    pub max_retries: u32,
    /// Initial ack timeout in nanoseconds; doubles per retransmission.
    pub ack_timeout_ns: u64,
    /// Upper bound on the doubled timeout.
    pub max_timeout_ns: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            src: MacAddr::local(0xC0),
            dst: MacAddr::BROADCAST,
            port: 0,
            max_retries: 5,
            ack_timeout_ns: 1_000_000, // 1 ms
            max_timeout_ns: 16_000_000,
        }
    }
}

/// Counters for the reliable control link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlLinkStats {
    /// Commands handed to [`ReliableController::send`] and transmitted.
    pub sent: u64,
    /// Commands confirmed by an ack.
    pub acked: u64,
    /// Timeout-driven retransmissions.
    pub retransmits: u64,
    /// Commands that exhausted their retry budget unacked.
    pub failed: u64,
    /// Acks received for a sequence no longer in flight.
    pub duplicate_acks: u64,
}

impl ControlLinkStats {
    /// Project the link counters into the shared degradation vocabulary.
    pub fn degradation_report(&self) -> DegradationReport {
        DegradationReport {
            control_retransmits: self.retransmits,
            control_failures: self.failed,
            ..DegradationReport::default()
        }
    }
}

/// Delivery outcome surfaced by [`ReliableController::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlEvent {
    /// The in-flight command was acknowledged.
    Acked {
        /// Sequence number of the confirmed command.
        seq: u32,
    },
    /// The in-flight command exhausted its retries without an ack.
    Failed {
        /// Sequence number of the abandoned command.
        seq: u32,
        /// The command itself, returned so the caller can fall back
        /// (e.g. deliver out-of-band) or escalate.
        msg: ControlMsg,
        /// Total transmissions attempted (initial send + retries).
        attempts: u32,
    },
}

struct Inflight {
    msg: ControlMsg,
    seq: u32,
    /// Transmissions so far (the initial send counts as 1).
    attempts: u32,
    /// Current timeout; doubles per retransmission up to the cap.
    timeout_ns: u64,
    /// Wall-clock instant after which the send is retransmitted.
    deadline_wall_ns: u64,
}

/// Stop-and-wait sender for in-band control commands.
///
/// Drive it from the controller's event loop: [`send`] to start a
/// delivery, [`on_rx_frame`] for every received frame (it consumes
/// matching acks and ignores everything else), and [`poll`] once per
/// loop pass to fire timeouts. `poll` returns a [`ControlEvent`] when a
/// delivery resolves.
///
/// [`send`]: ReliableController::send
/// [`on_rx_frame`]: ReliableController::on_rx_frame
/// [`poll`]: ReliableController::poll
pub struct ReliableController {
    cfg: ControllerConfig,
    next_seq: u32,
    inflight: Option<Inflight>,
    stats: ControlLinkStats,
}

impl ReliableController {
    /// A controller with no delivery in flight.
    pub fn new(cfg: ControllerConfig) -> Self {
        ReliableController {
            cfg,
            next_seq: 1,
            inflight: None,
            stats: ControlLinkStats::default(),
        }
    }

    /// True when no delivery is awaiting an ack.
    pub fn idle(&self) -> bool {
        self.inflight.is_none()
    }

    /// Link counters so far.
    pub fn stats(&self) -> ControlLinkStats {
        self.stats
    }

    /// Begin delivering `msg`: transmit it with a fresh sequence number
    /// and arm the ack timeout. Returns the assigned sequence, or gives
    /// `msg` back if a delivery is already in flight (stop-and-wait).
    ///
    /// A transmit that fails outright (pool exhausted, ring full) is
    /// tolerated: the frame is treated as lost and the retransmission
    /// machinery recovers it.
    pub fn send<D: Dataplane>(&mut self, msg: ControlMsg, dp: &mut D) -> Result<u32, ControlMsg> {
        if self.inflight.is_some() {
            return Err(msg);
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.transmit(&msg, seq, dp);
        self.stats.sent += 1;
        self.inflight = Some(Inflight {
            msg,
            seq,
            attempts: 1,
            timeout_ns: self.cfg.ack_timeout_ns,
            deadline_wall_ns: dp.wall_ns().saturating_add(self.cfg.ack_timeout_ns),
        });
        Ok(seq)
    }

    /// Offer a received frame to the controller. Returns `true` if the
    /// frame was a control ack (and therefore should not be forwarded
    /// or processed further), `false` otherwise.
    pub fn on_rx_frame(&mut self, frame: &choir_packet::Frame) -> bool {
        let Some(ControlPdu::Ack { seq }) = decode_control_pdu(frame) else {
            return false;
        };
        match &self.inflight {
            Some(inflight) if inflight.seq == seq => {
                self.inflight = None;
                self.stats.acked += 1;
            }
            _ => self.stats.duplicate_acks += 1,
        }
        true
    }

    /// Fire the ack timeout if it has elapsed: retransmit with a doubled
    /// timeout while retries remain, otherwise declare the delivery
    /// failed. Returns the resolving event, if any.
    pub fn poll<D: Dataplane>(&mut self, dp: &mut D) -> Option<ControlEvent> {
        let now = dp.wall_ns();
        let inflight = self.inflight.as_mut()?;
        if now < inflight.deadline_wall_ns {
            return None;
        }
        if inflight.attempts > self.cfg.max_retries {
            let done = self.inflight.take().expect("checked above");
            self.stats.failed += 1;
            return Some(ControlEvent::Failed {
                seq: done.seq,
                msg: done.msg,
                attempts: done.attempts,
            });
        }
        inflight.attempts += 1;
        inflight.timeout_ns = (inflight.timeout_ns * 2).min(self.cfg.max_timeout_ns);
        inflight.deadline_wall_ns = now.saturating_add(inflight.timeout_ns);
        let (msg, seq) = (inflight.msg, inflight.seq);
        self.transmit(&msg, seq, dp);
        self.stats.retransmits += 1;
        None
    }

    fn transmit<D: Dataplane>(&self, msg: &ControlMsg, seq: u32, dp: &mut D) {
        let frame = encode_control_seq(msg, seq, self.cfg.src, self.cfg.dst);
        let Ok(mbuf) = dp.mempool().alloc(frame) else {
            return; // treated as a lost frame; retransmission recovers
        };
        let mut burst = Burst::new();
        let _ = burst.push(mbuf);
        dp.tx_burst(self.cfg.port, &mut burst);
        // Anything the ring rejected is dropped here — same recovery.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::control::encode_control_ack;
    use choir_dpdk::{Mempool, PortStats};
    use choir_packet::Frame;

    struct TestPlane {
        pool: Mempool,
        now: u64,
        /// Frames handed to `tx_burst`, decoded.
        sent: Vec<ControlPdu>,
        /// When true, `tx_burst` accepts nothing (wedged ring).
        reject_tx: bool,
    }

    impl TestPlane {
        fn new() -> Self {
            TestPlane {
                pool: Mempool::new("reliable-test", 64),
                now: 0,
                sent: Vec::new(),
                reject_tx: false,
            }
        }
    }

    impl Dataplane for TestPlane {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
            if self.reject_tx {
                return 0;
            }
            let n = burst.len();
            for m in burst.drain_front(n) {
                if let Some(pdu) = decode_control_pdu(&Frame::new(m.frame.data.clone())) {
                    self.sent.push(pdu);
                }
            }
            n
        }
        fn tsc(&self) -> u64 {
            self.now
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now
        }
        fn request_wake_at_tsc(&mut self, _tsc: u64) {}
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            src: MacAddr::local(1),
            dst: MacAddr::local(2),
            port: 0,
            max_retries: 3,
            ack_timeout_ns: 100,
            max_timeout_ns: 400,
        }
    }

    fn ack(seq: u32) -> Frame {
        encode_control_ack(seq, MacAddr::local(2), MacAddr::local(1))
    }

    #[test]
    fn acked_send_resolves_cleanly() {
        let mut dp = TestPlane::new();
        let mut ctl = ReliableController::new(cfg());
        let seq = ctl.send(ControlMsg::StartRecord, &mut dp).unwrap();
        assert!(!ctl.idle());
        assert_eq!(
            dp.sent,
            vec![ControlPdu::Msg {
                msg: ControlMsg::StartRecord,
                seq: Some(seq),
            }]
        );
        assert!(ctl.on_rx_frame(&ack(seq)));
        assert!(ctl.idle());
        let s = ctl.stats();
        assert_eq!((s.sent, s.acked, s.retransmits, s.failed), (1, 1, 0, 0));
    }

    #[test]
    fn busy_link_returns_the_message() {
        let mut dp = TestPlane::new();
        let mut ctl = ReliableController::new(cfg());
        ctl.send(ControlMsg::StartRecord, &mut dp).unwrap();
        assert_eq!(
            ctl.send(ControlMsg::StopRecord, &mut dp),
            Err(ControlMsg::StopRecord)
        );
    }

    #[test]
    fn timeout_retransmits_with_doubling_backoff() {
        let mut dp = TestPlane::new();
        let mut ctl = ReliableController::new(cfg());
        let seq = ctl.send(ControlMsg::StopRecord, &mut dp).unwrap();
        // Before the deadline: nothing happens.
        dp.now = 99;
        assert_eq!(ctl.poll(&mut dp), None);
        assert_eq!(dp.sent.len(), 1);
        // Deadline passes: retransmit, timeout doubles to 200.
        dp.now = 100;
        assert_eq!(ctl.poll(&mut dp), None);
        assert_eq!(dp.sent.len(), 2);
        // Next deadline is now + 200 = 300.
        dp.now = 299;
        assert_eq!(ctl.poll(&mut dp), None);
        assert_eq!(dp.sent.len(), 2);
        dp.now = 300;
        assert_eq!(ctl.poll(&mut dp), None);
        assert_eq!(dp.sent.len(), 3);
        assert_eq!(ctl.stats().retransmits, 2);
        // A late ack still resolves the delivery.
        assert!(ctl.on_rx_frame(&ack(seq)));
        assert!(ctl.idle());
        assert_eq!(ctl.stats().acked, 1);
    }

    #[test]
    fn retry_budget_exhaustion_reports_failure() {
        let mut dp = TestPlane::new();
        dp.reject_tx = true; // every transmission is lost
        let mut ctl = ReliableController::new(cfg());
        let seq = ctl
            .send(ControlMsg::Custom(7), &mut dp)
            .expect("link starts idle");
        // Timeouts: 100, 200, 400, 400 (capped), then failure.
        let mut event = None;
        for _ in 0..16 {
            dp.now += 1_000; // always past the deadline
            if let Some(e) = ctl.poll(&mut dp) {
                event = Some(e);
                break;
            }
        }
        assert_eq!(
            event,
            Some(ControlEvent::Failed {
                seq,
                msg: ControlMsg::Custom(7),
                attempts: 4, // initial send + max_retries = 3
            })
        );
        assert!(ctl.idle());
        let s = ctl.stats();
        assert_eq!((s.retransmits, s.failed), (3, 1));
        assert_eq!(
            s.degradation_report().control_failures,
            1,
            "failure projects into the degradation vocabulary"
        );
        // The link is usable again after a failure.
        assert!(ctl.send(ControlMsg::StartRecord, &mut dp).is_ok());
    }

    #[test]
    fn stray_and_duplicate_acks_are_counted_not_applied() {
        let mut dp = TestPlane::new();
        let mut ctl = ReliableController::new(cfg());
        // Stray ack with nothing in flight.
        assert!(ctl.on_rx_frame(&ack(99)));
        assert_eq!(ctl.stats().duplicate_acks, 1);
        let seq = ctl.send(ControlMsg::StartRecord, &mut dp).unwrap();
        // Ack for the wrong sequence leaves the delivery in flight.
        assert!(ctl.on_rx_frame(&ack(seq + 1)));
        assert!(!ctl.idle());
        assert_eq!(ctl.stats().duplicate_acks, 2);
        // The right ack, twice: second is a duplicate.
        assert!(ctl.on_rx_frame(&ack(seq)));
        assert!(ctl.on_rx_frame(&ack(seq)));
        assert_eq!(ctl.stats().acked, 1);
        assert_eq!(ctl.stats().duplicate_acks, 3);
    }

    #[test]
    fn non_ack_frames_are_not_consumed() {
        let mut ctl = ReliableController::new(cfg());
        let cmd = crate::replay::control::encode_control(
            &ControlMsg::StartRecord,
            MacAddr::local(5),
            MacAddr::local(6),
        );
        assert!(!ctl.on_rx_frame(&cmd), "commands pass through");
        let junk = Frame::new(bytes::Bytes::from_static(b"not a control frame"));
        assert!(!ctl.on_rx_frame(&junk));
    }

    #[test]
    fn pool_exhaustion_on_send_is_recovered_by_retransmit() {
        let mut dp = TestPlane::new();
        // Drain the pool so the first transmit cannot allocate.
        let hold: Vec<_> = (0..64)
            .map(|_| {
                dp.pool
                    .alloc(Frame::new(bytes::Bytes::from_static(&[0u8; 16])))
                    .unwrap()
            })
            .collect();
        let mut ctl = ReliableController::new(cfg());
        let seq = ctl.send(ControlMsg::StartRecord, &mut dp).unwrap();
        assert_eq!(dp.sent.len(), 0, "nothing hit the wire");
        drop(hold); // pool recovers
        dp.now = 100;
        assert_eq!(ctl.poll(&mut dp), None);
        assert_eq!(
            dp.sent,
            vec![ControlPdu::Msg {
                msg: ControlMsg::StartRecord,
                seq: Some(seq),
            }]
        );
    }
}
