//! `L` — variation in latency (paper Eq. 3).
//!
//! For each common packet, its latency within a trial is its arrival time
//! relative to the trial's first arrival: `l_Ai = t_Aj − t_A0`. The metric
//! sums `|l_Ai − l_Bi|` over the overlap and normalizes by the paper's
//! proven maximum — all common packets at one end of A and the opposite
//! end of B (Fig. 2):
//!
//! ```text
//! L_AB = Σ |l_Ai − l_Bi| / (|A∩B| · max(t_B|B| − t_A0, t_A|A| − t_B0))
//! ```
//!
//! The numerator is GapReplay's "cumulative latency"; the denominator is
//! this paper's normalization contribution.
//!
//! Because `l` is anchored on each trial's *first* packet, a timing
//! excursion on that one packet shifts every delta by the same amount —
//! producing the single-spike histograms the paper observes ("either one
//! spike far to one side or two spikes symmetrically across 0", §7). The
//! tests pin that behaviour.

use super::allpairs::TrialIndex;
use super::matching::Matching;
use super::trial::Trial;

/// Latency analysis output.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// The normalized latency metric in `[0, 1]`.
    pub l: f64,
    /// Per-common-packet latency deltas `l_Ai − l_Bi` in nanoseconds, in
    /// B arrival order — the series behind the figures' histograms.
    pub deltas_ns: Vec<f64>,
}

/// Compute `L` and the per-packet deltas.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn latency(a: &Trial, b: &Trial, m: &Matching) -> f64 {
    latency_full_core(a, b, m).l
}

/// Compute `L` along with the delta series.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn latency_full(a: &Trial, b: &Trial, m: &Matching) -> LatencyResult {
    latency_full_core(a, b, m)
}

/// Shared kernel behind the deprecated free functions and
/// [`super::pair::PairAnalyzer`].
pub(crate) fn latency_full_core(a: &Trial, b: &Trial, m: &Matching) -> LatencyResult {
    let mc = m.common();
    if mc == 0 {
        return LatencyResult {
            l: 0.0,
            deltas_ns: Vec::new(),
        };
    }
    let ta0 = a.start_ps() as i128;
    let tb0 = b.start_ps() as i128;
    let mut num: u128 = 0;
    let mut deltas_ns = Vec::with_capacity(mc);
    for p in &m.pairs {
        let la = a.time(p.a_idx) as i128 - ta0;
        let lb = b.time(p.b_idx) as i128 - tb0;
        let d = la - lb;
        num += d.unsigned_abs();
        deltas_ns.push(d as f64 / 1000.0);
    }
    // The paper writes the normalizer as max(t_B|B| − t_A0, t_A|A| − t_B0),
    // which assumes both captures are expressed from a common origin
    // (theirs are re-zeroed). For arbitrary time bases that expression can
    // under-estimate and push L past 1; the convention-independent
    // equivalent is max(span_A, span_B) — identical whenever t_A0 = t_B0,
    // and a provable bound for any time-ordered capture (l_Xi ∈
    // [0, span_X]). Spans use the min/max extent so mildly inverted
    // hardware stamps keep the bound tight; the final clamp covers the
    // residual pathological case.
    // Degenerate cases are pinned to exactly 0.0: with a single common
    // packet the normalizer's worst-case construction (Fig. 2) needs at
    // least two packets to move relative to each other, so no meaningful
    // ratio exists; a non-positive reach would divide by zero. Both
    // resolve to "no measurable latency variation" — 0.0, never NaN,
    // flows into κ. The per-packet deltas are still reported.
    let reach = (a.minmax_span_ps() as i128).max(b.minmax_span_ps() as i128);
    let denom = mc as i128 * reach;
    let l = if mc <= 1 || denom <= 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    };
    LatencyResult { l, deltas_ns }
}

/// Convenience: `L` straight from two trials.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn latency_of(a: &Trial, b: &Trial) -> LatencyResult {
    latency_full_core(a, b, &Matching::build(a, b))
}

/// Arena kernel behind [`super::pair::PairAnalyzer`]'s indexed path —
/// bit-identical to [`latency_full_core`], streaming the prebuilt dense
/// timestamp series into a caller-owned scratch vector.
///
/// The reference does every subtraction in `i128`. When both trials'
/// timestamps sit below `2^62` (every realistic capture: that is ~53
/// days in picoseconds) each latency `l = t − t0` fits `i64`, the
/// difference of two such fits `i64`, and `d as f64` rounds identically
/// from `i64` and `i128` — so the fast path runs the whole loop in
/// native 64-bit lanes with the same split-lane `u64` accumulation as
/// the IAT kernel. Trials beyond the gate fall back to the exact `i128`
/// arithmetic of the reference.
pub(crate) fn latency_arena(
    a: &TrialIndex<'_>,
    b: &TrialIndex<'_>,
    m: &Matching,
    deltas_ns: &mut Vec<f64>,
) -> f64 {
    deltas_ns.clear();
    let mc = m.common();
    if mc == 0 {
        return 0.0;
    }
    deltas_ns.reserve(mc);
    const FAST_MAX: u64 = 1 << 62;
    let num: u128 = if a.max_time_ps() < FAST_MAX && b.max_time_ps() < FAST_MAX {
        let ta = a.times();
        let tb = b.times();
        let ta0 = a.start_ps() as i64;
        let tb0 = b.start_ps() as i64;
        let (mut lo, mut hi) = (0u64, 0u64);
        for p in &m.pairs {
            let la = ta[p.a_idx] as i64 - ta0;
            let lb = tb[p.b_idx] as i64 - tb0;
            let d = la - lb;
            let ad = d.unsigned_abs();
            lo += ad & 0xFFFF_FFFF;
            hi += ad >> 32;
            deltas_ns.push(d as f64 / 1000.0);
        }
        ((hi as u128) << 32) + lo as u128
    } else {
        let ta = a.times();
        let tb = b.times();
        let ta0 = a.start_ps() as i128;
        let tb0 = b.start_ps() as i128;
        let mut num: u128 = 0;
        for p in &m.pairs {
            let la = ta[p.a_idx] as i128 - ta0;
            let lb = tb[p.b_idx] as i128 - tb0;
            let d = la - lb;
            num += d.unsigned_abs();
            deltas_ns.push(d as f64 / 1000.0);
        }
        num
    };
    // Identical normalizer and degenerate-case semantics to the
    // reference: see the comment in `latency_full_core`.
    let reach = (a.minmax_span_ps() as i128).max(b.minmax_span_ps() as i128);
    let denom = mc as i128 * reach;
    if mc <= 1 || denom <= 0 {
        0.0
    } else {
        (num as f64 / denom as f64).min(1.0)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;

    #[test]
    fn identical_trials_zero() {
        let mut a = Trial::new();
        for i in 0..50u64 {
            a.push_tagged(0, 0, i, i * 1000);
        }
        let r = latency_of(&a, &a.clone());
        assert_eq!(r.l, 0.0);
        assert!(r.deltas_ns.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn paper_example_nine_vs_eight_ns() {
        // §3: packet arrives 9 ns after start of A and 8 ns after start of
        // B -> l_An = 9, l_Bn = 8 (delta 1 ns).
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 0);
        a.push_tagged(0, 0, 1, 9_000); // 9 ns in ps
        let mut b = Trial::new();
        b.push_tagged(0, 0, 0, 0);
        b.push_tagged(0, 0, 1, 8_000);
        let r = latency_of(&a, &b);
        assert_eq!(r.deltas_ns[1], 1.0);
        // num = 1 ns; denom = 2 * max(8, 9) ns.
        assert!((r.l - 1_000.0 / (2.0 * 9_000.0)).abs() < 1e-12);
    }

    #[test]
    fn figure2_maximum_situation_reaches_one() {
        // Fig. 2: all common packets at one end of A, the opposite end of
        // B. L must reach exactly 1.
        let t_end = 1_000_000u64;
        let mut a = Trial::new();
        let mut b = Trial::new();
        // A: 5 common packets at t=0, then a non-common packet at t_end.
        for i in 0..5u64 {
            a.push_tagged(0, 0, i, 0);
        }
        a.push_tagged(9, 0, 0, t_end);
        // B: a non-common packet at 0, then the common packets at t_end.
        b.push_tagged(9, 0, 1, 0);
        for i in 0..5u64 {
            b.push_tagged(0, 0, i, t_end);
        }
        let r = latency_of(&a, &b);
        assert!((r.l - 1.0).abs() < 1e-12, "got {}", r.l);
    }

    #[test]
    fn symmetric() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..20u64 {
            a.push_tagged(0, 0, i, i * 100);
            b.push_tagged(0, 0, i, i * 100 + (i % 3) * 7);
        }
        let lab = latency_of(&a, &b).l;
        let lba = latency_of(&b, &a).l;
        assert!((lab - lba).abs() < 1e-15);
    }

    #[test]
    fn first_packet_excursion_shifts_all_deltas() {
        // The spike phenomenon: if B's first packet is late by 5 us, every
        // delta shifts by +5 us even though later packets are punctual.
        let n = 10u64;
        let gap = 1_000_000u64; // 1 us
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..n {
            a.push_tagged(0, 0, i, i * gap);
            // B identical except packet 0 arrives 5 us late... which makes
            // it arrive *after* packet 1; keep order by shifting only the
            // recorded time base: first packet late but still first.
            let t = if i == 0 { 500_000 } else { i * gap };
            b.push_tagged(0, 0, i, t);
        }
        let r = latency_of(&a, &b);
        // All deltas after the first equal +0.5 us (B's origin moved).
        for &d in &r.deltas_ns[1..] {
            assert!((d - 500.0).abs() < 1e-9, "delta {d}");
        }
        assert_eq!(r.deltas_ns[0], 0.0);
    }

    #[test]
    fn no_overlap_is_zero() {
        let mut a = Trial::new();
        a.push_tagged(0, 0, 1, 0);
        let mut b = Trial::new();
        b.push_tagged(1, 0, 1, 0);
        assert_eq!(latency_of(&a, &b).l, 0.0);
    }

    #[test]
    fn single_common_packet_zero() {
        // One common packet: the Fig. 2 worst-case normalizer is
        // meaningless for an overlap of one, so L is defined as exactly
        // 0.0 — but the per-packet delta series is still reported.
        let mut a = Trial::new();
        a.push_tagged(0, 0, 1, 0);
        a.push_tagged(0, 0, 2, 500);
        let mut b = Trial::new();
        b.push_tagged(0, 0, 2, 0);
        let r = latency_of(&a, &b);
        // Common packet: a_idx 1 (l_A = 500), b_idx 0 (l_B = 0).
        assert_eq!(r.deltas_ns, vec![0.5]);
        assert_eq!(r.l, 0.0);
        assert!(!r.l.is_nan());
    }

    #[test]
    fn coincident_trials_degenerate_denominator() {
        // All packets at one instant in both trials: reach = 0; L = 0.
        let mut a = Trial::new();
        a.push_tagged(0, 0, 0, 0);
        let r = latency_of(&a, &a.clone());
        assert_eq!(r.l, 0.0);
    }

    #[test]
    fn zero_span_many_common_packets_is_exactly_zero() {
        // Several common packets, all coincident: mc > 1 but reach = 0.
        // L must be exactly 0.0, never NaN from 0/0.
        let mut a = Trial::new();
        for i in 0..5u64 {
            a.push_tagged(0, 0, i, 7_000);
        }
        let r = latency_of(&a, &a.clone());
        assert_eq!(r.l, 0.0);
        assert!(!r.l.is_nan());
        assert_eq!(r.deltas_ns.len(), 5);
    }
}
