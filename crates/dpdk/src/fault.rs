//! Deterministic fault injection for any [`Dataplane`].
//!
//! [`FaultyDataplane`] wraps a backend and perturbs its observable
//! behaviour the way real testbeds do when they misbehave: NIC descriptor
//! rings refusing bursts, transient transmit stalls, receive-side drops
//! and duplicates, lost or corrupted in-band control frames, forward TSC
//! steps (a VM migration or SMI), and mempool exhaustion. Every decision
//! is drawn from a seeded [`StdRng`], so a fault scenario is a pure
//! function of `(seed, call sequence)` — replaying the same workload with
//! the same seed reproduces the same faults bit-for-bit, which is what
//! lets `repro chaos` publish reproducible degradation sweeps.
//!
//! Two invariants the wrapper maintains:
//!
//! - **All-zero rates are transparent.** With every rate at `0.0` the
//!   wrapper never consults the RNG and forwards every call unchanged, so
//!   it is observation-identical to the bare backend (property-tested in
//!   `tests/fault_properties.rs`).
//! - **No conjured packets.** Injected faults only reorder, duplicate
//!   (by refcount clone), drop, or reject packets the backend produced;
//!   pool accounting stays exact because ballast mbufs are allocated from
//!   the real pool and released on schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bytes::Bytes;
use choir_obs as obs;
use choir_packet::{EtherType, EthernetHeader, Frame};

use crate::burst::Burst;
use crate::mbuf::{Mbuf, Mempool};
use crate::plane::{Dataplane, PortId};
use crate::stats::PortStats;

/// Ballast allocation is skipped for pools larger than this — exhausting
/// an effectively unbounded pool (e.g. [`Mbuf::unpooled`]'s shared pool)
/// would allocate forever.
const MAX_BALLAST: usize = 1 << 20;

/// Rates and schedules for each fault class. All rates are probabilities
/// in `[0, 1]` evaluated per opportunity (per call or per packet).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault RNG; the whole scenario is deterministic in it.
    pub seed: u64,
    /// Probability per `tx_burst` call that the NIC rejects the entire
    /// burst (accepts zero packets). The caller sees the same thing a full
    /// descriptor ring produces.
    pub tx_reject_rate: f64,
    /// Probability per `tx_burst` call of entering a stall: this call and
    /// the next [`FaultConfig::tx_stall_calls`] calls accept nothing.
    pub tx_stall_rate: f64,
    /// Length of an injected stall, in subsequent `tx_burst` calls. The
    /// stall is bounded by construction — it always ends.
    pub tx_stall_calls: u32,
    /// Probability per received data packet of being dropped before the
    /// app sees it.
    pub rx_drop_rate: f64,
    /// Probability per received data packet of being duplicated (the copy
    /// is a refcount clone delivered immediately after the original).
    pub rx_dup_rate: f64,
    /// Probability per received *control* frame of being dropped.
    pub control_drop_rate: f64,
    /// Probability per received *control* frame of having one payload
    /// byte flipped (the frame still carries the control EtherType).
    pub control_corrupt_rate: f64,
    /// Probability per dataplane call of the TSC stepping forward by
    /// [`FaultConfig::tsc_jump_cycles`]. Jumps are forward-only; the TSC
    /// stays monotonic.
    pub tsc_jump_rate: f64,
    /// Size of an injected TSC step, in cycles.
    pub tsc_jump_cycles: u64,
    /// Probability per dataplane call of forcing the mempool to
    /// exhaustion by allocating ballast mbufs.
    pub pool_exhaust_rate: f64,
    /// How many dataplane calls the ballast is held before release.
    pub pool_exhaust_calls: u32,
    /// Restrict injection to a half-open window `[start, end)` of
    /// dataplane calls (rx + tx). `None` means always active. This is the
    /// scheduling hook: e.g. `(1000, 2000)` injects a mid-run incident.
    pub window: Option<(u64, u64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            tx_reject_rate: 0.0,
            tx_stall_rate: 0.0,
            tx_stall_calls: 16,
            rx_drop_rate: 0.0,
            rx_dup_rate: 0.0,
            control_drop_rate: 0.0,
            control_corrupt_rate: 0.0,
            tsc_jump_rate: 0.0,
            tsc_jump_cycles: 0,
            pool_exhaust_rate: 0.0,
            pool_exhaust_calls: 32,
            window: None,
        }
    }
}

impl FaultConfig {
    /// A configuration injecting nothing (all rates zero).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// True when every fault rate is zero — the wrapper is a passthrough.
    pub fn is_quiet(&self) -> bool {
        self.tx_reject_rate == 0.0
            && self.tx_stall_rate == 0.0
            && self.rx_drop_rate == 0.0
            && self.rx_dup_rate == 0.0
            && self.control_drop_rate == 0.0
            && self.control_corrupt_rate == 0.0
            && self.tsc_jump_rate == 0.0
            && self.pool_exhaust_rate == 0.0
    }
}

/// Counters of every fault actually injected. The supervision layer
/// reconciles these against the replay engine's degradation report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `tx_burst` calls where the whole burst was rejected.
    pub tx_bursts_rejected: u64,
    /// Packets present in rejected bursts (they stay with the caller).
    pub tx_packets_rejected: u64,
    /// Stalls entered.
    pub tx_stalls_triggered: u64,
    /// Individual `tx_burst` calls swallowed by a stall.
    pub tx_calls_stalled: u64,
    /// Data packets dropped on receive.
    pub rx_packets_dropped: u64,
    /// Data packets duplicated on receive.
    pub rx_packets_duplicated: u64,
    /// Control frames dropped on receive.
    pub control_frames_dropped: u64,
    /// Control frames with a flipped payload byte.
    pub control_frames_corrupted: u64,
    /// Forward TSC steps injected.
    pub tsc_jumps: u64,
    /// Total cycles of injected TSC steps.
    pub tsc_cycles_jumped: u64,
    /// Times the pool was forced to exhaustion.
    pub pool_exhaustions: u64,
}

impl FaultStats {
    /// Total injected fault events, for quick "did anything fire" checks.
    pub fn total_events(&self) -> u64 {
        self.tx_bursts_rejected
            + self.tx_stalls_triggered
            + self.rx_packets_dropped
            + self.rx_packets_duplicated
            + self.control_frames_dropped
            + self.control_frames_corrupted
            + self.tsc_jumps
            + self.pool_exhaustions
    }
}

/// Deterministically cut a serialized byte stream (e.g. an exported pcap
/// chunk stream) at a seeded offset, keeping at least `keep_prefix`
/// bytes. Returns the cut offset. The same `(seed, length)` always cuts
/// at the same place, so a salvage scenario is exactly reproducible —
/// the same property [`FaultyDataplane`] gives packet faults, extended
/// to at-rest capture bytes.
///
/// Streams no longer than `keep_prefix` are returned untouched (there
/// is nothing meaningful to truncate mid-item).
pub fn truncate_stream(bytes: &mut Vec<u8>, seed: u64, keep_prefix: usize) -> u64 {
    if bytes.len() <= keep_prefix + 1 {
        return bytes.len() as u64;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let cut = rng.gen_range(keep_prefix as u64 + 1..bytes.len() as u64);
    bytes.truncate(cut as usize);
    obs::event("fault.stream_truncated", cut, 0);
    obs::counter_inc("fault.streams_truncated");
    cut
}

/// A [`Dataplane`] decorator injecting seeded, reproducible faults.
///
/// ```
/// use choir_dpdk::fault::{FaultConfig, FaultyDataplane};
/// use choir_dpdk::loopback::RealtimePlane;
///
/// let plane = RealtimePlane::self_loop(64);
/// let cfg = FaultConfig { seed: 7, tx_reject_rate: 0.5, ..FaultConfig::default() };
/// let mut faulty = FaultyDataplane::new(plane, cfg);
/// // `faulty` implements Dataplane; apps run on it unmodified.
/// # use choir_dpdk::Dataplane;
/// # let _ = faulty.tsc();
/// ```
pub struct FaultyDataplane<D: Dataplane> {
    inner: D,
    cfg: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
    /// Forward-only TSC displacement accumulated from injected jumps.
    tsc_offset: u64,
    /// Remaining `tx_burst` calls swallowed by the active stall.
    stall_remaining: u32,
    /// Mbufs held to keep the pool exhausted.
    ballast: Vec<Mbuf>,
    /// Dataplane calls until the ballast is released.
    ballast_remaining: u32,
    /// Total rx+tx calls seen, for window scheduling.
    calls: u64,
}

impl<D: Dataplane> FaultyDataplane<D> {
    /// Wrap `inner`, injecting faults per `cfg`.
    pub fn new(inner: D, cfg: FaultConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        FaultyDataplane {
            inner,
            cfg,
            rng,
            stats: FaultStats::default(),
            tsc_offset: 0,
            stall_remaining: 0,
            ballast: Vec::new(),
            ballast_remaining: 0,
            calls: 0,
        }
    }

    /// Counters of faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap, releasing any held ballast.
    pub fn into_inner(mut self) -> D {
        self.ballast.clear();
        self.inner
    }

    /// Force the pool to exhaustion now, regardless of rates. Ballast is
    /// held until [`FaultyDataplane::release_pool`] or the configured
    /// call count elapses.
    pub fn force_pool_exhaustion(&mut self) {
        self.exhaust_pool();
        self.ballast_remaining = self.cfg.pool_exhaust_calls.max(1);
    }

    /// Release all ballast mbufs back to the pool immediately.
    pub fn release_pool(&mut self) {
        self.ballast.clear();
        self.ballast_remaining = 0;
    }

    /// Bernoulli trial that never touches the RNG for rate 0 (transparency)
    /// or rate ≥ 1 (so "always" faults don't depend on draw order).
    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            false
        } else if rate >= 1.0 {
            true
        } else {
            self.rng.gen_bool(rate)
        }
    }

    /// Per-call faults shared by rx and tx paths: window accounting,
    /// ballast expiry, TSC jumps, pool exhaustion. Returns whether the
    /// injection window covers this call (indices are zero-based, so the
    /// very first dataplane call is call 0).
    fn on_call(&mut self) -> bool {
        let idx = self.calls;
        self.calls += 1;
        if self.ballast_remaining > 0 {
            self.ballast_remaining -= 1;
            if self.ballast_remaining == 0 {
                self.ballast.clear();
            }
        }
        let active = match self.cfg.window {
            Some((start, end)) => idx >= start && idx < end,
            None => true,
        };
        if !active {
            return false;
        }
        if self.cfg.tsc_jump_cycles > 0 && self.roll(self.cfg.tsc_jump_rate) {
            self.tsc_offset += self.cfg.tsc_jump_cycles;
            self.stats.tsc_jumps += 1;
            self.stats.tsc_cycles_jumped += self.cfg.tsc_jump_cycles;
            obs::event("fault.tsc_jump", idx, self.cfg.tsc_jump_cycles);
            obs::counter_inc("fault.tsc_jumps");
        }
        if self.ballast.is_empty() && self.roll(self.cfg.pool_exhaust_rate) {
            self.exhaust_pool();
            self.ballast_remaining = self.cfg.pool_exhaust_calls.max(1);
            obs::event("fault.pool_exhaustion", idx, self.ballast_remaining as u64);
            obs::counter_inc("fault.pool_exhaustions");
        }
        true
    }

    fn exhaust_pool(&mut self) {
        let pool = self.inner.mempool().clone();
        if pool.available() > MAX_BALLAST {
            return;
        }
        while let Ok(m) = pool.alloc(Frame::new(Bytes::new())) {
            self.ballast.push(m);
            if self.ballast.len() > MAX_BALLAST {
                break;
            }
        }
        self.stats.pool_exhaustions += 1;
    }

    fn is_control(m: &Mbuf) -> bool {
        EthernetHeader::parse(&m.frame.data)
            .map(|h| h.ethertype == EtherType::ChoirControl as u16)
            .unwrap_or(false)
    }

    /// Flip one random payload byte (past the Ethernet header) in place.
    fn corrupt(&mut self, m: &mut Mbuf) {
        let mut bytes = m.frame.data.to_vec();
        if bytes.len() <= EthernetHeader::LEN {
            return;
        }
        let span = (bytes.len() - EthernetHeader::LEN) as u64;
        let idx = EthernetHeader::LEN + self.rng.gen_range(0..span) as usize;
        let mask = self.rng.gen_range(1..=255u64) as u8;
        bytes[idx] ^= mask;
        m.frame = Frame::new(Bytes::from(bytes));
        self.stats.control_frames_corrupted += 1;
    }
}

impl<D: Dataplane> Dataplane for FaultyDataplane<D> {
    fn num_ports(&self) -> usize {
        self.inner.num_ports()
    }

    fn mempool(&self) -> &Mempool {
        self.inner.mempool()
    }

    fn rx_burst(&mut self, port: PortId, out: &mut Burst) -> usize {
        let active = self.on_call();
        let n = self.inner.rx_burst(port, out);
        if n == 0 || !active {
            return out.len();
        }
        let no_rx_faults = self.cfg.rx_drop_rate == 0.0
            && self.cfg.rx_dup_rate == 0.0
            && self.cfg.control_drop_rate == 0.0
            && self.cfg.control_corrupt_rate == 0.0;
        if no_rx_faults {
            return out.len();
        }
        let mut kept = Burst::new();
        while let Some(mut m) = out.pop_front() {
            if Self::is_control(&m) {
                if self.roll(self.cfg.control_drop_rate) {
                    self.stats.control_frames_dropped += 1;
                    obs::event("fault.control_dropped", port as u64, 1);
                    obs::counter_inc("fault.control_frames_dropped");
                    continue;
                }
                if self.roll(self.cfg.control_corrupt_rate) {
                    self.corrupt(&mut m);
                }
                if kept.push(m).is_err() {
                    self.stats.rx_packets_dropped += 1;
                }
            } else {
                if self.roll(self.cfg.rx_drop_rate) {
                    self.stats.rx_packets_dropped += 1;
                    obs::counter_inc("fault.rx_packets_dropped");
                    continue;
                }
                let duplicate = if self.roll(self.cfg.rx_dup_rate) {
                    Some(m.clone())
                } else {
                    None
                };
                if kept.push(m).is_err() {
                    self.stats.rx_packets_dropped += 1;
                }
                if let Some(d) = duplicate {
                    if kept.push(d).is_ok() {
                        self.stats.rx_packets_duplicated += 1;
                        obs::counter_inc("fault.rx_packets_duplicated");
                    }
                }
            }
        }
        *out = kept;
        out.len()
    }

    fn tx_burst(&mut self, port: PortId, burst: &mut Burst) -> usize {
        let active = self.on_call();
        if !active || burst.is_empty() {
            return self.inner.tx_burst(port, burst);
        }
        if self.stall_remaining > 0 {
            self.stall_remaining -= 1;
            self.stats.tx_calls_stalled += 1;
            return 0;
        }
        if self.roll(self.cfg.tx_stall_rate) {
            self.stats.tx_stalls_triggered += 1;
            self.stats.tx_calls_stalled += 1;
            self.stall_remaining = self.cfg.tx_stall_calls;
            obs::event("fault.tx_stall", port as u64, self.cfg.tx_stall_calls as u64);
            obs::counter_inc("fault.tx_stalls_triggered");
            return 0;
        }
        if self.roll(self.cfg.tx_reject_rate) {
            self.stats.tx_bursts_rejected += 1;
            self.stats.tx_packets_rejected += burst.len() as u64;
            obs::event("fault.tx_reject", port as u64, burst.len() as u64);
            obs::counter_inc("fault.tx_bursts_rejected");
            obs::counter_add("fault.tx_packets_rejected", burst.len() as u64);
            return 0;
        }
        self.inner.tx_burst(port, burst)
    }

    fn tsc(&self) -> u64 {
        self.inner.tsc() + self.tsc_offset
    }

    fn tsc_hz(&self) -> u64 {
        self.inner.tsc_hz()
    }

    fn wall_ns(&self) -> u64 {
        self.inner.wall_ns()
    }

    fn request_wake_at_tsc(&mut self, tsc: u64) {
        // The app computed the target from the displaced TSC; translate
        // back so the backend wakes at the equivalent real instant.
        self.inner
            .request_wake_at_tsc(tsc.saturating_sub(self.tsc_offset));
    }

    fn stats(&self, port: PortId) -> PortStats {
        self.inner.stats(port)
    }

    fn adjust_wall_clock(&mut self, delta_ns: i64) {
        self.inner.adjust_wall_clock(delta_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::RealtimePlane;

    fn data_burst(pool: &Mempool, n: usize) -> Burst {
        let b = choir_packet::FrameBuilder::new(128, 1, 2);
        Burst::from_iter_checked((0..n).map(|_| pool.alloc(b.build_plain()).unwrap()))
    }

    #[test]
    fn quiet_config_is_passthrough() {
        let plane = RealtimePlane::self_loop(256);
        let mut faulty = FaultyDataplane::new(plane, FaultConfig::quiet(9));
        let pool = faulty.mempool().clone();
        let mut b = data_burst(&pool, 8);
        assert_eq!(faulty.tx_burst(0, &mut b), 8);
        let mut out = Burst::new();
        assert_eq!(faulty.rx_burst(0, &mut out), 8);
        assert_eq!(faulty.fault_stats(), FaultStats::default());
        assert_eq!(faulty.fault_stats().total_events(), 0);
    }

    #[test]
    fn certain_tx_rejection_rejects_everything() {
        let plane = RealtimePlane::self_loop(256);
        let cfg = FaultConfig {
            tx_reject_rate: 1.0,
            ..FaultConfig::quiet(1)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let mut b = data_burst(&pool, 4);
        for _ in 0..5 {
            assert_eq!(faulty.tx_burst(0, &mut b), 0);
            assert_eq!(b.len(), 4, "rejected packets stay with the caller");
        }
        let s = faulty.fault_stats();
        assert_eq!(s.tx_bursts_rejected, 5);
        assert_eq!(s.tx_packets_rejected, 20);
    }

    #[test]
    fn stalls_are_bounded() {
        let plane = RealtimePlane::self_loop(256);
        let cfg = FaultConfig {
            tx_stall_rate: 1.0,
            tx_stall_calls: 3,
            ..FaultConfig::quiet(2)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let mut b = data_burst(&pool, 2);
        // Trigger, then 3 stalled calls, then the next trigger, forever —
        // but each stall individually ends.
        assert_eq!(faulty.tx_burst(0, &mut b), 0); // trigger
        for _ in 0..3 {
            assert_eq!(faulty.tx_burst(0, &mut b), 0); // stalled
        }
        let s = faulty.fault_stats();
        assert_eq!(s.tx_stalls_triggered, 1);
        assert_eq!(s.tx_calls_stalled, 4);
    }

    #[test]
    fn rx_drop_and_duplicate_account_exactly() {
        let plane = RealtimePlane::self_loop(4096);
        let cfg = FaultConfig {
            rx_drop_rate: 0.3,
            rx_dup_rate: 0.3,
            ..FaultConfig::quiet(3)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let mut delivered = 0usize;
        let mut sent = 0usize;
        for _ in 0..40 {
            let mut b = data_burst(&pool, 16);
            sent += 16;
            faulty.tx_burst(0, &mut b);
            let mut out = Burst::new();
            delivered += faulty.rx_burst(0, &mut out);
        }
        let s = faulty.fault_stats();
        assert!(s.rx_packets_dropped > 0, "{s:?}");
        assert!(s.rx_packets_duplicated > 0, "{s:?}");
        assert_eq!(
            delivered as u64,
            sent as u64 - s.rx_packets_dropped + s.rx_packets_duplicated
        );
    }

    #[test]
    fn tsc_jumps_are_forward_only_and_wake_compensated() {
        let plane = RealtimePlane::self_loop(64);
        let cfg = FaultConfig {
            tsc_jump_rate: 1.0,
            tsc_jump_cycles: 1_000_000,
            ..FaultConfig::quiet(4)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let before = faulty.tsc();
        let mut b = data_burst(&pool, 1);
        faulty.tx_burst(0, &mut b);
        let after = faulty.tsc();
        assert!(after >= before + 1_000_000, "{before} -> {after}");
        assert_eq!(faulty.fault_stats().tsc_jumps, 1);
        // Wake requests remain meaningful (no panic, no u64 underflow).
        faulty.request_wake_at_tsc(after + 10);
        faulty.request_wake_at_tsc(0);
    }

    #[test]
    fn pool_exhaustion_is_forced_and_released() {
        let plane = RealtimePlane::self_loop(64);
        let mut faulty = FaultyDataplane::new(plane, FaultConfig::quiet(5));
        let pool = faulty.mempool().clone();
        assert!(pool.available() > 0);
        faulty.force_pool_exhaustion();
        assert_eq!(pool.available(), 0, "ballast filled the pool");
        assert!(pool
            .alloc(Frame::new(Bytes::from_static(b"x")))
            .is_err());
        faulty.release_pool();
        assert_eq!(pool.in_use(), 0);
        assert_eq!(faulty.fault_stats().pool_exhaustions, 1);
    }

    #[test]
    fn scheduled_exhaustion_expires_by_call_count() {
        let plane = RealtimePlane::self_loop(64);
        let cfg = FaultConfig {
            pool_exhaust_rate: 1.0,
            pool_exhaust_calls: 2,
            window: Some((0, 1)), // only the first call may trigger
            ..FaultConfig::quiet(6)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let mut out = Burst::new();
        faulty.rx_burst(0, &mut out); // call 0: exhausts
        assert_eq!(pool.available(), 0);
        faulty.rx_burst(0, &mut out); // call 1: hold expires after this
        faulty.rx_burst(0, &mut out); // call 2: released
        assert_eq!(pool.in_use(), 0, "ballast released on schedule");
    }

    #[test]
    fn window_gates_injection() {
        let plane = RealtimePlane::self_loop(256);
        let cfg = FaultConfig {
            tx_reject_rate: 1.0,
            window: Some((2, 4)),
            ..FaultConfig::quiet(7)
        };
        let mut faulty = FaultyDataplane::new(plane, cfg);
        let pool = faulty.mempool().clone();
        let mut b = data_burst(&pool, 1);
        assert_eq!(faulty.tx_burst(0, &mut b), 1); // call 0: before window
        let mut b = data_burst(&pool, 1);
        assert_eq!(faulty.tx_burst(0, &mut b), 1); // call 1
        let mut b = data_burst(&pool, 1);
        assert_eq!(faulty.tx_burst(0, &mut b), 0); // call 2: inside
        assert_eq!(faulty.tx_burst(0, &mut b), 0); // call 3: inside
        assert_eq!(faulty.tx_burst(0, &mut b), 1); // call 4: after window
    }

    #[test]
    fn stream_truncation_is_seeded_and_bounded() {
        let base: Vec<u8> = (0..200u8).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let cut_a = truncate_stream(&mut a, 11, 24);
        let cut_b = truncate_stream(&mut b, 11, 24);
        assert_eq!(cut_a, cut_b, "same seed cuts at the same offset");
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, cut_a);
        assert!(cut_a > 24, "the protected prefix survives");
        assert_eq!(&a[..], &base[..a.len()], "truncation, not corruption");
        let mut c = base.clone();
        let cut_c = truncate_stream(&mut c, 12, 24);
        assert_ne!(cut_a, cut_c, "different seeds cut elsewhere");
        // Too-short streams are untouched.
        let mut tiny = vec![0u8; 10];
        assert_eq!(truncate_stream(&mut tiny, 1, 24), 10);
        assert_eq!(tiny.len(), 10);
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| -> (FaultStats, Vec<usize>) {
            let plane = RealtimePlane::self_loop(4096);
            let cfg = FaultConfig {
                tx_reject_rate: 0.25,
                rx_drop_rate: 0.2,
                rx_dup_rate: 0.1,
                ..FaultConfig::quiet(seed)
            };
            let mut faulty = FaultyDataplane::new(plane, cfg);
            let pool = faulty.mempool().clone();
            let mut accepted = Vec::new();
            for _ in 0..30 {
                let mut b = data_burst(&pool, 8);
                accepted.push(faulty.tx_burst(0, &mut b));
                let mut out = Burst::new();
                accepted.push(faulty.rx_burst(0, &mut out));
            }
            (faulty.fault_stats(), accepted)
        };
        let (s1, a1) = run(42);
        let (s2, a2) = run(42);
        let (s3, a3) = run(43);
        assert_eq!(s1, s2);
        assert_eq!(a1, a2);
        assert!(s1 != s3 || a1 != a3, "different seeds should diverge");
    }
}
