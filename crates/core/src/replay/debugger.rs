//! Interactive replay debugging: breakpoints and backtraces over a
//! recording.
//!
//! The paper motivates Choir as a debugging substrate: an in-situ
//! replayer "would serve as a foundation for more interactive debugging
//! primitives, such as breakpointing and backtracing" (§1). This module
//! builds those primitives:
//!
//! - [`Breakpoint`] — pause conditions over replayed traffic (a sequence
//!   number, a packet identity, a burst index, or any predicate).
//! - [`ReplayDebugger`] — single-steps or runs a recording burst by
//!   burst, stops at breakpoints, exposes a backtrace of what was just
//!   transmitted, and can seek / resume with paced replay of the
//!   remaining suffix.

use choir_dpdk::{Burst, Dataplane, Mbuf, PortId};
use choir_packet::ident::PacketId;

use super::recording::Recording;
use super::scheduler::ReplayScheduler;

/// A pause condition checked against each burst before transmission.
pub enum Breakpoint {
    /// Pause when a packet's Choir tag has this sequence number.
    Seq(u64),
    /// Pause when a packet has this identity.
    Packet(PacketId),
    /// Pause before transmitting this burst index.
    BurstIndex(usize),
    /// Pause when any packet matches the predicate.
    Predicate(Box<dyn Fn(&Mbuf) -> bool + Send>),
}

impl Breakpoint {
    fn matches(&self, index: usize, burst: &[Mbuf]) -> bool {
        match self {
            Breakpoint::Seq(seq) => burst
                .iter()
                .any(|m| m.frame.tag().is_some_and(|t| t.seq == *seq)),
            Breakpoint::Packet(id) => burst.iter().any(|m| m.frame.packet_id() == *id),
            Breakpoint::BurstIndex(i) => index == *i,
            Breakpoint::Predicate(f) => burst.iter().any(f),
        }
    }
}

impl std::fmt::Debug for Breakpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Breakpoint::Seq(s) => write!(f, "Breakpoint::Seq({s})"),
            Breakpoint::Packet(p) => write!(f, "Breakpoint::Packet({p:?})"),
            Breakpoint::BurstIndex(i) => write!(f, "Breakpoint::BurstIndex({i})"),
            Breakpoint::Predicate(_) => write!(f, "Breakpoint::Predicate(..)"),
        }
    }
}

/// Why the debugger stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A breakpoint matched; its index in the breakpoint list.
    Breakpoint(usize),
    /// The recording is exhausted.
    EndOfRecording,
}

/// A stepping/replaying cursor over a recording.
pub struct ReplayDebugger {
    recording: Recording,
    position: usize,
    breakpoints: Vec<Breakpoint>,
    port: PortId,
}

impl ReplayDebugger {
    /// A debugger positioned at the start of `recording`, transmitting on
    /// `port` when stepped.
    pub fn new(recording: Recording, port: PortId) -> Self {
        ReplayDebugger {
            recording,
            position: 0,
            breakpoints: Vec::new(),
            port,
        }
    }

    /// Install a breakpoint; returns its index (for [`StopReason`]).
    pub fn add_breakpoint(&mut self, bp: Breakpoint) -> usize {
        self.breakpoints.push(bp);
        self.breakpoints.len() - 1
    }

    /// Remove every breakpoint.
    pub fn clear_breakpoints(&mut self) {
        self.breakpoints.clear();
    }

    /// The next burst index to transmit.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Move the cursor (backwards or forwards) without transmitting —
    /// rewinding is what makes replay-based debugging more than a pcap
    /// reader.
    ///
    /// # Panics
    /// Panics if `position` exceeds the recording length.
    pub fn seek(&mut self, position: usize) {
        assert!(position <= self.recording.len(), "seek out of range");
        self.position = position;
    }

    /// The most recent `n` bursts *behind* the cursor — what just went on
    /// the wire (the backtrace).
    pub fn backtrace(&self, n: usize) -> &[super::recording::RecordedBurst] {
        let lo = self.position.saturating_sub(n);
        &self.recording.bursts()[lo..self.position]
    }

    /// Transmit exactly one burst (immediately, unpaced) and advance.
    /// Returns the burst index transmitted, or `None` at the end.
    pub fn step(&mut self, dp: &mut dyn Dataplane) -> Option<usize> {
        if self.position >= self.recording.len() {
            return None;
        }
        let rb = self.recording.burst(self.position);
        let mut burst = Burst::new();
        for m in &rb.pkts {
            burst.push(m.clone()).expect("recorded burst fits");
        }
        while !burst.is_empty() {
            dp.tx_burst(self.port, &mut burst);
        }
        let idx = self.position;
        self.position += 1;
        Some(idx)
    }

    /// Run until a breakpoint matches or the recording ends. The matching
    /// burst is *not* transmitted (pause-before semantics); resume past
    /// it with [`ReplayDebugger::step`].
    pub fn run(&mut self, dp: &mut dyn Dataplane) -> StopReason {
        while self.position < self.recording.len() {
            let rb = self.recording.burst(self.position);
            if let Some(i) = self
                .breakpoints
                .iter()
                .position(|bp| bp.matches(self.position, &rb.pkts))
            {
                return StopReason::Breakpoint(i);
            }
            self.step(dp);
        }
        StopReason::EndOfRecording
    }

    /// Hand the *remaining suffix* to a paced [`ReplayScheduler`] starting
    /// at `start_wall_ns` — i.e. "continue with original timing from
    /// here". Returns the scheduler plus the suffix recording to pump it
    /// with.
    pub fn resume_paced(
        &self,
        start_wall_ns: u64,
        dp: &dyn Dataplane,
    ) -> (ReplayScheduler, Recording) {
        let suffix = self.recording.slice(self.position..self.recording.len());
        let sch = ReplayScheduler::new(&suffix, self.port, start_wall_ns, dp);
        (sch, suffix)
    }

    /// The underlying recording.
    pub fn recording(&self) -> &Recording {
        &self.recording
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::{Mempool, PortStats};
    use choir_packet::{ChoirTag, Frame};

    struct LogPlane {
        pool: Mempool,
        sent: Vec<u64>, // tag seqs in tx order
    }

    impl Dataplane for LogPlane {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
            let n = burst.len();
            for m in burst.drain() {
                self.sent.push(m.frame.tag().unwrap().seq);
            }
            n
        }
        fn tsc(&self) -> u64 {
            0
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            0
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    fn recording(pool: &Mempool, bursts: usize, per: usize) -> Recording {
        let mut rec = Recording::new();
        for b in 0..bursts {
            let pkts: Vec<_> = (0..per)
                .map(|i| {
                    let mut buf = vec![0u8; 60];
                    ChoirTag::new(0, 0, (b * per + i) as u64).stamp_trailer(&mut buf);
                    pool.alloc(Frame::new(Bytes::from(buf))).unwrap()
                })
                .collect();
            rec.push_burst(b as u64 * 1_000, pkts.iter());
        }
        rec
    }

    fn plane() -> LogPlane {
        LogPlane {
            pool: Mempool::new("dbg", 1 << 10),
            sent: Vec::new(),
        }
    }

    #[test]
    fn stepping_transmits_one_burst_at_a_time() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 4, 3);
        let mut dbg = ReplayDebugger::new(rec, 0);
        assert_eq!(dbg.step(&mut dp), Some(0));
        assert_eq!(dp.sent, vec![0, 1, 2]);
        assert_eq!(dbg.step(&mut dp), Some(1));
        assert_eq!(dp.sent.len(), 6);
        assert_eq!(dbg.position(), 2);
    }

    #[test]
    fn breakpoint_on_sequence_pauses_before_the_burst() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 10, 4);
        let mut dbg = ReplayDebugger::new(rec, 0);
        let bp = dbg.add_breakpoint(Breakpoint::Seq(17)); // in burst 4
        assert_eq!(dbg.run(&mut dp), StopReason::Breakpoint(bp));
        assert_eq!(dbg.position(), 4);
        // Bursts 0..4 transmitted; seq 17 NOT yet on the wire.
        assert_eq!(dp.sent.len(), 16);
        assert!(!dp.sent.contains(&17));
        // Step over it and continue to the end.
        dbg.step(&mut dp);
        assert!(dp.sent.contains(&17));
        assert_eq!(dbg.run(&mut dp), StopReason::EndOfRecording);
        assert_eq!(dp.sent.len(), 40);
    }

    #[test]
    fn burst_index_and_predicate_breakpoints() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 8, 2);
        let mut dbg = ReplayDebugger::new(rec, 0);
        dbg.add_breakpoint(Breakpoint::BurstIndex(3));
        assert_eq!(dbg.run(&mut dp), StopReason::Breakpoint(0));
        assert_eq!(dbg.position(), 3);
        dbg.clear_breakpoints();
        dbg.add_breakpoint(Breakpoint::Predicate(Box::new(|m| {
            m.frame.tag().is_some_and(|t| t.seq == 11)
        })));
        assert_eq!(dbg.run(&mut dp), StopReason::Breakpoint(0));
        assert_eq!(dbg.position(), 5); // seq 11 lives in burst 5
    }

    #[test]
    fn backtrace_shows_what_just_transmitted() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 6, 2);
        let mut dbg = ReplayDebugger::new(rec, 0);
        for _ in 0..4 {
            dbg.step(&mut dp);
        }
        let bt = dbg.backtrace(2);
        assert_eq!(bt.len(), 2);
        assert_eq!(bt[0].pkts[0].frame.tag().unwrap().seq, 4); // burst 2
        assert_eq!(bt[1].pkts[0].frame.tag().unwrap().seq, 6); // burst 3
        // Asking for more history than exists is clamped.
        assert_eq!(dbg.backtrace(100).len(), 4);
    }

    #[test]
    fn seek_rewinds_and_replays() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 5, 1);
        let mut dbg = ReplayDebugger::new(rec, 0);
        dbg.run(&mut dp);
        assert_eq!(dp.sent, vec![0, 1, 2, 3, 4]);
        dbg.seek(2);
        dbg.step(&mut dp);
        assert_eq!(dp.sent.last(), Some(&2), "rewound replay re-sends burst 2");
    }

    #[test]
    #[should_panic(expected = "seek out of range")]
    fn seek_past_end_panics() {
        let dp = plane();
        let rec = recording(&dp.pool, 2, 1);
        let mut dbg = ReplayDebugger::new(rec, 0);
        dbg.seek(3);
    }

    #[test]
    fn resume_paced_replays_the_suffix_with_original_spacing() {
        let mut dp = plane();
        let rec = recording(&dp.pool.clone(), 6, 1);
        let mut dbg = ReplayDebugger::new(rec, 0);
        dbg.add_breakpoint(Breakpoint::BurstIndex(3));
        dbg.run(&mut dp);
        let (mut sch, suffix) = dbg.resume_paced(100, &dp);
        assert_eq!(suffix.packets(), 3);
        // Pump to completion on the manual plane (tsc fixed at 0; wall 0;
        // start 100 ns in the future -> first pump arms a wake; jumping
        // tsc is not possible on LogPlane, so verify the plan only).
        use crate::replay::scheduler::SchedulerState;
        assert_eq!(sch.pump(&suffix, &mut dp), SchedulerState::InProgress);
        assert_eq!(sch.position(), 0);
    }
}
