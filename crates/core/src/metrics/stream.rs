//! The streaming incremental-κ engine.
//!
//! The paper computes κ post-hoc over complete capture pairs; this module
//! scores consistency *while packets arrive*. [`IncrementalComparison`]
//! consumes observations (or bursts) from two trials as they stream in,
//! maintains an online occurrence-wise matching plus running U/O/L/I
//! accumulators, and emits periodic [`KappaSnapshot`]s. `finalize`
//! returns the same [`TrialComparison`] type as the batch analyzers.
//!
//! ## Exactness contract
//!
//! With an **unbounded lookahead** (`StreamConfig::lookahead = None`) the
//! finalized comparison is **bit-identical** to the batch pipeline
//! ([`super::pair::PairAnalyzer`] / the deprecated `analyze_indexed`) on
//! the same observations, for any interleaving and any chunking of the
//! two input streams. This works without buffering the raw trials:
//!
//! - U, drop/extra counts: totals and the matched count are
//!   order-independent.
//! - L and I numerators: integer deltas are computed at match time and
//!   accumulated into `u128` sums — exact and commutative, so the match
//!   order (which differs from B's arrival order whenever A lags) is
//!   irrelevant.
//! - The denominators need only per-side first-arrival offsets and
//!   min/max spans, tracked incrementally.
//! - Histograms and the within-10 ns count are multiset functions of the
//!   deltas.
//! - Only O and the edit-script statistics are order-sensitive; they are
//!   produced at finalize by running the exact batch LIS kernel over the
//!   matched pairs sorted into B arrival order — the identical
//!   permutation the batch path sees.
//!
//! ## Bounded mode
//!
//! With `lookahead = Some(w)` at most `w` unmatched observations stay
//! resident; the globally oldest pending observation is evicted first.
//! An evicted packet can never match, so a pair whose true match distance
//! exceeds the window is scored as a drop on both sides (U rises — the
//! honest reading: within the window's horizon the packet never showed
//! up). Ordering is scored by the windowed edit-script estimator
//! (`WindowedMerge`): matched pairs buffer until a **direct-sum
//! breakpoint** is found — a cut at which every buffered pair below it
//! precedes every pair above it (and every pending or future
//! observation) in *both* streams. A block sealed at a breakpoint is a
//! direct summand of the global permutation, so its locally-computed
//! edit script is *exactly* the global one; sealing adds zero error. If
//! the buffer overflows without a breakpoint (adversarial global
//! interleavings) a **forced seal** commits half the buffer and counts
//! the crossing elements, which price a rigorous error term. Together
//! with an exact count of the matches the window missed (tracked by
//! per-identity occurrence debt), every snapshot carries a
//! [`KappaBounds`] interval guaranteed to contain the κ the batch
//! pipeline would report on the same prefix — collapsing to a point
//! (and a `f64::to_bits`-identical finalize) at full lookahead.
//! Percentiles are approximated from histogram buckets once a seal has
//! occurred. DESIGN.md §12 spells out the semantics and the proof
//! sketch.
//!
//! ## Checkpoint / resume
//!
//! [`IncrementalComparison::checkpoint`] serializes the engine's *entire*
//! algorithmic state — FIFO matching cursors, 128-bit accumulators,
//! bounded-mode resident window, the estimator's partially-merged
//! buffer and error ledger, occurrence-debt map, slice, and snapshot
//! trail — into a [`StreamCheckpoint`], and
//! [`IncrementalComparison::resume`] rebuilds a live engine from one.
//! The hard contract (tested exhaustively, DESIGN.md §13): feeding
//! records `0..k`, checkpointing, resuming, and feeding `k..n` is
//! bit-identical (`f64::to_bits`) to an uninterrupted run — at **every**
//! cut point `k`, in both lookahead modes, including through a
//! `serde_json` round trip of the checkpoint itself.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::obs;
use choir_packet::ident::PacketId;

use super::histogram::DeltaHistogram;
use super::kappa::{ConsistencyMetrics, KappaBounds, KappaConfig};
use super::matching::{MatchedPair, Matching};
use super::ordering::{
    block_move_distance, block_ordering, crossing_count, cut_horizons, direct_sum_cut,
    ordering_core, EditScriptStats,
};
use super::report::{abs_percentiles_ns, StageTimings, TrialComparison};
use super::trial::Observation;
use super::uniqueness::uniqueness_core;
use super::windowed::WindowScore;

/// Which of the two streams an observation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// The baseline stream (trial A).
    A,
    /// The run under comparison (trial B).
    B,
}

impl Side {
    fn index(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

/// A checkpoint refused by [`IncrementalComparison::resume_checked`]:
/// the caller paired a checkpoint with the wrong engine or the wrong
/// configuration. Before this error existed the engine would silently
/// resume under whatever `KappaConfig` the checkpoint carried — which is
/// exactly what a supervisor juggling many tenants' checkpoints gets
/// wrong first (engine 7's checkpoint fed engine 12's journal scores a
/// garbage κ with full confidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeMismatch {
    /// The checkpoint was taken by a different engine than the caller is
    /// resuming.
    EngineId {
        /// Engine id the caller expected to resume.
        expected: u64,
        /// Engine id recorded in the checkpoint.
        found: u64,
    },
    /// The checkpoint's configuration differs from the one the caller is
    /// resuming under (hashes of lookahead, snapshot cadence, and every
    /// κ weight/scaling).
    Config {
        /// [`StreamConfig::fingerprint`] of the caller's configuration.
        expected: u64,
        /// Fingerprint recorded in (or recomputed from) the checkpoint.
        found: u64,
    },
}

impl std::fmt::Display for ResumeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeMismatch::EngineId { expected, found } => write!(
                f,
                "checkpoint belongs to engine {found}, not engine {expected}"
            ),
            ResumeMismatch::Config { expected, found } => write!(
                f,
                "checkpoint was taken under config {found:#018x}, caller expects {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for ResumeMismatch {}

/// Configuration of one incremental comparison. The default is full
/// lookahead, no automatic snapshots, and the paper's κ weights
/// (`KappaConfig::default()` == `KappaConfig::paper()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamConfig {
    /// Reorder/lookahead window: the maximum number of unmatched
    /// observations kept resident across both sides. `None` = unbounded
    /// (exact batch-identical finalize). `Some(0)` is clamped to 1.
    pub lookahead: Option<usize>,
    /// Take a [`KappaSnapshot`] automatically every this many pushed
    /// observations (both sides counted). 0 = only explicit
    /// [`IncrementalComparison::snapshot_now`] calls.
    pub snapshot_every: u64,
    /// κ configuration applied to running and final scores.
    pub kappa: KappaConfig,
}

impl StreamConfig {
    /// A 64-bit fingerprint of everything that shapes the measurement:
    /// the lookahead mode, the snapshot cadence, and every κ weight and
    /// scaling (by exact `f64` bit pattern — two configs that differ in
    /// the last ulp are different measurements). Recorded in every
    /// [`StreamCheckpoint`] and verified by
    /// [`IncrementalComparison::resume_checked`].
    pub fn fingerprint(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            // SplitMix64 step over the running hash xor the value.
            let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn mix_scaling(h: u64, s: &super::kappa::Scaling) -> u64 {
            use super::kappa::Scaling;
            match s {
                Scaling::Linear => mix(h, 1),
                Scaling::Sqrt => mix(h, 2),
                Scaling::Power(p) => mix(mix(h, 3), p.to_bits()),
                Scaling::Presence { floor } => mix(mix(h, 4), floor.to_bits()),
            }
        }
        let mut h = match self.lookahead {
            None => mix(0, u64::MAX),
            Some(w) => mix(1, w as u64),
        };
        h = mix(h, self.snapshot_every);
        let k = &self.kappa;
        for w in [k.w_u, k.w_o, k.w_l, k.w_i] {
            h = mix(h, w.to_bits());
        }
        for s in [&k.s_u, &k.s_o, &k.s_l, &k.s_i] {
            h = mix_scaling(h, s);
        }
        h
    }
}

/// A periodic progress report: running totals, the running κ, and a
/// [`WindowScore`] over the slice since the previous snapshot (the same
/// shape [`super::windowed`] emits, so snapshot trails and windowed
/// series render through the same tooling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KappaSnapshot {
    /// Observations pushed on side A so far.
    pub seen_a: usize,
    /// Observations pushed on side B so far.
    pub seen_b: usize,
    /// Matched pairs so far.
    pub common: usize,
    /// Unmatched observations currently resident in the window.
    pub resident: usize,
    /// Observations evicted unmatched so far (bounded mode only).
    pub evicted: usize,
    /// Running κ and components over everything seen so far.
    pub running: ConsistencyMetrics,
    /// Score of just the slice since the previous snapshot.
    pub window: WindowScore,
    /// Rigorous interval containing the κ the batch pipeline would
    /// report on the prefix streamed so far. Collapses to the running κ
    /// in unbounded mode; in bounded mode it widens by the estimator's
    /// accounted error and tightens as the window grows. `None` on
    /// snapshots serialized before the bound existed.
    #[serde(default)]
    pub bounds: Option<KappaBounds>,
}

/// Everything `finalize` hands back.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The finished comparison — bit-identical to the batch analyzers
    /// when the lookahead was unbounded.
    pub comparison: TrialComparison,
    /// The snapshot trail taken while streaming.
    pub snapshots: Vec<KappaSnapshot>,
    /// High-water mark of resident unmatched observations.
    pub peak_resident: usize,
    /// Observations evicted unmatched (0 in unbounded mode).
    pub evicted: usize,
    /// True when a bounded lookahead was configured (the comparison is
    /// then the documented approximation, not the exact batch result).
    pub bounded: bool,
    /// Rigorous interval containing the batch κ on the same streams.
    /// Exact finalizes (unbounded, or bounded without a seal or an
    /// eviction) collapse it to the final κ.
    pub bounds: KappaBounds,
    /// Batch-on-prefix matches the bounded window missed because one
    /// counterpart was evicted (0 in unbounded mode). The batch matched
    /// count is exactly `comparison.common + missed_matches`.
    pub missed_matches: usize,
    /// Direct-sum (zero-error) seals the ordering estimator committed.
    pub seals: usize,
    /// Forced (error-priced) seals the estimator was driven to.
    pub forced_seals: usize,
}

// ---------------------------------------------------------------------
// Checkpoint / resume
//
// The vendored serde data model carries at most 64-bit integers, so the
// engine's u128/i128 accumulators and `PacketId(u128)` identities are
// split into (hi, lo) halves; everything else mirrors the live state
// field-for-field. `pending_by_age` is NOT serialized — every pending
// observation carries its (unique, monotone) enqueue tick, so the age
// index is rebuilt exactly on resume.
// ---------------------------------------------------------------------

fn split_u128(v: u128) -> (u64, u64) {
    ((v >> 64) as u64, v as u64)
}

fn join_u128(hi: u64, lo: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

fn split_i128(v: i128) -> (i64, u64) {
    ((v >> 64) as i64, v as u64)
}

fn join_i128(hi: i64, lo: u64) -> i128 {
    ((hi as i128) << 64) | lo as i128
}

/// Serialized mirror of [`SideState`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SideCk {
    len: u64,
    first_t_ps: u64,
    prev_t_ps: u64,
    min_t_ps: u64,
    max_t_ps: u64,
    evicted: u64,
}

/// Serialized mirror of [`PendingObs`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObsCk {
    pos: u32,
    t_ps: u64,
    gap_ps: i64,
    tick: u64,
}

/// One identity's pending FIFO queues, with the `PacketId(u128)` split
/// into 64-bit halves.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PendingIdCk {
    id_hi: u64,
    id_lo: u64,
    a: Vec<ObsCk>,
    b: Vec<ObsCk>,
}

/// Serialized mirror of [`PairRec`] (`d_lat_ps: i128` split).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PairCk {
    a_pos: u32,
    b_pos: u32,
    d_lat_hi: i64,
    d_lat_lo: u64,
    d_iat_ps: i64,
}

/// Serialized mirror of [`MomentAcc`]. The vendored `serde_json` prints
/// `f64` with shortest-roundtrip formatting, so `mean`/`m2` survive a
/// JSON trip bit-exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MomentCk {
    count: u64,
    mean: f64,
    m2: f64,
}

/// Serialized mirror of [`SliceState`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SliceCk {
    a_pushed: u64,
    b_pushed: u64,
    pairs: Vec<PairCk>,
    lat_num: (u64, u64),
    iat_num: (u64, u64),
    a_lo: u32,
    a_hi: u32,
    batch_matched: u64,
    mis: u64,
}

/// One identity's occurrence-debt entry (`PacketId(u128)` split into
/// halves): `debt` = A observations minus B observations seen so far,
/// `skew` = A evictions minus B evictions. Entries at (0, 0) are pruned
/// — the increments only ever depend on the running difference, so
/// pruning preserves the batch-match count exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OccCk {
    id_hi: u64,
    id_lo: u64,
    debt: i64,
    skew: i64,
}

/// A complete, serializable snapshot of an [`IncrementalComparison`]'s
/// algorithmic state. Opaque by design: produce one with
/// [`IncrementalComparison::checkpoint`], turn it back into a live
/// engine with [`IncrementalComparison::resume`], and ship it across a
/// crash boundary with `serde_json` (the round trip is bit-exact; see
/// the module docs). Wall-clock timings are *not* part of a checkpoint —
/// a resumed run re-measures its own stage timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Caller-assigned identity of the engine that took this checkpoint
    /// (0 when never set — checkpoints predating the field deserialize
    /// to 0). Verified by [`IncrementalComparison::resume_checked`].
    #[serde(default)]
    engine_id: u64,
    /// [`StreamConfig::fingerprint`] at checkpoint time (0 on legacy
    /// checkpoints serialized before the field existed).
    #[serde(default)]
    config_hash: u64,
    lookahead: Option<u64>,
    snapshot_every: u64,
    kappa: KappaConfig,
    side_a: SideCk,
    side_b: SideCk,
    pending: Vec<PendingIdCk>,
    tick: u64,
    peak_resident: u64,
    matched: u64,
    lat_num: (u64, u64),
    iat_num: (u64, u64),
    within_10ns: u64,
    iat_hist: DeltaHistogram,
    lat_hist: DeltaHistogram,
    all_pairs: Vec<PairCk>,
    buf: Vec<PairCk>,
    o_num: (u64, u64),
    moved: u64,
    disp_signed: MomentCk,
    disp_abs: MomentCk,
    disp_min: i64,
    disp_max: i64,
    seals: u64,
    forced_seals: u64,
    cross: u64,
    mis: u64,
    batch_matched: u64,
    occ: Vec<OccCk>,
    slice: SliceCk,
    last_snapshot_tick: u64,
    snapshots: Vec<KappaSnapshot>,
}

impl StreamCheckpoint {
    /// Global push counter at checkpoint time (observations consumed
    /// across both sides) — the replay cursor a supervisor needs to know
    /// where to re-feed from.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Caller-assigned engine identity recorded at checkpoint time (0
    /// when the engine was never tagged).
    pub fn engine_id(&self) -> u64 {
        self.engine_id
    }

    /// Configuration fingerprint recorded at checkpoint time (0 on
    /// checkpoints serialized before the field existed).
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Observations pushed on side A at checkpoint time.
    pub fn seen_a(&self) -> usize {
        self.side_a.len as usize
    }

    /// Observations pushed on side B at checkpoint time.
    pub fn seen_b(&self) -> usize {
        self.side_b.len as usize
    }

    /// Unmatched observations resident in the checkpoint.
    pub fn resident(&self) -> usize {
        self.pending.iter().map(|p| p.a.len() + p.b.len()).sum()
    }
}

impl SideCk {
    fn of(s: &SideState) -> Self {
        SideCk {
            len: s.len as u64,
            first_t_ps: s.first_t_ps,
            prev_t_ps: s.prev_t_ps,
            min_t_ps: s.min_t_ps,
            max_t_ps: s.max_t_ps,
            evicted: s.evicted as u64,
        }
    }

    fn restore(&self) -> SideState {
        SideState {
            len: self.len as usize,
            first_t_ps: self.first_t_ps,
            prev_t_ps: self.prev_t_ps,
            min_t_ps: self.min_t_ps,
            max_t_ps: self.max_t_ps,
            evicted: self.evicted as usize,
        }
    }
}

impl ObsCk {
    fn of(o: &PendingObs) -> Self {
        ObsCk {
            pos: o.pos,
            t_ps: o.t_ps,
            gap_ps: o.gap_ps,
            tick: o.tick,
        }
    }

    fn restore(&self) -> PendingObs {
        PendingObs {
            pos: self.pos,
            t_ps: self.t_ps,
            gap_ps: self.gap_ps,
            tick: self.tick,
        }
    }
}

impl PairCk {
    fn of(p: &PairRec) -> Self {
        let (d_lat_hi, d_lat_lo) = split_i128(p.d_lat_ps);
        PairCk {
            a_pos: p.a_pos,
            b_pos: p.b_pos,
            d_lat_hi,
            d_lat_lo,
            d_iat_ps: p.d_iat_ps,
        }
    }

    fn restore(&self) -> PairRec {
        PairRec {
            a_pos: self.a_pos,
            b_pos: self.b_pos,
            d_lat_ps: join_i128(self.d_lat_hi, self.d_lat_lo),
            d_iat_ps: self.d_iat_ps,
        }
    }
}

impl MomentCk {
    fn of(m: &MomentAcc) -> Self {
        MomentCk {
            count: m.count as u64,
            mean: m.mean,
            m2: m.m2,
        }
    }

    fn restore(&self) -> MomentAcc {
        MomentAcc {
            count: self.count as usize,
            mean: self.mean,
            m2: self.m2,
        }
    }
}

/// Per-side incremental statistics (the streaming mirror of what
/// `Trial::start_ps`/`minmax_span_ps`/`gap_ps` provide in batch).
#[derive(Debug, Clone, Copy, Default)]
struct SideState {
    len: usize,
    first_t_ps: u64,
    prev_t_ps: u64,
    min_t_ps: u64,
    max_t_ps: u64,
    evicted: usize,
}

impl SideState {
    fn start_ps(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.first_t_ps
        }
    }

    fn minmax_span_ps(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.max_t_ps - self.min_t_ps
        }
    }
}

/// An observation waiting for its counterpart on the other side.
#[derive(Debug, Clone, Copy)]
struct PendingObs {
    pos: u32,
    t_ps: u64,
    gap_ps: i64,
    /// Global push counter value at enqueue time — unique, monotone; the
    /// eviction key.
    tick: u64,
}

/// FIFO queues of pending occurrences of one identity, one per side. At
/// most one side is non-empty at any time (two non-empty sides would
/// have matched).
#[derive(Debug, Default)]
struct IdQueues {
    a: VecDeque<PendingObs>,
    b: VecDeque<PendingObs>,
}

/// One matched pair as recorded at match time (global positions plus the
/// exact integer deltas).
#[derive(Debug, Clone, Copy)]
struct PairRec {
    a_pos: u32,
    b_pos: u32,
    d_lat_ps: i128,
    d_iat_ps: i64,
}

/// Welford accumulator matching `stats::Summary`'s update order (sample
/// stddev, n−1).
#[derive(Debug, Clone, Copy, Default)]
struct MomentAcc {
    count: usize,
    mean: f64,
    m2: f64,
}

impl MomentAcc {
    fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    fn stddev(&self) -> f64 {
        if self.count > 1 {
            (self.m2 / (self.count as f64 - 1.0)).sqrt()
        } else {
            0.0
        }
    }
}

/// Accumulators for the slice between two snapshots.
#[derive(Debug)]
struct SliceState {
    a_pushed: usize,
    b_pushed: usize,
    pairs: Vec<PairRec>,
    lat_num: u128,
    iat_num: u128,
    a_lo: u32,
    a_hi: u32,
    /// Batch-on-prefix matches the occurrence-debt counter attributed to
    /// this slice (bounded mode; == `pairs.len()` when nothing was
    /// missed).
    batch_matched: usize,
    /// Slice matches made at nonzero eviction skew (bounded mode).
    mis: usize,
}

impl SliceState {
    fn new() -> Self {
        SliceState {
            a_pushed: 0,
            b_pushed: 0,
            pairs: Vec::new(),
            lat_num: 0,
            iat_num: 0,
            a_lo: u32::MAX,
            a_hi: 0,
            batch_matched: 0,
            mis: 0,
        }
    }
}

/// Project a run of matched pairs onto their `(a_pos, b_pos)`
/// coordinates for the shared block kernel (`super::ordering`).
fn pair_positions(pairs: &[PairRec]) -> Vec<(u32, u32)> {
    pairs.iter().map(|p| (p.a_pos, p.b_pos)).collect()
}

/// Total edit-script move distance of a run of matched pairs.
fn segment_move_distance(pairs: &[PairRec]) -> u128 {
    block_move_distance(&pair_positions(pairs))
}

/// Per-identity occurrence bookkeeping for the bounded window (the live
/// mirror of [`OccCk`]). `debt` counts A-minus-B occurrences seen so
/// far; an arrival on the deficit side is exactly a match the batch
/// pipeline makes on this prefix, whether or not the window still holds
/// the counterpart. `skew` counts A-minus-B *evictions*; a stream match
/// made at nonzero skew pairs occurrence ranks the batch pairing would
/// not, so its deltas are flagged as misaligned rather than exact.
#[derive(Debug, Clone, Copy, Default)]
struct OccState {
    debt: i64,
    skew: i64,
}

/// The bounded-mode windowed edit-script estimator (module docs, DESIGN
/// §12). Matched pairs buffer until a seal commits a prefix block
/// through the exact LIS kernel:
///
/// - a **breakpoint seal** cuts at a direct-sum boundary
///   ([`direct_sum_cut`]) — the committed block's local displacements
///   are provably the global ones, so the seal adds *zero* error;
/// - a **forced seal** (buffer at the hard cap with no breakpoint) cuts
///   at the midpoint and prices the damage by the exact number of
///   crossing elements ([`crossing_count`]), accumulated in `cross`.
///
/// `o_num`/`moved`/`disp_*` accumulate the committed blocks' statistics;
/// the κ error bound charges `2·cross·m` for the forced cuts.
#[derive(Debug)]
struct WindowedMerge {
    /// Matched pairs not yet committed to a sealed block.
    buf: Vec<PairRec>,
    /// Move distance committed by sealed blocks.
    o_num: u128,
    /// Committed displaced-element count.
    moved: usize,
    disp_signed: MomentAcc,
    disp_abs: MomentAcc,
    disp_min: i64,
    disp_max: i64,
    /// Zero-error breakpoint seals committed.
    seals: usize,
    /// Error-priced forced seals committed.
    forced_seals: usize,
    /// Exact crossing-element count over all forced cuts (error ledger).
    cross: u64,
}

impl WindowedMerge {
    fn new() -> Self {
        WindowedMerge {
            buf: Vec::new(),
            o_num: 0,
            moved: 0,
            disp_signed: MomentAcc::default(),
            disp_abs: MomentAcc::default(),
            disp_min: i64::MAX,
            disp_max: i64::MIN,
            seals: 0,
            forced_seals: 0,
            cross: 0,
        }
    }

    /// Buffer length at which breakpoint attempts begin. Deliberately
    /// larger than the lookahead window: pairs are cheap (16 bytes)
    /// next to pending observations, and a longer buffer finds more
    /// breakpoints.
    fn seal_cap(w: usize) -> usize {
        (2 * w).max(32)
    }

    /// Re-attempt stride past the cap (attempts are a pure function of
    /// the buffer length, so checkpoint/resume replays them exactly).
    fn seal_stride(w: usize) -> usize {
        (w / 2).max(16)
    }

    /// Buffer length that forces an error-priced seal.
    fn hard_cap(w: usize) -> usize {
        4 * Self::seal_cap(w)
    }

    /// Run the exact kernel over one committed block and fold its
    /// displacements into the sealed accumulators.
    fn commit_block(&mut self, block: &[PairRec]) {
        if block.len() <= 1 {
            return;
        }
        let ord = block_ordering(&pair_positions(block));
        for &d in &ord.displacements {
            self.o_num += d.unsigned_abs() as u128;
            self.disp_signed.push(d as f64);
            self.disp_abs.push(d.abs() as f64);
            self.disp_min = self.disp_min.min(d);
            self.disp_max = self.disp_max.max(d);
        }
        self.moved += ord.displacements.len();
    }

    /// Commit every buffered pair at or below the `cut_b` horizon as one
    /// block; retain the rest.
    fn commit_below(&mut self, cut_b: u32) {
        let (block, rest): (Vec<PairRec>, Vec<PairRec>) =
            self.buf.drain(..).partition(|p| p.b_pos <= cut_b);
        self.buf = rest;
        self.commit_block(&block);
    }

    /// Move distance of the uncommitted tail as if sealed now (the
    /// running-O contribution of the buffer).
    fn tail_distance(&self) -> u128 {
        block_move_distance(&pair_positions(&self.buf))
    }
}

/// Inputs to [`bounds_from`]: one scope's exact accumulators plus its
/// error ledger. The whole stream and a snapshot slice both reduce to
/// this shape (a slice has `cross == 0` — its pairs are all retained).
struct BoundsInput {
    /// Stream matches in scope.
    mc: usize,
    /// Batch-on-prefix matches the window missed (occurrence debt).
    p: usize,
    /// Stream matches made at nonzero eviction skew.
    mis: usize,
    /// Crossing elements over forced seals.
    cross: u64,
    /// Estimated move distance (committed + tail).
    d_hat: u128,
    lat_num: u128,
    iat_num: u128,
    /// Observations pushed in scope.
    total: usize,
    span_a: u64,
    span_b: u64,
}

/// Rigorous κ interval for one scope (DESIGN §12). With `m* = mc + p`
/// batch matches on the prefix:
///
/// - U is *exact*: `1 − 2m*/total` is the batch formula verbatim.
/// - O: the estimate `d_hat` deviates from the batch move distance by at
///   most `2·(cross + p + 2·mis)·m*` — removing a crossing or misaligned
///   element, or inserting a missed one, changes the optimal edit script
///   by at most `2m*` (its own move plus a rank shift of every other
///   element).
/// - L/I: every unknown pair's |Δ| is capped by `span_a + span_b`, so
///   the numerators shift by at most that per missed/misaligned pair.
///
/// κ is monotone non-increasing in each component
/// ([`KappaConfig::combine`]), so the interval endpoints come from
/// combining the components' opposite extremes. With an empty error
/// ledger every expression reduces to the running formula f64-for-f64,
/// so the interval collapses to the running κ bit-exactly.
fn bounds_from(cfg: &KappaConfig, x: &BoundsInput) -> KappaBounds {
    let m_star = x.mc + x.p;
    let u = if x.total == 0 {
        0.0
    } else {
        (1.0 - (2.0 * m_star as f64) / x.total as f64).max(0.0)
    };
    let denom_o = (m_star as u128 * (m_star as u128 + 1)) / 2;
    let (o_lo, o_hi) = if m_star <= 1 {
        (0.0, 0.0)
    } else {
        let slack = 2 * (x.cross as u128 + x.p as u128 + 2 * x.mis as u128) * m_star as u128;
        (
            (x.d_hat.saturating_sub(slack) as f64 / denom_o as f64).min(1.0),
            ((x.d_hat + slack) as f64 / denom_o as f64).min(1.0),
        )
    };
    let span_a = x.span_a as u128;
    let span_b = x.span_b as u128;
    let reach = span_a.max(span_b);
    let cap = span_a + span_b;
    let denom_l = m_star as u128 * reach;
    let (l_lo, l_hi) = if m_star <= 1 || denom_l == 0 {
        (0.0, 0.0)
    } else {
        (
            (x.lat_num.saturating_sub(x.mis as u128 * cap) as f64 / denom_l as f64).min(1.0),
            ((x.lat_num + (x.p + x.mis) as u128 * cap) as f64 / denom_l as f64).min(1.0),
        )
    };
    let denom_i = cap;
    let (i_lo, i_hi) = if m_star <= 1 || denom_i == 0 {
        (0.0, 0.0)
    } else {
        (
            (x.iat_num.saturating_sub(x.mis as u128 * denom_i) as f64 / denom_i as f64).min(1.0),
            ((x.iat_num + (x.p + x.mis) as u128 * denom_i) as f64 / denom_i as f64).min(1.0),
        )
    };
    KappaBounds {
        lo: cfg.combine(u, o_hi, l_hi, i_hi).kappa,
        hi: cfg.combine(u, o_lo, l_lo, i_lo).kappa,
    }
}

/// Nearest-rank (p50, p90, p99) of |Δ| approximated from histogram
/// buckets: each percentile reports the lower |edge| of the bucket its
/// rank lands in (0.0 for the zero bucket) — a deterministic lower
/// bound of the true percentile.
fn hist_abs_percentiles(h: &DeltaHistogram) -> (f64, f64, f64) {
    let total = h.total();
    if total == 0 {
        return (0.0, 0.0, 0.0);
    }
    // Fold the signed buckets by absolute lower edge (mirror buckets
    // share bit-identical edges) and sort ascending.
    let mut folded: Vec<(f64, u64)> = Vec::new();
    for (lo, hi, c, _) in h.buckets() {
        if c == 0 {
            continue;
        }
        let abs_lo = if lo <= 0.0 && hi >= 0.0 {
            0.0
        } else if lo > 0.0 {
            lo
        } else {
            -hi
        };
        folded.push((abs_lo, c));
    }
    folded.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite edges"));
    let mut merged: Vec<(f64, u64)> = Vec::with_capacity(folded.len());
    for (v, c) in folded {
        match merged.last_mut() {
            Some(last) if last.0 == v => last.1 += c,
            _ => merged.push((v, c)),
        }
    }
    let pick = |p: f64| {
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(v, c) in &merged {
            cum += c;
            if cum >= rank {
                return v;
            }
        }
        merged.last().expect("non-empty").0
    };
    (pick(50.0), pick(90.0), pick(99.0))
}

/// The streaming incremental-κ engine. See the module docs for the
/// exactness contract and the bounded-window semantics.
///
/// Feed each side's observations **in that side's arrival order** (the
/// order a capture or live tap naturally produces); the interleaving
/// *between* the sides is arbitrary.
///
/// ```
/// use choir_core::metrics::stream::{IncrementalComparison, Side, StreamConfig};
/// use choir_core::metrics::Trial;
///
/// let mut a = Trial::new();
/// let mut b = Trial::new();
/// for i in 0..100u64 {
///     a.push_tagged(0, 0, i, i * 1000);
///     b.push_tagged(0, 0, i, i * 1000 + (i % 3) * 7);
/// }
/// let mut eng = IncrementalComparison::new(StreamConfig::default());
/// eng.push_burst(Side::A, a.observations());
/// eng.push_burst(Side::B, b.observations());
/// let out = eng.finalize("B");
/// assert_eq!(out.comparison.common, 100);
/// assert!(!out.bounded);
/// ```
#[derive(Debug)]
pub struct IncrementalComparison {
    cfg: StreamConfig,
    sides: [SideState; 2],
    pending: HashMap<PacketId, IdQueues>,
    /// tick → (id, side) of every *pending* observation; `pop_first`
    /// yields the globally oldest, which is necessarily at the front of
    /// its id+side FIFO queue. Size == `resident`, so bounded mode is
    /// truly bounded.
    pending_by_age: BTreeMap<u64, (PacketId, Side)>,
    tick: u64,
    resident: usize,
    peak_resident: usize,
    matched: usize,
    lat_num: u128,
    iat_num: u128,
    within_10ns: usize,
    iat_hist: DeltaHistogram,
    lat_hist: DeltaHistogram,
    /// Unbounded mode: every matched pair, for the exact finalize.
    all_pairs: Vec<PairRec>,
    /// Bounded mode: the windowed edit-script estimator.
    est: WindowedMerge,
    /// Bounded mode: per-identity occurrence debt and eviction skew.
    occ: HashMap<PacketId, OccState>,
    /// Matches the batch pipeline would have made on the prefix pushed
    /// so far (bounded mode; always `== matched` when unbounded).
    batch_matched: usize,
    /// Stream matches made at nonzero eviction skew — pairs whose
    /// occurrence alignment diverged from the batch pairing.
    mis: usize,
    slice: SliceState,
    last_snapshot_tick: u64,
    snapshots: Vec<KappaSnapshot>,
    /// Caller-assigned identity recorded into every checkpoint so that
    /// [`IncrementalComparison::resume_checked`] can refuse a checkpoint
    /// that belongs to a different engine. `0` means "unassigned".
    engine_id: u64,
}

impl IncrementalComparison {
    /// A fresh engine.
    pub fn new(cfg: StreamConfig) -> Self {
        IncrementalComparison {
            cfg,
            sides: [SideState::default(), SideState::default()],
            pending: HashMap::new(),
            pending_by_age: BTreeMap::new(),
            tick: 0,
            resident: 0,
            peak_resident: 0,
            matched: 0,
            lat_num: 0,
            iat_num: 0,
            within_10ns: 0,
            iat_hist: DeltaHistogram::new(),
            lat_hist: DeltaHistogram::new(),
            all_pairs: Vec::new(),
            est: WindowedMerge::new(),
            occ: HashMap::new(),
            batch_matched: 0,
            mis: 0,
            slice: SliceState::new(),
            last_snapshot_tick: 0,
            snapshots: Vec::new(),
            engine_id: 0,
        }
    }

    /// Tag this engine with a caller-assigned identity. The id is
    /// recorded in every checkpoint; [`Self::resume_checked`] refuses a
    /// checkpoint whose id differs from the one the caller expects.
    pub fn with_engine_id(mut self, id: u64) -> Self {
        self.engine_id = id;
        self
    }

    /// The caller-assigned engine identity (`0` when unassigned).
    pub fn engine_id(&self) -> u64 {
        self.engine_id
    }

    /// Observations pushed on side A so far.
    pub fn seen_a(&self) -> usize {
        self.sides[0].len
    }

    /// Observations pushed on side B so far.
    pub fn seen_b(&self) -> usize {
        self.sides[1].len
    }

    /// Matched pairs so far.
    pub fn matched(&self) -> usize {
        self.matched
    }

    /// Unmatched observations currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// High-water mark of resident unmatched observations. In bounded
    /// mode this never exceeds the configured window.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Observations evicted unmatched so far.
    pub fn evicted(&self) -> usize {
        self.sides[0].evicted + self.sides[1].evicted
    }

    /// Snapshots taken so far.
    pub fn snapshots(&self) -> &[KappaSnapshot] {
        &self.snapshots
    }

    /// Serialize the engine's complete algorithmic state. Non-consuming:
    /// the live engine continues unperturbed, so a supervisor can
    /// checkpoint on a cadence while streaming. Pending identities are
    /// emitted in `PacketId` order, so identical states produce
    /// byte-identical checkpoints regardless of hash-map iteration order.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        let _span = obs::span("recover.checkpoint");
        let mut pending: Vec<PendingIdCk> = self
            .pending
            .iter()
            .map(|(id, q)| {
                let (id_hi, id_lo) = split_u128(id.0);
                PendingIdCk {
                    id_hi,
                    id_lo,
                    a: q.a.iter().map(ObsCk::of).collect(),
                    b: q.b.iter().map(ObsCk::of).collect(),
                }
            })
            .collect();
        pending.sort_unstable_by_key(|p| (p.id_hi, p.id_lo));
        let mut occ: Vec<OccCk> = self
            .occ
            .iter()
            .map(|(id, e)| {
                let (id_hi, id_lo) = split_u128(id.0);
                OccCk {
                    id_hi,
                    id_lo,
                    debt: e.debt,
                    skew: e.skew,
                }
            })
            .collect();
        occ.sort_unstable_by_key(|e| (e.id_hi, e.id_lo));
        if obs::is_enabled() {
            obs::counter_inc("recover.checkpoints");
        }
        StreamCheckpoint {
            engine_id: self.engine_id,
            config_hash: self.cfg.fingerprint(),
            lookahead: self.cfg.lookahead.map(|w| w as u64),
            snapshot_every: self.cfg.snapshot_every,
            kappa: self.cfg.kappa,
            side_a: SideCk::of(&self.sides[0]),
            side_b: SideCk::of(&self.sides[1]),
            pending,
            tick: self.tick,
            peak_resident: self.peak_resident as u64,
            matched: self.matched as u64,
            lat_num: split_u128(self.lat_num),
            iat_num: split_u128(self.iat_num),
            within_10ns: self.within_10ns as u64,
            iat_hist: self.iat_hist.clone(),
            lat_hist: self.lat_hist.clone(),
            all_pairs: self.all_pairs.iter().map(PairCk::of).collect(),
            buf: self.est.buf.iter().map(PairCk::of).collect(),
            o_num: split_u128(self.est.o_num),
            moved: self.est.moved as u64,
            disp_signed: MomentCk::of(&self.est.disp_signed),
            disp_abs: MomentCk::of(&self.est.disp_abs),
            disp_min: self.est.disp_min,
            disp_max: self.est.disp_max,
            seals: self.est.seals as u64,
            forced_seals: self.est.forced_seals as u64,
            cross: self.est.cross,
            mis: self.mis as u64,
            batch_matched: self.batch_matched as u64,
            occ,
            slice: SliceCk {
                a_pushed: self.slice.a_pushed as u64,
                b_pushed: self.slice.b_pushed as u64,
                pairs: self.slice.pairs.iter().map(PairCk::of).collect(),
                lat_num: split_u128(self.slice.lat_num),
                iat_num: split_u128(self.slice.iat_num),
                a_lo: self.slice.a_lo,
                a_hi: self.slice.a_hi,
                batch_matched: self.slice.batch_matched as u64,
                mis: self.slice.mis as u64,
            },
            last_snapshot_tick: self.last_snapshot_tick,
            snapshots: self.snapshots.clone(),
        }
    }

    /// Rebuild a live engine from a [`StreamCheckpoint`]. The age index
    /// over pending observations is reconstructed from their enqueue
    /// ticks, so bounded-mode eviction order — and therefore every
    /// downstream bit — is exactly what the uninterrupted run would have
    /// produced (the module-docs contract).
    pub fn resume(ck: StreamCheckpoint) -> Self {
        let _span = obs::span("recover.resume");
        let cfg = StreamConfig {
            lookahead: ck.lookahead.map(|w| w as usize),
            snapshot_every: ck.snapshot_every,
            kappa: ck.kappa,
        };
        let mut pending = HashMap::with_capacity(ck.pending.len());
        let mut pending_by_age = BTreeMap::new();
        let mut resident = 0usize;
        for e in &ck.pending {
            let id = PacketId(join_u128(e.id_hi, e.id_lo));
            let mut q = IdQueues::default();
            for o in &e.a {
                let p = o.restore();
                pending_by_age.insert(p.tick, (id, Side::A));
                q.a.push_back(p);
                resident += 1;
            }
            for o in &e.b {
                let p = o.restore();
                pending_by_age.insert(p.tick, (id, Side::B));
                q.b.push_back(p);
                resident += 1;
            }
            pending.insert(id, q);
        }
        if obs::is_enabled() {
            obs::counter_inc("recover.resumes");
        }
        IncrementalComparison {
            cfg,
            sides: [ck.side_a.restore(), ck.side_b.restore()],
            pending,
            pending_by_age,
            tick: ck.tick,
            resident,
            peak_resident: ck.peak_resident as usize,
            matched: ck.matched as usize,
            lat_num: join_u128(ck.lat_num.0, ck.lat_num.1),
            iat_num: join_u128(ck.iat_num.0, ck.iat_num.1),
            within_10ns: ck.within_10ns as usize,
            iat_hist: ck.iat_hist,
            lat_hist: ck.lat_hist,
            all_pairs: ck.all_pairs.iter().map(PairCk::restore).collect(),
            est: WindowedMerge {
                buf: ck.buf.iter().map(PairCk::restore).collect(),
                o_num: join_u128(ck.o_num.0, ck.o_num.1),
                moved: ck.moved as usize,
                disp_signed: ck.disp_signed.restore(),
                disp_abs: ck.disp_abs.restore(),
                disp_min: ck.disp_min,
                disp_max: ck.disp_max,
                seals: ck.seals as usize,
                forced_seals: ck.forced_seals as usize,
                cross: ck.cross,
            },
            occ: ck
                .occ
                .iter()
                .map(|e| {
                    (
                        PacketId(join_u128(e.id_hi, e.id_lo)),
                        OccState {
                            debt: e.debt,
                            skew: e.skew,
                        },
                    )
                })
                .collect(),
            batch_matched: ck.batch_matched as usize,
            mis: ck.mis as usize,
            slice: SliceState {
                a_pushed: ck.slice.a_pushed as usize,
                b_pushed: ck.slice.b_pushed as usize,
                pairs: ck.slice.pairs.iter().map(PairCk::restore).collect(),
                lat_num: join_u128(ck.slice.lat_num.0, ck.slice.lat_num.1),
                iat_num: join_u128(ck.slice.iat_num.0, ck.slice.iat_num.1),
                a_lo: ck.slice.a_lo,
                a_hi: ck.slice.a_hi,
                batch_matched: ck.slice.batch_matched as usize,
                mis: ck.slice.mis as usize,
            },
            last_snapshot_tick: ck.last_snapshot_tick,
            engine_id: ck.engine_id,
            snapshots: ck.snapshots,
        }
    }

    /// [`Self::resume`] with the pairing verified instead of trusted:
    /// refuses a checkpoint that was taken by a different engine
    /// (`engine_id` mismatch) or under a different [`StreamConfig`]
    /// (fingerprint mismatch), instead of silently resuming with the
    /// wrong `KappaConfig`. Checkpoints written before these fields
    /// existed deserialize with both set to `0`; a zero `config_hash`
    /// is validated against the config embedded in the checkpoint
    /// itself, and a zero `engine_id` only pairs with engine id `0`.
    pub fn resume_checked(
        ck: StreamCheckpoint,
        engine_id: u64,
        cfg: &StreamConfig,
    ) -> Result<Self, ResumeMismatch> {
        if ck.engine_id != engine_id {
            return Err(ResumeMismatch::EngineId {
                expected: engine_id,
                found: ck.engine_id,
            });
        }
        let expected = cfg.fingerprint();
        let found = if ck.config_hash != 0 {
            ck.config_hash
        } else {
            // Legacy checkpoint: recompute from the config it embeds.
            StreamConfig {
                lookahead: ck.lookahead.map(|w| w as usize),
                snapshot_every: ck.snapshot_every,
                kappa: ck.kappa,
            }
            .fingerprint()
        };
        if found != expected {
            return Err(ResumeMismatch::Config { expected, found });
        }
        Ok(Self::resume(ck))
    }

    /// Feed one observation.
    pub fn push(&mut self, side: Side, id: PacketId, t_ps: u64) {
        let s = &mut self.sides[side.index()];
        assert!(s.len < u32::MAX as usize, "stream too large");
        let pos = s.len as u32;
        let gap_ps = if s.len == 0 {
            0
        } else {
            t_ps as i64 - s.prev_t_ps as i64
        };
        if s.len == 0 {
            s.first_t_ps = t_ps;
            s.min_t_ps = t_ps;
            s.max_t_ps = t_ps;
        } else {
            s.min_t_ps = s.min_t_ps.min(t_ps);
            s.max_t_ps = s.max_t_ps.max(t_ps);
        }
        s.prev_t_ps = t_ps;
        s.len += 1;
        self.tick += 1;
        match side {
            Side::A => self.slice.a_pushed += 1,
            Side::B => self.slice.b_pushed += 1,
        }

        if self.cfg.lookahead.is_some() {
            // Occurrence-debt bookkeeping: would the batch pipeline have
            // paired this arrival with an earlier one on the other side?
            // `debt` is the running A-minus-B occurrence difference for
            // this identity; an arrival on the deficit side closes one
            // batch pair. The rule ignores eviction entirely, so it
            // counts exactly the matches an unbounded window would have
            // made on this prefix — the `p` term of the κ error bound.
            let e = self.occ.entry(id).or_default();
            let hit = match side {
                Side::A => e.debt < 0,
                Side::B => e.debt > 0,
            };
            if hit {
                self.batch_matched += 1;
                self.slice.batch_matched += 1;
            }
            e.debt += match side {
                Side::A => 1,
                Side::B => -1,
            };
            if e.debt == 0 && e.skew == 0 {
                self.occ.remove(&id);
            }
        }

        let me = PendingObs {
            pos,
            t_ps,
            gap_ps,
            tick: self.tick,
        };
        let q = self.pending.entry(id).or_default();
        let counterpart = match side {
            Side::A => q.b.pop_front(),
            Side::B => q.a.pop_front(),
        };
        match counterpart {
            Some(other) => {
                // The k-th occurrence of an identity on one side meets
                // the k-th on the other — the same occurrence-wise rule
                // as `Matching::build`, for any interleaving.
                if q.a.is_empty() && q.b.is_empty() {
                    self.pending.remove(&id);
                }
                self.pending_by_age.remove(&other.tick);
                self.resident -= 1;
                // A match made at nonzero eviction skew pairs occurrence
                // ranks the batch pairing would not — flag it so the
                // error bound can discount its deltas.
                if self.occ.get(&id).is_some_and(|e| e.skew != 0) {
                    self.mis += 1;
                    self.slice.mis += 1;
                }
                let (ap, bp) = match side {
                    Side::A => (me, other),
                    Side::B => (other, me),
                };
                self.record_match(ap, bp);
            }
            None => {
                match side {
                    Side::A => q.a.push_back(me),
                    Side::B => q.b.push_back(me),
                }
                self.pending_by_age.insert(self.tick, (id, side));
                self.resident += 1;
            }
        }

        if let Some(w) = self.cfg.lookahead {
            let w = w.max(1);
            while self.resident > w {
                self.evict_oldest();
            }
        }
        self.peak_resident = self.peak_resident.max(self.resident);

        if self.cfg.snapshot_every > 0
            && self.tick - self.last_snapshot_tick >= self.cfg.snapshot_every
        {
            self.snapshot_now();
        }
    }

    /// Feed a burst of observations from one side (a record batch from
    /// the chunked pcap reader, a whole trial, a simulation tap flush).
    pub fn push_burst(&mut self, side: Side, observations: &[Observation]) {
        for o in observations {
            self.push(side, o.id, o.t_ps);
        }
    }

    fn record_match(&mut self, ap: PendingObs, bp: PendingObs) {
        // Both sides have pushed at least once by now, so the per-side
        // origins are final (a side's first push fixes them forever) —
        // identical operands to the batch kernels.
        let ta0 = self.sides[0].start_ps() as i128;
        let tb0 = self.sides[1].start_ps() as i128;
        let d_lat = (ap.t_ps as i128 - ta0) - (bp.t_ps as i128 - tb0);
        let d_iat = ap.gap_ps - bp.gap_ps;
        self.lat_num += d_lat.unsigned_abs();
        self.iat_num += d_iat.unsigned_abs() as u128;
        let d_iat_ns = d_iat as f64 / 1000.0;
        if d_iat_ns.abs() <= 10.0 {
            self.within_10ns += 1;
        }
        self.iat_hist.add(d_iat_ns);
        self.lat_hist.add(d_lat as f64 / 1000.0);
        self.matched += 1;

        let rec = PairRec {
            a_pos: ap.pos,
            b_pos: bp.pos,
            d_lat_ps: d_lat,
            d_iat_ps: d_iat,
        };
        self.slice.pairs.push(rec);
        self.slice.lat_num += d_lat.unsigned_abs();
        self.slice.iat_num += d_iat.unsigned_abs() as u128;
        self.slice.a_lo = self.slice.a_lo.min(ap.pos);
        self.slice.a_hi = self.slice.a_hi.max(ap.pos);

        match self.cfg.lookahead {
            None => self.all_pairs.push(rec),
            Some(w) => {
                let w = w.max(1);
                self.est.buf.push(rec);
                // Seal scheduling is a pure function of the buffer
                // length (checkpoint/resume replays it bit-exactly):
                // attempt a breakpoint every `stride` pairs past `cap`,
                // force an error-priced cut at the hard ceiling.
                let len = self.est.buf.len();
                let cap = WindowedMerge::seal_cap(w);
                let force = len >= WindowedMerge::hard_cap(w);
                if force || (len >= cap && (len - cap).is_multiple_of(WindowedMerge::seal_stride(w))) {
                    self.try_seal(force);
                }
            }
        }
    }

    /// Smallest pending (unmatched) position on each side, `u32::MAX`
    /// for an empty side. The front of each identity's FIFO queue is
    /// that identity's minimum, so scanning queue fronts suffices.
    fn pending_min_pos(&self) -> (u32, u32) {
        let mut min_a = u32::MAX;
        let mut min_b = u32::MAX;
        for q in self.pending.values() {
            if let Some(o) = q.a.front() {
                min_a = min_a.min(o.pos);
            }
            if let Some(o) = q.b.front() {
                min_b = min_b.min(o.pos);
            }
        }
        (min_a, min_b)
    }

    /// Pending observations that could still land inside a sealed
    /// prefix: A-side entries strictly below `a_max`, B-side strictly
    /// below `b_max`.
    fn pending_below(&self, a_max: u32, b_max: u32) -> (u64, u64) {
        let mut na = 0u64;
        let mut nb = 0u64;
        for q in self.pending.values() {
            na += q.a.iter().filter(|o| o.pos < a_max).count() as u64;
            nb += q.b.iter().filter(|o| o.pos < b_max).count() as u64;
        }
        (na, nb)
    }

    /// Attempt to seal the estimator's buffer at a direct-sum
    /// breakpoint; when `force`, fall back to an error-priced cut at the
    /// buffer midpoint.
    fn try_seal(&mut self, force: bool) {
        let mut sorted = pair_positions(&self.est.buf);
        sorted.sort_unstable_by_key(|p| p.1);
        let (min_pend_a, min_pend_b) = self.pending_min_pos();
        if let Some(c) = direct_sum_cut(&sorted, min_pend_a, min_pend_b) {
            let (_, cut_b) = cut_horizons(&sorted, c);
            self.est.commit_below(cut_b);
            self.est.seals += 1;
        } else if force {
            let c = sorted.len() / 2;
            let (prefix_max_a, cut_b) = cut_horizons(&sorted, c);
            let (pa, pb) = self.pending_below(prefix_max_a, cut_b);
            self.est.cross += crossing_count(&sorted, c, min_pend_a, pa, pb);
            self.est.commit_below(cut_b);
            self.est.forced_seals += 1;
        }
    }

    fn evict_oldest(&mut self) {
        let (tick, (id, side)) = self.pending_by_age.pop_first().expect("resident > 0");
        let q = self.pending.get_mut(&id).expect("pending id");
        let victim = match side {
            Side::A => q.a.pop_front(),
            Side::B => q.b.pop_front(),
        }
        .expect("pending entry");
        debug_assert_eq!(victim.tick, tick, "age map out of sync with id queue");
        if q.a.is_empty() && q.b.is_empty() {
            self.pending.remove(&id);
        }
        self.resident -= 1;
        self.sides[side.index()].evicted += 1;
        // Record the eviction skew: from here on, stream matches of this
        // identity pair occurrence ranks offset from the batch pairing
        // until the other side loses as many.
        let e = self.occ.entry(id).or_default();
        match side {
            Side::A => e.skew += 1,
            Side::B => e.skew -= 1,
        }
        if e.debt == 0 && e.skew == 0 {
            self.occ.remove(&id);
        }
    }

    fn running_li(&self) -> (f64, f64) {
        let mc = self.matched;
        let span_a = self.sides[0].minmax_span_ps();
        let span_b = self.sides[1].minmax_span_ps();
        let reach = (span_a as i128).max(span_b as i128);
        let denom_l = mc as i128 * reach;
        let l = if mc <= 1 || denom_l <= 0 {
            0.0
        } else {
            (self.lat_num as f64 / denom_l as f64).min(1.0)
        };
        let denom_i = span_a as u128 + span_b as u128;
        let i = if mc <= 1 || denom_i == 0 {
            0.0
        } else {
            (self.iat_num as f64 / denom_i as f64).min(1.0)
        };
        (l, i)
    }

    fn running_o(&self) -> f64 {
        let mc = self.matched;
        if mc <= 1 {
            return 0.0;
        }
        let dist = match self.cfg.lookahead {
            None => segment_move_distance(&self.all_pairs),
            Some(_) => self.est.o_num + self.est.tail_distance(),
        };
        let denom = (mc as u128 * (mc as u128 + 1)) / 2;
        dist as f64 / denom as f64
    }

    /// Running κ and components over everything seen so far.
    pub fn running_metrics(&self) -> ConsistencyMetrics {
        let mc = self.matched;
        let total = self.sides[0].len + self.sides[1].len;
        let u = if total == 0 {
            0.0
        } else {
            1.0 - (2.0 * mc as f64) / total as f64
        };
        let o = self.running_o();
        let (l, i) = self.running_li();
        self.cfg.kappa.combine(u, o, l, i)
    }

    /// Rigorous interval containing the κ the batch pipeline would
    /// report on the prefix streamed so far. Unbounded mode is exact by
    /// construction; bounded mode widens the point by the error ledger
    /// (missed matches, misaligned matches, forced-seal crossers) and
    /// collapses back to a point whenever the ledger is empty.
    pub fn kappa_bounds(&self) -> KappaBounds {
        let total = self.sides[0].len + self.sides[1].len;
        if self.cfg.lookahead.is_none() || total == 0 {
            return KappaBounds::exact(self.running_metrics().kappa);
        }
        bounds_from(
            &self.cfg.kappa,
            &BoundsInput {
                mc: self.matched,
                p: self.batch_matched.saturating_sub(self.matched),
                mis: self.mis,
                cross: self.est.cross,
                d_hat: self.est.o_num + self.est.tail_distance(),
                lat_num: self.lat_num,
                iat_num: self.iat_num,
                total,
                span_a: self.sides[0].minmax_span_ps(),
                span_b: self.sides[1].minmax_span_ps(),
            },
        )
    }

    fn slice_window_score(&self) -> WindowScore {
        let s = &self.slice;
        let mc = s.pairs.len();
        let total = s.a_pushed + s.b_pushed;
        // A slice's pairs may involve observations pushed before the
        // slice began (a pending A matched by a fresh B), so 2·mc can
        // exceed the slice's own push count — clamp at 0.
        let u = if total == 0 {
            0.0
        } else {
            (1.0 - (2.0 * mc as f64) / total as f64).max(0.0)
        };
        let dist = segment_move_distance(&s.pairs);
        let o = if mc <= 1 {
            0.0
        } else {
            dist as f64 / ((mc as u128 * (mc as u128 + 1)) / 2) as f64
        };
        // L/I numerators are slice-local but normalized by the running
        // whole-stream spans (a slice carries no self-contained origin):
        // each window scores its *contribution* to the global metrics,
        // unlike `windowed_kappa`'s re-zeroed sub-trials.
        let span_a = self.sides[0].minmax_span_ps();
        let span_b = self.sides[1].minmax_span_ps();
        let reach = (span_a as i128).max(span_b as i128);
        let denom_l = mc as i128 * reach;
        let l = if mc <= 1 || denom_l <= 0 {
            0.0
        } else {
            (s.lat_num as f64 / denom_l as f64).min(1.0)
        };
        let denom_i = span_a as u128 + span_b as u128;
        let i = if mc <= 1 || denom_i == 0 {
            0.0
        } else {
            (s.iat_num as f64 / denom_i as f64).min(1.0)
        };
        // A slice's pairs are all retained (seals only move them to the
        // committed accumulators, never out of the slice), so its error
        // ledger is just the missed/misaligned counts; `batch_matched`
        // can lag `mc` across slice boundaries in misaligned scenarios,
        // hence the saturation — slice bounds are diagnostics, and the
        // unbounded ledger is empty so the interval collapses to the
        // slice κ bit-exactly.
        let bounds = bounds_from(
            &self.cfg.kappa,
            &BoundsInput {
                mc,
                p: s.batch_matched.saturating_sub(mc),
                mis: s.mis,
                cross: 0,
                d_hat: dist,
                lat_num: s.lat_num,
                iat_num: s.iat_num,
                total,
                span_a,
                span_b,
            },
        );
        WindowScore {
            index: self.snapshots.len(),
            a_range: if s.a_lo == u32::MAX {
                (0, 0)
            } else {
                (s.a_lo as usize, s.a_hi as usize + 1)
            },
            metrics: self.cfg.kappa.combine(u, o, l, i),
            common: mc,
            bounds: Some(bounds),
        }
    }

    /// Take a snapshot now (also called automatically on the
    /// `snapshot_every` cadence). Resets the per-slice window.
    pub fn snapshot_now(&mut self) -> KappaSnapshot {
        let snap = KappaSnapshot {
            seen_a: self.sides[0].len,
            seen_b: self.sides[1].len,
            common: self.matched,
            resident: self.resident,
            evicted: self.evicted(),
            running: self.running_metrics(),
            window: self.slice_window_score(),
            bounds: Some(self.kappa_bounds()),
        };
        self.slice = SliceState::new();
        self.last_snapshot_tick = self.tick;
        self.snapshots.push(snap.clone());
        snap
    }

    /// Finish the comparison. Unbounded mode returns the exact batch
    /// result (see the module docs); bounded mode the documented
    /// approximation.
    pub fn finalize(mut self, label: impl Into<String>) -> StreamOutcome {
        let _span = obs::span("stream.finalize");
        let bounded = self.cfg.lookahead.is_some();
        // A bounded run that never sealed and never evicted still holds
        // every matched pair with nothing missed — delegate to the exact
        // batch path, so "full lookahead spelled as a bound" converges
        // `to_bits`-identically, percentiles included.
        let pristine = !bounded
            || (self.est.seals == 0 && self.est.forced_seals == 0 && self.evicted() == 0);
        // `batch_matched` is only maintained in bounded mode (unbounded
        // FIFO matching *is* the batch matching), so this is 0 there.
        let missed = self.batch_matched.saturating_sub(self.matched);
        let comparison = if pristine {
            if bounded {
                debug_assert_eq!(self.batch_matched, self.matched);
                self.all_pairs = std::mem::take(&mut self.est.buf);
            }
            self.finalize_exact(label.into())
        } else {
            self.finalize_bounded(label.into())
        };
        let bounds = if pristine {
            KappaBounds::exact(comparison.metrics.kappa)
        } else {
            // Valid post-finalize: the tail was committed, so the
            // estimator's o_num is the final D̂ and the ledger is final.
            self.kappa_bounds()
        };
        if obs::is_enabled() {
            // Counters are namespaced per mode so interleaved bounded
            // and full-lookahead runs under one obs scope stay
            // attributable (the bench asserts them against outcomes).
            if bounded {
                obs::counter_add("stream.bounded.packets_in", self.tick);
                obs::counter_add("stream.bounded.matched", self.matched as u64);
                obs::counter_add("stream.bounded.evicted", self.evicted() as u64);
                obs::counter_add("stream.bounded.snapshots", self.snapshots.len() as u64);
                obs::counter_add("stream.bounded.missed_matches", missed as u64);
                obs::counter_add("stream.bounded.seals", self.est.seals as u64);
                obs::counter_add("stream.bounded.forced_seals", self.est.forced_seals as u64);
                obs::gauge_max("stream.bounded.peak_resident", self.peak_resident as u64);
            } else {
                obs::counter_add("stream.full.packets_in", self.tick);
                obs::counter_add("stream.full.matched", self.matched as u64);
                obs::counter_add("stream.full.snapshots", self.snapshots.len() as u64);
                obs::gauge_max("stream.full.peak_resident", self.peak_resident as u64);
            }
        }
        StreamOutcome {
            comparison,
            peak_resident: self.peak_resident,
            evicted: self.evicted(),
            snapshots: self.snapshots,
            bounded,
            bounds,
            missed_matches: missed,
            seals: self.est.seals,
            forced_seals: self.est.forced_seals,
        }
    }

    fn finalize_exact(&mut self, label: String) -> TrialComparison {
        let t0 = Instant::now();
        // Pairs were recorded in match order; restore B arrival order
        // (b_pos is unique, so the sort is deterministic) and dress them
        // as the synthetic Matching the batch kernels would have built.
        let mut pairs = std::mem::take(&mut self.all_pairs);
        pairs.sort_unstable_by_key(|p| p.b_pos);
        let m = Matching {
            pairs: pairs
                .iter()
                .map(|p| MatchedPair {
                    a_idx: p.a_pos as usize,
                    b_idx: p.b_pos as usize,
                })
                .collect(),
            a_len: self.sides[0].len,
            b_len: self.sides[1].len,
        };
        let t1 = Instant::now();
        let u = uniqueness_core(&m);
        let ord = ordering_core(&m);
        let t2 = Instant::now();
        let mc = m.common();
        // L/I from the exact running numerators and the batch
        // denominators/degenerate rules (latency.rs / iat.rs).
        let span_a = self.sides[0].minmax_span_ps();
        let span_b = self.sides[1].minmax_span_ps();
        let reach = (span_a as i128).max(span_b as i128);
        let denom_l = mc as i128 * reach;
        let l = if mc <= 1 || denom_l <= 0 {
            0.0
        } else {
            (self.lat_num as f64 / denom_l as f64).min(1.0)
        };
        let latency_deltas: Vec<f64> =
            pairs.iter().map(|p| p.d_lat_ps as f64 / 1000.0).collect();
        let t3 = Instant::now();
        let denom_i = span_a as u128 + span_b as u128;
        let i = if mc <= 1 || denom_i == 0 {
            0.0
        } else {
            (self.iat_num as f64 / denom_i as f64).min(1.0)
        };
        let iat_deltas: Vec<f64> = pairs.iter().map(|p| p.d_iat_ps as f64 / 1000.0).collect();
        let t4 = Instant::now();
        let metrics = self.cfg.kappa.combine(u, ord.o, l, i);
        let within = if mc == 0 {
            0.0
        } else {
            self.within_10ns as f64 / mc as f64
        };
        let iat_abs_percentiles_ns = abs_percentiles_ns(&iat_deltas);
        let latency_abs_percentiles_ns = abs_percentiles_ns(&latency_deltas);
        let t5 = Instant::now();

        TrialComparison {
            label,
            metrics,
            a_len: m.a_len,
            b_len: m.b_len,
            common: mc,
            missing: m.missing_in_b(),
            extra: m.extra_in_b(),
            moved: ord.moved(),
            iat_within_10ns: within,
            iat_abs_percentiles_ns,
            latency_abs_percentiles_ns,
            edit_stats: ord.stats(),
            iat_hist: std::mem::take(&mut self.iat_hist),
            latency_hist: std::mem::take(&mut self.lat_hist),
            timings: StageTimings {
                match_ns: (t1 - t0).as_nanos() as u64,
                order_ns: (t2 - t1).as_nanos() as u64,
                latency_ns: (t3 - t2).as_nanos() as u64,
                iat_ns: (t4 - t3).as_nanos() as u64,
                histogram_ns: (t5 - t4).as_nanos() as u64,
            },
        }
    }

    fn finalize_bounded(&mut self, label: String) -> TrialComparison {
        let t0 = Instant::now();
        // Commit the uncommitted tail as the final block; its deviation
        // from the global edit script is already priced by the same
        // ledger (`cross`) as every other cut, so the final bounds stay
        // valid.
        let tail = std::mem::take(&mut self.est.buf);
        self.est.commit_block(&tail);
        let t1 = Instant::now();
        let mc = self.matched;
        let a_len = self.sides[0].len;
        let b_len = self.sides[1].len;
        // Same U formula as uniqueness_core, on the streamed totals.
        let total = a_len + b_len;
        let u = if total == 0 {
            0.0
        } else {
            1.0 - (2.0 * mc as f64) / total as f64
        };
        // The windowed estimator's move distance over the global
        // normalizer. Unlike the old segment-local estimate (which
        // halved κ's O term on adversarial interleaves), every committed
        // block is either a direct summand (exact) or a forced cut with
        // its crossers counted into the κ error interval.
        let o = if mc <= 1 {
            0.0
        } else {
            self.est.o_num as f64 / ((mc as u128 * (mc as u128 + 1)) / 2) as f64
        };
        let t2 = Instant::now();
        let (l, i) = self.running_li();
        let t4 = Instant::now();
        let metrics = self.cfg.kappa.combine(u, o, l, i);
        let within = if mc == 0 {
            0.0
        } else {
            self.within_10ns as f64 / mc as f64
        };
        let iat_abs_percentiles_ns = hist_abs_percentiles(&self.iat_hist);
        let latency_abs_percentiles_ns = hist_abs_percentiles(&self.lat_hist);
        let edit_stats = EditScriptStats {
            count: self.est.moved,
            mean: self.est.disp_signed.mean(),
            stddev: self.est.disp_signed.stddev(),
            abs_mean: self.est.disp_abs.mean(),
            abs_stddev: self.est.disp_abs.stddev(),
            min: if self.est.moved == 0 { 0 } else { self.est.disp_min },
            max: if self.est.moved == 0 { 0 } else { self.est.disp_max },
        };
        let t5 = Instant::now();

        TrialComparison {
            label,
            metrics,
            a_len,
            b_len,
            common: mc,
            missing: a_len - mc,
            extra: b_len - mc,
            moved: self.est.moved,
            iat_within_10ns: within,
            iat_abs_percentiles_ns,
            latency_abs_percentiles_ns,
            edit_stats,
            iat_hist: std::mem::take(&mut self.iat_hist),
            latency_hist: std::mem::take(&mut self.lat_hist),
            timings: StageTimings {
                match_ns: (t1 - t0).as_nanos() as u64,
                order_ns: (t2 - t1).as_nanos() as u64,
                latency_ns: 0,
                iat_ns: (t4 - t2).as_nanos() as u64,
                histogram_ns: (t5 - t4).as_nanos() as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::pair::PairAnalyzer;
    use crate::metrics::trial::Trial;

    fn jittered_pair(n: u64) -> (Trial, Trial) {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..n {
            a.push_tagged(0, 0, i, i * 1000);
            // Jitter, one local swap region, one drop, one extra.
            if i != 23 {
                let j = if i % 13 == 5 { i ^ 1 } else { i };
                b.push_tagged(0, 0, j, i * 1000 + (i % 7) * 41);
            }
        }
        b.push_tagged(9, 0, 0, n * 1000);
        (a, b)
    }

    fn assert_bit_identical(x: &TrialComparison, y: &TrialComparison) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.metrics.kappa.to_bits(), y.metrics.kappa.to_bits());
        assert_eq!(x.metrics.u.to_bits(), y.metrics.u.to_bits());
        assert_eq!(x.metrics.o.to_bits(), y.metrics.o.to_bits());
        assert_eq!(x.metrics.l.to_bits(), y.metrics.l.to_bits());
        assert_eq!(x.metrics.i.to_bits(), y.metrics.i.to_bits());
        assert_eq!(
            (x.a_len, x.b_len, x.common, x.missing, x.extra, x.moved),
            (y.a_len, y.b_len, y.common, y.missing, y.extra, y.moved)
        );
        assert_eq!(x.iat_within_10ns.to_bits(), y.iat_within_10ns.to_bits());
        assert_eq!(x.iat_abs_percentiles_ns, y.iat_abs_percentiles_ns);
        assert_eq!(x.latency_abs_percentiles_ns, y.latency_abs_percentiles_ns);
        assert_eq!(x.edit_stats, y.edit_stats);
        assert_eq!(x.iat_hist.total(), y.iat_hist.total());
        assert_eq!(x.latency_hist.total(), y.latency_hist.total());
    }

    fn stream_in_chunks(a: &Trial, b: &Trial, chunk: usize, cfg: StreamConfig) -> StreamOutcome {
        let mut eng = IncrementalComparison::new(cfg);
        let (oa, ob) = (a.observations(), b.observations());
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < oa.len() || ib < ob.len() {
            let hi = (ia + chunk).min(oa.len());
            eng.push_burst(Side::A, &oa[ia..hi]);
            ia = hi;
            let hi = (ib + chunk).min(ob.len());
            eng.push_burst(Side::B, &ob[ib..hi]);
            ib = hi;
        }
        eng.finalize("B")
    }

    #[test]
    fn full_lookahead_bit_identical_to_batch_across_chunkings() {
        let (a, b) = jittered_pair(400);
        let batch = PairAnalyzer::new(&a, &b).label("B").analyze();
        for chunk in [1usize, 7, 64, 10_000] {
            let out = stream_in_chunks(&a, &b, chunk, StreamConfig::default());
            assert!(!out.bounded);
            assert_eq!(out.evicted, 0);
            assert_bit_identical(&out.comparison, &batch);
        }
    }

    #[test]
    fn full_lookahead_sequential_sides_bit_identical() {
        // A fully first, then B — the maximal-residency interleave.
        let (a, b) = jittered_pair(300);
        let batch = PairAnalyzer::new(&a, &b).label("B").analyze();
        let mut eng = IncrementalComparison::new(StreamConfig::default());
        eng.push_burst(Side::A, a.observations());
        eng.push_burst(Side::B, b.observations());
        assert_eq!(eng.seen_a(), 300);
        let out = eng.finalize("B");
        assert_bit_identical(&out.comparison, &batch);
        assert_eq!(out.peak_resident, 300, "all of A pending before B starts");
    }

    #[test]
    fn empty_streams_finalize_to_kappa_one() {
        let out = IncrementalComparison::new(StreamConfig::default()).finalize("B");
        assert_eq!(out.comparison.metrics.kappa, 1.0);
        assert_eq!(out.comparison.common, 0);
        assert_eq!(out.peak_resident, 0);
    }

    #[test]
    fn bounded_window_caps_residency_and_evicts() {
        let (a, b) = jittered_pair(500); // ≥ 10× the window below
        let w = 32usize;
        let cfg = StreamConfig {
            lookahead: Some(w),
            ..StreamConfig::default()
        };
        let mut eng = IncrementalComparison::new(cfg);
        eng.push_burst(Side::A, a.observations());
        eng.push_burst(Side::B, b.observations());
        assert!(eng.peak_resident() <= w, "peak {} > window {w}", eng.peak_resident());
        assert!(eng.evicted() > 0, "A-then-B at 500 packets must evict");
        let out = eng.finalize("B");
        assert!(out.bounded);
        assert!(out.peak_resident <= w);
        let k = out.comparison.metrics.kappa;
        assert!((0.0..=1.0).contains(&k), "kappa {k}");
    }

    #[test]
    fn bounded_alternating_dropfree_matches_batch_kappa() {
        // Drop-free, order-preserving pair fed alternately: nothing is
        // ever evicted, no packet moves, so even the bounded engine's κ
        // is bit-identical (O = 0 on both paths; L/I/U are exact).
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..600u64 {
            a.push_tagged(0, 0, i, i * 1000);
            b.push_tagged(0, 0, i, i * 1000 + (i % 5) * 23);
        }
        let batch = PairAnalyzer::new(&a, &b).metrics();
        let cfg = StreamConfig {
            lookahead: Some(16),
            ..StreamConfig::default()
        };
        let mut eng = IncrementalComparison::new(cfg);
        for i in 0..600usize {
            let oa = a.observations()[i];
            let ob = b.observations()[i];
            eng.push(Side::A, oa.id, oa.t_ps);
            eng.push(Side::B, ob.id, ob.t_ps);
        }
        assert_eq!(eng.evicted(), 0);
        let out = eng.finalize("B");
        assert_eq!(out.comparison.metrics.kappa.to_bits(), batch.kappa.to_bits());
        assert_eq!(out.comparison.moved, 0);
        assert_eq!(out.missed_matches, 0);
        assert!(out.bounds.contains(batch.kappa));
    }

    #[test]
    fn bounded_breakpoint_seals_stay_bit_exact_on_local_swaps() {
        // Adjacent swaps, fed lock-step: the estimator must seal many
        // times (the buffer cap is far below the stream length), every
        // seal lands on a direct-sum breakpoint, and the finalized κ —
        // O included — is bit-identical to batch with a collapsed bound.
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..300u64 {
            a.push_tagged(0, 0, i, i * 1000);
            b.push_tagged(0, 0, i ^ 1, i * 1000 + 17);
        }
        let batch = PairAnalyzer::new(&a, &b).label("B").analyze();
        let cfg = StreamConfig {
            lookahead: Some(8),
            ..StreamConfig::default()
        };
        let mut eng = IncrementalComparison::new(cfg);
        for i in 0..300usize {
            let oa = a.observations()[i];
            let ob = b.observations()[i];
            eng.push(Side::A, oa.id, oa.t_ps);
            eng.push(Side::B, ob.id, ob.t_ps);
        }
        assert_eq!(eng.evicted(), 0);
        let out = eng.finalize("B");
        assert!(out.seals > 0, "buffer cap must have forced mid-stream seals");
        assert_eq!(out.forced_seals, 0, "every cut must be a breakpoint");
        assert_eq!(out.missed_matches, 0);
        assert_eq!(
            out.comparison.metrics.kappa.to_bits(),
            batch.metrics.kappa.to_bits()
        );
        assert_eq!(out.comparison.metrics.o.to_bits(), batch.metrics.o.to_bits());
        assert_eq!(out.comparison.edit_stats, batch.edit_stats);
        assert_eq!(out.bounds.lo.to_bits(), out.bounds.hi.to_bits());
        assert!(out.bounds.contains(batch.metrics.kappa));
    }

    #[test]
    fn bounded_missed_matches_count_exactly() {
        // A floods first, so the tiny window evicts most of it before B
        // arrives; the occurrence-debt counter must still account every
        // batch match, making `common + missed_matches` exact.
        let (a, b) = jittered_pair(200);
        let batch = PairAnalyzer::new(&a, &b).label("B").analyze();
        let cfg = StreamConfig {
            lookahead: Some(16),
            ..StreamConfig::default()
        };
        let mut eng = IncrementalComparison::new(cfg);
        eng.push_burst(Side::A, a.observations());
        eng.push_burst(Side::B, b.observations());
        let out = eng.finalize("B");
        assert!(out.evicted > 0);
        assert!(out.missed_matches > 0);
        assert_eq!(out.comparison.common + out.missed_matches, batch.common);
        assert!(out.bounds.lo <= out.bounds.hi);
        assert!(
            out.bounds.contains(batch.metrics.kappa),
            "batch κ {} outside [{}, {}]",
            batch.metrics.kappa,
            out.bounds.lo,
            out.bounds.hi
        );
    }

    #[test]
    fn snapshots_carry_bounds() {
        let (a, b) = jittered_pair(300);
        let cfg = StreamConfig {
            lookahead: Some(32),
            snapshot_every: 50,
            ..StreamConfig::default()
        };
        let out = stream_in_chunks(&a, &b, 20, cfg);
        assert!(!out.snapshots.is_empty());
        for s in &out.snapshots {
            let bd = s.bounds.expect("bounds on every snapshot");
            assert!(bd.lo <= bd.hi);
            assert!((0.0..=1.0).contains(&bd.lo) && bd.hi <= 1.0);
            let wb = s.window.bounds.expect("bounds on every slice score");
            assert!(wb.lo <= wb.hi);
        }
    }

    #[test]
    fn snapshot_cadence_and_trail() {
        let (a, b) = jittered_pair(500);
        let cfg = StreamConfig {
            snapshot_every: 100,
            ..StreamConfig::default()
        };
        let out = stream_in_chunks(&a, &b, 25, cfg);
        // ~1000 pushes at one snapshot per 100 → 9–10 snapshots.
        assert!(
            out.snapshots.len() >= 9,
            "expected ≥9 snapshots, got {}",
            out.snapshots.len()
        );
        // Trails are monotone in seen totals and windows index in order.
        for (k, s) in out.snapshots.iter().enumerate() {
            assert_eq!(s.window.index, k);
            let kappa = s.running.kappa;
            assert!((0.0..=1.0).contains(&kappa), "snapshot {k} kappa {kappa}");
            if k > 0 {
                let prev = &out.snapshots[k - 1];
                assert!(s.seen_a + s.seen_b > prev.seen_a + prev.seen_b);
                assert!(s.common >= prev.common);
            }
        }
        // The last snapshot's running κ is the κ over everything seen at
        // that point — close to (not necessarily equal to) the final.
        let last = out.snapshots.last().expect("non-empty trail");
        assert!((last.running.kappa - out.comparison.metrics.kappa).abs() < 0.05);
    }

    #[test]
    fn manual_snapshot_resets_slice_window() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..100u64 {
            a.push_tagged(0, 0, i, i * 1000);
            b.push_tagged(0, 0, i, i * 1000);
        }
        let mut eng = IncrementalComparison::new(StreamConfig::default());
        eng.push_burst(Side::A, &a.observations()[..50]);
        eng.push_burst(Side::B, &b.observations()[..50]);
        let s1 = eng.snapshot_now();
        assert_eq!(s1.window.common, 50);
        assert_eq!(s1.window.a_range, (0, 50));
        eng.push_burst(Side::A, &a.observations()[50..]);
        eng.push_burst(Side::B, &b.observations()[50..]);
        let s2 = eng.snapshot_now();
        assert_eq!(s2.window.common, 50, "slice must cover only the new half");
        assert_eq!(s2.window.a_range, (50, 100));
        assert_eq!(s2.window.index, 1);
        assert_eq!(eng.snapshots().len(), 2);
    }

    #[test]
    fn running_metrics_are_sane_mid_stream() {
        let (a, b) = jittered_pair(200);
        let mut eng = IncrementalComparison::new(StreamConfig::default());
        eng.push_burst(Side::A, &a.observations()[..100]);
        eng.push_burst(Side::B, &b.observations()[..100]);
        let m = eng.running_metrics();
        assert!((0.0..=1.0).contains(&m.kappa));
        assert!(m.u >= 0.0 && m.o >= 0.0 && m.l >= 0.0 && m.i >= 0.0);
    }

    #[test]
    fn duplicates_match_occurrence_wise_like_batch() {
        // Same identity several times on each side, asymmetric counts.
        let mut a = Trial::new();
        let mut b = Trial::new();
        for k in 0..5u64 {
            a.push_tagged(0, 0, 7, k * 100);
        }
        for k in 0..3u64 {
            b.push_tagged(0, 0, 7, k * 110);
        }
        let batch = PairAnalyzer::new(&a, &b).label("B").analyze();
        let out = stream_in_chunks(&a, &b, 2, StreamConfig::default());
        assert_bit_identical(&out.comparison, &batch);
        assert_eq!(out.comparison.common, 3);
        assert_eq!(out.comparison.missing, 2);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let (a, b) = jittered_pair(120);
        let cfg = StreamConfig {
            snapshot_every: 50,
            ..StreamConfig::default()
        };
        let out = stream_in_chunks(&a, &b, 10, cfg);
        let snap = out.snapshots.first().expect("has snapshots");
        let json = serde_json::to_string(snap).unwrap();
        let back: KappaSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seen_a, snap.seen_a);
        assert_eq!(back.running.kappa.to_bits(), snap.running.kappa.to_bits());
        assert_eq!(back.window.common, snap.window.common);
    }

    /// Flatten a chunked interleave into a single event sequence so a
    /// checkpoint cut can land at *any* global position.
    fn interleave(a: &Trial, b: &Trial, chunk: usize) -> Vec<(Side, Observation)> {
        let (oa, ob) = (a.observations(), b.observations());
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut ev = Vec::with_capacity(oa.len() + ob.len());
        while ia < oa.len() || ib < ob.len() {
            let hi = (ia + chunk).min(oa.len());
            ev.extend(oa[ia..hi].iter().map(|o| (Side::A, *o)));
            ia = hi;
            let hi = (ib + chunk).min(ob.len());
            ev.extend(ob[ib..hi].iter().map(|o| (Side::B, *o)));
            ib = hi;
        }
        ev
    }

    fn feed(eng: &mut IncrementalComparison, events: &[(Side, Observation)]) {
        for (side, o) in events {
            eng.push(*side, o.id, o.t_ps);
        }
    }

    fn assert_snapshots_identical(x: &[KappaSnapshot], y: &[KappaSnapshot]) {
        assert_eq!(x.len(), y.len(), "snapshot trail lengths differ");
        for (k, (s, t)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                (s.seen_a, s.seen_b, s.common, s.resident, s.evicted),
                (t.seen_a, t.seen_b, t.common, t.resident, t.evicted),
                "snapshot {k} counters diverged"
            );
            for (name, a, b) in [
                ("kappa", s.running.kappa, t.running.kappa),
                ("u", s.running.u, t.running.u),
                ("o", s.running.o, t.running.o),
                ("l", s.running.l, t.running.l),
                ("i", s.running.i, t.running.i),
                ("w.kappa", s.window.metrics.kappa, t.window.metrics.kappa),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "snapshot {k} {name} diverged");
            }
            assert_eq!(s.window.index, t.window.index);
            assert_eq!(s.window.a_range, t.window.a_range);
            assert_eq!(s.window.common, t.window.common);
            let (sb, tb) = (s.bounds.expect("bounds"), t.bounds.expect("bounds"));
            assert_eq!(sb.lo.to_bits(), tb.lo.to_bits(), "snapshot {k} bounds.lo diverged");
            assert_eq!(sb.hi.to_bits(), tb.hi.to_bits(), "snapshot {k} bounds.hi diverged");
        }
    }

    /// The tentpole contract: cut at every k, checkpoint, resume, finish
    /// — bit-identical result *and* snapshot trail, both modes, with a
    /// JSON round trip of the checkpoint in the loop.
    fn check_every_cut(cfg: StreamConfig, n: u64, chunk: usize) {
        let (a, b) = jittered_pair(n);
        let events = interleave(&a, &b, chunk);
        let mut whole = IncrementalComparison::new(cfg);
        feed(&mut whole, &events);
        let want = whole.finalize("B");
        for k in 0..=events.len() {
            let mut head = IncrementalComparison::new(cfg);
            feed(&mut head, &events[..k]);
            let ck = head.checkpoint();
            // Round-trip through JSON at every cut: the serialized form
            // must carry the full state, not just the in-memory mirror.
            let json = serde_json::to_string(&ck).unwrap();
            let ck: StreamCheckpoint = serde_json::from_str(&json).unwrap();
            let mut tail = IncrementalComparison::resume(ck);
            feed(&mut tail, &events[k..]);
            let got = tail.finalize("B");
            assert_bit_identical(&got.comparison, &want.comparison);
            assert_eq!(got.peak_resident, want.peak_resident, "cut {k}");
            assert_eq!(got.evicted, want.evicted, "cut {k}");
            assert_eq!(got.bounds.lo.to_bits(), want.bounds.lo.to_bits(), "cut {k}");
            assert_eq!(got.bounds.hi.to_bits(), want.bounds.hi.to_bits(), "cut {k}");
            assert_eq!(got.missed_matches, want.missed_matches, "cut {k}");
            assert_eq!(
                (got.seals, got.forced_seals),
                (want.seals, want.forced_seals),
                "cut {k}"
            );
            assert_snapshots_identical(&got.snapshots, &want.snapshots);
        }
    }

    #[test]
    fn checkpoint_resume_bit_identical_at_every_cut_unbounded() {
        let cfg = StreamConfig {
            snapshot_every: 17,
            ..StreamConfig::default()
        };
        check_every_cut(cfg, 60, 5);
    }

    #[test]
    fn checkpoint_resume_bit_identical_at_every_cut_bounded() {
        // Window far smaller than the stream: cuts land inside the
        // resident window, mid-segment, and across evictions.
        let cfg = StreamConfig {
            lookahead: Some(8),
            snapshot_every: 13,
            ..StreamConfig::default()
        };
        check_every_cut(cfg, 60, 9);
    }

    #[test]
    fn checkpoint_is_non_destructive() {
        // The checkpointed engine keeps running and still matches the
        // uninterrupted result — cadence checkpointing must be free.
        let (a, b) = jittered_pair(120);
        let events = interleave(&a, &b, 7);
        let mut plain = IncrementalComparison::new(StreamConfig::default());
        feed(&mut plain, &events);
        let want = plain.finalize("B");
        let mut eng = IncrementalComparison::new(StreamConfig::default());
        for (k, (side, o)) in events.iter().enumerate() {
            if k % 11 == 0 {
                let _ = eng.checkpoint();
            }
            eng.push(*side, o.id, o.t_ps);
        }
        let got = eng.finalize("B");
        assert_bit_identical(&got.comparison, &want.comparison);
    }

    #[test]
    fn checkpoint_exposes_replay_cursor() {
        let (a, b) = jittered_pair(40);
        let events = interleave(&a, &b, 3);
        let mut eng = IncrementalComparison::new(StreamConfig::default());
        feed(&mut eng, &events[..25]);
        let ck = eng.checkpoint();
        assert_eq!(ck.tick(), 25);
        assert_eq!(ck.seen_a() + ck.seen_b(), 25);
        assert_eq!(ck.resident(), eng.resident());
    }

    #[test]
    fn checkpoint_bytes_are_deterministic() {
        // Two engines fed identically must serialize byte-identically
        // (pending identities are emitted in sorted order, not hash
        // order) — a supervisor may diff checkpoints to detect drift.
        let (a, b) = jittered_pair(80);
        let events = interleave(&a, &b, 4);
        let mk = || {
            let mut e = IncrementalComparison::new(StreamConfig::default());
            feed(&mut e, &events[..events.len() / 2]);
            serde_json::to_string(&e.checkpoint()).unwrap()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn resume_checked_refuses_foreign_engine_id() {
        let (a, b) = jittered_pair(30);
        let events = interleave(&a, &b, 3);
        let cfg = StreamConfig::default();
        let mut eng = IncrementalComparison::new(cfg).with_engine_id(7);
        feed(&mut eng, &events[..15]);
        let ck = eng.checkpoint();
        assert_eq!(ck.engine_id(), 7);
        match IncrementalComparison::resume_checked(ck, 9, &cfg) {
            Err(ResumeMismatch::EngineId { expected, found }) => {
                assert_eq!((expected, found), (9, 7));
            }
            other => panic!("expected EngineId mismatch, got {other:?}"),
        }
    }

    #[test]
    fn resume_checked_refuses_foreign_config() {
        let (a, b) = jittered_pair(30);
        let events = interleave(&a, &b, 3);
        let cfg = StreamConfig::default();
        let mut eng = IncrementalComparison::new(cfg).with_engine_id(7);
        feed(&mut eng, &events[..15]);
        let ck = eng.checkpoint();
        let other_cfg = StreamConfig {
            lookahead: Some(8),
            ..cfg
        };
        assert_ne!(cfg.fingerprint(), other_cfg.fingerprint());
        match IncrementalComparison::resume_checked(ck, 7, &other_cfg) {
            Err(ResumeMismatch::Config { expected, found }) => {
                assert_eq!(expected, other_cfg.fingerprint());
                assert_eq!(found, cfg.fingerprint());
            }
            other => panic!("expected Config mismatch, got {other:?}"),
        }
    }

    #[test]
    fn resume_checked_accepts_matching_pair_bit_identically() {
        let (a, b) = jittered_pair(60);
        let events = interleave(&a, &b, 5);
        let cfg = StreamConfig {
            snapshot_every: 17,
            ..StreamConfig::default()
        };
        let mut whole = IncrementalComparison::new(cfg).with_engine_id(42);
        feed(&mut whole, &events);
        let want = whole.finalize("B");
        let mut head = IncrementalComparison::new(cfg).with_engine_id(42);
        feed(&mut head, &events[..31]);
        let json = serde_json::to_string(&head.checkpoint()).unwrap();
        let ck: StreamCheckpoint = serde_json::from_str(&json).unwrap();
        let mut tail =
            IncrementalComparison::resume_checked(ck, 42, &cfg).expect("matching pair resumes");
        assert_eq!(tail.engine_id(), 42);
        feed(&mut tail, &events[31..]);
        let got = tail.finalize("B");
        assert_bit_identical(&got.comparison, &want.comparison);
    }

    #[test]
    fn resume_checked_accepts_legacy_checkpoint_with_embedded_config() {
        // Checkpoints written before engine_id/config_hash existed
        // deserialize with both zero; they must still resume when the
        // caller's config matches the one embedded in the checkpoint.
        let (a, b) = jittered_pair(30);
        let events = interleave(&a, &b, 3);
        let cfg = StreamConfig::default();
        let mut eng = IncrementalComparison::new(cfg);
        feed(&mut eng, &events[..15]);
        let json = serde_json::to_string(&eng.checkpoint()).unwrap();
        // Strip the new fields to simulate a pre-upgrade checkpoint.
        let json = json
            .replace("\"engine_id\":0,", "")
            .replace("\"config_hash\":", "\"config_hash_ignored\":");
        let ck: StreamCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(ck.engine_id(), 0);
        assert_eq!(ck.config_hash(), 0);
        IncrementalComparison::resume_checked(ck, 0, &cfg).expect("legacy checkpoint resumes");
        let ck2: StreamCheckpoint = serde_json::from_str(
            &serde_json::to_string(&eng.checkpoint())
                .unwrap()
                .replace("\"engine_id\":0,", "")
                .replace("\"config_hash\":", "\"config_hash_ignored\":"),
        )
        .unwrap();
        let wrong = StreamConfig {
            lookahead: Some(4),
            ..cfg
        };
        assert!(matches!(
            IncrementalComparison::resume_checked(ck2, 0, &wrong),
            Err(ResumeMismatch::Config { .. })
        ));
    }

    #[test]
    fn resume_preserves_extreme_displacement_sentinels() {
        // A fresh engine's disp_min/disp_max sentinels (i64::MAX/MIN)
        // must survive the JSON trip — they only relax on real moves.
        let eng = IncrementalComparison::new(StreamConfig {
            lookahead: Some(4),
            ..StreamConfig::default()
        });
        let json = serde_json::to_string(&eng.checkpoint()).unwrap();
        let ck: StreamCheckpoint = serde_json::from_str(&json).unwrap();
        let back = IncrementalComparison::resume(ck);
        assert_eq!(back.est.disp_min, i64::MAX);
        assert_eq!(back.est.disp_max, i64::MIN);
        let out = back.finalize("B");
        assert_eq!(out.comparison.edit_stats.min, 0);
    }

    #[test]
    fn hist_percentiles_report_bucket_lower_edges() {
        let h = DeltaHistogram::of((0..100).map(|i| i as f64 * 0.01)); // all |Δ| < 1
        assert_eq!(hist_abs_percentiles(&h), (0.0, 0.0, 0.0));
        let h = DeltaHistogram::of([0.0, 0.0, 0.0, 500.0]);
        let (p50, p90, p99) = hist_abs_percentiles(&h);
        assert_eq!(p50, 0.0);
        assert!(p90 > 0.0 && p90 <= 500.0);
        assert!(p99 >= p90);
        assert_eq!(hist_abs_percentiles(&DeltaHistogram::new()), (0.0, 0.0, 0.0));
    }
}
