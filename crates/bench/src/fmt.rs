//! Plain-text rendering of the paper's tables and figures.

use choir_core::metrics::report::RunReport;
use choir_core::metrics::ConsistencyMetrics;
use choir_testbed::EnvKind;

use crate::paper::PaperRow;

/// Scientific-ish compact float formatting matching the paper's style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// Render a Table-2-style row pair: paper vs measured.
pub fn table2_pair(kind: EnvKind, paper: &ConsistencyMetrics, ours: &ConsistencyMetrics) -> String {
    format!(
        "{:<28} | {:>9} {:>9} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>9} {:>7}\n",
        kind.label(),
        sci(paper.u),
        sci(paper.o),
        sci(paper.i),
        sci(paper.l),
        format!("{:.4}", paper.kappa),
        sci(ours.u),
        sci(ours.o),
        sci(ours.i),
        sci(ours.l),
        format!("{:.4}", ours.kappa),
    )
}

/// Header for the Table 2 rendering.
pub fn table2_header() -> String {
    format!(
        "{:<28} | {:^49} | {:^49}\n{:<28} | {:>9} {:>9} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>9} {:>7}\n{}\n",
        "Environment",
        "paper (Table 2)",
        "measured (this run)",
        "",
        "U",
        "O",
        "I",
        "L",
        "kappa",
        "U",
        "O",
        "I",
        "L",
        "kappa",
        "-".repeat(130),
    )
}

/// One environment's per-run summary in the style of the paper's
/// evaluation prose: per run within-10ns%, I, L, κ.
pub fn run_summary(report: &RunReport, paper: &PaperRow) -> String {
    let mut s = String::new();
    s.push_str(&format!("Environment: {}\n", report.environment));
    for r in &report.runs {
        s.push_str(&format!(
            "  run {}: {:5.2}% IAT +-10ns, U {}, O {}, I {}, L {}, kappa {:.4}  (moved {}, missing {}, extra {})\n",
            r.label,
            100.0 * r.iat_within_10ns,
            sci(r.metrics.u),
            sci(r.metrics.o),
            sci(r.metrics.i),
            sci(r.metrics.l),
            r.metrics.kappa,
            r.moved,
            r.missing,
            r.extra,
        ));
    }
    s.push_str(&format!(
        "  mean: U {}, O {}, I {}, L {}, kappa {:.4}\n",
        sci(report.mean.u),
        sci(report.mean.o),
        sci(report.mean.i),
        sci(report.mean.l),
        report.mean.kappa
    ));
    s.push_str(&format!(
        "  paper: U {}, O {}, I {}, L {}, kappa {:.4}",
        sci(paper.mean.u),
        sci(paper.mean.o),
        sci(paper.mean.i),
        sci(paper.mean.l),
        paper.mean.kappa
    ));
    if let Some((lo, hi)) = paper.within_10ns {
        s.push_str(&format!(
            ", within-10ns {:.2}%..{:.2}%",
            lo * 100.0,
            hi * 100.0
        ));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.0294), "0.0294");
        assert_eq!(sci(4.27e-6), "4.27e-6");
    }

    #[test]
    fn header_and_row_render() {
        let h = table2_header();
        assert!(h.contains("kappa"));
        let m = ConsistencyMetrics {
            u: 0.0,
            o: 0.0,
            l: 1e-5,
            i: 0.03,
            kappa: 0.985,
        };
        let row = table2_pair(EnvKind::LocalSingle, &m, &m);
        assert!(row.contains("Local Single-Replayer"));
    }
}
