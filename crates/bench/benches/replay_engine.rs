//! Criterion benches of the real-time replay engine — the performance
//! substance behind the paper's §10 claim (100 Gbps / 8.9 Mpps sustained
//! on commodity hardware).
//!
//! Throughput is configured in *packets*, so Criterion reports
//! packets/second directly; multiply by ~11,392 wire bits for the Gbps
//! equivalent at 1400-byte frames.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use choir_core::replay::engine::run_replay_spin;
use choir_core::replay::recording::Recording;
use choir_dpdk::loopback::RealClock;
use choir_dpdk::{Burst, Dataplane, Mempool, PortId, PortStats};
use choir_packet::{ChoirTag, FrameBuilder};

/// Hardware-NIC stand-in: counts and frees on the calling core.
struct CountingSink {
    pool: Mempool,
    clock: RealClock,
    stats: PortStats,
}

impl CountingSink {
    fn new(pool: Mempool) -> Self {
        CountingSink {
            pool,
            clock: RealClock::new(),
            stats: PortStats::default(),
        }
    }
}

impl Dataplane for CountingSink {
    fn num_ports(&self) -> usize {
        1
    }
    fn mempool(&self) -> &Mempool {
        &self.pool
    }
    fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
        out.clear();
        0
    }
    fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
        let n = burst.len();
        let mut bytes = 0u64;
        for m in burst.drain() {
            bytes += m.len() as u64;
        }
        self.stats.on_tx(n as u64, bytes);
        n
    }
    fn tsc(&self) -> u64 {
        self.clock.elapsed_ns()
    }
    fn tsc_hz(&self) -> u64 {
        1_000_000_000
    }
    fn wall_ns(&self) -> u64 {
        self.clock.elapsed_ns()
    }
    fn request_wake_at_tsc(&mut self, _t: u64) {}
    fn stats(&self, _p: PortId) -> PortStats {
        self.stats
    }
}

fn recording_of(pool: &Mempool, packets: usize, per_burst: usize) -> Recording {
    let builder = FrameBuilder::new(1400, 1, 2);
    let mut rec = Recording::new();
    let bursts = packets / per_burst;
    for b in 0..bursts {
        let pkts: Vec<_> = (0..per_burst)
            .map(|i| {
                pool.alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, (b * per_burst + i) as u64)))
                    .unwrap()
            })
            .collect();
        rec.push_burst((b * per_burst) as u64 * 114, pkts.iter());
    }
    rec
}

/// Loop ceiling vs burst size: the paper argues larger bursts reach line
/// rate with fewer resources (§5); this quantifies it.
fn bench_ceiling_by_burst_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay_ceiling");
    for &per_burst in &[8usize, 32, 64] {
        let packets = 65_536;
        let pool = Mempool::new("bench", packets * 2);
        let rec = recording_of(&pool, packets, per_burst);
        g.throughput(Throughput::Elements(rec.packets() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(per_burst),
            &rec,
            |bench, rec| {
                let mut sink = CountingSink::new(pool.clone());
                bench.iter(|| {
                    let report = run_replay_spin(rec, &mut sink, 0, u64::MAX);
                    assert_eq!(report.stats.packets_sent as usize, packets);
                    report.pps
                });
            },
        );
    }
    g.finish();
}

/// Paced at the 100 Gbps cadence: measures the whole paced replay
/// (spin + transmit), whose rate should match the recording's.
fn bench_paced_100g(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay_paced_100g");
    g.sample_size(10);
    let packets = 16_384;
    let pool = Mempool::new("paced", packets * 2);
    let builder = FrameBuilder::new(1400, 1, 2);
    let mut rec = Recording::new();
    for b in 0..packets / 64 {
        let pkts: Vec<_> = (0..64)
            .map(|i| {
                pool.alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, (b * 64 + i) as u64)))
                    .unwrap()
            })
            .collect();
        // 113.92 ns per 1400-byte frame at 100 Gbps; 64 per burst.
        rec.push_burst(b as u64 * 114 * 64, pkts.iter());
    }
    g.throughput(Throughput::Elements(packets as u64));
    g.bench_function("spin_and_send", |bench| {
        let mut sink = CountingSink::new(pool.clone());
        bench.iter(|| run_replay_spin(&rec, &mut sink, 0, 1).stats.packets_sent);
    });
    g.finish();
}

criterion_group!(benches, bench_ceiling_by_burst_size, bench_paced_100g);
criterion_main!(benches);
