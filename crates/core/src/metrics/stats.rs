//! Small descriptive-statistics helpers shared by the metric modules,
//! Table 1, and the experiment reports.

/// Mean / standard deviation / extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize an iterator of samples in one pass (Welford's online
    /// algorithm, numerically stable for the ns-scale magnitudes the
    /// metrics produce).
    pub fn of<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let mut count = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for x in iter {
            count += 1;
            let delta = x - mean;
            mean += delta / count as f64;
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        if count == 0 {
            return Summary::default();
        }
        let stddev = if count > 1 {
            (m2 / (count as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            stddev,
            min,
            max,
        }
    }
}

/// Percentile (nearest-rank) of a sorted slice. `p` in `[0, 100]`.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is out of range.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Fraction (0–1) of samples whose absolute value is ≤ `bound`.
///
/// This is the paper's headline per-run statistic: "Between 92.23% and
/// 92.51% of packets were within 10 ns IAT of the baseline run" (§6.1).
pub fn fraction_within<I: IntoIterator<Item = f64>>(iter: I, bound: f64) -> f64 {
    let mut total = 0usize;
    let mut within = 0usize;
    for x in iter {
        total += 1;
        if x.abs() <= bound {
            within += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        within as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is sqrt(32/7).
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::of(std::iter::empty());
        assert_eq!(e.count, 0);
        let s = Summary::of([42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn summary_stable_for_large_offsets() {
        // Welford should survive ns-scale offsets with tiny variance.
        let base = 3.0e14; // 300 s in ns
        let s = Summary::of((0..1000).map(|i| base + (i % 2) as f64));
        assert!((s.mean - (base + 0.5)).abs() < 1e-3);
        assert!((s.stddev - 0.50025).abs() < 1e-3);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 50.0), 50.0);
        assert_eq!(percentile_sorted(&v, 99.0), 99.0);
        assert_eq!(percentile_sorted(&v, 100.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted(&[], 50.0);
    }

    #[test]
    fn fraction_within_bounds() {
        let v = [-5.0, -15.0, 0.0, 9.9, 10.0, 11.0];
        let f = fraction_within(v, 10.0);
        assert!((f - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(fraction_within(std::iter::empty(), 10.0), 0.0);
    }
}
