//! The Choir replay application (paper §4–§5).
//!
//! Choir's core is a *transparent middlebox* inserted on a link: it
//! forwards traffic unmodified at line rate, and at the user's instruction
//! records the forwarded bursts — holding the transmitted buffers in
//! memory with their TSC transmit times, no copies — then replays them by
//! re-transmitting each burst when the TSC passes `recorded_tsc + delta`.
//!
//! Module map:
//!
//! - [`recording`] — the in-RAM burst log (plus the rolling-window variant
//!   the paper lists as future work).
//! - [`scheduler`] — the TSC-delta release logic driving a replay.
//! - [`middlebox`] — the [`choir_dpdk::App`] tying it together: forward,
//!   record, replay, obey control commands.
//! - [`control`] — in-band control frame encoding (§5 runs control
//!   in-band "to conserve resources"; out-of-band delivery goes through
//!   `App::on_control` directly).
//! - [`engine`] — a real-time replay driver whose hot loop is the paper's
//!   `while (rte_rdtsc() < release) ;` spin, used for the 100 Gbps
//!   throughput claim; its supervised variant bounds retries and wall
//!   time.
//! - [`degrade`] — typed replay-abort causes and the degradation
//!   counters the supervised paths report instead of hanging.
//! - [`reliable`] — stop-and-wait reliability (sequence numbers, acks,
//!   bounded retransmission) layered over the in-band control channel.

pub mod control;
pub mod debugger;
pub mod degrade;
pub mod engine;
pub mod middlebox;
pub mod recording;
pub mod reliable;
pub mod scheduler;

pub use debugger::{Breakpoint, ReplayDebugger, StopReason};
pub use degrade::{DegradationReport, ReplayError, ReplayErrorKind};
pub use engine::{run_replay_spin, run_replay_supervised, EngineConfig, EngineReport};
pub use middlebox::{ChoirMiddlebox, MiddleboxConfig};
pub use recording::{Recording, RecordedBurst, RollingRecorder};
pub use reliable::{ControlEvent, ControlLinkStats, ControllerConfig, ReliableController};
pub use scheduler::{ReplayScheduler, ReplayStats, SchedulerState};
