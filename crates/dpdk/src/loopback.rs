//! Real-time in-process backend: ports wired together with lock-free
//! rings, and a TSC based on the monotonic OS clock.
//!
//! This backend exists for two purposes:
//!
//! 1. **Throughput measurement.** The paper's headline claim — Choir
//!    "can sustain peak speeds of 100 Gbps (8.9 Mpps)" (§10) — is a
//!    property of the software loop: TSC read, compare, burst hand-off.
//!    `choir-bench` drives the real replay engine over this backend on
//!    real CPUs and reports sustained Mpps.
//! 2. **Running the actual application code** outside the simulator, e.g.
//!    in the quickstart example, demonstrating the code is not
//!    simulator-bound.
//!
//! It deliberately does *not* model wire-level timing (serialization, DMA
//! pull latency); timing-fidelity experiments belong to `choir-netsim`.

use std::time::Instant;

use crate::burst::{Burst, MAX_BURST};
use crate::mbuf::{Mbuf, Mempool};
use crate::plane::{Dataplane, PortId};
use crate::ring::{Consumer, Producer, SpscRing};
use crate::stats::PortStats;

/// One endpoint of a loopback cable: transmit into one ring, receive from
/// its peer.
pub struct LoopbackPort {
    tx: Producer<Mbuf>,
    rx: Consumer<Mbuf>,
}

impl LoopbackPort {
    /// A pair of connected ports, each direction buffered by a ring of
    /// `depth` descriptors.
    pub fn pair(depth: usize) -> (LoopbackPort, LoopbackPort) {
        let (atx, brx) = SpscRing::with_capacity(depth);
        let (btx, arx) = SpscRing::with_capacity(depth);
        (
            LoopbackPort { tx: atx, rx: arx },
            LoopbackPort { tx: btx, rx: brx },
        )
    }

    /// A port whose transmit side feeds straight back into its own receive
    /// side (a physical loopback plug).
    pub fn self_loop(depth: usize) -> LoopbackPort {
        let (tx, rx) = SpscRing::with_capacity(depth);
        LoopbackPort { tx, rx }
    }

    /// A transmit-only port: received packets go nowhere. The consumer
    /// half is returned separately so a sink thread can drain it.
    pub fn sink(depth: usize) -> (LoopbackPort, Consumer<Mbuf>) {
        let (tx, peer_rx) = SpscRing::with_capacity(depth);
        let (_dead_tx, rx) = SpscRing::with_capacity(1);
        (LoopbackPort { tx, rx }, peer_rx)
    }
}

/// Monotonic real-time clock presented as a 1 GHz TSC.
#[derive(Debug, Clone)]
pub struct RealClock {
    start: Instant,
    /// Offset added to the wall clock, to emulate PTP disagreement
    /// between nodes when desired.
    wall_offset_ns: i64,
}

impl RealClock {
    /// A clock starting now with zero wall offset.
    pub fn new() -> Self {
        RealClock {
            start: Instant::now(),
            wall_offset_ns: 0,
        }
    }

    /// A clock sharing `start` but with a wall offset (two "nodes" with
    /// imperfect PTP sync).
    pub fn with_offset(start: Instant, wall_offset_ns: i64) -> Self {
        RealClock {
            start,
            wall_offset_ns,
        }
    }

    /// Nanoseconds since clock start.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

/// A real-time [`Dataplane`] over loopback ports.
pub struct RealtimePlane {
    ports: Vec<LoopbackPort>,
    stats: Vec<PortStats>,
    pool: Mempool,
    clock: RealClock,
    wake_at_tsc: Option<u64>,
}

impl RealtimePlane {
    /// A plane with the given buffer pool and clock.
    pub fn new(pool: Mempool, clock: RealClock) -> Self {
        RealtimePlane {
            ports: Vec::new(),
            stats: Vec::new(),
            pool,
            clock,
            wake_at_tsc: None,
        }
    }

    /// A self-contained single-port plane: a fresh pool of `depth` buffers
    /// and one port whose transmit side loops back into its receive side.
    /// Convenient for tests and examples that need a working plane without
    /// wiring ports by hand.
    pub fn self_loop(depth: usize) -> Self {
        let mut plane = RealtimePlane::new(Mempool::new("self-loop", depth), RealClock::new());
        plane.add_port(LoopbackPort::self_loop(depth));
        plane
    }

    /// Attach a port; returns its id.
    pub fn add_port(&mut self, port: LoopbackPort) -> PortId {
        self.ports.push(port);
        self.stats.push(PortStats::default());
        self.ports.len() - 1
    }

    /// The pending wake request, if any (consumed by the driver loop).
    pub fn take_wake_request(&mut self) -> Option<u64> {
        self.wake_at_tsc.take()
    }

    /// Busy-spin until the TSC reaches `tsc` (the real-time analogue of
    /// the paper's replay wait loop).
    pub fn spin_until_tsc(&self, tsc: u64) {
        while self.tsc() < tsc {
            std::hint::spin_loop();
        }
    }
}

impl Dataplane for RealtimePlane {
    fn num_ports(&self) -> usize {
        self.ports.len()
    }

    fn mempool(&self) -> &Mempool {
        &self.pool
    }

    fn rx_burst(&mut self, port: PortId, out: &mut Burst) -> usize {
        out.clear();
        let now_ps = self.clock.elapsed_ns() * 1000;
        let p = &mut self.ports[port];
        let mut n = 0;
        while n < MAX_BURST {
            match p.rx.pop() {
                Some(mut m) => {
                    if m.rx_ts_ps.is_none() {
                        m.rx_ts_ps = Some(now_ps);
                    }
                    let len = m.len() as u64;
                    out.push(m).expect("burst sized to MAX_BURST");
                    self.stats[port].on_rx(1, len);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    fn tx_burst(&mut self, port: PortId, burst: &mut Burst) -> usize {
        let p = &mut self.ports[port];
        let mut sent = 0;
        let mut bytes = 0u64;
        // Move packets into the ring; a rejected packet goes back to the
        // front so callers can retry. No clones on this path.
        while let Some(m) = burst.pop_front() {
            let len = m.len() as u64;
            match p.tx.push(m) {
                Ok(()) => {
                    sent += 1;
                    bytes += len;
                }
                Err(m) => {
                    burst.push_front(m);
                    break;
                }
            }
        }
        self.stats[port].on_tx(sent as u64, bytes);
        sent
    }

    fn tsc(&self) -> u64 {
        self.clock.elapsed_ns()
    }

    fn tsc_hz(&self) -> u64 {
        1_000_000_000
    }

    fn wall_ns(&self) -> u64 {
        (self.clock.elapsed_ns() as i64 + self.clock.wall_offset_ns).max(0) as u64
    }

    fn request_wake_at_tsc(&mut self, tsc: u64) {
        self.wake_at_tsc = Some(match self.wake_at_tsc {
            Some(t) => t.min(tsc),
            None => tsc,
        });
    }

    fn stats(&self, port: PortId) -> PortStats {
        self.stats[port]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_packet::Frame;

    fn mbuf(pool: &Mempool, n: usize) -> Mbuf {
        pool.alloc(Frame::new(Bytes::from(vec![0u8; n]))).unwrap()
    }

    #[test]
    fn pair_transfers_packets_both_ways() {
        let pool = Mempool::new("t", 128);
        let (pa, pb) = LoopbackPort::pair(64);
        let mut a = RealtimePlane::new(pool.clone(), RealClock::new());
        let mut b = RealtimePlane::new(pool.clone(), RealClock::new());
        let ida = a.add_port(pa);
        let idb = b.add_port(pb);

        let mut burst = Burst::new();
        burst.push(mbuf(&pool, 100)).unwrap();
        burst.push(mbuf(&pool, 200)).unwrap();
        assert_eq!(a.tx_burst(ida, &mut burst), 2);
        assert!(burst.is_empty());

        let mut rx = Burst::new();
        assert_eq!(b.rx_burst(idb, &mut rx), 2);
        assert_eq!(rx.total_bytes(), 300);
        assert!(rx.get(0).unwrap().rx_ts_ps.is_some());

        // Reverse direction.
        let mut back = Burst::new();
        back.push(mbuf(&pool, 50)).unwrap();
        b.tx_burst(idb, &mut back);
        let mut rx2 = Burst::new();
        assert_eq!(a.rx_burst(ida, &mut rx2), 1);
    }

    #[test]
    fn tx_backpressure_leaves_packets_in_burst() {
        let pool = Mempool::new("t", 128);
        let (pa, _pb) = LoopbackPort::pair(4);
        let mut a = RealtimePlane::new(pool.clone(), RealClock::new());
        let id = a.add_port(pa);
        let mut burst = Burst::new();
        for _ in 0..8 {
            burst.push(mbuf(&pool, 10)).unwrap();
        }
        let sent = a.tx_burst(id, &mut burst);
        assert_eq!(sent, 4);
        assert_eq!(burst.len(), 4);
        assert_eq!(a.stats(id).tx_packets, 4);
    }

    #[test]
    fn self_loop_echoes() {
        let pool = Mempool::new("t", 16);
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let id = plane.add_port(LoopbackPort::self_loop(8));
        let mut burst = Burst::new();
        burst.push(mbuf(&pool, 42)).unwrap();
        plane.tx_burst(id, &mut burst);
        let mut rx = Burst::new();
        assert_eq!(plane.rx_burst(id, &mut rx), 1);
        assert_eq!(rx.get(0).unwrap().len(), 42);
    }

    #[test]
    fn sink_port_drains_elsewhere() {
        let pool = Mempool::new("t", 16);
        let (port, mut drain) = LoopbackPort::sink(8);
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let id = plane.add_port(port);
        let mut burst = Burst::new();
        burst.push(mbuf(&pool, 9)).unwrap();
        plane.tx_burst(id, &mut burst);
        // Nothing comes back on rx...
        let mut rx = Burst::new();
        assert_eq!(plane.rx_burst(id, &mut rx), 0);
        // ...but the sink consumer sees it.
        assert_eq!(drain.pop().unwrap().len(), 9);
    }

    #[test]
    fn clock_is_monotonic_and_wall_offset_applies() {
        let start = Instant::now();
        let a = RealtimePlane::new(Mempool::new("t", 1), RealClock::with_offset(start, 500));
        let b = RealtimePlane::new(Mempool::new("t", 1), RealClock::with_offset(start, -200));
        let t1 = a.tsc();
        let t2 = a.tsc();
        assert!(t2 >= t1);
        // Offsets shift wall clocks in opposite directions.
        assert!(a.wall_ns() + 100 > b.wall_ns());
    }

    #[test]
    fn wake_requests_keep_earliest() {
        let mut plane = RealtimePlane::new(Mempool::new("t", 1), RealClock::new());
        plane.request_wake_at_tsc(1000);
        plane.request_wake_at_tsc(500);
        plane.request_wake_at_tsc(2000);
        assert_eq!(plane.take_wake_request(), Some(500));
        assert_eq!(plane.take_wake_request(), None);
    }

    #[test]
    fn spin_until_tsc_waits() {
        let plane = RealtimePlane::new(Mempool::new("t", 1), RealClock::new());
        let target = plane.tsc() + 200_000; // 200 us
        plane.spin_until_tsc(target);
        assert!(plane.tsc() >= target);
    }
}
