//! Property test: trial-store eviction and rebuild are invisible.
//!
//! A store squeezed under an adversarially small budget (constant
//! evictions, reloads on every other touch) must serve byte-identical
//! observations — and therefore a bit-identical all-pairs κ matrix —
//! compared to plain in-memory vectors over the same append sequence.

use std::sync::atomic::{AtomicU64, Ordering};

use choir_core::metrics::{all_pairs_sharded_with, KappaConfig, Observation, Trial};
use choir_packet::tag::ChoirTag;
use choir_packet::PacketId;
use choir_service::{TrialStore, OBS_BYTES};
use proptest::prelude::*;

const STREAMS: usize = 4;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir() -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!(
        "choir-store-prop-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// One append step: a batch of observations for one of the streams.
/// Sequence numbers overlap across streams (shared identity space) so
/// the matrix has real matches; timestamps are per-batch monotone
/// offsets, which is all the metric kernels require of test input.
fn arb_steps() -> impl Strategy<Value = Vec<(usize, Vec<Observation>)>> {
    proptest::collection::vec(
        (
            0..STREAMS,
            proptest::collection::vec((0u64..48, 0u64..1_000_000), 1..40),
        ),
        1..24,
    )
    .prop_map(|steps| {
        steps
            .into_iter()
            .map(|(s, raw)| {
                let obs = raw
                    .into_iter()
                    .enumerate()
                    .map(|(k, (seq, dt))| Observation {
                        id: PacketId::from_tag(&ChoirTag::new(0, 0, seq)),
                        t_ps: (k as u64) * 1_000_000 + dt,
                    })
                    .collect();
                (s, obs)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eviction_and_rebuild_are_invisible_to_the_matrix(
        steps in arb_steps(),
        budget_obs in 1u64..60,
    ) {
        let dir = fresh_dir();
        // Tiny budget: a handful of observations, so nearly every append
        // evicts something and nearly every read reloads.
        let mut store = TrialStore::open(&dir, budget_obs * OBS_BYTES).unwrap();
        let mut reference: Vec<Vec<Observation>> = vec![Vec::new(); STREAMS];

        for (s, batch) in &steps {
            let key = format!("s{s}");
            store.append(&key, batch).unwrap();
            reference[*s].extend_from_slice(batch);
            // Interleave reads to churn the LRU order.
            let probe = format!("s{}", (*s + 1) % STREAMS);
            if store.len(&probe) > 0 {
                prop_assert_eq!(
                    store.get(&probe).unwrap().len() as u64,
                    store.len(&probe)
                );
            }
        }

        // Byte-identical observations for every stream.
        let mut keys: Vec<String> = (0..STREAMS)
            .filter(|s| !reference[*s].is_empty())
            .map(|s| format!("s{s}"))
            .collect();
        keys.sort();
        for key in &keys {
            let s: usize = key[1..].parse().unwrap();
            prop_assert_eq!(store.get(key).unwrap(), &reference[s][..]);
        }

        // Bit-identical all-pairs matrix (when there is one to compute).
        if keys.len() >= 2 {
            let stored: Vec<Trial> = keys.iter().map(|k| store.trial(k).unwrap()).collect();
            let plain: Vec<Trial> = keys
                .iter()
                .map(|k| {
                    let s: usize = k[1..].parse().unwrap();
                    let mut t = Trial::new();
                    for o in &reference[s] {
                        t.push(o.id, o.t_ps);
                    }
                    t
                })
                .collect();
            let (m_store, _) =
                all_pairs_sharded_with(&stored, 2, &KappaConfig::paper()).unwrap();
            let (m_plain, _) =
                all_pairs_sharded_with(&plain, 2, &KappaConfig::paper()).unwrap();
            prop_assert_eq!(m_store.pairs(), m_plain.pairs());
            for (a, b) in m_store.cells.iter().zip(m_plain.cells.iter()) {
                prop_assert_eq!(a.metrics.kappa.to_bits(), b.metrics.kappa.to_bits());
                prop_assert_eq!(a.metrics.u.to_bits(), b.metrics.u.to_bits());
                prop_assert_eq!(a.metrics.o.to_bits(), b.metrics.o.to_bits());
                prop_assert_eq!(a.metrics.l.to_bits(), b.metrics.l.to_bits());
                prop_assert_eq!(a.metrics.i.to_bits(), b.metrics.i.to_bits());
            }
            // The budget held throughout (single-resident overage aside,
            // impossible here only when one trial exceeds the budget —
            // permitted by contract, so only assert when all trials fit).
            if stored.iter().all(|t| (t.len() as u64) * OBS_BYTES <= budget_obs * OBS_BYTES) {
                prop_assert!(store.resident_bytes() <= budget_obs * OBS_BYTES);
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
