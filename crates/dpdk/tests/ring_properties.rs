//! Property tests of the SPSC ring: FIFO order, conservation, and
//! capacity behaviour under arbitrary interleavings of pushes and pops.

use choir_dpdk::SpscRing;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u32),
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![any::<u32>().prop_map(Op::Push), Just(Op::Pop)],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fifo_against_vecdeque_model(ops in arb_ops(), cap in 1usize..32) {
        let (mut p, mut c) = SpscRing::with_capacity::<u32>(cap);
        let mut model = std::collections::VecDeque::new();
        let real_cap = cap.next_power_of_two();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let accepted = p.push(v).is_ok();
                    let model_accepts = model.len() < real_cap;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted {
                        model.push_back(v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(p.len(), model.len());
            prop_assert_eq!(c.len(), model.len());
        }
        // Drain fully and compare tails.
        while let Some(v) = c.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn bulk_ops_match_singles(items in proptest::collection::vec(any::<u16>(), 0..100)) {
        let (mut p, mut c) = SpscRing::with_capacity::<u16>(64);
        let (n, rejected) = p.push_bulk(items.clone());
        prop_assert_eq!(n, items.len().min(64));
        prop_assert_eq!(rejected.is_some(), items.len() > 64);
        let mut out = Vec::new();
        c.pop_bulk(&mut out, usize::MAX);
        prop_assert_eq!(&out[..], &items[..n]);
    }
}

#[test]
fn cross_thread_conservation_with_random_batching() {
    // Producer pushes in irregular batches; consumer pops in irregular
    // batches; nothing is lost, duplicated or reordered.
    const N: usize = 100_000;
    let (mut p, mut c) = SpscRing::with_capacity::<usize>(256);
    let producer = std::thread::spawn(move || {
        let mut i = 0usize;
        let mut chunk = 1usize;
        while i < N {
            for _ in 0..chunk {
                if i >= N {
                    break;
                }
                while p.push(i).is_err() {
                    std::hint::spin_loop();
                }
                i += 1;
            }
            chunk = chunk % 17 + 1;
        }
    });
    let mut expected = 0usize;
    let mut buf = Vec::new();
    while expected < N {
        buf.clear();
        c.pop_bulk(&mut buf, 13);
        for &v in &buf {
            assert_eq!(v, expected);
            expected += 1;
        }
        std::hint::spin_loop();
    }
    producer.join().unwrap();
    assert_eq!(c.pop(), None);
}
