//! Full per-run analysis bundles — everything the paper reports about one
//! run-vs-baseline comparison, computed in a single pass over the
//! matching, plus the multi-run aggregation used by Table 2.

use serde::{Deserialize, Serialize};

use super::allpairs::MatrixSummary;
use super::histogram::DeltaHistogram;
use super::kappa::{ConsistencyMetrics, KappaBounds, KappaConfig};
use super::ordering::EditScriptStats;
use super::pair::PairAnalyzer;
use super::stream::KappaSnapshot;
use super::trial::Trial;

/// Wall-clock nanoseconds spent in each analysis stage of one comparison.
///
/// Populated by [`analyze`]/[`analyze_with`] and the all-pairs engine
/// ([`super::allpairs`]); defaults to all-zero when deserializing reports
/// produced before timings existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Occurrence-wise packet matching.
    pub match_ns: u64,
    /// Uniqueness + ordering (LIS / edit script).
    pub order_ns: u64,
    /// Latency deltas and `L`.
    pub latency_ns: u64,
    /// Inter-arrival deltas and `I`.
    pub iat_ns: u64,
    /// Histograms, percentiles, and κ assembly.
    pub histogram_ns: u64,
}

impl StageTimings {
    /// Accumulate another comparison's timings into this one.
    pub fn add(&mut self, other: &StageTimings) {
        self.match_ns += other.match_ns;
        self.order_ns += other.order_ns;
        self.latency_ns += other.latency_ns;
        self.iat_ns += other.iat_ns;
        self.histogram_ns += other.histogram_ns;
    }

    /// Total wall-clock across all stages.
    pub fn total_ns(&self) -> u64 {
        self.match_ns + self.order_ns + self.latency_ns + self.iat_ns + self.histogram_ns
    }
}

/// The complete analysis of one run against the baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialComparison {
    /// Run label ("B", "C", …).
    pub label: String,
    /// The four metrics and κ.
    pub metrics: ConsistencyMetrics,
    /// Packets in the baseline trial.
    pub a_len: usize,
    /// Packets in this run's trial.
    pub b_len: usize,
    /// `|A ∩ B|`.
    pub common: usize,
    /// Packets of the baseline missing from this run (drops).
    pub missing: usize,
    /// Packets of this run not present in the baseline.
    pub extra: usize,
    /// Packets moved by the edit script (reordered).
    pub moved: usize,
    /// Fraction of common packets with |ΔIAT| ≤ 10 ns — the paper's
    /// headline per-run statistic.
    pub iat_within_10ns: f64,
    /// Percentiles (p50, p90, p99) of |ΔIAT| in nanoseconds.
    pub iat_abs_percentiles_ns: (f64, f64, f64),
    /// Percentiles (p50, p90, p99) of |Δlatency| in nanoseconds.
    pub latency_abs_percentiles_ns: (f64, f64, f64),
    /// Edit-script distance statistics (Table 1).
    pub edit_stats: EditScriptStats,
    /// Figure-style IAT delta histogram.
    pub iat_hist: DeltaHistogram,
    /// Figure-style latency delta histogram.
    pub latency_hist: DeltaHistogram,
    /// Per-stage wall-clock timing of this comparison (all-zero when read
    /// from a report written before timings existed).
    #[serde(default)]
    pub timings: StageTimings,
}

/// Sorted-absolute (p50, p90, p99) of a delta series, in nanoseconds.
pub(crate) fn abs_percentiles_ns(deltas: &[f64]) -> (f64, f64, f64) {
    if deltas.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut abs: Vec<f64> = deltas.iter().map(|d| d.abs()).collect();
    abs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN deltas"));
    (
        super::stats::percentile_sorted(&abs, 50.0),
        super::stats::percentile_sorted(&abs, 90.0),
        super::stats::percentile_sorted(&abs, 99.0),
    )
}

/// [`abs_percentiles_ns`] through a caller-owned bit-key scratch —
/// bit-identical for finite deltas (the only kind the kernels emit).
///
/// `|d|` is non-negative, and for non-negative finite doubles the IEEE
/// bit pattern orders exactly like the value (with `abs` collapsing
/// `-0.0` onto `+0.0`), so sorting the `u64` bit patterns with the
/// radix-friendly integer `sort_unstable` replaces the comparator-driven
/// float sort. The nearest-rank pick replicates
/// [`super::stats::percentile_sorted`]'s formula on the sorted keys.
pub(crate) fn abs_percentiles_ns_bits(deltas: &[f64], keys: &mut Vec<u64>) -> (f64, f64, f64) {
    if deltas.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    keys.clear();
    keys.reserve(deltas.len());
    keys.extend(deltas.iter().map(|d| d.abs().to_bits()));
    keys.sort_unstable();
    let sorted: &[u64] = keys;
    let pick = |p: f64| {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        f64::from_bits(sorted[rank.clamp(1, sorted.len()) - 1])
    };
    (pick(50.0), pick(90.0), pick(99.0))
}

/// Positional trial label in spreadsheet style: 0 → "A", 25 → "Z",
/// 26 → "AA", 27 → "AB", … — unbounded, unlike the fixed table it
/// replaces (which fell back to a duplicate `"?"` past its last entry).
pub fn trial_label(i: usize) -> String {
    let mut bytes = Vec::new();
    let mut i = i;
    loop {
        bytes.push(b'A' + (i % 26) as u8);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    bytes.reverse();
    String::from_utf8(bytes).expect("ASCII label")
}

/// Analyze run `b` against baseline `a` with the paper's κ formula.
pub fn analyze(label: impl Into<String>, a: &Trial, b: &Trial) -> TrialComparison {
    analyze_with(label, a, b, &KappaConfig::paper())
}

/// Analyze with a custom κ configuration.
///
/// Thin forwarding wrapper over [`PairAnalyzer`] (which owns the actual
/// pipeline); kept non-deprecated as the ergonomic one-call entry point.
pub fn analyze_with(
    label: impl Into<String>,
    a: &Trial,
    b: &Trial,
    cfg: &KappaConfig,
) -> TrialComparison {
    PairAnalyzer::new(a, b).label(label).config(*cfg).analyze()
}

/// Analyze several runs against one baseline concurrently (each run's
/// matching/LIS/histograms are independent). Results keep input order;
/// labels "B", "C", … "Z", "AA", "AB", … are assigned positionally, as the
/// paper names its runs — unbounded, so long sweeps never collide on a
/// fallback label.
///
/// Spawns one thread per run. For the all-pairs matrix (and any sweep
/// large enough that thread-per-comparison hurts), prefer the bounded
/// engine in [`super::allpairs`].
pub fn analyze_runs_parallel(baseline: &Trial, runs: &[Trial]) -> Vec<TrialComparison> {
    std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // Baseline is "A"; runs start at "B".
                let label = trial_label(i + 1);
                s.spawn(move || analyze(label, baseline, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis thread"))
            .collect()
    })
}

/// Structured failure modes of report assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportError {
    /// No per-run comparisons to aggregate — e.g. a chaos sweep at a fault
    /// rate high enough that every replay failed. Previously this tripped
    /// an `assert!` deep in `ConsistencyMetrics::mean_of` and aborted the
    /// whole report.
    EmptyRunSet,
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::EmptyRunSet => {
                write!(f, "no runs to aggregate (every run failed or was filtered)")
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// All runs of one environment compared against run A — one evaluation
/// "row" of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Environment name ("Local Single-Replayer", …).
    pub environment: String,
    /// Comparisons of runs B, C, D, E… against run A.
    pub runs: Vec<TrialComparison>,
    /// Component-wise mean across runs (a Table 2 row).
    pub mean: ConsistencyMetrics,
    /// Sample standard deviation of κ across runs — the run-to-run spread
    /// the paper's per-section run lists exhibit (its FABRIC dedicated κ
    /// varied from 0.65 to 0.82 within one test, §7).
    pub kappa_stddev: f64,
    /// Graceful-degradation events aggregated across the experiment's
    /// middleboxes and replay engines (all-zero for a clean run), so a
    /// κ value is always read next to how degraded the run that
    /// produced it was.
    pub degradation: crate::replay::DegradationReport,
    /// Off-diagonal κ summary when the full all-pairs matrix was computed
    /// (`None` for baseline-only reports and reports written before the
    /// matrix engine existed).
    #[serde(default)]
    pub matrix: Option<MatrixSummary>,
    /// Simulator event-queue statistics from the run that produced the
    /// trials (`None` for reports written before the coalesced hot path
    /// existed, or assembled outside a simulation).
    #[serde(default)]
    pub sim: Option<SimStatsReport>,
    /// Observability snapshot (span tree, counters, event-ring tail)
    /// captured from the run that produced this report. `None` when
    /// observability was not enabled, and for reports written before the
    /// obs layer existed.
    #[serde(default)]
    pub obs: Option<choir_obs::ObsSnapshot>,
    /// Streaming-mode trail: per-run snapshot series from the incremental
    /// κ engine, when the experiment scored runs as they arrived (`None`
    /// for batch-only reports and reports written before the streaming
    /// engine existed).
    #[serde(default)]
    pub stream: Option<StreamReport>,
    /// Crash-recovery accounting when the experiment ran under the
    /// streaming supervisor (`None` for unsupervised runs and reports
    /// written before the recovery layer existed).
    #[serde(default)]
    pub recovery: Option<RecoveryReport>,
}

/// Per-run streaming trail attached to a [`RunReport`] when the
/// experiment ran the incremental engine alongside (or instead of) the
/// batch analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamReport {
    /// Configured reorder/lookahead window (`None` = unbounded).
    pub lookahead: Option<usize>,
    /// Snapshot cadence in packets (0 = snapshots were taken manually).
    pub snapshot_every: u64,
    /// One trail per streamed run.
    pub runs: Vec<StreamRunTrail>,
}

/// The streaming engine's trail for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamRunTrail {
    /// Run label ("B", "C", …).
    pub label: String,
    /// Final streaming κ at finalize.
    pub final_kappa: f64,
    /// Peak number of unmatched packets resident in the reorder window.
    pub peak_resident: usize,
    /// Packets evicted unmatched by the bounded window (0 = the window
    /// covered the whole run and the final κ is exact).
    pub evicted: usize,
    /// Rigorous interval containing the batch κ on the same streams
    /// (collapses to `final_kappa` for exact runs). `None` on reports
    /// written before the bound existed.
    #[serde(default)]
    pub bounds: Option<KappaBounds>,
    /// Batch matches the bounded window missed (0 for exact runs).
    #[serde(default)]
    pub missed_matches: usize,
    /// Periodic snapshots taken while the run streamed in.
    pub snapshots: Vec<KappaSnapshot>,
}

/// What the streaming supervisor survived and what surviving cost —
/// attached to a [`RunReport`] by the supervised streaming `Experiment`.
///
/// The headline invariant this report documents is *not* visible in its
/// numbers: after every kill and every caught tap panic, the resumed
/// engine's final κ and snapshot trail are bit-identical to an
/// uninterrupted run (`repro recover` gates on that). These counters
/// quantify the price: how much was replayed from the journal, how big
/// the durable checkpoints were, and how long resumption took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Checkpoint cadence in tapped packets (0 = only the initial
    /// checkpoint was taken).
    pub checkpoint_every: u64,
    /// Checkpoints serialized (the initial pre-stream one included).
    pub checkpoints_taken: u64,
    /// Engine kills injected mid-stream.
    pub kills_injected: u64,
    /// Kills recovered from by resuming the last durable checkpoint
    /// (equal to `kills_injected` when the supervisor never gave up).
    pub kills_survived: u64,
    /// Panics thrown inside the rx tap and caught at the tap boundary.
    pub tap_panics_caught: u64,
    /// Journaled records re-fed after resumptions (replay amplification
    /// is this over the records tapped once).
    pub records_replayed: u64,
    /// Serialized size of the most recent checkpoint, in bytes.
    pub checkpoint_bytes_last: u64,
    /// Largest checkpoint serialized, in bytes.
    pub checkpoint_bytes_peak: u64,
    /// Total wall-clock spent parsing checkpoints, rebuilding engines,
    /// and replaying journals, in nanoseconds.
    pub resume_latency_ns_total: u64,
    /// Records recovered by salvage-reading a corrupted capture stream.
    pub salvaged_records: u64,
    /// Records lost past the corruption point (unrecoverable without
    /// another copy of the capture).
    pub lost_records: u64,
}

impl RecoveryReport {
    /// Fold another run's recovery counters into this one (cadence and
    /// last-checkpoint size follow the most recent run; peak is a max).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.checkpoint_every = other.checkpoint_every;
        self.checkpoints_taken += other.checkpoints_taken;
        self.kills_injected += other.kills_injected;
        self.kills_survived += other.kills_survived;
        self.tap_panics_caught += other.tap_panics_caught;
        self.records_replayed += other.records_replayed;
        self.checkpoint_bytes_last = other.checkpoint_bytes_last;
        self.checkpoint_bytes_peak = self.checkpoint_bytes_peak.max(other.checkpoint_bytes_peak);
        self.resume_latency_ns_total += other.resume_latency_ns_total;
        self.salvaged_records += other.salvaged_records;
        self.lost_records += other.lost_records;
    }
}

/// Event-queue observability counters for the simulation behind a report
/// — a serialization mirror of the simulator's `SimStats` (this crate
/// does not depend on the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimStatsReport {
    /// Total events dispatched.
    pub events_processed: u64,
    /// Event-queue depth high-water mark.
    pub queue_depth_peak: u64,
    /// Wire deliveries that rode a coalesced burst event.
    pub coalesced_events: u64,
    /// Packets carried by those coalesced events.
    pub coalesced_packets: u64,
    /// Wire crossings that needed no arrival event (single-feeder
    /// cut-through enqueues at transmit time).
    #[serde(default)]
    pub wire_events_elided: u64,
    /// Mean packets per delivery event (1.0 = fully per-packet).
    pub packets_per_event: f64,
    /// Inter-domain bursts admitted through the remote-link band.
    #[serde(default)]
    pub remote_bursts: u64,
    /// Packets carried by those remote bursts.
    #[serde(default)]
    pub remote_packets: u64,
    /// Engine shards the run executed on (0 = the serial engine).
    #[serde(default)]
    pub shards: u64,
    /// Conservative time-window barriers the shard coordinator executed.
    #[serde(default)]
    pub sync_windows: u64,
}

impl RunReport {
    /// Assemble a report from per-run comparisons.
    ///
    /// Returns [`ReportError::EmptyRunSet`] when there is nothing to
    /// aggregate, instead of panicking inside the mean computation.
    pub fn new(
        environment: impl Into<String>,
        runs: Vec<TrialComparison>,
    ) -> Result<Self, ReportError> {
        let mean =
            ConsistencyMetrics::mean_of(&runs.iter().map(|r| r.metrics).collect::<Vec<_>>())
                .ok_or(ReportError::EmptyRunSet)?;
        let kappa_stddev =
            super::stats::Summary::of(runs.iter().map(|r| r.metrics.kappa)).stddev;
        Ok(RunReport {
            environment: environment.into(),
            runs,
            mean,
            kappa_stddev,
            degradation: crate::replay::DegradationReport::default(),
            matrix: None,
            sim: None,
            obs: None,
            stream: None,
            recovery: None,
        })
    }

    /// Attach the experiment's aggregated degradation counters.
    pub fn with_degradation(mut self, degradation: crate::replay::DegradationReport) -> Self {
        self.degradation = degradation;
        self
    }

    /// Attach the all-pairs κ-matrix summary.
    pub fn with_matrix(mut self, matrix: MatrixSummary) -> Self {
        self.matrix = Some(matrix);
        self
    }

    /// Attach the simulator's event-queue statistics.
    pub fn with_sim_stats(mut self, sim: SimStatsReport) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Attach an observability snapshot (non-empty snapshots only: an
    /// all-default snapshot carries no information worth serializing).
    pub fn with_obs(mut self, obs: choir_obs::ObsSnapshot) -> Self {
        if !obs.is_empty() {
            self.obs = Some(obs);
        }
        self
    }

    /// Attach the streaming engine's per-run snapshot trail.
    pub fn with_stream(mut self, stream: StreamReport) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Attach the streaming supervisor's crash-recovery accounting.
    pub fn with_recovery(mut self, recovery: RecoveryReport) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// A merged IAT histogram across all runs (used when rendering a
    /// single figure for the environment).
    pub fn merged_iat_hist(&self) -> DeltaHistogram {
        let mut h = DeltaHistogram::new();
        for r in &self.runs {
            h.merge(&r.iat_hist);
        }
        h
    }

    /// A merged latency histogram across all runs.
    pub fn merged_latency_hist(&self) -> DeltaHistogram {
        let mut h = DeltaHistogram::new();
        for r in &self.runs {
            h.merge(&r.latency_hist);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr_trial(n: u64, gap: u64, jitter: impl Fn(u64) -> i64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            let base = (i * gap) as i64;
            t.push_tagged(0, 0, i, (base + jitter(i)).max(0) as u64);
        }
        t
    }

    #[test]
    fn analyze_consistent_pair() {
        let a = cbr_trial(1000, 284_800, |_| 0);
        let b = cbr_trial(1000, 284_800, |i| ((i % 7) as i64 - 3) * 1000); // ±3 ns
        let c = analyze("B", &a, &b);
        assert_eq!(c.metrics.u, 0.0);
        assert_eq!(c.metrics.o, 0.0);
        assert_eq!(c.missing, 0);
        assert!(c.iat_within_10ns > 0.99);
        assert!(c.metrics.kappa > 0.95);
        assert_eq!(c.iat_hist.total(), 1000);
        assert_eq!(c.latency_hist.total(), 1000);
        // Percentiles are ordered and bounded by the jitter we injected.
        let (p50, p90, p99) = c.iat_abs_percentiles_ns;
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= 12.0, "p99 {p99}");
    }

    #[test]
    fn analyze_with_drops() {
        let a = cbr_trial(100, 1000, |_| 0);
        let mut b = Trial::new();
        for i in 0..100u64 {
            if i != 50 && i != 51 {
                b.push_tagged(0, 0, i, i * 1000);
            }
        }
        let c = analyze("B", &a, &b);
        assert_eq!(c.missing, 2);
        assert_eq!(c.common, 98);
        assert!(c.metrics.u > 0.0);
    }

    #[test]
    fn report_mean_matches_components() {
        let a = cbr_trial(100, 1000, |_| 0);
        let b = cbr_trial(100, 1000, |i| (i % 2) as i64 * 100);
        let c = cbr_trial(100, 1000, |i| (i % 3) as i64 * 100);
        let rb = analyze("B", &a, &b);
        let rc = analyze("C", &a, &c);
        let expect_i = (rb.metrics.i + rc.metrics.i) / 2.0;
        let report = RunReport::new("test-env", vec![rb, rc]).unwrap();
        assert!((report.mean.i - expect_i).abs() < 1e-15);
        assert!(report.kappa_stddev >= 0.0);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.merged_iat_hist().total(), 200);
        assert_eq!(report.merged_latency_hist().total(), 200);
    }

    #[test]
    fn report_serializes() {
        let a = cbr_trial(10, 1000, |_| 0);
        let r = RunReport::new("env", vec![analyze("B", &a, &a.clone())]).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.environment, "env");
        assert_eq!(back.runs[0].metrics.kappa, 1.0);
        assert_eq!(back.matrix, None);
    }

    #[test]
    fn empty_run_set_is_a_structured_error() {
        // Regression: used to trip `assert!(!runs.is_empty())` deep inside
        // the mean computation and abort the caller.
        let err = RunReport::new("env", Vec::new()).unwrap_err();
        assert_eq!(err, ReportError::EmptyRunSet);
        assert!(err.to_string().contains("no runs"));
    }

    #[test]
    fn trial_labels_are_unbounded_and_unique() {
        assert_eq!(trial_label(0), "A");
        assert_eq!(trial_label(1), "B");
        assert_eq!(trial_label(25), "Z");
        assert_eq!(trial_label(26), "AA");
        assert_eq!(trial_label(27), "AB");
        assert_eq!(trial_label(51), "AZ");
        assert_eq!(trial_label(52), "BA");
        assert_eq!(trial_label(702), "AAA");
        let labels: Vec<String> = (0..1000).map(trial_label).collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len(), "labels must never collide");
    }

    #[test]
    fn thirty_run_sweep_has_no_duplicate_labels() {
        // Regression: runs past the fixed label table used to all get "?".
        let a = cbr_trial(20, 1000, |_| 0);
        let runs: Vec<Trial> = (0..30u64)
            .map(|k| cbr_trial(20, 1000, move |i| ((i + k) % 3) as i64))
            .collect();
        let par = analyze_runs_parallel(&a, &runs);
        assert_eq!(par.len(), 30);
        assert_eq!(par[0].label, "B");
        assert_eq!(par[24].label, "Z");
        assert_eq!(par[25].label, "AA");
        assert_eq!(par[29].label, "AE");
        let unique: std::collections::HashSet<&str> =
            par.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(unique.len(), 30);
        assert!(!par.iter().any(|c| c.label == "?"));
    }

    #[test]
    fn timings_default_for_old_reports() {
        // Reports serialized before stage timing existed must still load.
        let a = cbr_trial(10, 1000, |_| 0);
        let c = analyze("B", &a, &a.clone());
        let json = serde_json::to_string(&c).unwrap();
        let idx = json.rfind(",\"timings\":").expect("timings serialized last");
        let old = format!("{}}}", &json[..idx]);
        let back: TrialComparison = serde_json::from_str(&old).unwrap();
        assert_eq!(back.timings, StageTimings::default());
        assert_eq!(back.metrics.kappa, 1.0);
    }

    #[test]
    fn report_roundtrips_with_and_without_obs_snapshot() {
        let a = cbr_trial(10, 1000, |_| 0);
        let base = RunReport::new("env", vec![analyze("B", &a, &a.clone())]).unwrap();

        // Without: the field serializes as null and round-trips to None.
        let json = serde_json::to_string(&base).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert!(back.obs.is_none());

        // A report written before the obs field existed (no "obs" key at
        // all) still loads, defaulting to None.
        let idx = json.rfind(",\"obs\":").expect("obs serialized last");
        let old = format!("{}}}", &json[..idx]);
        let back: RunReport = serde_json::from_str(&old).unwrap();
        assert!(back.obs.is_none());
        assert_eq!(back.runs[0].metrics.kappa, 1.0);

        // With: a populated snapshot survives the round trip intact.
        let snap = choir_obs::ObsSnapshot {
            enabled: true,
            counters: vec![choir_obs::CounterSnap {
                name: "sim.events_processed".into(),
                value: 42,
            }],
            spans: vec![choir_obs::SpanSnap {
                path: "matrix/pairs".into(),
                count: 3,
                total_ns: 900,
                min_ns: 100,
                max_ns: 500,
            }],
            events: vec![choir_obs::EventSnap {
                seq: 0,
                kind: "replay.retry".into(),
                a: 1,
                b: 2,
            }],
            events_emitted: 1,
            events_dropped: 0,
        };
        let with = base.clone().with_obs(snap.clone());
        let json = serde_json::to_string(&with).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.obs, Some(snap));

        // Empty snapshots are not attached.
        let none = base.with_obs(choir_obs::ObsSnapshot::default());
        assert!(none.obs.is_none());
    }

    #[test]
    fn report_roundtrips_with_and_without_stream_trail() {
        let a = cbr_trial(10, 1000, |_| 0);
        let base = RunReport::new("env", vec![analyze("B", &a, &a.clone())]).unwrap();

        // Without: serializes as null, round-trips to None; a report
        // written before the field existed (key absent) also loads.
        let json = serde_json::to_string(&base).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert!(back.stream.is_none());
        let idx = json.rfind(",\"stream\":").expect("stream serialized last");
        let old = format!("{}}}", &json[..idx]);
        let back: RunReport = serde_json::from_str(&old).unwrap();
        assert!(back.stream.is_none());

        // With: the trail survives the round trip.
        let with = base.with_stream(StreamReport {
            lookahead: Some(64),
            snapshot_every: 100,
            runs: vec![StreamRunTrail {
                label: "B".into(),
                final_kappa: 0.875,
                peak_resident: 12,
                evicted: 0,
                bounds: Some(KappaBounds::exact(0.875)),
                missed_matches: 0,
                snapshots: Vec::new(),
            }],
        });
        let json = serde_json::to_string(&with).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        let s = back.stream.expect("stream trail present");
        assert_eq!(s.lookahead, Some(64));
        assert_eq!(s.runs.len(), 1);
        assert_eq!(s.runs[0].label, "B");
        assert_eq!(s.runs[0].final_kappa, 0.875);
        assert_eq!(s.runs[0].bounds.unwrap().lo, 0.875);

        // A trail serialized before the bounds existed still loads.
        let stripped = json
            .replace(",\"bounds\":{\"lo\":0.875,\"hi\":0.875}", "")
            .replace(",\"missed_matches\":0", "");
        let back: RunReport = serde_json::from_str(&stripped).unwrap();
        let s = back.stream.expect("stream trail present");
        assert!(s.runs[0].bounds.is_none());
        assert_eq!(s.runs[0].missed_matches, 0);
    }

    #[test]
    fn report_roundtrips_with_and_without_recovery() {
        let a = cbr_trial(10, 1000, |_| 0);
        let base = RunReport::new("env", vec![analyze("B", &a, &a.clone())]).unwrap();

        // Absent field (old report) and null both load to None.
        let json = serde_json::to_string(&base).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert!(back.recovery.is_none());
        let idx = json.rfind(",\"recovery\":").expect("recovery serialized last");
        let old = format!("{}}}", &json[..idx]);
        let back: RunReport = serde_json::from_str(&old).unwrap();
        assert!(back.recovery.is_none());

        let rec = RecoveryReport {
            checkpoint_every: 50,
            checkpoints_taken: 7,
            kills_injected: 3,
            kills_survived: 3,
            tap_panics_caught: 2,
            records_replayed: 120,
            checkpoint_bytes_last: 4096,
            checkpoint_bytes_peak: 8192,
            resume_latency_ns_total: 1_000_000,
            salvaged_records: 90,
            lost_records: 10,
        };
        let with = base.with_recovery(rec);
        let json = serde_json::to_string(&with).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.recovery, Some(rec));
    }

    #[test]
    fn recovery_absorb_sums_and_maxes() {
        let mut a = RecoveryReport {
            checkpoint_every: 10,
            checkpoints_taken: 2,
            kills_injected: 1,
            kills_survived: 1,
            records_replayed: 5,
            checkpoint_bytes_last: 100,
            checkpoint_bytes_peak: 200,
            ..RecoveryReport::default()
        };
        let b = RecoveryReport {
            checkpoint_every: 10,
            checkpoints_taken: 3,
            kills_injected: 2,
            kills_survived: 2,
            tap_panics_caught: 1,
            records_replayed: 9,
            checkpoint_bytes_last: 150,
            checkpoint_bytes_peak: 150,
            salvaged_records: 4,
            lost_records: 1,
            ..RecoveryReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.checkpoints_taken, 5);
        assert_eq!(a.kills_survived, 3);
        assert_eq!(a.tap_panics_caught, 1);
        assert_eq!(a.records_replayed, 14);
        assert_eq!(a.checkpoint_bytes_last, 150);
        assert_eq!(a.checkpoint_bytes_peak, 200, "peak is a running max");
        assert_eq!(a.salvaged_records, 4);
    }

    #[test]
    fn parallel_analysis_matches_serial() {
        let a = cbr_trial(500, 1000, |_| 0);
        let runs: Vec<Trial> = (1..4u64)
            .map(|k| cbr_trial(500, 1000, move |i| ((i % (k + 1)) * 37) as i64))
            .collect();
        let par = analyze_runs_parallel(&a, &runs);
        assert_eq!(par.len(), 3);
        assert_eq!(par[0].label, "B");
        assert_eq!(par[2].label, "D");
        for (p, t) in par.iter().zip(&runs) {
            let serial = analyze(p.label.clone(), &a, t);
            assert_eq!(p.metrics, serial.metrics);
            assert_eq!(p.moved, serial.moved);
        }
    }

    #[test]
    fn custom_kappa_config_flows_through() {
        let a = cbr_trial(100, 1000, |_| 0);
        let mut b = Trial::new();
        for i in 1..100u64 {
            b.push_tagged(0, 0, i, i * 1000); // one drop
        }
        let linear = analyze_with("B", &a, &b, &KappaConfig::paper());
        let strict = analyze_with("B", &a, &b, &KappaConfig::drop_sensitive());
        assert!(strict.metrics.kappa < linear.metrics.kappa);
    }
}
