//! Criterion benches of the dataplane substrate: mempool accounting,
//! burst handling and the SPSC ring — the primitives under the replay hot
//! loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use choir_dpdk::{Burst, Mempool, SpscRing};
use choir_packet::Frame;

fn bench_mempool(c: &mut Criterion) {
    let mut g = c.benchmark_group("mempool");
    let pool = Mempool::new("bench", 1 << 16);
    let frame = Frame::new(Bytes::from(vec![0u8; 58]));
    g.throughput(Throughput::Elements(1));
    g.bench_function("alloc_free", |bench| {
        bench.iter(|| {
            let m = pool.alloc(frame.clone()).unwrap();
            drop(m);
        });
    });
    g.bench_function("clone_drop_recorded", |bench| {
        // The replay path: clone a recorded mbuf, transmit, drop.
        let m = pool.alloc(frame.clone()).unwrap();
        bench.iter(|| {
            let c = m.clone();
            drop(c);
        });
    });
    g.finish();
}

fn bench_burst_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst");
    let pool = Mempool::new("burst", 1 << 10);
    let frame = Frame::new(Bytes::from(vec![0u8; 58]));
    let mbufs: Vec<_> = (0..64).map(|_| pool.alloc(frame.clone()).unwrap()).collect();
    g.throughput(Throughput::Elements(64));
    g.bench_function("fill_and_drain_64", |bench| {
        let mut b = Burst::new();
        bench.iter(|| {
            for m in &mbufs {
                b.push(m.clone()).unwrap();
            }
            let mut n = 0;
            while let Some(m) = b.pop_front() {
                n += m.len();
            }
            n
        });
    });
    g.finish();
}

fn bench_ring_same_thread(c: &mut Criterion) {
    // Same-core ring cycling isolates the algorithm from inter-core
    // latency (which on shared vCPUs measures the hypervisor, not us).
    let mut g = c.benchmark_group("spsc_ring");
    g.throughput(Throughput::Elements(64));
    g.bench_function("push_pop_64", |bench| {
        let (mut p, mut c2) = SpscRing::with_capacity::<u64>(128);
        bench.iter(|| {
            for i in 0..64u64 {
                p.push(i).unwrap();
            }
            let mut acc = 0u64;
            for _ in 0..64 {
                acc = acc.wrapping_add(c2.pop().unwrap());
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(benches, bench_mempool, bench_burst_cycle, bench_ring_same_thread);
criterion_main!(benches);
